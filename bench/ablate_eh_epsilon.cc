// Ablation: the exponential-histogram error used by the samplers to track
// ||A||_F^2 over the window (DESIGN.md §3). Theorem 5.1's analysis says a
// (1 +/- eps_EH) Frobenius estimate perturbs the covariance error by
// O(eps_EH); this sweep measures that effect and the auxiliary space cost,
// including the exact-tracking mode the paper mentions.
//
//   ./ablate_eh_epsilon [--rows=30000] [--window=3000] [--ell=48]
#include <iostream>
#include <memory>

#include "core/swr.h"
#include "data/synthetic.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "stream/window_buffer.h"
#include "util/flags.h"

using namespace swsketch;

namespace {

struct RunOutcome {
  double avg_err = 0.0;
  size_t aux = 0;
};

RunOutcome RunOnce(double eh_eps, bool exact, size_t rows, uint64_t window,
                   size_t ell) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = 100, .signal_dim = 20,
      .window = window});
  SwrSketch sketch(stream.dim(), WindowSpec::Sequence(window),
                   SwrSketch::Options{.ell = ell,
                                      .frobenius_eps = eh_eps,
                                      .exact_frobenius = exact,
                                      .seed = 9});
  WindowBuffer buffer(WindowSpec::Sequence(window));
  RunOutcome out;
  size_t i = 0, checkpoints = 0;
  while (auto row = stream.Next()) {
    sketch.Update(row->view(), row->ts);
    buffer.Add(*row);
    ++i;
    if (i % (rows / 5) == 0 && buffer.size() >= window) {
      out.avg_err += CovarianceError(buffer.GramMatrix(stream.dim()),
                                     buffer.FrobeniusNormSq(), sketch.Query());
      ++checkpoints;
    }
  }
  if (checkpoints) out.avg_err /= static_cast<double>(checkpoints);
  out.aux = sketch.AuxiliarySize();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 30000));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 3000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 48));

  PrintBanner(std::cout, "Ablation: ||A||_F^2 tracker accuracy (SWR)");
  Table table({"tracker", "avg_cova_err", "aux_scalars_stored"});
  for (double eps : {0.30, 0.10, 0.05, 0.01}) {
    RunOutcome o = RunOnce(eps, /*exact=*/false, rows, window, ell);
    table.AddRow({"EH eps=" + Table::Num(eps), Table::Num(o.avg_err),
                  Table::Int(static_cast<long long>(o.aux))});
  }
  RunOutcome o = RunOnce(0.05, /*exact=*/true, rows, window, ell);
  table.AddRow({"exact (one scalar/row)", Table::Num(o.avg_err),
                Table::Int(static_cast<long long>(o.aux))});
  table.Print(std::cout);
  std::cout << "\nExpected: error is insensitive to eps_EH down to the "
               "sampling noise\nfloor; the EH needs orders of magnitude "
               "fewer scalars than exact\ntracking (window-size many).\n";
  return 0;
}
