// Extension bench: the same sliding-window sketches under a DIFFERENT
// error metric — projection error (relative residual of projecting the
// window onto the sketch's top-k subspace) — the direction the paper's
// Section 9 names ("understanding their behaviors in different error
// metrics"). Sampling sketches that look mediocre under covariance error
// can be far better or worse under projection error, and vice versa.
//
//   ./ablate_error_metrics [--k=8] [--window=2000] [--rows=12000]
#include <iostream>
#include <memory>

#include "core/factory.h"
#include "data/synthetic.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "stream/window_buffer.h"
#include "util/flags.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 8));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 2000));
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 12000));
  const size_t dim = 80;

  PrintBanner(std::cout,
              "Extension: covariance error vs projection error (Section 9)");
  std::cout << "SYNTHETIC d=" << dim << " window=" << window << " k=" << k
            << "\n";
  Table table({"algorithm", "ell", "cova_err", "proj_err(k)"});

  for (const char* algo : {"swr", "swor", "swor-all", "lm-fd", "di-fd"}) {
    for (size_t ell : {16u, 48u}) {
      SyntheticStream stream(SyntheticStream::Options{
          .rows = rows, .dim = dim, .signal_dim = 16, .window = window});
      SketchConfig config;
      config.algorithm = algo;
      config.ell = ell;
      config.max_norm_sq = stream.info().max_norm_sq;
      config.lm_block_capacity = static_cast<double>(ell) * 6.0;
      auto sketch =
          MakeSlidingWindowSketch(dim, WindowSpec::Sequence(window), config);
      if (!sketch.ok()) continue;

      WindowBuffer buffer(WindowSpec::Sequence(window));
      double cova_sum = 0.0, proj_sum = 0.0;
      size_t checkpoints = 0, i = 0;
      while (auto row = stream.Next()) {
        (*sketch)->Update(row->view(), row->ts);
        buffer.Add(*row);
        ++i;
        if (i % (rows / 4) == 0 && buffer.size() >= window) {
          const Matrix a = buffer.ToMatrix();
          const Matrix b = (*sketch)->Query();
          cova_sum += CovarianceError(buffer.GramMatrix(dim),
                                      buffer.FrobeniusNormSq(), b);
          proj_sum += ProjectionError(a, b, k);
          ++checkpoints;
        }
      }
      if (checkpoints == 0) continue;
      table.AddRow({algo, Table::Int(static_cast<long long>(ell)),
                    Table::Num(cova_sum / static_cast<double>(checkpoints)),
                    Table::Num(proj_sum / static_cast<double>(checkpoints))});
    }
  }
  table.Print(std::cout);
  std::cout << "\nproj_err = 1 is optimal (the sketch's top-k subspace is "
               "as good as the\nwindow's own). FD-based sketches are "
               "near-optimal under projection error\neven at small ell; "
               "samplers need k << ell to compete.\n";
  return 0;
}
