// Ablation: the FD shrink (DESIGN.md §3, §8). Two sweeps over one stream:
//
//  1. Shrink position: the paper shrinks at sigma_{ell/2}^2 (leaving ell/2
//     free rows); shrinking later (closer to ell) sheds less mass per step
//     (better error) but shrinks more often (slower).
//  2. Shrink backend x buffer factor: the Gram-eigen shrink (default)
//     against the legacy ThinSvd shrink, each at buffer factors
//     {1, 1.5, 2, 3}. This is the grid that picked the shipped --fd_buffer
//     default; cells land in BENCH_ablate_fd_shrink.json for
//     scripts/bench_diff.py.
//
//  3. Eigen route x ell: the Gram-eigen shrink with the symmetric
//     eigensolver forced to cyclic Jacobi (eigen_jacobi_cutoff = SIZE_MAX)
//     versus tridiag QL (cutoff = 0), swept over ell in {16, 32, 48, 64}.
//     Places the ell ~ 32 Jacobi/tridiag cutoff empirically (the ROADMAP
//     "revisit the cutoff" item); findings in EXPERIMENTS.md.
//
//   ./ablate_fd_shrink [--ell=64] [--d=256] [--rows=20000] [--json=1]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/cov_err.h"
#include "eval/report.h"
#include "sketch/frequent_directions.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct GridCell {
  std::string algorithm;
  size_t ell = 0;
  double cova_err = 0.0;
  double update_ns = 0.0;
  size_t max_rows_stored = 0;
  size_t rows_processed = 0;
  size_t shrink_count = 0;
};

// Minimal cells-format emitter matching bench_util's WriteBenchJson, so
// scripts/bench_diff.py can diff ablation runs like any figure.
void WriteCellsJson(const std::string& path, size_t rows, size_t d,
                    const std::vector<GridCell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"ablate_fd_shrink\",\n"
      << "  \"metric\": \"update_ns\",\n"
      << "  \"dataset\": \"SYNTH-decay\",\n"
      << "  \"n\": " << rows << ",\n  \"d\": " << d << ",\n"
      << "  \"window\": \"none\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const GridCell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"avg_err\": " << c.cova_err
        << ", \"max_err\": " << c.cova_err
        << ", \"update_ns\": " << c.update_ns
        << ", \"max_rows_stored\": " << c.max_rows_stored
        << ", \"best_err_avg\": 0, \"best_err_max\": 0"
        << ", \"zero_err_avg\": 0, \"rows_processed\": " << c.rows_processed
        << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 64));
  const size_t d = static_cast<size_t>(flags.GetInt("d", 256));
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));

  // A stream with a decaying spectrum (FD's target regime).
  Rng rng(1);
  Matrix a(0, d);
  a.ReserveRows(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row(d);
    for (size_t j = 0; j < d; ++j) {
      const double decay = 1.0 / (1.0 + 0.15 * static_cast<double>(j));
      row[j] = decay * rng.Gaussian();
    }
    a.AppendRow(row);
  }
  const Matrix gram = a.Gram();
  const double frob_sq = a.FrobeniusNormSq();

  PrintBanner(std::cout, "Ablation: FD shrink rank (ell = " +
                             std::to_string(ell) + ")");
  Table rank_table({"shrink_rank", "cova_err", "shed_mass_fraction",
                    "update_ns_per_row"});
  for (size_t rank : {ell / 4, ell / 2, 3 * ell / 4, ell}) {
    if (rank == 0) continue;
    FrequentDirections fd(
        d, FrequentDirections::Options{.ell = ell, .shrink_rank = rank});
    Timer timer;
    for (size_t i = 0; i < rows; ++i) fd.Append(a.Row(i), i);
    const double ns_per_row =
        static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(rows);
    const double err = CovarianceError(gram, frob_sq, fd.Approximation());
    rank_table.AddRow({Table::Int(static_cast<long long>(rank)),
                       Table::Num(err), Table::Num(fd.shed_mass() / frob_sq),
                       Table::Num(ns_per_row)});
  }
  rank_table.Print(std::cout);
  std::cout << "\nExpected: larger shrink ranks lower the error (less mass "
               "shed per\nshrink) but pay more frequent shrinks per row.\n\n";

  PrintBanner(std::cout, "Ablation: shrink backend x buffer factor");
  Table grid_table({"backend", "buffer_factor", "cova_err", "update_ns_per_row",
                    "shrinks", "max_rows"});
  std::vector<GridCell> cells;
  const struct {
    FdShrinkBackend backend;
    const char* name;
  } kBackends[] = {{FdShrinkBackend::kGramEigen, "gram-eigen"},
                   {FdShrinkBackend::kThinSvd, "thinsvd"}};
  for (const auto& backend : kBackends) {
    for (double factor : {1.0, 1.5, 2.0, 3.0}) {
      FrequentDirections fd(
          d, FrequentDirections::Options{.ell = ell,
                                         .buffer_factor = factor,
                                         .shrink_backend = backend.backend});
      size_t max_rows = 0;
      Timer timer;
      for (size_t i = 0; i < rows; ++i) {
        fd.Append(a.Row(i), i);
        max_rows = std::max(max_rows, fd.RowsStored());
      }
      const double ns_per_row = static_cast<double>(timer.ElapsedNanos()) /
                                static_cast<double>(rows);
      const double err = CovarianceError(gram, frob_sq, fd.Approximation());
      grid_table.AddRow(
          {std::string(backend.name), Table::Num(factor), Table::Num(err),
           Table::Num(ns_per_row),
           Table::Int(static_cast<long long>(fd.shrink_count())),
           Table::Int(static_cast<long long>(max_rows))});
      GridCell cell;
      // Strip the trailing .0/.5 into a stable slug: f1, f1.5, f2, f3.
      std::string f = std::to_string(factor);
      f.erase(f.find_last_not_of('0') + 1);
      if (!f.empty() && f.back() == '.') f.pop_back();
      cell.algorithm = std::string("fd-") + backend.name + "-f" + f;
      cell.ell = ell;
      cell.cova_err = err;
      cell.update_ns = ns_per_row;
      cell.max_rows_stored = max_rows;
      cell.rows_processed = rows;
      cell.shrink_count = fd.shrink_count();
      cells.push_back(cell);
    }
  }
  grid_table.Print(std::cout);
  std::cout << "\nThe gram-eigen backend should dominate thinsvd at every "
               "factor (no U/V\nrecovery); the factor column picks the "
               "--fd_buffer default.\n\n";

  PrintBanner(std::cout, "Ablation: eigen route x ell (Jacobi/tridiag cutoff)");
  Table route_table({"route", "ell", "cova_err", "update_ns_per_row",
                     "shrinks"});
  const struct {
    size_t cutoff;
    const char* name;
  } kRoutes[] = {{static_cast<size_t>(-1), "jacobi"}, {0, "tridiag"}};
  for (const auto& route : kRoutes) {
    for (size_t l : {size_t{16}, size_t{32}, size_t{48}, size_t{64}}) {
      FrequentDirections fd(
          d, FrequentDirections::Options{.ell = l,
                                         .eigen_jacobi_cutoff = route.cutoff});
      Timer timer;
      for (size_t i = 0; i < rows; ++i) fd.Append(a.Row(i), i);
      const double ns_per_row = static_cast<double>(timer.ElapsedNanos()) /
                                static_cast<double>(rows);
      const double err = CovarianceError(gram, frob_sq, fd.Approximation());
      route_table.AddRow({std::string(route.name),
                          Table::Int(static_cast<long long>(l)),
                          Table::Num(err), Table::Num(ns_per_row),
                          Table::Int(static_cast<long long>(fd.shrink_count()))});
      GridCell cell;
      cell.algorithm = std::string("fd-eigen-") + route.name;
      cell.ell = l;
      cell.cova_err = err;
      cell.update_ns = ns_per_row;
      cell.max_rows_stored = l;
      cell.rows_processed = rows;
      cell.shrink_count = fd.shrink_count();
      cells.push_back(cell);
    }
  }
  route_table.Print(std::cout);
  std::cout << "\nThe per-ell winner places SymmetricEigenSolve's "
               "jacobi_cutoff: the\ndispatcher should switch routes where "
               "the two update_ns columns cross.\n";
  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_ablate_fd_shrink.json", rows, d, cells);
  }
  return 0;
}
