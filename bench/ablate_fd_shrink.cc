// Ablation: the FD shrink position (DESIGN.md §3). The paper shrinks at
// sigma_{ell/2}^2 (leaving ell/2 free rows); shrinking later (closer to
// ell) sheds less mass per step (better error) but shrinks more often
// (more SVDs, slower). This sweep quantifies the tradeoff.
//
//   ./ablate_fd_shrink [--ell=32] [--rows=20000]
#include <iostream>

#include "eval/cov_err.h"
#include "eval/report.h"
#include "sketch/frequent_directions.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 32));
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const size_t d = 64;

  // A stream with a decaying spectrum (FD's target regime).
  Rng rng(1);
  Matrix a(0, d);
  a.ReserveRows(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row(d);
    for (size_t j = 0; j < d; ++j) {
      const double decay = 1.0 / (1.0 + 0.15 * static_cast<double>(j));
      row[j] = decay * rng.Gaussian();
    }
    a.AppendRow(row);
  }
  const Matrix gram = a.Gram();
  const double frob_sq = a.FrobeniusNormSq();

  PrintBanner(std::cout, "Ablation: FD shrink rank (ell = " +
                             std::to_string(ell) + ")");
  Table table({"shrink_rank", "cova_err", "shed_mass_fraction",
               "update_ns_per_row"});
  for (size_t rank : {ell / 4, ell / 2, 3 * ell / 4, ell}) {
    if (rank == 0) continue;
    FrequentDirections fd(
        d, FrequentDirections::Options{.ell = ell, .shrink_rank = rank});
    Timer timer;
    for (size_t i = 0; i < rows; ++i) fd.Append(a.Row(i), i);
    const double ns_per_row =
        static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(rows);
    const double err = CovarianceError(gram, frob_sq, fd.Approximation());
    table.AddRow({Table::Int(static_cast<long long>(rank)), Table::Num(err),
                  Table::Num(fd.shed_mass() / frob_sq),
                  Table::Num(ns_per_row)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: larger shrink ranks lower the error (less mass "
               "shed per\nshrink) but pay more frequent SVDs per row.\n";
  return 0;
}
