// Ablation: LM structural parameters (DESIGN.md §3) — block capacity C
// (the paper sets C = ell) and blocks-per-level b (= Theta(1/eps)). More
// blocks per level means a smaller expiring block (less expiry error) but
// more sketches to store and merge.
//
//   ./ablate_lm_block_policy [--rows=30000] [--window=3000] [--ell=24]
#include <iostream>

#include "core/logarithmic_method.h"
#include "data/synthetic.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "stream/window_buffer.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 30000));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 3000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 24));
  const size_t dim = 100;

  PrintBanner(std::cout, "Ablation: LM block capacity and blocks-per-level");
  Table table({"capacity_C", "blocks_per_level_b", "avg_err",
               "max_sketch_rows", "update_ns"});

  for (double cap_factor : {0.25, 1.0, 4.0}) {
    for (size_t b : {4u, 8u, 16u}) {
      SyntheticStream stream(SyntheticStream::Options{
          .rows = rows, .dim = dim, .signal_dim = 20, .window = window});
      const double capacity = cap_factor * static_cast<double>(ell);
      LmFd sketch(dim, WindowSpec::Sequence(window),
                  LmFd::Options{.ell = ell,
                                .blocks_per_level = b,
                                .block_capacity = capacity});
      WindowBuffer buffer(WindowSpec::Sequence(window));
      size_t max_rows = 0, checkpoints = 0, i = 0;
      double err_sum = 0.0;
      Timer timer;
      int64_t update_ns = 0;
      while (auto row = stream.Next()) {
        timer.Reset();
        sketch.Update(row->view(), row->ts);
        update_ns += timer.ElapsedNanos();
        buffer.Add(*row);
        max_rows = std::max(max_rows, sketch.RowsStored());
        ++i;
        if (i % (rows / 5) == 0 && buffer.size() >= window) {
          err_sum += CovarianceError(buffer.GramMatrix(dim),
                                     buffer.FrobeniusNormSq(), sketch.Query());
          ++checkpoints;
        }
      }
      table.AddRow(
          {Table::Num(capacity), Table::Int(static_cast<long long>(b)),
           Table::Num(checkpoints ? err_sum / checkpoints : 0.0),
           Table::Int(static_cast<long long>(max_rows)),
           Table::Num(static_cast<double>(update_ns) /
                      static_cast<double>(rows))});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected: larger b lowers the expiry error share at the "
               "cost of more\nstored blocks; C trades level count against "
               "per-block accuracy.\n";
  return 0;
}
