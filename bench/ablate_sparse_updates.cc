// Ablation: sparse fast paths (DESIGN.md §3 / paper-scale WIKI-RAIL
// regime). At paper scale the text and scheduling matrices have d in the
// thousands with tens of nonzeros per row; the DI framework fans every row
// into L active sketches, so O(nnz) appends beat O(d) appends by roughly
// d / nnz. This bench measures the dense vs sparse update paths at
// rail2586-like shape and verifies the results agree.
//
//   ./ablate_sparse_updates [--dim=2586] [--rows=20000] [--nnz=9]
#include <iostream>

#include "core/dyadic_interval.h"
#include "data/rail.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t dim = static_cast<size_t>(flags.GetInt("dim", 2586));
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const size_t nnz = static_cast<size_t>(flags.GetInt("nnz", 9));

  RailStream::Options opt;
  opt.rows = rows;
  opt.dim = dim;
  opt.nnz_min = nnz / 2 + 1;
  opt.nnz_max = nnz * 3 / 2 + 1;

  DiFd::Options di_opt{.levels = 6,
                       .window_size = 10000,
                       .max_norm_sq = RailStream(opt).info().max_norm_sq,
                       .ell_top = 32};

  PrintBanner(std::cout,
              "Ablation: dense vs sparse update path (rail2586 shape)");
  std::cout << "d=" << dim << " rows=" << rows << " nnz~" << nnz << "\n";
  Table table({"sketch", "path", "total_s", "ns_per_row", "speedup",
               "identical"});

  bool all_identical = true;
  auto bench = [&](const std::string& name, auto make_sketch) {
    Matrix dense_b, sparse_b;
    double dense_s = 0.0, sparse_s = 0.0;
    {
      RailStream stream(opt);
      auto sketch = make_sketch();
      Timer t;
      while (auto row = stream.Next()) sketch.Update(row->view(), row->ts);
      dense_s = t.ElapsedSeconds();
      dense_b = sketch.Query();
    }
    {
      RailStream stream(opt);
      auto sketch = make_sketch();
      Timer t;
      while (auto row = stream.NextSparse()) {
        sketch.UpdateSparse(row->first, row->second);
      }
      sparse_s = t.ElapsedSeconds();
      sparse_b = sketch.Query();
    }
    const bool same = dense_b.ApproxEquals(sparse_b, 1e-9);
    all_identical = all_identical && same;
    const double per_row = 1e9 / static_cast<double>(rows);
    table.AddRow({name, "dense", Table::Num(dense_s),
                  Table::Num(dense_s * per_row), "-", "-"});
    table.AddRow({name, "sparse", Table::Num(sparse_s),
                  Table::Num(sparse_s * per_row),
                  Table::Num(dense_s / sparse_s), same ? "yes" : "NO"});
  };

  bench("DI-FD", [&] { return DiFd(dim, di_opt); });
  bench("DI-HASH", [&] {
    return DiHash(dim, DiHash::Options{.levels = 6,
                                       .window_size = 10000,
                                       .max_norm_sq = di_opt.max_norm_sq,
                                       .ell_top = 256,
                                       .seed = 3});
  });
  table.Print(std::cout);
  std::cout << "\nDI-FD barely benefits: its cost is the FD shrink SVD, "
               "not the appends.\nDI-HASH (pure scatter updates) gets the "
               "full d/nnz-order speedup — the\nregime of paper-scale "
               "WIKI (d=7047, ~200 nnz) and RAIL (d=2586, ~9 nnz).\n";
  return all_identical ? 0 : 1;
}
