// Ablation: SWR's shared-row storage (DESIGN.md §3). The paper counts
// every candidate entry as a stored row (each of the ell samplers owns its
// queue); our implementation shares the actual row payloads across
// samplers with shared_ptr. This sweep shows the candidate-entry count
// (the paper's accounting) against the number of distinct rows actually
// materialized — the memory the sharing saves.
//
//   ./ablate_swr_shared_rows [--rows=40000] [--window=4000]
#include <iostream>

#include "core/swr.h"
#include "data/synthetic.h"
#include "eval/report.h"
#include "util/flags.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 40000));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 4000));

  PrintBanner(std::cout, "Ablation: SWR candidate entries vs distinct rows");
  Table table({"ell", "candidate_entries(paper)", "distinct_rows(ours)",
               "sharing_factor"});
  for (size_t ell : {8, 16, 32, 64, 128}) {
    SyntheticStream stream(SyntheticStream::Options{
        .rows = rows, .dim = 100, .signal_dim = 20, .window = window});
    SwrSketch sketch(stream.dim(), WindowSpec::Sequence(window),
                     SwrSketch::Options{.ell = ell, .seed = 3});
    size_t max_entries = 0, max_unique = 0;
    size_t i = 0;
    while (auto row = stream.Next()) {
      sketch.Update(row->view(), row->ts);
      if (++i % 500 == 0) {
        max_entries = std::max(max_entries, sketch.RowsStored());
        max_unique = std::max(max_unique, sketch.UniqueRowsStored());
      }
    }
    table.AddRow({Table::Int(static_cast<long long>(ell)),
                  Table::Int(static_cast<long long>(max_entries)),
                  Table::Int(static_cast<long long>(max_unique)),
                  Table::Num(static_cast<double>(max_entries) /
                             static_cast<double>(std::max<size_t>(1,
                                                                  max_unique)))});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: candidate entries grow ~ ell log(NR) (Lemma "
               "5.1) while the\ndistinct rows grow sublinearly in ell — "
               "sharing wins as ell grows.\n";
  return 0;
}
