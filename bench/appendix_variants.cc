// Appendix A reproduction: the LM/DI instantiations with hashing and
// random projection (LM-HASH, DI-RP, DI-HASH, Corollaries A.1-A.3),
// compared against LM-FD / DI-FD on the BIBD workload.
//
//   ./appendix_variants [--scale=smoke|paper] [--ells=32,64]
#include <iostream>

#include "bench_util.h"
#include "eval/report.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto scale = bench::ScaleFromFlags(flags);
  bench::Workload workload = bench::MakeBibd(scale);

  bench::SweepOptions options;
  options.algorithms = {"lm-fd", "lm-hash", "di-fd", "di-rp", "di-hash"};
  options.ells = flags.Has("ells") ? bench::SweepSizes(flags)
                                   : std::vector<size_t>{32, 64, 128};
  options.num_checkpoints = 5;
  auto points = bench::RunSweep(workload, options);

  PrintBanner(std::cout,
              "Appendix A: LM/DI variants (hashing, random projection)");
  std::cout << "dataset=" << workload.name << " n=" << workload.rows
            << " d=" << workload.dim << "\n";
  Table table({"algorithm", "ell", "max_sketch_rows", "avg_err", "max_err",
               "update_ns"});
  for (const auto& p : points) {
    table.AddRow({p.algorithm, Table::Int(static_cast<long long>(p.ell)),
                  Table::Int(static_cast<long long>(p.result.max_rows_stored)),
                  Table::Num(p.result.avg_err), Table::Num(p.result.max_err),
                  Table::Num(p.result.avg_update_ns)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (Corollaries A.1-A.3): hashing updates are the "
               "cheapest per\nrow; FD variants give the best error per stored "
               "row; RP/HASH need many\nmore rows for comparable error.\n";
  return 0;
}
