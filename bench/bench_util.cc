#include "bench_util.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>

#include "data/bibd.h"
#include "data/pamap.h"
#include "data/rail.h"
#include "data/synthetic.h"
#include "data/wiki.h"
#include "distributed/sharded_sketch.h"
#include "eval/report.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {
namespace bench {

namespace {

// Mean squared norm over a stream prefix (block-capacity calibration).
double ProbeAvgNormSq(DatasetStream* stream, size_t sample = 2000) {
  double sum = 0.0;
  size_t n = 0;
  while (n < sample) {
    auto row = stream->Next();
    if (!row) break;
    sum += row->NormSq();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 1.0;
}

}  // namespace

Scale ScaleFromFlags(const Flags& flags) {
  const std::string s = flags.GetString("scale", "smoke");
  if (s == "paper") return Scale::kPaper;
  return Scale::kSmoke;
}

Workload MakeSynthetic(Scale scale) {
  const bool paper = scale == Scale::kPaper;
  SyntheticStream::Options opt;
  opt.rows = paper ? 1000000 : 30000;
  opt.dim = paper ? 300 : 150;
  opt.signal_dim = paper ? 50 : 30;
  opt.window = paper ? 10000 : 3000;
  Workload w;
  w.name = "SYNTHETIC";
  w.rows = opt.rows;
  w.dim = opt.dim;
  w.window = WindowSpec::Sequence(opt.window);
  w.make_stream = [opt] { return std::make_unique<SyntheticStream>(opt); };
  SyntheticStream probe(opt);
  w.max_norm_sq = probe.info().max_norm_sq;
  w.norm_ratio = probe.info().norm_ratio_hint;
  SyntheticStream probe2(opt);
  w.avg_norm_sq = ProbeAvgNormSq(&probe2);
  return w;
}

Workload MakeBibd(Scale scale) {
  const bool paper = scale == Scale::kPaper;
  BibdStream::Options opt;
  opt.rows = paper ? 319770 : 30000;
  opt.dim = 231;
  opt.row_weight = 28;
  opt.window = paper ? 10000 : 3000;
  Workload w;
  w.name = "BIBD";
  w.rows = opt.rows;
  w.dim = opt.dim;
  w.window = WindowSpec::Sequence(opt.window);
  w.make_stream = [opt] { return std::make_unique<BibdStream>(opt); };
  w.max_norm_sq = 28.0;
  w.norm_ratio = 1.0;
  w.avg_norm_sq = 28.0;
  return w;
}

Workload MakePamap(Scale scale) {
  const bool paper = scale == Scale::kPaper;
  PamapStream::Options opt;
  opt.rows = paper ? 198000 : 60000;
  opt.dim = 35;
  opt.window = paper ? 10000 : 6000;
  Workload w;
  w.name = "PAMAP";
  w.rows = opt.rows;
  w.dim = opt.dim;
  w.window = WindowSpec::Sequence(opt.window);
  w.make_stream = [opt] { return std::make_unique<PamapStream>(opt); };
  PamapStream probe(opt);
  w.max_norm_sq = probe.info().max_norm_sq;
  w.norm_ratio = probe.info().norm_ratio_hint;
  PamapStream probe2(opt);
  w.avg_norm_sq = ProbeAvgNormSq(&probe2);
  return w;
}

Workload MakeWiki(Scale scale) {
  const bool paper = scale == Scale::kPaper;
  WikiStream::Options opt;
  opt.rows = paper ? 68000 : 20000;
  opt.dim = paper ? 1000 : 300;
  opt.nnz_min = paper ? 50 : 20;
  opt.nnz_max = paper ? 250 : 80;
  opt.span = 2000.0;
  opt.window = paper ? 578.0 : 100.0;
  Workload w;
  w.name = "WIKI";
  w.rows = opt.rows;
  w.dim = opt.dim;
  w.window = WindowSpec::Time(opt.window);
  w.make_stream = [opt] { return std::make_unique<WikiStream>(opt); };
  WikiStream probe(opt);
  w.max_norm_sq = probe.info().max_norm_sq;
  w.norm_ratio = probe.info().norm_ratio_hint;
  WikiStream probe2(opt);
  w.avg_norm_sq = ProbeAvgNormSq(&probe2);
  return w;
}

Workload MakeRail(Scale scale) {
  const bool paper = scale == Scale::kPaper;
  RailStream::Options opt;
  opt.rows = paper ? 300000 : 60000;
  opt.dim = paper ? 400 : 200;
  opt.mean_interarrival = 0.5;
  opt.window = paper ? 5000.0 : 1500.0;
  Workload w;
  w.name = "RAIL";
  w.rows = opt.rows;
  w.dim = opt.dim;
  w.window = WindowSpec::Time(opt.window);
  w.make_stream = [opt] { return std::make_unique<RailStream>(opt); };
  RailStream probe(opt);
  w.max_norm_sq = probe.info().max_norm_sq;
  w.norm_ratio = probe.info().norm_ratio_hint;
  RailStream probe2(opt);
  w.avg_norm_sq = ProbeAvgNormSq(&probe2);
  return w;
}

namespace {

// DI level count L ~ log2(R / eps) with R the NORM RATIO (rows normalized
// to [1, R], Section 4 remark) and eps ~ 2 / ell (Section 7.3), capped to
// keep level-1 blocks non-degenerate. Large ratios blow L up — exactly the
// regime where the paper finds DI-FD uncompetitive (PAMAP).
size_t DiLevels(double norm_ratio, size_t ell) {
  const double l = std::log2(std::max(2.0, norm_ratio *
                                               static_cast<double>(ell) / 2.0));
  return std::clamp<size_t>(static_cast<size_t>(std::lround(l)), 2, 12);
}

}  // namespace

std::vector<SweepPoint> RunSweep(const Workload& workload,
                                 const SweepOptions& options) {
  // One cell per ell: all algorithms of that ell share a single stream
  // pass and one exact-window evaluation. Cells are independent (each
  // builds its own sketches and stream from the deterministic per-config
  // seed), so they fan out to the pool; cell results land in per-ell slots
  // and are concatenated in ell order, making the output independent of
  // scheduling.
  std::vector<std::vector<SweepPoint>> cells(options.ells.size());
  const auto run_cell = [&](size_t cell) {
    const size_t ell = options.ells[cell];
    std::vector<std::unique_ptr<SlidingWindowSketch>> sketches;
    std::vector<std::string> algos;
    for (const std::string& algo : options.algorithms) {
      SketchConfig config;
      config.algorithm = algo;
      config.ell = ell;
      config.max_norm_sq = workload.max_norm_sq;
      config.levels = DiLevels(workload.norm_ratio, ell);
      // LM block capacity: about ell rows' worth of mass (see factory.h).
      config.lm_block_capacity =
          static_cast<double>(ell) * workload.avg_norm_sq;
      config.fd_buffer_factor = options.fd_buffer_factor;
      config.ds_snapshots_per_window = options.ds_snapshots_per_window;
      config.ds_snapshot_trunc = options.ds_snapshot_trunc;
      config.ds_frame_ell_factor = options.ds_frame_ell_factor;
      config.ds_fd_buffer_factor = options.ds_fd_buffer_factor;
      config.seed = options.seed;
      if (options.shards > 1) {
        ShardedSketch::Options sopt;
        sopt.shards = options.shards;
        sopt.block_rows = options.shard_block_rows;
        auto r = ShardedSketch::Make(workload.dim, workload.window, config,
                                     sopt);
        if (!r.ok()) continue;  // e.g. DI on a time window.
        sketches.push_back(r.take());
      } else {
        auto r = MakeSlidingWindowSketch(workload.dim, workload.window,
                                         config);
        if (!r.ok()) continue;  // e.g. DI on a time window.
        sketches.push_back(r.take());
      }
      algos.push_back(algo);
    }
    if (sketches.empty()) return;

    std::vector<SlidingWindowSketch*> ptrs;
    for (auto& s : sketches) ptrs.push_back(s.get());
    auto stream = workload.make_stream();
    HarnessOptions hopt;
    hopt.num_checkpoints = options.num_checkpoints;
    hopt.total_rows = workload.rows;
    hopt.measure_update_time = options.measure_time;
    hopt.best_k = options.with_best ? ell : 0;
    hopt.batch_rows = options.batch_rows;
    hopt.parallel_ingest = options.parallel_ingest;
    hopt.query_every = options.query_every;
    auto results = RunMany(stream.get(), ptrs, hopt);

    for (size_t i = 0; i < results.size(); ++i) {
      SweepPoint p;
      p.algorithm = algos[i];
      p.ell = ell;
      p.result = results[i];
      p.best_err_avg = results[i].avg_best_err;
      p.best_err_max = results[i].max_best_err;
      cells[cell].push_back(std::move(p));
    }
  };
  if (options.parallel_cells) {
    ParallelFor(options.ells.size(), run_cell, {.grain = 1});
  } else {
    for (size_t cell = 0; cell < options.ells.size(); ++cell) run_cell(cell);
  }

  std::vector<SweepPoint> points;
  for (auto& cell : cells) {
    for (auto& p : cell) points.push_back(std::move(p));
  }
  return points;
}

namespace {

bool g_csv_output = false;
bool g_json_output = true;

// "Figure 3(a): SYNTHETIC" -> "figure_3_a_synthetic".
std::string Slugify(const std::string& title) {
  std::string slug;
  bool pending_sep = false;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !slug.empty()) slug.push_back('_');
      pending_sep = false;
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_sep = true;
    }
  }
  return slug.empty() ? "figure" : slug;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// One JSON file per figure: workload metadata plus one record per sweep
// cell, so successive revisions can diff perf/accuracy mechanically.
void WriteBenchJson(const std::string& title, const Workload& workload,
                    const std::vector<SweepPoint>& points, Metric metric) {
  const std::string path = "BENCH_" + Slugify(title) + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  const char* metric_name = metric == Metric::kAvgErr   ? "avg_err"
                            : metric == Metric::kMaxErr ? "max_err"
                                                        : "update_ns";
  out << "{\n  \"figure\": ";
  JsonEscape(out, title);
  out << ",\n  \"metric\": \"" << metric_name << "\",\n  \"dataset\": ";
  JsonEscape(out, workload.name);
  out << ",\n  \"n\": " << workload.rows << ",\n  \"d\": " << workload.dim
      << ",\n  \"window\": ";
  JsonEscape(out, workload.window.ToString());
  out << ",\n  \"cells\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": ";
    JsonEscape(out, p.algorithm);
    out << ", \"ell\": " << p.ell
        << ", \"avg_err\": " << p.result.avg_err
        << ", \"max_err\": " << p.result.max_err
        << ", \"update_ns\": " << p.result.avg_update_ns
        << ", \"max_rows_stored\": " << p.result.max_rows_stored
        << ", \"best_err_avg\": " << p.best_err_avg
        << ", \"best_err_max\": " << p.best_err_max
        << ", \"zero_err_avg\": " << p.result.avg_zero_err
        << ", \"rows_processed\": " << p.result.rows_processed << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

}  // namespace

void SetCsvOutput(bool enabled) { g_csv_output = enabled; }

void SetJsonOutput(bool enabled) { g_json_output = enabled; }

void PrintFigure(const std::string& title, const Workload& workload,
                 const std::vector<SweepPoint>& points, Metric metric) {
  PrintBanner(std::cout, title);
  std::cout << "dataset=" << workload.name << " n=" << workload.rows
            << " d=" << workload.dim << " window=" << workload.window.ToString()
            << "\n";
  const char* metric_name = metric == Metric::kAvgErr   ? "avg_err"
                            : metric == Metric::kMaxErr ? "max_err"
                                                        : "update_ns";
  Table table({"algorithm", "ell", "max_sketch_rows", metric_name});
  for (const auto& p : points) {
    double value = 0.0;
    switch (metric) {
      case Metric::kAvgErr: value = p.result.avg_err; break;
      case Metric::kMaxErr: value = p.result.max_err; break;
      case Metric::kUpdateNs: value = p.result.avg_update_ns; break;
    }
    table.AddRow({p.algorithm, Table::Int(static_cast<long long>(p.ell)),
                  Table::Int(static_cast<long long>(p.result.max_rows_stored)),
                  Table::Num(value)});
  }
  // BEST(offline) series (size = k = ell) and the B = 0 floor (Section
  // 8.1 observation (5)), when computed.
  if (metric != Metric::kUpdateNs) {
    std::set<size_t> seen;
    double zero_err = 0.0;
    for (const auto& p : points) {
      zero_err = std::max(zero_err, p.result.avg_zero_err);
      if ((p.best_err_avg > 0.0 || p.best_err_max > 0.0) &&
          seen.insert(p.ell).second) {
        table.AddRow({"BEST(offline)",
                      Table::Int(static_cast<long long>(p.ell)),
                      Table::Int(static_cast<long long>(p.ell)),
                      Table::Num(metric == Metric::kAvgErr ? p.best_err_avg
                                                           : p.best_err_max)});
      }
    }
    if (zero_err > 0.0) {
      table.AddRow({"ZERO(B=0)", "-", "0", Table::Num(zero_err)});
    }
  }
  table.Print(std::cout);
  if (g_csv_output) {
    std::cout << "-- csv --\n";
    table.PrintCsv(std::cout);
  }
  if (g_json_output) WriteBenchJson(title, workload, points, metric);
}

std::vector<size_t> SweepSizes(const Flags& flags) {
  if (flags.Has("ells")) {
    std::vector<size_t> out;
    const std::string spec = flags.GetString("ells", "");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      out.push_back(static_cast<size_t>(
          std::strtoull(spec.substr(pos, comma - pos).c_str(), nullptr, 10)));
      pos = comma + 1;
    }
    return out;
  }
  return ScaleFromFlags(flags) == Scale::kPaper
             ? std::vector<size_t>{16, 32, 64, 128, 256}
             : std::vector<size_t>{8, 16, 32, 64};
}

void MaybeWriteMetrics(const Flags& flags) {
  if (!flags.Has("metrics_out")) return;
  const std::string path = flags.GetString("metrics_out", "");
  if (path.empty()) return;
  const MetricsRegistry& registry = MetricsRegistry::Global();
  std::ofstream json_out(path);
  if (!json_out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  json_out << registry.Export(MetricsRegistry::ExportFormat::kJson);
  const std::string prom_path = path + ".prom";
  std::ofstream prom_out(prom_path);
  if (!prom_out) {
    std::cerr << "warning: cannot write " << prom_path << "\n";
    return;
  }
  prom_out << registry.Export(MetricsRegistry::ExportFormat::kPrometheus);
  std::cout << "(wrote " << path << " and " << prom_path << ")\n";
}

void RunSequenceFigure(Metric metric, const Flags& flags,
                       const std::string& figure_name) {
  SetCsvOutput(flags.GetBool("csv", false));
  SetJsonOutput(flags.GetBool("json", true));
  const Scale scale = ScaleFromFlags(flags);
  SweepOptions options;
  options.algorithms = {"swr", "swor", "swor-all", "lm-fd", "ds-fd", "di-fd"};
  options.ells = SweepSizes(flags);
  // Update-cost figures skip the expensive exact-window error evaluation.
  options.num_checkpoints = static_cast<size_t>(
      flags.GetInt("checkpoints", metric == Metric::kUpdateNs ? 2 : 6));
  options.with_best = metric != Metric::kUpdateNs;
  options.measure_time = true;
  // Concurrent cells would contend for cores and skew per-row timings.
  options.parallel_cells = metric != Metric::kUpdateNs;
  options.fd_buffer_factor = flags.GetDouble("fd_buffer", 1.0);
  options.ds_snapshots_per_window = static_cast<size_t>(
      std::max<long long>(0, flags.GetInt("ds_snapshots", 0)));
  options.ds_snapshot_trunc = flags.GetDouble("ds_trunc", 0.25);
  options.ds_frame_ell_factor =
      std::max(1.0, flags.GetDouble("ds_frame_ell", 1.5));
  options.ds_fd_buffer_factor =
      std::max(1.0, flags.GetDouble("ds_fd_buffer", 3.0));
  options.batch_rows =
      static_cast<size_t>(std::max<long long>(1, flags.GetInt("batch", 1)));
  options.parallel_ingest = flags.GetBool("parallel_ingest", false);
  options.query_every = static_cast<size_t>(
      std::max<long long>(0, flags.GetInt("query_every", 0)));
  options.shards = static_cast<size_t>(
      std::max<long long>(1, flags.GetInt("shards", 1)));
  options.shard_block_rows = static_cast<size_t>(
      std::max<long long>(1, flags.GetInt("shard_block", 256)));
  // Sharded cells own S writer threads each; concurrent cells on top of
  // that would oversubscribe every core and skew timings.
  if (options.shards > 1) options.parallel_cells = false;

  const std::string only = flags.GetString("dataset", "all");
  std::vector<Workload> workloads;
  if (only == "all" || only == "synthetic") workloads.push_back(MakeSynthetic(scale));
  if (only == "all" || only == "bibd") workloads.push_back(MakeBibd(scale));
  if (only == "all" || only == "pamap") workloads.push_back(MakePamap(scale));

  const char* panel = "abc";
  for (size_t i = 0; i < workloads.size(); ++i) {
    auto points = RunSweep(workloads[i], options);
    PrintFigure(figure_name + "(" + std::string(1, panel[i % 3]) + "): " +
                    workloads[i].name,
                workloads[i], points, metric);
  }
  MaybeWriteMetrics(flags);
}

void RunTimeFigure(Metric metric, const Flags& flags,
                   const std::string& figure_name) {
  SetCsvOutput(flags.GetBool("csv", false));
  SetJsonOutput(flags.GetBool("json", true));
  const Scale scale = ScaleFromFlags(flags);
  SweepOptions options;
  options.algorithms = {"swr", "swor", "lm-fd", "ds-fd"};
  options.ells = SweepSizes(flags);
  options.num_checkpoints = static_cast<size_t>(
      flags.GetInt("checkpoints", metric == Metric::kUpdateNs ? 2 : 6));
  options.with_best = metric != Metric::kUpdateNs;
  options.parallel_cells = metric != Metric::kUpdateNs;
  options.fd_buffer_factor = flags.GetDouble("fd_buffer", 1.0);
  options.ds_snapshots_per_window = static_cast<size_t>(
      std::max<long long>(0, flags.GetInt("ds_snapshots", 0)));
  options.ds_snapshot_trunc = flags.GetDouble("ds_trunc", 0.25);
  options.ds_frame_ell_factor =
      std::max(1.0, flags.GetDouble("ds_frame_ell", 1.5));
  options.ds_fd_buffer_factor =
      std::max(1.0, flags.GetDouble("ds_fd_buffer", 3.0));
  options.batch_rows =
      static_cast<size_t>(std::max<long long>(1, flags.GetInt("batch", 1)));
  options.parallel_ingest = flags.GetBool("parallel_ingest", false);
  options.query_every = static_cast<size_t>(
      std::max<long long>(0, flags.GetInt("query_every", 0)));
  options.shards = static_cast<size_t>(
      std::max<long long>(1, flags.GetInt("shards", 1)));
  options.shard_block_rows = static_cast<size_t>(
      std::max<long long>(1, flags.GetInt("shard_block", 256)));
  if (options.shards > 1) options.parallel_cells = false;

  const std::string only = flags.GetString("dataset", "all");
  std::vector<Workload> workloads;
  if (only == "all" || only == "wiki") workloads.push_back(MakeWiki(scale));
  if (only == "all" || only == "rail") workloads.push_back(MakeRail(scale));

  const char* panel = "ab";
  for (size_t i = 0; i < workloads.size(); ++i) {
    auto points = RunSweep(workloads[i], options);
    PrintFigure(figure_name + "(" + std::string(1, panel[i % 2]) + "): " +
                    workloads[i].name,
                workloads[i], points, metric);
  }
  MaybeWriteMetrics(flags);
}

}  // namespace bench
}  // namespace swsketch
