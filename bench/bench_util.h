// Shared machinery for the experiment drivers: dataset construction at
// "smoke" (default, minutes) or "paper" scale, algorithm sweeps, and
// figure-series printing. Every figure binary is a thin wrapper over
// RunSweep + a metric column selection.
#ifndef SWSKETCH_BENCH_BENCH_UTIL_H_
#define SWSKETCH_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "data/generators.h"
#include "eval/harness.h"
#include "util/flags.h"

namespace swsketch {
namespace bench {

/// Experiment scale. Smoke keeps every binary in the seconds-to-a-minute
/// range; paper approaches the paper's dataset sizes (documented per
/// dataset in EXPERIMENTS.md).
enum class Scale { kSmoke, kPaper };

Scale ScaleFromFlags(const Flags& flags);

/// Factory returning a fresh identical stream (sweeps consume one stream
/// per pass).
using StreamFactory = std::function<std::unique_ptr<DatasetStream>()>;

/// A dataset prepared for sweeping.
struct Workload {
  std::string name;
  StreamFactory make_stream;
  size_t rows = 0;
  size_t dim = 0;
  WindowSpec window = WindowSpec::Sequence(1);
  double max_norm_sq = 1.0;  // Absolute squared-norm bound (block capacity).
  /// Norm ratio R = max/min squared norm — the paper's Table 2/3 "R"; the
  /// quantity the DI level count depends on (rows are assumed normalized
  /// to [1, R]).
  double norm_ratio = 1.0;
  /// Typical (mean) squared row norm, probed from a stream prefix; used to
  /// express the LM block capacity in "about ell rows" of mass.
  double avg_norm_sq = 1.0;
};

/// The five sequence-window workloads / two time-window workloads used by
/// the paper's evaluation, at the requested scale.
Workload MakeSynthetic(Scale scale);
Workload MakeBibd(Scale scale);
Workload MakePamap(Scale scale);
Workload MakeWiki(Scale scale);
Workload MakeRail(Scale scale);

/// One sweep measurement: an algorithm at a size parameter.
struct SweepPoint {
  std::string algorithm;
  size_t ell = 0;
  HarnessResult result;
  double best_err_avg = 0.0;  // BEST(offline) reference at k = ell.
  double best_err_max = 0.0;
};

struct SweepOptions {
  std::vector<std::string> algorithms;
  std::vector<size_t> ells;
  size_t num_checkpoints = 6;
  bool with_best = false;     // Also compute BEST(offline) at k = ell.
  bool measure_time = true;
  uint64_t seed = 1;
  /// Run sweep cells (one stream pass per ell) concurrently on the thread
  /// pool. Results are assembled in deterministic (ell, algorithm) order
  /// regardless of completion order. Leave false for update-cost figures:
  /// concurrent cells contend for cores and would inflate per-row timings.
  bool parallel_cells = true;
  /// FD amortized-shrink buffer factor forwarded to lm-fd / di-fd cells.
  double fd_buffer_factor = 1.0;
  /// DS-FD snapshot ladder density and spectral truncation forwarded to
  /// ds-fd cells (bench flags --ds_snapshots / --ds_trunc /
  /// --ds_frame_ell).
  size_t ds_snapshots_per_window = 0;  // 0 = auto (max(8, 3*ell/8)).
  double ds_snapshot_trunc = 0.25;
  double ds_frame_ell_factor = 1.5;
  double ds_fd_buffer_factor = 3.0;
  /// Rows per UpdateBatch call in the harness (HarnessOptions::batch_rows);
  /// 1 keeps the legacy per-row ingest (bench flag --batch).
  size_t batch_rows = 1;
  /// Ingest each block with one pool task per sketch
  /// (HarnessOptions::parallel_ingest); needs batch_rows > 1.
  bool parallel_ingest = false;
  /// Issue an untimed Query() per sketch every N ingested rows
  /// (HarnessOptions::query_every; bench flag --query_every, 0 = off).
  /// Stresses the query cache on figure runs without changing any
  /// reported column.
  size_t query_every = 0;
  /// Wrap every sketch in a ShardedSketch with this many single-writer
  /// shards (bench flag --shards; 1 = plain unsharded sketches). Each cell
  /// then runs S writer threads per sketch, so combine with
  /// parallel_cells = false to avoid oversubscription.
  size_t shards = 1;
  /// Rows per sharded hand-off block (--shard_block; ShardedSketch
  /// Options::block_rows). Only read when shards > 1.
  size_t shard_block_rows = 256;
};

/// Runs every algorithm at every ell over the workload. One stream pass
/// per ell (all algorithms of that ell run simultaneously and share the
/// exact-window evaluation); passes run concurrently when
/// options.parallel_cells is set.
std::vector<SweepPoint> RunSweep(const Workload& workload,
                                 const SweepOptions& options);

/// Prints the classic figure table: one row per sweep point with the
/// chosen metric columns.
enum class Metric { kAvgErr, kMaxErr, kUpdateNs };

/// When true (bench flag --csv), PrintFigure also emits machine-readable
/// CSV after each table.
void SetCsvOutput(bool enabled);

/// When true (default; bench flag --json=0 disables), PrintFigure also
/// writes BENCH_<slug>.json next to the working directory with one record
/// per sweep cell (update ns, errors, rows stored), so successive PRs can
/// track the perf/accuracy trajectory mechanically.
void SetJsonOutput(bool enabled);

void PrintFigure(const std::string& title, const Workload& workload,
                 const std::vector<SweepPoint>& points, Metric metric);

/// Driver for Figures 3 / 4 / 5: the six sequence-window algorithms swept
/// over sketch sizes on SYNTHETIC / BIBD / PAMAP. `figure_name` names the
/// banner ("Figure 3"), `metric` selects the reported column.
void RunSequenceFigure(Metric metric, const Flags& flags,
                       const std::string& figure_name);

/// Driver for Figures 7 / 8 / 9: SWR / SWOR / LM-FD on the time-window
/// workloads WIKI / RAIL.
void RunTimeFigure(Metric metric, const Flags& flags,
                   const std::string& figure_name);

/// Sweep sizes at the current scale ({8..64} smoke, {16..256} paper),
/// overridable with --ells=a,b,c.
std::vector<size_t> SweepSizes(const Flags& flags);

/// --metrics_out=FILE support: dumps the global MetricsRegistry as JSON to
/// FILE and as Prometheus text to FILE + ".prom". No-op without the flag.
/// Called automatically at the end of RunSequenceFigure / RunTimeFigure;
/// exposed for drivers with their own main loop.
void MaybeWriteMetrics(const Flags& flags);

}  // namespace bench
}  // namespace swsketch

#endif  // SWSKETCH_BENCH_BENCH_UTIL_H_
