// Figure 3 reproduction: average covariance error vs. maximum sketch size
// on sequence-based sliding windows (panels: SYNTHETIC, BIBD, PAMAP).
//
//   ./fig3_seq_avg_err [--scale=smoke|paper] [--dataset=all|synthetic|bibd|
//                       pamap] [--ells=8,16,32] [--checkpoints=6]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunSequenceFigure(swsketch::bench::Metric::kAvgErr, flags,
                                     "Figure 3 avg err vs sketch size ");
  return 0;
}
