// Figure 4 reproduction: maximum covariance error vs. maximum sketch size
// on sequence-based sliding windows (panels: SYNTHETIC, BIBD, PAMAP).
//
//   ./fig4_seq_max_err [--scale=smoke|paper] [--dataset=...] [--ells=...]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunSequenceFigure(swsketch::bench::Metric::kMaxErr, flags,
                                     "Figure 4 max err vs sketch size ");
  return 0;
}
