// Figure 5 reproduction: per-row update cost vs. maximum sketch size on
// sequence-based sliding windows (panels: SYNTHETIC, BIBD, PAMAP).
//
//   ./fig5_seq_update_cost [--scale=smoke|paper] [--dataset=...]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunSequenceFigure(swsketch::bench::Metric::kUpdateNs, flags,
                                     "Figure 5 update cost vs sketch size ");
  return 0;
}
