// Figure 6 reproduction: offline SWR vs SWOR covariance error as a
// function of the number of sampled rows, on the skewed PAMAP window the
// paper dissects (rows 125k-135k there; the generator plants the analogous
// window). The paper's counter-intuitive finding: SWOR's error INCREASES
// with the sample size once it must include tiny rows and rescale them up.
//
//   ./fig6_offline_sampling [--scale=smoke|paper] [--reps=20]
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "data/pamap.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "sketch/priority_sampler.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool paper = bench::ScaleFromFlags(flags) == bench::Scale::kPaper;
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 20));

  PamapStream::Options opt;
  opt.rows = paper ? 198000 : 60000;
  opt.window = paper ? 10000 : 6000;
  PamapStream stream(opt);
  const size_t begin = stream.skewed_window_begin();

  // Materialize exactly the skewed window.
  Matrix window(0, stream.dim());
  size_t idx = 0;
  while (auto row = stream.Next()) {
    if (idx >= begin && idx < begin + opt.window) window.AppendRow(row->view());
    ++idx;
  }

  const Matrix gram = window.Gram();
  const double frob_sq = window.FrobeniusNormSq();

  PrintBanner(std::cout, "Figure 6: offline SWR vs SWOR on the skewed PAMAP "
                         "window");
  std::cout << "window rows " << window.rows() << " (stream rows " << begin
            << ".." << begin + opt.window << "), d=" << window.cols() << "\n";
  Table table({"sampled_rows", "SWR_err", "SWOR_err"});
  Rng rng(77);
  for (size_t ell : {10, 20, 30, 40, 50, 60, 80, 100}) {
    double swr = 0.0, swor = 0.0;
    for (size_t r = 0; r < reps; ++r) {
      swr += CovarianceError(
          gram, frob_sq,
          SampleRowsOffline(window, ell, /*with_replacement=*/true, &rng));
      swor += CovarianceError(
          gram, frob_sq,
          SampleRowsOffline(window, ell, /*with_replacement=*/false, &rng));
    }
    table.AddRow({Table::Int(static_cast<long long>(ell)),
                  Table::Num(swr / static_cast<double>(reps)),
                  Table::Num(swor / static_cast<double>(reps))});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 6): SWR decreases with more "
               "samples;\nSWOR increases once ell exceeds the number of "
               "huge-norm rows.\n";
  return 0;
}
