// Figure 7 reproduction: average covariance error vs. maximum sketch size
// on time-based sliding windows (panels: WIKI, RAIL).
//
//   ./fig7_time_avg_err [--scale=smoke|paper] [--dataset=all|wiki|rail]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunTimeFigure(swsketch::bench::Metric::kAvgErr, flags,
                                 "Figure 7 avg err vs sketch size ");
  return 0;
}
