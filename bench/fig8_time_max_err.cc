// Figure 8 reproduction: maximum covariance error vs. maximum sketch size
// on time-based sliding windows (panels: WIKI, RAIL).
//
//   ./fig8_time_max_err [--scale=smoke|paper] [--dataset=all|wiki|rail]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunTimeFigure(swsketch::bench::Metric::kMaxErr, flags,
                                 "Figure 8 max err vs sketch size ");
  return 0;
}
