// Figure 9 reproduction: per-row update cost vs. sketch size on time-based
// sliding windows (panels: WIKI, RAIL).
//
//   ./fig9_time_update_cost [--scale=smoke|paper] [--dataset=all|wiki|rail]
#include "bench_util.h"

int main(int argc, char** argv) {
  swsketch::Flags flags(argc, argv);
  swsketch::bench::RunTimeFigure(swsketch::bench::Metric::kUpdateNs, flags,
                                 "Figure 9 update cost vs sketch size ");
  return 0;
}
