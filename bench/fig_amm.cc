// Figure AMM: sliding-window approximate matrix multiplication error
// vs. sketch size on the SYNTHETIC paired Gaussian stream.
//
// Two correlated operand streams (a_t in R^da, b_t in R^db sharing a
// latent factor) are fed pairwise into every AMM backend; at evenly
// spaced checkpoints the estimate is compared against the exact window
// product A_W^T B_W (dual-WindowBuffer reference) with the normalized
// spectral metric ||A^T B - est||_2 / (||A||_F ||B||_F) of eval/amm_err.h.
//
// Smoke gates (fatal, exit 1): the exact backend must sit at zero error
// at every checkpoint, and every approximate backend must stay inside
// its envelope at every swept ell. For amm-co-fd / amm-lm-fd that is the
// co-sketch bound (fa^2 + fb^2) / (ell * fa * fb) with a constant-factor
// slack. amm-di-fd's error is governed by its dyadic cover granularity,
// not ell (the covariance figures show the same flat curve — the paper's
// "DI-FD uncompetitive at small space" finding), so it gates against
// max(co-sketch bound, 1.25x the zero-estimate error ||A^T B||_2 /
// (||A||_F ||B||_F)): never much worse than answering zero. These run at
// every scale, so a broken estimator can never produce a pretty figure.
//
//   ./fig_amm [--rows=4000] [--da=8] [--db=16] [--window=1000]
//             [--ells=8,16,32] [--checkpoints=8] [--slack=4]
//             [--json=1]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "amm/amm_exact.h"
#include "amm/amm_sketch.h"
#include "core/factory.h"
#include "eval/amm_err.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

namespace {

struct Cell {
  std::string algorithm;
  size_t ell = 0;
  double avg_err = 0.0;
  double max_err = 0.0;
  double avg_bound = 0.0;  // Mean per-checkpoint bound (slack included).
};

std::vector<size_t> ParseElls(const std::string& csv) {
  std::vector<size_t> ells;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) ells.push_back(static_cast<size_t>(std::stoul(item)));
  }
  return ells;
}

// Paired rows with a shared latent factor so A_W^T B_W has real signal
// (pure independent noise would make the exact product itself near-zero
// and the relative metric degenerate). Pre-generated so the config can
// carry the TRUE max stacked row norm: di-fd's dyadic cover granularity
// scales with max_norm_sq, and a hint far above the actual norms would
// put an ell-independent floor under its error.
struct PairedStream {
  Matrix a;
  Matrix b;
  double max_stacked_norm_sq = 0.0;
  double min_stacked_norm_sq = 0.0;
  double avg_stacked_norm_sq = 0.0;
};

PairedStream MakePairs(size_t n, size_t da, size_t db, uint64_t seed) {
  Rng rng(seed);
  PairedStream s{Matrix(n, da), Matrix(n, db), 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    const double latent = rng.Gaussian();
    double norm_sq = 0.0;
    for (size_t j = 0; j < da; ++j) {
      s.a(i, j) = 0.6 * latent + rng.Gaussian();
      norm_sq += s.a(i, j) * s.a(i, j);
    }
    for (size_t j = 0; j < db; ++j) {
      s.b(i, j) = 0.6 * latent + rng.Gaussian();
      norm_sq += s.b(i, j) * s.b(i, j);
    }
    s.max_stacked_norm_sq = std::max(s.max_stacked_norm_sq, norm_sq);
    s.min_stacked_norm_sq = i == 0 ? norm_sq
                                   : std::min(s.min_stacked_norm_sq, norm_sq);
    s.avg_stacked_norm_sq += norm_sq / static_cast<double>(n);
  }
  return s;
}

// DI level count L ~ log2(R * ell / 2) with R the stacked norm ratio —
// the same schedule the covariance figure drivers use (bench_util.cc);
// leaving the factory default would put an ell-independent floor under
// di-fd's error.
size_t DiLevels(double norm_ratio, size_t ell) {
  const double l = std::log2(
      std::max(2.0, norm_ratio * static_cast<double>(ell) / 2.0));
  return std::clamp<size_t>(static_cast<size_t>(std::lround(l)), 2, 12);
}

void WriteCellsJson(const std::string& path, size_t rows, size_t da,
                    size_t db, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"fig_amm\",\n"
      << "  \"metric\": \"amm_err\",\n"
      << "  \"dataset\": \"SYNTH-paired\",\n"
      << "  \"n\": " << rows << ",\n  \"d\": " << (da + db) << ",\n"
      << "  \"window\": \"sequence\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"avg_err\": " << c.avg_err
        << ", \"max_err\": " << c.max_err
        << ", \"avg_bound\": " << c.avg_bound << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 4000));
  const size_t da = static_cast<size_t>(flags.GetInt("da", 8));
  const size_t db = static_cast<size_t>(flags.GetInt("db", 16));
  const uint64_t window =
      static_cast<uint64_t>(flags.GetInt("window", 1000));
  const size_t checkpoints =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("checkpoints", 8)));
  const double slack = flags.GetDouble("slack", 4.0);
  const std::vector<size_t> ells = ParseElls(flags.GetString("ells", "8,16,32"));
  const size_t d = da + db;
  const WindowSpec spec = WindowSpec::Sequence(window);
  const std::vector<std::string> algos = {"amm-exact", "amm-co-fd",
                                          "amm-lm-fd", "amm-di-fd"};
  const PairedStream stream = MakePairs(rows, da, db, 5);

  PrintBanner(std::cout, "Figure AMM: product error vs sketch size");
  Table table({"algorithm", "ell", "avg_err", "max_err", "avg_bound"});
  std::vector<Cell> cells;
  bool gate_failed = false;

  for (const size_t ell : ells) {
    for (const std::string& algo : algos) {
      SketchConfig config;
      config.algorithm = algo;
      config.ell = ell;
      config.amm_dim_a = da;
      config.max_norm_sq = stream.max_stacked_norm_sq;
      config.levels = DiLevels(
          stream.max_stacked_norm_sq / stream.min_stacked_norm_sq, ell);
      config.lm_block_capacity =
          static_cast<double>(ell) * stream.avg_stacked_norm_sq;
      config.seed = 17;
      auto made = MakeSlidingWindowSketch(d, spec, config);
      if (!made.ok()) {
        std::cerr << "FATAL: " << algo << ": " << made.status().ToString()
                  << "\n";
        return 1;
      }
      auto* amm = dynamic_cast<AmmSketch*>(made->get());
      if (amm == nullptr) {
        std::cerr << "FATAL: " << algo << " is not an AmmSketch\n";
        return 1;
      }
      AmmExact reference(da, db, spec);

      Cell cell;
      cell.algorithm = algo;
      cell.ell = ell;
      size_t checked = 0;
      const size_t every = std::max<size_t>(1, rows / checkpoints);
      for (size_t i = 0; i < rows; ++i) {
        const double t = static_cast<double>(i + 1);
        amm->UpdatePair(stream.a.Row(i), stream.b.Row(i), t);
        reference.UpdatePair(stream.a.Row(i), stream.b.Row(i), t);
        if (i % every != every - 1) continue;
        const double fa_sq = reference.buffer_a().FrobeniusNormSq();
        const double fb_sq = reference.buffer_b().FrobeniusNormSq();
        if (fa_sq <= 0.0 || fb_sq <= 0.0) continue;
        const Matrix exact = reference.QueryProduct();
        const double err = AmmError(exact, fa_sq, fb_sq, amm->QueryProduct());
        double bound = AmmErrorBound(ell, fa_sq, fb_sq, slack);
        if (algo == "amm-di-fd") {
          // Error of the trivial zero estimate (empty matrix = zero
          // convention); DI's envelope (see the header comment).
          const double zero_err = AmmError(exact, fa_sq, fb_sq, Matrix());
          bound = std::max(bound, 1.25 * zero_err);
        }
        cell.avg_err += err;
        cell.max_err = std::max(cell.max_err, err);
        cell.avg_bound += bound;
        ++checked;
        if (algo == "amm-exact" && err > 1e-12) {
          std::cerr << "FATAL: amm-exact err " << err << " != 0 at row " << i
                    << "\n";
          gate_failed = true;
        }
        if (algo != "amm-exact" && err > bound) {
          std::cerr << "FATAL: " << algo << " err " << err << " > bound "
                    << bound << " at ell=" << ell << " row=" << i << "\n";
          gate_failed = true;
        }
      }
      if (checked == 0) {
        std::cerr << "FATAL: no checkpoints evaluated for " << algo << "\n";
        return 1;
      }
      cell.avg_err /= static_cast<double>(checked);
      cell.avg_bound /= static_cast<double>(checked);
      table.AddRow({algo, std::to_string(ell), Table::Num(cell.avg_err),
                    Table::Num(cell.max_err), Table::Num(cell.avg_bound)});
      cells.push_back(cell);
    }
  }
  table.Print(std::cout);
  if (gate_failed) {
    std::cerr << "FATAL: AMM accuracy gate failed\n";
    return 1;
  }
  std::cout << "gates: amm-exact at zero error; co-fd/lm-fd inside "
            << "slack*(fa^2+fb^2)/(ell*fa*fb); di-fd additionally capped "
            << "at 1.25x the zero-estimate error\n";

  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_fig_amm.json", rows, da, db, cells);
  }
  return 0;
}
