// Operational demonstration of the paper's two lower bounds (Section 4).
//
// (a) Theorem 4.1 — exactness costs linear space: we track the rows stored
//     by the exact window tracker vs. the sketches as the window size
//     grows; exact storage tracks N, sketches stay near-flat.
//
// (b) Theorem 4.2 — unbounded norms break sublinear sketching: we feed a
//     stream whose squared norms grow geometrically (the 8^i construction
//     of the proof, capped to stay in double range) and show that a
//     fixed-space sketch's covariance error stays large, while the same
//     sketch on a bounded-norm control stream converges to small error.
//
//   ./lower_bound_demo
#include <cmath>
#include <iostream>
#include <vector>

#include "core/exact_window.h"
#include "core/factory.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "stream/window_buffer.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

namespace {

void DemoExactSpaceGrowsLinearly() {
  PrintBanner(std::cout, "Theorem 4.1 demo: exact tracking costs Theta(N) "
                         "rows, sketching stays flat");
  Table table({"window N", "EXACT rows", "LM-FD rows", "SWR rows"});
  Rng rng(1);
  for (uint64_t n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    ExactWindow exact(8, WindowSpec::Sequence(n));
    SketchConfig lm_cfg, swr_cfg;
    lm_cfg.algorithm = "lm-fd";
    lm_cfg.ell = 16;
    swr_cfg.algorithm = "swr";
    swr_cfg.ell = 16;
    auto lm = MakeSlidingWindowSketch(8, WindowSpec::Sequence(n), lm_cfg);
    auto swr = MakeSlidingWindowSketch(8, WindowSpec::Sequence(n), swr_cfg);
    for (uint64_t i = 0; i < 2 * n; ++i) {
      std::vector<double> row(8);
      for (auto& v : row) v = rng.Gaussian();
      exact.Update(row, static_cast<double>(i));
      (*lm)->Update(row, static_cast<double>(i));
      (*swr)->Update(row, static_cast<double>(i));
    }
    table.AddRow({Table::Int(static_cast<long long>(n)),
                  Table::Int(static_cast<long long>(exact.RowsStored())),
                  Table::Int(static_cast<long long>((*lm)->RowsStored())),
                  Table::Int(static_cast<long long>((*swr)->RowsStored()))});
  }
  table.Print(std::cout);
}

// Theorem 4.2's INDEX construction hides information in directions whose
// mass is geometrically smaller than the window total; recovering it needs
// per-direction accuracy 1/(8d) * ||A||_F^2, which for the light
// directions is a huge RELATIVE accuracy demand. Operationally: a window
// mixes heavy rows (squared norm R, spanning coordinates 0..d/2-1) with
// light rows (squared norm 1, spanning coordinates d/2..d-1); a
// fixed-budget sketch must answer ||A e_r||^2 for the light coordinates
// too. We measure the worst relative error of that answer as R grows.
double WorstLightDirectionError(const std::string& algo, size_t ell,
                                double ratio) {
  const size_t d = 24;
  const uint64_t window = 384;
  SketchConfig cfg;
  cfg.algorithm = algo;
  cfg.ell = ell;
  cfg.seed = 3;
  auto sketch = MakeSlidingWindowSketch(d, WindowSpec::Sequence(window), cfg);
  WindowBuffer buffer(WindowSpec::Sequence(window));
  Rng rng(2);
  for (size_t i = 0; i < 2 * window; ++i) {
    // Heavy rows (squared norm ratio) live on coordinates [0, d/2); light
    // rows (squared norm 1) on [d/2, d) — the Theorem 4.2 construction's
    // "information hidden under heavy mass".
    std::vector<double> row(d, 0.0);
    const bool heavy = i % 2 == 0;
    const size_t coord = (i / 2) % (d / 2) + (heavy ? 0 : d / 2);
    row[coord] = heavy ? std::sqrt(ratio) : 1.0;
    (*sketch)->Update(row, static_cast<double>(i));
    buffer.Add(Row(row, static_cast<double>(i)));
  }
  const Matrix gram = buffer.GramMatrix(d);
  const Matrix b = (*sketch)->Query();
  double worst = 0.0;
  for (size_t r = d / 2; r < d; ++r) {
    const double truth = gram(r, r);
    double est = 0.0;
    for (size_t i = 0; i < b.rows(); ++i) est += b(i, r) * b(i, r);
    worst = std::max(worst, std::fabs(truth - est) / truth);
  }
  return worst;
}

// Smallest sketch budget recovering every light direction to 50% relative
// accuracy, or 0 when no budget in the sweep suffices.
size_t MinBudgetForRecovery(const std::string& algo, double ratio) {
  for (size_t ell : {6u, 12u, 24u, 48u, 96u, 192u, 384u}) {
    if (WorstLightDirectionError(algo, ell, ratio) <= 0.5) return ell;
  }
  return 0;
}

void DemoUnboundedNormsBreakSketching() {
  PrintBanner(std::cout, "Theorem 4.2 demo: required space grows with the "
                         "norm ratio R");
  Table table({"norm ratio R", "LM-FD min rows", "SWR min rows"});
  for (double ratio : {1.0, 1e2, 1e4, 1e6}) {
    auto fmt = [](size_t v) {
      return v == 0 ? std::string("> 384 (failed)")
                    : Table::Int(static_cast<long long>(v));
    };
    table.AddRow({Table::Num(ratio), fmt(MinBudgetForRecovery("lm-fd", ratio)),
                  fmt(MinBudgetForRecovery("swr", ratio))});
  }
  table.Print(std::cout);
  std::cout << "\nMinimum sketch rows needed to recover every light "
               "direction's energy\n||A e_r||^2 to 50% relative accuracy "
               "(the information Theorem 4.2's\nINDEX reduction encodes "
               "under heavy mass). SWR shows the lower bound's\nbehavior "
               "directly: light rows' sampling probability vanishes as R "
               "grows,\nso no budget in the sweep recovers them. LM-FD "
               "resists in this toy only\nbecause its oversized-row rule "
               "(Section 6.2 remark) stores rows heavier\nthan a block "
               "capacity EXACTLY, quarantining the heavy mass — the exact\n"
               "storage is itself the linear-space cost the theorem "
               "predicts.\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  (void)flags;
  DemoExactSpaceGrowsLinearly();
  DemoUnboundedNormsBreakSketching();
  return 0;
}
