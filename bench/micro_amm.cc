// AMM-workload microbenchmark (DESIGN.md §10 "AMM workload"):
//
//  1. Determinism gate (fatal on violation, also pinned by
//     tests/amm_differential_test): for each backend, replaying the same
//     paired stream from scratch must reproduce the final QueryProduct()
//     byte-for-byte, and a serialize/reload twin must answer the same
//     bytes as the original.
//
//  2. Ingest cost: per-pair wall-clock cost of UpdatePair
//     (`update-<alg>`) and of the UpdatePairBatch fast path at 256-pair
//     blocks (`update-<alg>-batch`), Flush() inside the timed region.
//
//  3. Product latency: cold QueryProduct() after a one-row mutation
//     (`product-<alg>`), i.e. the estimate recompute cost.
//
// Emits BENCH_micro_amm.json in the cells format. scripts/bench_gate.sh
// diffs only the `update-*` cells against the committed baseline: ingest
// is a tight single-threaded loop and stable on any host, while the
// product-* cells are eigensolve-shaped (DS-FD) or allocation-shaped
// (exact) and too noisy at micro scale to gate.
//
//   ./micro_amm [--pairs=20000] [--da=16] [--db=48] [--ell=32]
//               [--window=4000] [--json=1]
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "amm/amm_exact.h"
#include "amm/amm_sketch.h"
#include "core/factory.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct Cell {
  std::string algorithm;  // Cell slug: update-<alg>[-batch] / product-<alg>.
  size_t ell = 0;
  double update_ns = 0.0;  // Per-pair (or per-query) cost.
  double rows_per_s = 0.0;
};

void WriteCellsJson(const std::string& path, size_t pairs, size_t d,
                    const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"micro_amm\",\n"
      << "  \"metric\": \"update_ns\",\n"
      << "  \"dataset\": \"SYNTH-paired\",\n"
      << "  \"n\": " << pairs << ",\n  \"d\": " << d << ",\n"
      << "  \"window\": \"sequence\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"update_ns\": " << c.update_ns
        << ", \"rows_per_s\": " << c.rows_per_s << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

struct PairedStream {
  Matrix a;
  Matrix b;
  std::vector<double> ts;
};

PairedStream MakePairs(size_t n, size_t da, size_t db, uint64_t seed) {
  Rng rng(seed);
  PairedStream s{Matrix(n, da), Matrix(n, db), std::vector<double>(n)};
  const double sa = 1.0 / std::sqrt(static_cast<double>(da));
  const double sb = 1.0 / std::sqrt(static_cast<double>(db));
  for (size_t i = 0; i < n; ++i) {
    const double latent = rng.Gaussian();
    for (size_t j = 0; j < da; ++j)
      s.a(i, j) = sa * (0.6 * latent + rng.Gaussian());
    for (size_t j = 0; j < db; ++j)
      s.b(i, j) = sb * (0.6 * latent + rng.Gaussian());
    s.ts[i] = static_cast<double>(i + 1);
  }
  return s;
}

SketchConfig ConfigFor(const std::string& algorithm, size_t da,
                       size_t ell) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = ell;
  config.amm_dim_a = da;
  config.max_norm_sq = 4.0;  // Rows are ~unit-norm by construction.
  config.seed = 17;
  return config;
}

std::unique_ptr<SlidingWindowSketch> Build(const SketchConfig& config,
                                           size_t d, WindowSpec spec) {
  auto made = MakeSlidingWindowSketch(d, spec, config);
  if (!made.ok()) {
    std::cerr << "FATAL: " << config.algorithm << ": "
              << made.status().ToString() << "\n";
    std::exit(1);
  }
  return made.take();
}

AmmSketch* AsAmm(SlidingWindowSketch* s, const std::string& algo) {
  auto* amm = dynamic_cast<AmmSketch*>(s);
  if (amm == nullptr) {
    std::cerr << "FATAL: " << algo << " is not an AmmSketch\n";
    std::exit(1);
  }
  return amm;
}

// Replay + reload byte-identity gates on a stream prefix; exits the
// process on any violation so the perf numbers can never paper over a
// broken estimator.
void CheckDeterminism(const SketchConfig& config, const PairedStream& s,
                      WindowSpec spec) {
  const size_t d = s.a.cols() + s.b.cols();
  const size_t n = std::min<size_t>(s.a.rows(), 4000);
  auto first_s = Build(config, d, spec);
  auto second_s = Build(config, d, spec);
  AmmSketch* first = AsAmm(first_s.get(), config.algorithm);
  AmmSketch* second = AsAmm(second_s.get(), config.algorithm);
  std::unique_ptr<SlidingWindowSketch> twin_owner;
  AmmSketch* twin = nullptr;
  for (size_t i = 0; i < n; ++i) {
    first->UpdatePair(s.a.Row(i), s.b.Row(i), s.ts[i]);
    second->UpdatePair(s.a.Row(i), s.b.Row(i), s.ts[i]);
    if (twin) twin->UpdatePair(s.a.Row(i), s.b.Row(i), s.ts[i]);
    if (i == n / 2) {
      // Mid-stream checkpoint: the reload must stay in byte lockstep
      // under continued ingest.
      ByteWriter w;
      if (!first->SerializeTo(&w).ok()) continue;
      ByteReader r(w.bytes());
      auto loaded = DeserializeSlidingWindowSketch(&r);
      if (!loaded.ok()) {
        std::cerr << "FATAL: " << config.algorithm << " reload failed\n";
        std::exit(1);
      }
      twin_owner = std::move(*loaded);
      twin = AsAmm(twin_owner.get(), config.algorithm);
    }
  }
  const Matrix p = first->QueryProduct();
  if (p.MaxAbsDiff(second->QueryProduct()) != 0.0) {
    std::cerr << "FATAL: " << config.algorithm
              << " replay bytes != original bytes\n";
    std::exit(1);
  }
  if (twin == nullptr || p.MaxAbsDiff(twin->QueryProduct()) != 0.0) {
    std::cerr << "FATAL: " << config.algorithm
              << " reloaded twin bytes != original bytes\n";
    std::exit(1);
  }
}

double TimePairIngest(AmmSketch* amm, const PairedStream& s) {
  Timer t;
  for (size_t i = 0; i < s.a.rows(); ++i) {
    amm->UpdatePair(s.a.Row(i), s.b.Row(i), s.ts[i]);
  }
  amm->Flush();
  return static_cast<double>(t.ElapsedNanos()) /
         static_cast<double>(s.a.rows());
}

double TimeBatchIngest(AmmSketch* amm, const PairedStream& s,
                       size_t block) {
  const size_t n = s.a.rows();
  Timer t;
  for (size_t start = 0; start < n; start += block) {
    const size_t m = std::min(block, n - start);
    Matrix block_a(m, s.a.cols()), block_b(m, s.b.cols());
    std::vector<double> ts(m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < s.a.cols(); ++j)
        block_a(i, j) = s.a(start + i, j);
      for (size_t j = 0; j < s.b.cols(); ++j)
        block_b(i, j) = s.b(start + i, j);
      ts[i] = s.ts[start + i];
    }
    amm->UpdatePairBatch(block_a, block_b, ts);
  }
  amm->Flush();
  return static_cast<double>(t.ElapsedNanos()) / static_cast<double>(n);
}

// Cold product latency: one fresh row invalidates the cache, then the
// estimate recompute is timed.
double TimeColdProduct(AmmSketch* amm, const PairedStream& s,
                       size_t iters) {
  Timer t;
  for (size_t i = 0; i < iters; ++i) {
    const size_t r = i % s.a.rows();
    amm->UpdatePair(s.a.Row(r), s.b.Row(r),
                    s.ts.back() + static_cast<double>(i + 1));
    const Matrix p = amm->QueryProduct();
    if (p.rows() == 0) std::exit(2);  // Unreachable; defeats DCE.
  }
  return static_cast<double>(t.ElapsedNanos()) / static_cast<double>(iters);
}

// Best-of-N with a time floor: each rep runs the full measurement on a
// fresh sketch and the min is kept. Cheap cells (amm-exact is ~100 ns x
// 20k pairs = a few ms per rep) are re-sampled until ~0.5 s of measured
// time accumulates — on a single-core box one scheduler preemption can
// pollute every rep of a 3 ms window, and the 10% bench_gate threshold
// needs run-to-run variance well under that. Expensive FD cells stop at
// the rep floor.
template <typename Fn>
double BestOf(size_t min_reps, Fn&& measure) {
  Timer total;
  double best = measure();
  size_t runs = 1;
  while (runs < min_reps ||
         (total.ElapsedNanos() < 500'000'000 && runs < 64)) {
    best = std::min(best, measure());
    ++runs;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 20000));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t da = static_cast<size_t>(flags.GetInt("da", 16));
  const size_t db = static_cast<size_t>(flags.GetInt("db", 48));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 32));
  const uint64_t window =
      static_cast<uint64_t>(flags.GetInt("window", 4000));
  const size_t d = da + db;
  const WindowSpec spec = WindowSpec::Sequence(window);
  const std::vector<std::string> algos = {"amm-exact", "amm-co-fd",
                                          "amm-lm-fd", "amm-di-fd"};

  const PairedStream stream = MakePairs(pairs, da, db, 1);
  std::vector<Cell> cells;

  PrintBanner(std::cout, "micro_amm: determinism gates");
  for (const std::string& algo : algos) {
    CheckDeterminism(ConfigFor(algo, da, ell), stream, spec);
    std::cout << algo << ": replay == original bytes, reload == original "
              << "bytes\n";
  }

  PrintBanner(std::cout, "micro_amm: ingest + product cost");
  Table table({"algorithm", "variant", "ns_per_op", "ops_per_s"});
  for (const std::string& algo : algos) {
    const SketchConfig config = ConfigFor(algo, da, ell);
    {
      const double ns = BestOf(reps, [&] {
        auto sketch = Build(config, d, spec);
        return TimePairIngest(AsAmm(sketch.get(), algo), stream);
      });
      table.AddRow({algo, "pair", Table::Num(ns), Table::Num(1e9 / ns)});
      cells.push_back({"update-" + algo, ell, ns, 1e9 / ns});
    }
    {
      const double ns = BestOf(reps, [&] {
        auto sketch = Build(config, d, spec);
        return TimeBatchIngest(AsAmm(sketch.get(), algo), stream, 256);
      });
      table.AddRow({algo, "batch", Table::Num(ns), Table::Num(1e9 / ns)});
      cells.push_back({"update-" + algo + "-batch", ell, ns, 1e9 / ns});
    }
    {
      const double ns = BestOf(reps, [&] {
        auto sketch = Build(config, d, spec);
        AmmSketch* amm = AsAmm(sketch.get(), algo);
        TimePairIngest(amm, stream);  // Warm the window first.
        return TimeColdProduct(amm, stream, 200);
      });
      table.AddRow({algo, "product", Table::Num(ns), Table::Num(1e9 / ns)});
      cells.push_back({"product-" + algo, ell, ns, 1e9 / ns});
    }
  }
  table.Print(std::cout);

  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_micro_amm.json", pairs, d, cells);
  }
  return 0;
}
