// Google-benchmark microbenchmarks for the linear-algebra substrate: the
// kernels whose cost dominates sketch updates (SVD, Gram accumulation) and
// evaluation (Lanczos spectral norm, subspace iteration).
#include <benchmark/benchmark.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/power_iteration.h"
#include "linalg/subspace_iteration.h"
#include "linalg/svd.h"
#include "linalg/tridiag_eigen.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void BM_ThinSvdWide(benchmark::State& state) {
  // The FD shrink shape: ell x d with ell << d.
  const size_t ell = static_cast<size_t>(state.range(0));
  const size_t d = 256;
  Matrix a = RandomMatrix(ell, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThinSvd(a));
  }
  state.SetComplexityN(static_cast<int64_t>(ell));
}
BENCHMARK(BM_ThinSvdWide)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_JacobiEigen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(2 * n, n, 2).Gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(JacobiEigen(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_TridiagEigen(benchmark::State& state) {
  // The large-ell FD-merge path: tridiagonalization + QL, ~10x Jacobi at
  // n >= 100.
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(2 * n, n, 2).Gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TridiagEigen(a));
  }
}
BENCHMARK(BM_TridiagEigen)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SpectralNormSymmetric(benchmark::State& state) {
  // Evaluation hot path: spectral norm of a d x d Gram difference.
  const size_t d = static_cast<size_t>(state.range(0));
  Matrix g1 = RandomMatrix(200, d, 3).Gram();
  Matrix g2 = RandomMatrix(50, d, 4).Gram();
  Matrix diff = g1.Subtract(g2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpectralNormSymmetric(diff));
  }
}
BENCHMARK(BM_SpectralNormSymmetric)->Arg(64)->Arg(150)->Arg(300);

void BM_GramAccumulate(benchmark::State& state) {
  // Exact-window evaluation: rank-1 updates into a d x d Gram.
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> row(d);
  for (auto& v : row) v = rng.Gaussian();
  Matrix g(d, d);
  for (auto _ : state) {
    g.AddOuterProduct(row);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GramAccumulate)->Arg(35)->Arg(150)->Arg(300);

void BM_TopEigenpairs(benchmark::State& state) {
  // BEST(offline) per-checkpoint cost: top-(k+1) eigenpairs of a Gram.
  const size_t k = static_cast<size_t>(state.range(0));
  Matrix g = RandomMatrix(500, 150, 6).Gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopEigenpairsPsd(g, k + 1));
  }
}
BENCHMARK(BM_TopEigenpairs)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace swsketch

BENCHMARK_MAIN();
