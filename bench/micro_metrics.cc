// Google-benchmark microbenchmarks for the metrics layer (util/metrics.h):
// the per-event cost every instrumented hot path pays. The ISSUE-5 budget
// is < 2% overhead on the micro_sketch append path, which at ~7-25 us per
// FD append means a counter bump must stay in the few-ns range. The gated
// cells (scripts/bench_gate.sh) pin that down mechanically:
//
//   BM_CounterAdd          one relaxed sharded add on a cached handle
//   BM_CounterAddContended the same add from 4 threads (shard test)
//   BM_GaugeSet            one relaxed store
//   BM_HistogramRecord     bucket index + two relaxed adds
//   BM_ScopedTimer         two steady_clock reads + one Record
//   BM_RegistryLookup      the mutex-guarded by-name lookup the cached
//                          handles exist to avoid (never on a hot path)
#include <benchmark/benchmark.h>

#include <cstdint>

#include "util/metrics.h"

namespace swsketch {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  Counter* c = MetricsRegistry::Global().GetCounter("bench.counter_add");
  for (auto _ : state) {
    c->Add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddContended(benchmark::State& state) {
  Counter* c = MetricsRegistry::Global().GetCounter("bench.counter_contended");
  for (auto _ : state) {
    c->Add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  Gauge* g = MetricsRegistry::Global().GetGauge("bench.gauge_set");
  int64_t v = 0;
  for (auto _ : state) {
    g->Set(++v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("bench.hist_record");
  uint64_t v = 1;
  for (auto _ : state) {
    h->Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32;  // Vary buckets.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimer(benchmark::State& state) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("bench.scoped_timer");
  for (auto _ : state) {
    ScopedTimer timer(h);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimer);

void BM_RegistryLookup(benchmark::State& state) {
  // Warm the slot so this measures lookup, not first-touch allocation.
  MetricsRegistry::Global().GetCounter("bench.lookup_target");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MetricsRegistry::Global().GetCounter("bench.lookup_target"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookup);

}  // namespace
}  // namespace swsketch

BENCHMARK_MAIN();
