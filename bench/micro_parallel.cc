// Microbenchmarks quantifying the PR-1/PR-2 performance work: cache-blocked
// Gram/Multiply kernels vs. the naive triple loop, amortized FD shrinking
// (buffer_factor) vs. shrink-per-fill, batched ingest (AppendBatch /
// UpdateBatch) across batch sizes, the CSR-style sparse window Gram, and
// ThreadPool/ParallelFor overhead and scaling. Run on the `release` or
// `bench` CMake preset (-O3); the default RelWithDebInfo build understates
// kernel wins.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "core/logarithmic_method.h"
#include "core/swr.h"
#include "linalg/matrix.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "stream/window_buffer.h"
#include "util/parallel.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

// The pre-blocking Gram: one full rank-1 update (both triangles) per row.
Matrix NaiveGram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    auto v = a.Row(i);
    for (size_t r = 0; r < a.cols(); ++r) {
      const double vr = v[r];
      if (vr == 0.0) continue;
      double* grow = g.Row(r).data();
      for (size_t c = 0; c < a.cols(); ++c) grow[c] += vr * v[c];
    }
  }
  return g;
}

void BM_GramNaive(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(4 * d, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveGram(a));
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_GramNaive)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_GramBlocked(benchmark::State& state) {
  // The library kernel: upper-triangle tiles, 4-row fusion, one mirror.
  const size_t d = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(4 * d, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Gram());
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_GramBlocked)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_MultiplyBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 2);
  Matrix b = RandomMatrix(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MultiplyBlocked)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_FdIngest(benchmark::State& state) {
  // Whole-stream ingest cost; buffer factor f shrinks every
  // (f*ell - rank + 1) rows instead of every (ell - rank + 1).
  const size_t ell = 64;
  const size_t d = 256;
  const double factor = static_cast<double>(state.range(0));
  Matrix rows = RandomMatrix(2048, d, 4);
  for (auto _ : state) {
    FrequentDirections fd(
        d, FrequentDirections::Options{.ell = ell, .buffer_factor = factor});
    for (size_t i = 0; i < rows.rows(); ++i) fd.Append(rows.Row(i));
    benchmark::DoNotOptimize(fd);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_FdIngest)->Arg(1)->Arg(2)->Arg(4);

// ---- Batched ingest sweep (the PR-2 tentpole): rows/sec as a function of
// batch size, per backend. items_per_second is the throughput to compare
// across the batch ∈ {1, 8, 64, 512} sweep.

constexpr size_t kIngestRows = 4096;

// Feeds `rows` to a MatrixSketch in blocks of `batch` via AppendBatch
// (batch = 1 degenerates to the per-row path inside every backend).
template <typename SketchT>
void IngestBatched(SketchT& sketch, const Matrix& rows, size_t batch) {
  uint64_t id = 0;
  for (size_t b = 0; b < rows.rows(); b += batch) {
    const size_t e = std::min(rows.rows(), b + batch);
    sketch.AppendBatch(rows, b, e, id);
    id += e - b;
  }
}

void BM_FdIngestBatch(benchmark::State& state) {
  // Tall regime (ell = d): one deferred shrink per block instead of one
  // per (ell - rank + 1) rows; the SVD is O(d^3) either way.
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t ell = 64, d = 64;
  Matrix rows = RandomMatrix(kIngestRows, d, 6);
  for (auto _ : state) {
    FrequentDirections fd(d, FrequentDirections::Options{.ell = ell});
    IngestBatched(fd, rows, batch);
    benchmark::DoNotOptimize(fd);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_FdIngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_RpIngestBatch(benchmark::State& state) {
  // Block path: one ell x batch sign block through the tiled MultiplyRows
  // kernel instead of ell rank-1 updates per row.
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t ell = 64, d = 256;
  Matrix rows = RandomMatrix(kIngestRows, d, 7);
  for (auto _ : state) {
    RandomProjection rp(d, ell, 1);
    IngestBatched(rp, rows, batch);
    benchmark::DoNotOptimize(rp);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_RpIngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_HashIngestBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t ell = 64, d = 256;
  Matrix rows = RandomMatrix(kIngestRows, d, 8);
  for (auto _ : state) {
    HashSketch hs(d, ell, 1);
    IngestBatched(hs, rows, batch);
    benchmark::DoNotOptimize(hs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_HashIngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// Feeds a SlidingWindowSketch in UpdateBatch blocks (ts = arrival index,
// pre-sliced outside the timed region).
void BM_SwrIngestBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t ell = 32, d = 64;
  Matrix rows = RandomMatrix(kIngestRows, d, 9);
  std::vector<Matrix> blocks;
  std::vector<std::vector<double>> ts;
  for (size_t b = 0; b < rows.rows(); b += batch) {
    const size_t e = std::min(rows.rows(), b + batch);
    Matrix blk(0, d);
    std::vector<double> bt;
    for (size_t i = b; i < e; ++i) {
      blk.AppendRow(rows.Row(i));
      bt.push_back(static_cast<double>(i + 1));
    }
    blocks.push_back(std::move(blk));
    ts.push_back(std::move(bt));
  }
  for (auto _ : state) {
    SwrSketch swr(d, WindowSpec::Sequence(1024), SwrSketch::Options{.ell = ell});
    for (size_t b = 0; b < blocks.size(); ++b) swr.UpdateBatch(blocks[b], ts[b]);
    benchmark::DoNotOptimize(swr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_SwrIngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_LmFdIngestBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t ell = 32, d = 64;
  Matrix rows = RandomMatrix(kIngestRows, d, 10);
  std::vector<Matrix> blocks;
  std::vector<std::vector<double>> ts;
  for (size_t b = 0; b < rows.rows(); b += batch) {
    const size_t e = std::min(rows.rows(), b + batch);
    Matrix blk(0, d);
    std::vector<double> bt;
    for (size_t i = b; i < e; ++i) {
      blk.AppendRow(rows.Row(i));
      bt.push_back(static_cast<double>(i + 1));
    }
    blocks.push_back(std::move(blk));
    ts.push_back(std::move(bt));
  }
  for (auto _ : state) {
    LmFd lm(d, WindowSpec::Sequence(1024), LmFd::Options{.ell = ell});
    for (size_t b = 0; b < blocks.size(); ++b) lm.UpdateBatch(blocks[b], ts[b]);
    benchmark::DoNotOptimize(lm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.rows()));
}
BENCHMARK(BM_LmFdIngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// ---- Sparse window Gram: CSR-style scatter vs. the dense blocked kernel
// at WIKI-like density (nnz/d = 0.05).

WindowBuffer MakeSparseWindow(size_t n, size_t d, size_t nnz) {
  WindowBuffer buffer(WindowSpec::Sequence(n));
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v(d, 0.0);
    for (size_t k = 0; k < nnz; ++k) {
      v[static_cast<size_t>(rng.Next() % d)] = rng.Gaussian();
    }
    buffer.Add(Row(std::move(v), static_cast<double>(i + 1)));
  }
  return buffer;
}

void BM_WindowGramDense(benchmark::State& state) {
  const size_t d = 400;
  const WindowBuffer buffer = MakeSparseWindow(1000, d, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.ToMatrix().Gram());
  }
}
BENCHMARK(BM_WindowGramDense);

void BM_WindowGramSparse(benchmark::State& state) {
  const size_t d = 400;
  const WindowBuffer buffer = MakeSparseWindow(1000, d, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.SparseGramMatrix(d));
  }
}
BENCHMARK(BM_WindowGramSparse);

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost for a trivial body; on a 1-core pool this measures the
  // inline fast path, on multi-core the submit/wait round trip.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    ParallelFor(n, [&](size_t i) { out[i] += 1.0; });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(64)->Arg(4096);

void BM_ParallelForGramScaling(benchmark::State& state) {
  // End-to-end pool scaling on a real kernel: Gram over column bands.
  // Thread count pinned per benchmark arg (0 = inline/serial baseline).
  const size_t threads = static_cast<size_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  Matrix a = RandomMatrix(1200, 300, 5);
  for (auto _ : state) {
    std::atomic<size_t> done{0};
    ParallelForChunks(
        a.rows(),
        [&](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) {
            auto row = a.Row(i);
            for (double v : row) acc += v * v;
          }
          benchmark::DoNotOptimize(acc);
          done.fetch_add(end - begin, std::memory_order_relaxed);
        },
        {.pool = &pool});
    if (done.load() != a.rows()) state.SkipWithError("lost iterations");
  }
}
BENCHMARK(BM_ParallelForGramScaling)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace swsketch

BENCHMARK_MAIN();
