// Query-serving microbenchmark (DESIGN.md §8 "Query path"):
//
//  1. Warm vs cold single-thread query latency for LM-FD and DI-FD at
//     ell = 64, d = 256: cold calls InvalidateQueryCache() before every
//     Query() (the pre-cache behaviour), warm queries a structurally
//     unchanged sketch and hits the merged-result cache. The two paths
//     must return byte-identical matrices (asserted here and pinned by
//     tests/query_cache_test).
//
//  2. Multi-reader throughput: one writer ingesting continuously through a
//     ConcurrentSketch while {1, 2, 4} reader threads spin on Query(), in
//     snapshot mode (readers copy the writer-published snapshot, never
//     waiting on ingest) versus mutex mode (every reader recomputes under
//     the writer's lock).
//
// Emits BENCH_micro_query.json in the cells format; scripts/bench_gate.sh
// diffs the warm/cold latency cells against the committed baseline in
// bench/baselines/ (QPS cells are reported but not in the baseline — they
// depend on the host's core count).
//
//   ./micro_query [--ell=64] [--d=256] [--rows=20000] [--window=4000]
//                 [--iters=2000] [--duration_ms=300] [--json=1]
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_sketch.h"
#include "core/dyadic_interval.h"
#include "core/logarithmic_method.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct Cell {
  std::string algorithm;
  size_t ell = 0;
  double update_ns = 0.0;  // Per-query latency (the gated metric).
  double qps = 0.0;        // Aggregate queries/s (QPS cells only).
};

void WriteCellsJson(const std::string& path, size_t rows, size_t d,
                    const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"micro_query\",\n"
      << "  \"metric\": \"update_ns\",\n"
      << "  \"dataset\": \"SYNTH-gauss\",\n"
      << "  \"n\": " << rows << ",\n  \"d\": " << d << ",\n"
      << "  \"window\": \"sequence\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"update_ns\": " << c.update_ns
        << ", \"qps\": " << c.qps << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

Matrix MakeRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows(i, j) = rng.Gaussian();
  }
  return rows;
}

// Measures warm/cold latency of one sketch type. SketchT must expose
// Update/Query/InvalidateQueryCache (LmFd, DiFd).
template <typename SketchT>
void BenchWarmCold(SketchT* sketch, const Matrix& rows, const char* slug,
                   size_t ell, size_t iters, std::vector<Cell>* cells) {
  for (size_t i = 0; i < rows.rows(); ++i) {
    sketch->Update(rows.Row(i), static_cast<double>(i));
  }
  // Byte-identity: a cached query must equal a cold recompute exactly.
  const Matrix warm_result = sketch->Query();
  sketch->InvalidateQueryCache();
  const Matrix cold_result = sketch->Query();
  if (!warm_result.ApproxEquals(cold_result, 0.0)) {
    std::cerr << "FATAL: " << slug << " warm result != cold result\n";
    std::exit(1);
  }

  Timer t;
  for (size_t i = 0; i < iters; ++i) {
    sketch->InvalidateQueryCache();
    Matrix b = sketch->Query();
  }
  const double cold_ns =
      static_cast<double>(t.ElapsedNanos()) / static_cast<double>(iters);

  (void)sketch->Query();  // Fill the cache.
  t.Reset();
  for (size_t i = 0; i < iters; ++i) {
    Matrix b = sketch->Query();
  }
  const double warm_ns =
      static_cast<double>(t.ElapsedNanos()) / static_cast<double>(iters);

  std::cout << slug << ": cold " << cold_ns << " ns, warm " << warm_ns
            << " ns  (" << cold_ns / warm_ns << "x)\n";
  cells->push_back({std::string("cold-") + slug, ell, cold_ns, 0.0});
  cells->push_back({std::string("warm-") + slug, ell, warm_ns, 0.0});
}

std::unique_ptr<SlidingWindowSketch> MakeLmFd(size_t d, size_t ell,
                                              uint64_t window) {
  LmFd::Options opt;
  opt.ell = ell;
  // About ell rows of mass per block (Gaussian rows have E||r||^2 = d).
  opt.block_capacity = static_cast<double>(ell) * static_cast<double>(d);
  return std::make_unique<LmFd>(d, WindowSpec::Sequence(window), opt);
}

// One writer ingesting continuously + `readers` threads spinning Query().
// Returns aggregate reader QPS.
double RunQps(ConcurrentSketch::Mode mode, size_t readers, const Matrix& rows,
              size_t d, size_t ell, uint64_t window, int duration_ms) {
  ConcurrentSketch sketch(MakeLmFd(d, ell, window), mode);
  // Warm start: one window of rows before the clock starts.
  size_t pre = std::min<size_t>(rows.rows(), window);
  for (size_t i = 0; i < pre; ++i) {
    sketch.Update(rows.Row(i), static_cast<double>(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::thread writer([&] {
    size_t i = pre;
    double ts = static_cast<double>(pre);
    while (!stop.load(std::memory_order_relaxed)) {
      sketch.Update(rows.Row(i % rows.rows()), ts);
      ++i;
      ts += 1.0;
    }
  });
  std::vector<std::thread> pool;
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Matrix b = sketch.Query();
        if (b.cols() != d) std::abort();
        ++local;
      }
      queries.fetch_add(local);
    });
  }
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  writer.join();
  for (auto& th : pool) th.join();
  return static_cast<double>(queries.load()) / t.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 64));
  const size_t d = static_cast<size_t>(flags.GetInt("d", 256));
  const size_t rows_n = static_cast<size_t>(flags.GetInt("rows", 20000));
  const uint64_t window =
      static_cast<uint64_t>(flags.GetInt("window", 4000));
  const size_t iters = static_cast<size_t>(flags.GetInt("iters", 2000));
  const int duration_ms = static_cast<int>(flags.GetInt("duration_ms", 300));

  const Matrix rows = MakeRows(rows_n, d, 1);
  std::vector<Cell> cells;

  PrintBanner(std::cout, "micro_query: warm vs cold single-thread latency");
  {
    LmFd::Options opt;
    opt.ell = ell;
    opt.block_capacity = static_cast<double>(ell) * static_cast<double>(d);
    LmFd lm(d, WindowSpec::Sequence(window), opt);
    BenchWarmCold(&lm, rows, "query-lm-fd", ell, iters, &cells);
  }
  {
    double max_norm_sq = 0.0;
    for (size_t i = 0; i < rows.rows(); ++i) {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += rows(i, j) * rows(i, j);
      max_norm_sq = std::max(max_norm_sq, s);
    }
    DiFd::Options opt;
    opt.ell_top = ell;
    opt.window_size = window;
    opt.max_norm_sq = max_norm_sq;
    DiFd di(d, opt);
    BenchWarmCold(&di, rows, "query-di-fd", ell, iters, &cells);
  }

  PrintBanner(std::cout, "micro_query: multi-reader QPS (writer + readers)");
  Table qps_table({"mode", "readers", "aggregate_qps", "ns_per_query"});
  double qps_snap4 = 0.0, qps_lock4 = 0.0;
  const struct {
    ConcurrentSketch::Mode mode;
    const char* name;
  } kModes[] = {{ConcurrentSketch::Mode::kSnapshot, "snap"},
                {ConcurrentSketch::Mode::kMutex, "lock"}};
  for (const auto& m : kModes) {
    for (size_t readers : {size_t{1}, size_t{2}, size_t{4}}) {
      const double qps =
          RunQps(m.mode, readers, rows, d, ell, window, duration_ms);
      const double ns_per_query = qps > 0.0 ? 1e9 / qps : 0.0;
      qps_table.AddRow({std::string(m.name),
                        Table::Int(static_cast<long long>(readers)),
                        Table::Num(qps), Table::Num(ns_per_query)});
      cells.push_back({std::string("qps-") + m.name + "-r" +
                           std::to_string(readers),
                       ell, ns_per_query, qps});
      if (readers == 4 && m.mode == ConcurrentSketch::Mode::kSnapshot) {
        qps_snap4 = qps;
      }
      if (readers == 4 && m.mode == ConcurrentSketch::Mode::kMutex) {
        qps_lock4 = qps;
      }
    }
  }
  qps_table.Print(std::cout);
  if (qps_lock4 > 0.0) {
    std::cout << "\nsnapshot/mutex aggregate QPS at 4 readers: "
              << qps_snap4 / qps_lock4 << "x\n";
  }

  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_micro_query.json", rows_n, d, cells);
  }
  return 0;
}
