// Sharded-ingest microbenchmark (DESIGN.md §8 "Sharded ingest"):
//
//  1. Determinism gates (fatal on violation, also pinned by
//     tests/sharded_sketch_test): for each algorithm the parallel writer
//     pipeline must answer byte-for-byte what the inline serial execution
//     of the same sharded pipeline answers, and a single-shard pipeline
//     must answer byte-for-byte what the plain unsharded sketch answers.
//
//  2. Ingest throughput: per-row wall-clock cost of the plain sketch
//     (`ingest-<alg>-serial`) versus the sharded pipeline at S = 1, 2, 4
//     writer threads (`ingest-<alg>-s<S>`), per-row Update on the
//     coordinator thread, Flush() included in the timed region so queued
//     work cannot hide.
//
// Emits BENCH_micro_shard.json in the cells format. scripts/bench_gate.sh
// diffs only the `-serial` and `-s1` cells against the committed baseline:
// those measure single-threaded overhead and are stable on any host. The
// S > 1 scaling cells depend on the host's core count (a 1-core CI box
// cannot speed up, only break even minus queue overhead) and are reported
// but not gated.
//
//   ./micro_shard [--rows=30000] [--d=64] [--ell=32] [--window=8000]
//                 [--block=256] [--json=1]
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "distributed/sharded_sketch.h"
#include "eval/report.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct Cell {
  std::string algorithm;  // Cell slug: ingest-<alg>-{serial,s<S>}.
  size_t ell = 0;
  double update_ns = 0.0;  // Per-row ingest cost (the gated metric).
  double rows_per_s = 0.0;
};

void WriteCellsJson(const std::string& path, size_t rows, size_t d,
                    const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"micro_shard\",\n"
      << "  \"metric\": \"update_ns\",\n"
      << "  \"dataset\": \"SYNTH-gauss\",\n"
      << "  \"n\": " << rows << ",\n  \"d\": " << d << ",\n"
      << "  \"window\": \"sequence\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"update_ns\": " << c.update_ns
        << ", \"rows_per_s\": " << c.rows_per_s << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

Matrix MakeRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows(i, j) = scale * rng.Gaussian();
  }
  return rows;
}

SketchConfig ConfigFor(const std::string& algorithm, size_t ell,
                       const Matrix& rows) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = ell;
  config.seed = 17;
  double max_norm_sq = 0.0;
  for (size_t i = 0; i < rows.rows(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < rows.cols(); ++j) s += rows(i, j) * rows(i, j);
    max_norm_sq = std::max(max_norm_sq, s);
  }
  config.max_norm_sq = max_norm_sq;
  return config;
}

// Byte-identity gates on a prefix of the stream; exits the process on any
// violation so the perf numbers can never paper over a broken pipeline.
void CheckDeterminism(const SketchConfig& config, const Matrix& rows,
                      uint64_t window, size_t block_rows) {
  const size_t d = rows.cols();
  const size_t n = std::min<size_t>(rows.rows(), 4000);
  const WindowSpec spec = WindowSpec::Sequence(window);

  ShardedSketch::Options popt;
  popt.shards = 3;
  popt.block_rows = block_rows;
  ShardedSketch::Options sopt = popt;
  sopt.parallel = false;
  ShardedSketch::Options one;
  one.shards = 1;
  one.block_rows = block_rows;

  auto parallel = ShardedSketch::Make(d, spec, config, popt);
  auto serial = ShardedSketch::Make(d, spec, config, sopt);
  auto single = ShardedSketch::Make(d, spec, config, one);
  auto plain = MakeSlidingWindowSketch(d, spec, config);
  if (!parallel.ok() || !serial.ok() || !single.ok() || !plain.ok()) {
    std::cerr << "FATAL: construction failed for " << config.algorithm
              << "\n";
    std::exit(1);
  }
  for (size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i);
    parallel.value()->Update(rows.Row(i), ts);
    serial.value()->Update(rows.Row(i), ts);
    single.value()->Update(rows.Row(i), ts);
    plain.value()->Update(rows.Row(i), ts);
  }
  if (!parallel.value()->Query().ApproxEquals(serial.value()->Query(),
                                              0.0)) {
    std::cerr << "FATAL: " << config.algorithm
              << " parallel bytes != serial bytes\n";
    std::exit(1);
  }
  if (!single.value()->Query().ApproxEquals(plain.value()->Query(), 0.0)) {
    std::cerr << "FATAL: " << config.algorithm
              << " S=1 bytes != plain sketch bytes\n";
    std::exit(1);
  }
}

// Per-row ns for one full pass, Flush() inside the timed region.
double TimeIngest(SlidingWindowSketch* sketch, const Matrix& rows) {
  Timer t;
  for (size_t i = 0; i < rows.rows(); ++i) {
    sketch->Update(rows.Row(i), static_cast<double>(i));
  }
  sketch->Flush();
  return static_cast<double>(t.ElapsedNanos()) /
         static_cast<double>(rows.rows());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows_n = static_cast<size_t>(flags.GetInt("rows", 30000));
  const size_t d = static_cast<size_t>(flags.GetInt("d", 64));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 32));
  const uint64_t window =
      static_cast<uint64_t>(flags.GetInt("window", 8000));
  const size_t block_rows =
      static_cast<size_t>(flags.GetInt("block", 256));

  const Matrix rows = MakeRows(rows_n, d, 1);
  std::vector<Cell> cells;

  PrintBanner(std::cout, "micro_shard: determinism gates");
  for (const std::string algo : {"lm-fd", "di-fd", "lm-hash"}) {
    CheckDeterminism(ConfigFor(algo, ell, rows), rows, window, block_rows);
    std::cout << algo << ": parallel == serial bytes, S=1 == plain bytes\n";
  }

  PrintBanner(std::cout, "micro_shard: ingest throughput");
  Table table({"algorithm", "variant", "ns_per_row", "rows_per_s"});
  for (const std::string algo : {"lm-fd", "di-fd", "lm-hash"}) {
    const SketchConfig config = ConfigFor(algo, ell, rows);
    const WindowSpec spec = WindowSpec::Sequence(window);
    double serial_ns = 0.0, s4_ns = 0.0;

    {
      auto plain = MakeSlidingWindowSketch(d, spec, config);
      serial_ns = TimeIngest(plain.value().get(), rows);
      table.AddRow({algo, "serial", Table::Num(serial_ns),
                    Table::Num(1e9 / serial_ns)});
      std::string slug = "ingest-";
      slug += algo;
      slug += "-serial";
      cells.push_back({slug, ell, serial_ns, 1e9 / serial_ns});
    }
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      ShardedSketch::Options options;
      options.shards = shards;
      options.block_rows = block_rows;
      auto sharded = ShardedSketch::Make(d, spec, config, options);
      const double ns = TimeIngest(sharded.value().get(), rows);
      if (shards == 4) s4_ns = ns;
      std::string variant = "s";
      variant += std::to_string(shards);
      table.AddRow({algo, variant, Table::Num(ns), Table::Num(1e9 / ns)});
      std::string slug = "ingest-";
      slug += algo;
      slug += "-";
      slug += variant;
      cells.push_back({slug, ell, ns, 1e9 / ns});
    }
    if (s4_ns > 0.0) {
      std::cout << algo << ": S=4 speedup over serial = "
                << serial_ns / s4_ns << "x\n";
    }
  }
  table.Print(std::cout);

  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_micro_shard.json", rows_n, d, cells);
  }
  return 0;
}
