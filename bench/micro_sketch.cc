// Google-benchmark microbenchmarks for the streaming sketch primitives:
// per-row append costs of FD / RP / HASH / samplers and the exponential
// histogram, matching the update-cost columns of Table 1.
#include <benchmark/benchmark.h>

#include "core/dump_snapshot.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/priority_sampler.h"
#include "sketch/random_projection.h"
#include "util/exponential_histogram.h"
#include "util/random.h"

namespace swsketch {
namespace {

constexpr size_t kDim = 256;

std::vector<std::vector<double>> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDim));
  for (auto& r : rows) {
    for (auto& v : r) v = rng.Gaussian();
  }
  return rows;
}

void BM_FrequentDirectionsAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 1);
  FrequentDirections fd(kDim, ell);
  size_t i = 0;
  for (auto _ : state) {
    fd.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentDirectionsAppend)->Arg(16)->Arg(32)->Arg(64);

// Legacy ThinSvd shrink backend, kept as the regression reference for the
// default Gram-eigen backend measured by BM_FrequentDirectionsAppend.
void BM_FrequentDirectionsAppendThinSvd(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 1);
  FrequentDirections fd(
      kDim, FrequentDirections::Options{
                .ell = ell, .shrink_backend = FdShrinkBackend::kThinSvd});
  size_t i = 0;
  for (auto _ : state) {
    fd.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentDirectionsAppendThinSvd)->Arg(16)->Arg(32)->Arg(64);

// Amortized buffering (buffer_factor = 2) on the default backend.
void BM_FrequentDirectionsAppendBuffered(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 1);
  FrequentDirections fd(
      kDim, FrequentDirections::Options{.ell = ell, .buffer_factor = 2.0});
  size_t i = 0;
  for (auto _ : state) {
    fd.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentDirectionsAppendBuffered)->Arg(16)->Arg(32)->Arg(64);

void BM_RandomProjectionAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 2);
  RandomProjection rp(kDim, ell, 7);
  size_t i = 0;
  for (auto _ : state) {
    rp.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomProjectionAppend)->Arg(16)->Arg(64)->Arg(256);

void BM_HashSketchAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 3);
  HashSketch hs(kDim, ell, 7);
  size_t i = 0;
  for (auto _ : state) {
    hs.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashSketchAppend)->Arg(64)->Arg(1024);

// Full DS-FD sliding-window per-row ingest: one frame FD append plus the
// expiry / Frobenius-tracker / snapshot-ladder bookkeeping, on a window
// small enough that frames cut and snapshots churn during the run.
void BM_DsFdAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 8);
  DsFd sketch(kDim, WindowSpec::Sequence(4096), DsFd::Options{.ell = ell});
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i & 1023], static_cast<double>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DsFdAppend)->Arg(16)->Arg(32)->Arg(64);

void BM_FdMerge(benchmark::State& state) {
  // The LM framework's cascade cost: one FD merge.
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(512, 4);
  FrequentDirections base(kDim, ell), other(kDim, ell);
  for (size_t i = 0; i < 512; ++i) {
    (i % 2 ? base : other).Append(rows[i], i);
  }
  for (auto _ : state) {
    FrequentDirections tmp = base;
    tmp.MergeWith(other);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_FdMerge)->Arg(16)->Arg(32)->Arg(64);

void BM_StreamingSworAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(1024, 5);
  StreamingSworSampler s(kDim, ell, 7);
  size_t i = 0;
  for (auto _ : state) {
    s.Append(rows[i & 1023], i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamingSworAppend)->Arg(16)->Arg(64);

void BM_ExponentialHistogramAdd(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  ExponentialHistogram eh(eps);
  Rng rng(6);
  double ts = 0.0;
  for (auto _ : state) {
    eh.Add(1.0 + rng.Uniform01() * 9.0, ts);
    ts += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialHistogramAdd)->Arg(10)->Arg(20)->Arg(100);

}  // namespace
}  // namespace swsketch

BENCHMARK_MAIN();

