// Multi-tenant manager microbenchmark (DESIGN.md §8 "Multi-tenant
// serving"):
//
//  1. Determinism gates (fatal on violation, also pinned by
//     tests/tenant_manager_test): UpdateKeyed over an interleaved
//     multi-key stream must leave every tenant byte-identical to a
//     standalone sketch fed only that tenant's rows, and a tenant that is
//     evicted (spilled to the serialized region) and reloaded must answer
//     Query byte-identically to a never-evicted twin.
//
//  2. Keyed ingest cost at 10k resident tenants: per-row cost of the
//     naive per-row path (`naive-10k`), the grouped keyed-batch path
//     (`keyed-10k`), and the single standalone sketch reference
//     (`standalone`) the 2x multi-tenant overhead target is measured
//     against.
//
//  3. Serving and lifecycle costs: warm per-query lookup (`lookup-warm`),
//     per-tenant creation via the naive factory loop (`create-naive`)
//     versus arena + prototype stamping (`create-arena`), 100k-tenant
//     fill under a fixed budget (`fill-100k`, fatally asserting the
//     budget held), forced eviction (`evict`) and spill-reload query
//     (`reload-query`) costs, and the charged resident bytes per tenant
//     at 1k/10k/100k scale (`resident-bytes-*`, update_ns = bytes).
//
// Emits BENCH_micro_tenant.json in the cells format. scripts/bench_gate.sh
// diffs only the keyed-10k and lookup-warm cells against the committed
// baseline: per-row keyed ingest and warm lookups are steady-state
// single-thread costs, stable on any host. Creation bursts, eviction
// churn and the 100k fill are allocation-heavy and shaped by the host
// allocator; resident-bytes cells are capacity measurements, not timings.
// All are reported for the console but excluded from the gate.
//
//   ./micro_tenant [--rows=300000] [--tenants=10000] [--d=4] [--ell=8]
//                  [--window=1024] [--batch=1024] [--json=1]
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "eval/report.h"
#include "service/tenant_manager.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct Cell {
  std::string algorithm;   // Cell slug.
  size_t ell = 0;
  double update_ns = 0.0;  // Per-op cost (bytes/tenant for resident-bytes).
  double rows_per_s = 0.0;
};

void WriteCellsJson(const std::string& path, size_t rows, size_t d,
                    const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"figure\": \"micro_tenant\",\n"
      << "  \"metric\": \"update_ns\",\n"
      << "  \"dataset\": \"SYNTH-gauss-zipf\",\n"
      << "  \"n\": " << rows << ",\n  \"d\": " << d << ",\n"
      << "  \"window\": \"sequence\",\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i ? "," : "") << "\n    {\"algorithm\": \"" << c.algorithm
        << "\", \"ell\": " << c.ell << ", \"update_ns\": " << c.update_ns
        << ", \"rows_per_s\": " << c.rows_per_s << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(wrote " << path << ")\n";
}

Matrix MakeRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows(i, j) = scale * rng.Gaussian();
  }
  return rows;
}

// Zipf-ish skew: u^2 concentrates mass on low keys, so group sizes in a
// keyed batch vary the way real tenant traffic does.
std::vector<uint64_t> MakeKeys(size_t n, size_t tenants, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    const double u = rng.Uniform01();
    k = static_cast<uint64_t>(u * u * static_cast<double>(tenants));
    if (k >= tenants) k = tenants - 1;
  }
  return keys;
}

SketchConfig ConfigFor(size_t ell) {
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = ell;
  config.seed = 17;
  return config;
}

// Byte-identity gates; exits the process on any violation so the perf
// numbers can never paper over a broken manager.
void CheckDeterminism(const SketchConfig& config, const Matrix& rows,
                      uint64_t window) {
  const size_t d = rows.cols();
  const size_t n = std::min<size_t>(rows.rows(), 20000);
  const size_t num_keys = 64;
  const WindowSpec spec = WindowSpec::Sequence(window);
  const std::vector<uint64_t> keys = MakeKeys(n, num_keys, 5);

  // Gate 1: UpdateKeyed == per-tenant standalone serial bytes.
  {
    auto made = TenantManager::Make(d, spec, config);
    std::vector<std::unique_ptr<SlidingWindowSketch>> twins;
    for (size_t k = 0; k < num_keys; ++k) {
      auto t = MakeSlidingWindowSketch(d, spec, config);
      if (!t.ok() || !made.ok()) {
        std::cerr << "FATAL: construction failed\n";
        std::exit(1);
      }
      twins.push_back(t.take());
    }
    auto& manager = *made.value();
    std::vector<KeyedRow> batch;
    for (size_t i = 0; i < n; ++i) {
      const double ts = static_cast<double>(i + 1);
      batch.push_back(KeyedRow{keys[i], ts, rows.Row(i)});
      twins[keys[i]]->Update(rows.Row(i), ts);
      if (batch.size() == 512 || i + 1 == n) {
        if (!manager.UpdateKeyed(batch).ok()) {
          std::cerr << "FATAL: UpdateKeyed failed\n";
          std::exit(1);
        }
        batch.clear();
      }
    }
    for (size_t k = 0; k < num_keys; ++k) {
      auto got = manager.Query(k);
      if (!got.ok() ||
          !got.value().ApproxEquals(twins[k]->Query(), 0.0)) {
        std::cerr << "FATAL: keyed bytes != per-tenant standalone bytes "
                  << "(key " << k << ")\n";
        std::exit(1);
      }
    }
  }

  // Gate 2: evict -> reload -> query == never-evicted twin bytes.
  {
    auto made = TenantManager::Make(d, spec, config);
    auto twin = MakeSlidingWindowSketch(d, spec, config);
    if (!made.ok() || !twin.ok()) {
      std::cerr << "FATAL: construction failed\n";
      std::exit(1);
    }
    auto& manager = *made.value();
    for (size_t i = 0; i < n; ++i) {
      const double ts = static_cast<double>(i + 1);
      (void)manager.Update(0, rows.Row(i), ts);
      (*twin)->Update(rows.Row(i), ts);
      if (i % 997 == 499 && !manager.EvictTenant(0).ok()) {
        std::cerr << "FATAL: EvictTenant failed\n";
        std::exit(1);
      }
    }
    if (!manager.EvictTenant(0).ok()) {
      std::cerr << "FATAL: final EvictTenant failed\n";
      std::exit(1);
    }
    auto got = manager.Query(0);
    if (!got.ok() || !got.value().ApproxEquals((*twin)->Query(), 0.0)) {
      std::cerr << "FATAL: evict->reload->query bytes != never-evicted "
                << "twin bytes\n";
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows_n = static_cast<size_t>(flags.GetInt("rows", 300000));
  const size_t tenants = static_cast<size_t>(flags.GetInt("tenants", 10000));
  const size_t d = static_cast<size_t>(flags.GetInt("d", 4));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 8));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 1024));
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 1024));

  const Matrix rows = MakeRows(rows_n, d, 1);
  const std::vector<uint64_t> keys = MakeKeys(rows_n, tenants, 2);
  const SketchConfig config = ConfigFor(ell);
  const WindowSpec spec = WindowSpec::Sequence(window);
  std::vector<Cell> cells;

  PrintBanner(std::cout, "micro_tenant: determinism gates");
  CheckDeterminism(config, rows, window);
  std::cout << "keyed == per-tenant standalone bytes, "
            << "evict->reload == never-evicted bytes\n";

  PrintBanner(std::cout, "micro_tenant: keyed ingest at " +
                             std::to_string(tenants) + " tenants");
  Table table({"path", "ns_per_row", "rows_per_s"});
  double standalone_ns = 0.0, naive_ns = 0.0, keyed_ns = 0.0;

  // Reference: one plain sketch eating the whole stream.
  {
    auto plain = MakeSlidingWindowSketch(d, spec, config);
    Timer t;
    for (size_t i = 0; i < rows_n; ++i) {
      plain.value()->Update(rows.Row(i), static_cast<double>(i + 1));
    }
    standalone_ns = static_cast<double>(t.ElapsedNanos()) /
                    static_cast<double>(rows_n);
    table.AddRow({"standalone", Table::Num(standalone_ns),
                  Table::Num(1e9 / standalone_ns)});
    cells.push_back({"standalone", ell, standalone_ns,
                     1e9 / standalone_ns});
  }
  // Naive path: per-row Update through the key table.
  {
    auto made = TenantManager::Make(d, spec, config);
    Timer t;
    for (size_t i = 0; i < rows_n; ++i) {
      (void)made.value()->Update(keys[i], rows.Row(i),
                                 static_cast<double>(i + 1));
    }
    naive_ns = static_cast<double>(t.ElapsedNanos()) /
               static_cast<double>(rows_n);
    const std::string slug = "naive-" + std::to_string(tenants / 1000) + "k";
    table.AddRow({slug, Table::Num(naive_ns), Table::Num(1e9 / naive_ns)});
    cells.push_back({slug, ell, naive_ns, 1e9 / naive_ns});
  }
  // Keyed batch path (the gated cell).
  TenantManager* warm_manager = nullptr;
  std::unique_ptr<TenantManager> keyed_manager;
  {
    auto made = TenantManager::Make(d, spec, config);
    keyed_manager = std::move(made.value());
    std::vector<KeyedRow> keyed(batch);
    Timer t;
    for (size_t b = 0; b < rows_n; b += batch) {
      const size_t e = std::min(rows_n, b + batch);
      keyed.resize(e - b);
      for (size_t i = b; i < e; ++i) {
        keyed[i - b] = KeyedRow{keys[i], static_cast<double>(i + 1),
                                rows.Row(i)};
      }
      (void)keyed_manager->UpdateKeyed(keyed);
    }
    keyed_ns = static_cast<double>(t.ElapsedNanos()) /
               static_cast<double>(rows_n);
    const std::string slug = "keyed-" + std::to_string(tenants / 1000) + "k";
    table.AddRow({slug, Table::Num(keyed_ns), Table::Num(1e9 / keyed_ns)});
    cells.push_back({slug, ell, keyed_ns, 1e9 / keyed_ns});
    warm_manager = keyed_manager.get();
  }
  table.Print(std::cout);
  std::cout << "keyed vs standalone overhead: " << keyed_ns / standalone_ns
            << "x (target <= 2x), naive vs keyed: " << naive_ns / keyed_ns
            << "x\n";

  PrintBanner(std::cout, "micro_tenant: serving + lifecycle");
  Table life({"op", "ns_per_op", "ops_per_s"});
  // Warm lookups: every tenant was just queried once to fill its cache,
  // then the timed pass measures lookup + cache-hit query.
  {
    for (uint64_t k = 0; k < tenants; ++k) (void)warm_manager->Query(k);
    Timer t;
    for (uint64_t k = 0; k < tenants; ++k) (void)warm_manager->Query(k);
    const double ns = static_cast<double>(t.ElapsedNanos()) /
                      static_cast<double>(tenants);
    life.AddRow({"lookup-warm", Table::Num(ns), Table::Num(1e9 / ns)});
    cells.push_back({"lookup-warm", ell, ns, 1e9 / ns});
  }
  // Creation: naive factory loop vs arena + prototype stamping.
  double create_naive_ns = 0.0, create_arena_ns = 0.0;
  {
    std::vector<std::unique_ptr<SlidingWindowSketch>> naive;
    naive.reserve(tenants);
    Timer t;
    for (size_t k = 0; k < tenants; ++k) {
      naive.push_back(MakeSlidingWindowSketch(d, spec, config).take());
    }
    create_naive_ns = static_cast<double>(t.ElapsedNanos()) /
                      static_cast<double>(tenants);
    life.AddRow({"create-naive", Table::Num(create_naive_ns),
                 Table::Num(1e9 / create_naive_ns)});
    cells.push_back({"create-naive", ell, create_naive_ns,
                     1e9 / create_naive_ns});
  }
  {
    auto made = TenantManager::Make(d, spec, config);
    Timer t;
    for (uint64_t k = 0; k < tenants; ++k) {
      (void)made.value()->CreateTenant(k);
    }
    create_arena_ns = static_cast<double>(t.ElapsedNanos()) /
                      static_cast<double>(tenants);
    life.AddRow({"create-arena", Table::Num(create_arena_ns),
                 Table::Num(1e9 / create_arena_ns)});
    cells.push_back({"create-arena", ell, create_arena_ns,
                     1e9 / create_arena_ns});
  }
  // Forced eviction + spill-reload query over the ingested tenants.
  {
    Timer t;
    for (uint64_t k = 0; k < tenants; ++k) {
      (void)warm_manager->EvictTenant(k);
    }
    const double evict_ns = static_cast<double>(t.ElapsedNanos()) /
                            static_cast<double>(tenants);
    life.AddRow({"evict", Table::Num(evict_ns), Table::Num(1e9 / evict_ns)});
    cells.push_back({"evict", ell, evict_ns, 1e9 / evict_ns});

    Timer r;
    for (uint64_t k = 0; k < tenants; ++k) (void)warm_manager->Query(k);
    const double reload_ns = static_cast<double>(r.ElapsedNanos()) /
                             static_cast<double>(tenants);
    life.AddRow({"reload-query", Table::Num(reload_ns),
                 Table::Num(1e9 / reload_ns)});
    cells.push_back({"reload-query", ell, reload_ns, 1e9 / reload_ns});
  }
  // 100k tenants under a fixed budget; the budget must actually hold.
  {
    TenantManager::Options options;
    options.memory_budget_bytes = 64 << 20;
    auto made = TenantManager::Make(d, spec, config, options);
    Rng rng(9);
    std::vector<double> row(d);
    const size_t big = 100000;
    Timer t;
    for (size_t k = 0; k < big; ++k) {
      for (auto& v : row) v = rng.Gaussian();
      (void)made.value()->Update(k, row, static_cast<double>(k + 1));
    }
    const double fill_ns = static_cast<double>(t.ElapsedNanos()) /
                           static_cast<double>(big);
    if (made.value()->resident_bytes() > options.memory_budget_bytes) {
      std::cerr << "FATAL: resident bytes "
                << made.value()->resident_bytes() << " exceed the budget "
                << options.memory_budget_bytes << "\n";
      std::exit(1);
    }
    life.AddRow({"fill-100k", Table::Num(fill_ns),
                 Table::Num(1e9 / fill_ns)});
    cells.push_back({"fill-100k", ell, fill_ns, 1e9 / fill_ns});
    std::cout << "fill-100k: " << made.value()->resident_tenants()
              << " resident / " << made.value()->spilled_tenants()
              << " spilled, resident "
              << made.value()->resident_bytes() / (1 << 20) << " MiB <= "
              << options.memory_budget_bytes / (1 << 20) << " MiB budget\n";
  }
  life.Print(std::cout);
  std::cout << "arena creation speedup over naive factory: "
            << create_naive_ns / create_arena_ns << "x (target >= 3x)\n";

  // Charged resident bytes per tenant at 1k/10k/100k scale (no budget, 4
  // rows each): a capacity cell, not a timing (rows_per_s = 0).
  for (const size_t scale : {size_t{1000}, size_t{10000}, size_t{100000}}) {
    auto made = TenantManager::Make(d, spec, config);
    Rng rng(11);
    std::vector<double> row(d);
    for (size_t k = 0; k < scale; ++k) {
      for (size_t r = 0; r < 4; ++r) {
        for (auto& v : row) v = rng.Gaussian();
        (void)made.value()->Update(k, row,
                                   static_cast<double>(4 * k + r + 1));
      }
    }
    const double per_tenant =
        static_cast<double>(made.value()->resident_bytes()) /
        static_cast<double>(scale);
    const std::string slug =
        "resident-bytes-" + std::to_string(scale / 1000) + "k";
    std::cout << slug << ": " << per_tenant << " bytes/tenant\n";
    cells.push_back({slug, ell, per_tenant, 0.0});
  }

  if (flags.GetBool("json", true)) {
    WriteCellsJson("BENCH_micro_tenant.json", rows_n, d, cells);
  }
  return 0;
}
