// Google-benchmark microbenchmarks for the sliding-window sketches' update
// path — the per-row costs behind Figures 5 and 9.
#include <benchmark/benchmark.h>

#include "core/dyadic_interval.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "core/swr.h"
#include "util/random.h"

namespace swsketch {
namespace {

constexpr size_t kDim = 128;
constexpr uint64_t kWindow = 4096;

std::vector<std::vector<double>> MakeRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDim));
  for (auto& r : rows) {
    for (auto& v : r) v = rng.Gaussian();
  }
  return rows;
}

void BM_SwrUpdate(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2048, 1);
  SwrSketch sketch(kDim, WindowSpec::Sequence(kWindow),
                   SwrSketch::Options{.ell = ell, .seed = 7});
  double ts = 0.0;
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i++ & 2047], ts);
    ts += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwrUpdate)->Arg(16)->Arg(64)->Arg(128);

void BM_SworUpdate(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2048, 2);
  SworSketch sketch(kDim, WindowSpec::Sequence(kWindow),
                    SworSketch::Options{.ell = ell, .seed = 7});
  double ts = 0.0;
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i++ & 2047], ts);
    ts += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SworUpdate)->Arg(16)->Arg(64)->Arg(128);

void BM_LmFdUpdate(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2048, 3);
  LmFd sketch(kDim, WindowSpec::Sequence(kWindow),
              LmFd::Options{.ell = ell, .blocks_per_level = 8});
  double ts = 0.0;
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i++ & 2047], ts);
    ts += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LmFdUpdate)->Arg(16)->Arg(32)->Arg(64);

void BM_DiFdUpdate(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2048, 4);
  DiFd sketch(kDim, DiFd::Options{.levels = 6,
                                  .window_size = kWindow,
                                  .max_norm_sq = 4.0 * kDim,
                                  .ell_top = ell});
  double ts = 0.0;
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(rows[i++ & 2047], ts);
    ts += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiFdUpdate)->Arg(16)->Arg(32)->Arg(64);

void BM_LmFdQuery(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  auto rows = MakeRows(2048, 5);
  LmFd sketch(kDim, WindowSpec::Sequence(kWindow),
              LmFd::Options{.ell = ell, .blocks_per_level = 8});
  for (size_t i = 0; i < 8192; ++i) {
    sketch.Update(rows[i & 2047], static_cast<double>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Query());
  }
}
BENCHMARK(BM_LmFdQuery)->Arg(16)->Arg(32);

}  // namespace
}  // namespace swsketch

BENCHMARK_MAIN();
