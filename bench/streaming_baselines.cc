// Streaming (unbounded) sketch comparison — the substrate sanity table
// behind Section 3: FD, iSVD, random projection, hashing and the priority
// samplers on one pass over a synthetic stream, in the spirit of the
// comparison study the paper cites ([19], Ghashami-Desai-Phillips).
//
//   ./streaming_baselines [--rows=20000] [--dim=150] [--ells=8,16,32,64]
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/cov_err.h"
#include "eval/report.h"
#include "sketch/exact_covariance.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/incremental_svd.h"
#include "sketch/priority_sampler.h"
#include "sketch/random_projection.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const size_t dim = static_cast<size_t>(flags.GetInt("dim", 150));
  auto ells = flags.Has("ells") ? bench::SweepSizes(flags)
                                : std::vector<size_t>{8, 16, 32, 64};

  // Materialize once: every sketch sees the same rows, and the exact Gram
  // gives the error denominator.
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = dim, .signal_dim = 30, .window = rows});
  Matrix a(0, dim);
  a.ReserveRows(rows);
  while (auto row = stream.Next()) a.AppendRow(row->view());
  const Matrix gram = a.Gram();
  const double frob_sq = a.FrobeniusNormSq();

  PrintBanner(std::cout,
              "Streaming matrix sketches (unbounded model, Section 3)");
  std::cout << "n=" << rows << " d=" << dim << "\n";
  Table table({"sketch", "ell", "rows stored", "cova_err", "update_ns"});

  auto run = [&](MatrixSketch* sketch, size_t ell) {
    Timer timer;
    for (size_t i = 0; i < a.rows(); ++i) sketch->Append(a.Row(i), i);
    const double ns =
        static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(rows);
    const Matrix b = sketch->Approximation();
    table.AddRow({sketch->name(), Table::Int(static_cast<long long>(ell)),
                  Table::Int(static_cast<long long>(b.rows())),
                  Table::Num(CovarianceError(gram, frob_sq, b)),
                  Table::Num(ns)});
  };

  for (size_t ell : ells) {
    FrequentDirections fd(dim, ell);
    run(&fd, ell);
    IncrementalSvd isvd(dim, ell);
    run(&isvd, ell);
    RandomProjection rp(dim, 4 * ell, 7);
    run(&rp, 4 * ell);
    HashSketch hs(dim, 8 * ell, 7);
    run(&hs, 8 * ell);
    StreamingSwrSampler swr(dim, 4 * ell, 7);
    run(&swr, 4 * ell);
    StreamingSworSampler swor(dim, 4 * ell, 7);
    run(&swor, 4 * ell);
  }
  ExactCovariance exact(dim);
  run(&exact, dim);
  table.Print(std::cout);
  std::cout << "\nExpected shape ([19]): FD/iSVD dominate per stored row; "
               "RP/HASH need\nlarger ell; hashing has the cheapest updates; "
               "ExactCov is error-free at\nd^2 space.\n";
  return 0;
}
