// Table 1 reproduction: the paper's comparison of the three headline
// sliding-window sketches — SWR, LM-FD, DI-FD — showing both the
// theoretical rows (quoted) and measured behaviour (update time, sketch
// size, covariance error, interpretability) on a common workload.
//
//   ./table1_summary [--scale=smoke|paper] [--ell=32]
#include <iostream>

#include "bench_util.h"
#include "eval/report.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto scale = bench::ScaleFromFlags(flags);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 32));

  // BIBD (R = 1) keeps all three algorithms in their supported regime —
  // DI-FD is sequence-only and wants bounded norms.
  bench::Workload workload = bench::MakeBibd(scale);

  bench::SweepOptions options;
  options.algorithms = {"swr", "lm-fd", "di-fd"};
  options.ells = {ell};
  options.num_checkpoints = 6;
  auto points = bench::RunSweep(workload, options);

  PrintBanner(std::cout, "Table 1: sliding-window matrix sketches compared");
  std::cout << "measured on " << workload.name << " (n=" << workload.rows
            << ", d=" << workload.dim
            << ", window=" << workload.window.ToString() << ", ell=" << ell
            << ")\n\n";

  Table table({"sketch", "theory size", "theory update", "window types",
               "B subset of A", "needs R", "measured rows", "avg err",
               "update ns"});
  auto theory = [&](const std::string& algo) -> std::vector<std::string> {
    if (algo == "swr") {
      return {"SWR", "(d/eps^2) log NR", "(d/eps^2) loglog NR",
              "sequence+time", "yes", "no"};
    }
    if (algo == "lm-fd") {
      return {"LM-FD", "(1/eps^2) log epsNR", "d log epsNR",
              "sequence+time", "no", "yes"};
    }
    return {"DI-FD", "(R/eps) log (R/eps)", "(d/eps) log (R/eps)",
            "sequence", "no", "yes"};
  };
  for (const auto& p : points) {
    auto row = theory(p.algorithm);
    row.push_back(Table::Int(static_cast<long long>(p.result.max_rows_stored)));
    row.push_back(Table::Num(p.result.avg_err));
    row.push_back(Table::Num(p.result.avg_update_ns));
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}
