// Table 2 reproduction: the sequence-window datasets (SYNTHETIC, BIBD,
// PAMAP) with measured n, d, N and the observed norm ratio R = max / min
// squared row norm (the quantity Table 2 reports).
//
//   ./table2_datasets [--scale=smoke|paper]
#include <algorithm>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "eval/report.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto scale = bench::ScaleFromFlags(flags);

  PrintBanner(std::cout, "Table 2: data sets for sequence-based windows");
  Table table({"data set", "total rows n", "d", "N", "measured ratio R"});
  for (auto make : {bench::MakeSynthetic, bench::MakeBibd, bench::MakePamap}) {
    bench::Workload w = make(scale);
    auto stream = w.make_stream();
    double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
    size_t rows = 0;
    while (auto row = stream->Next()) {
      const double v = row->NormSq();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      ++rows;
    }
    table.AddRow({w.name, Table::Int(static_cast<long long>(rows)),
                  Table::Int(static_cast<long long>(w.dim)),
                  Table::Int(static_cast<long long>(w.window.extent())),
                  Table::Num(hi / lo)});
  }
  table.Print(std::cout);
  std::cout << "\npaper's Table 2: SYNTHETIC R=8.35, BIBD R=1, "
               "PAMAP R=90089\n";
  return 0;
}
