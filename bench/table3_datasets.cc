// Table 3 reproduction: the time-window datasets (WIKI, RAIL) with
// measured n, d, delta, average rows per window N_w and norm ratio R.
//
//   ./table3_datasets [--scale=smoke|paper]
#include <algorithm>
#include <deque>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "eval/report.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto scale = bench::ScaleFromFlags(flags);

  PrintBanner(std::cout, "Table 3: data sets for time-based windows");
  Table table({"data set", "rows n", "d", "delta", "avg N_w", "max N_w",
               "measured ratio R"});
  for (auto make : {bench::MakeWiki, bench::MakeRail}) {
    bench::Workload w = make(scale);
    auto stream = w.make_stream();
    const double delta = w.window.extent();
    double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
    size_t rows = 0;
    std::deque<double> in_window;
    size_t max_nw = 0;
    double nw_sum = 0.0;
    size_t nw_samples = 0;
    while (auto row = stream->Next()) {
      const double v = row->NormSq();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      ++rows;
      in_window.push_back(row->ts);
      while (!in_window.empty() && in_window.front() < row->ts - delta) {
        in_window.pop_front();
      }
      max_nw = std::max(max_nw, in_window.size());
      if (rows % 97 == 0) {
        nw_sum += static_cast<double>(in_window.size());
        ++nw_samples;
      }
    }
    table.AddRow({w.name, Table::Int(static_cast<long long>(rows)),
                  Table::Int(static_cast<long long>(w.dim)),
                  Table::Num(delta),
                  Table::Num(nw_samples ? nw_sum / nw_samples : 0.0),
                  Table::Int(static_cast<long long>(max_nw)),
                  Table::Num(hi / lo)});
  }
  table.Print(std::cout);
  std::cout << "\npaper's Table 3: WIKI d=7047 delta=578 R=422.81; "
               "RAIL d=2586 delta=5000 R=12\n";
  return 0;
}
