file(REMOVE_RECURSE
  "CMakeFiles/ablate_eh_epsilon.dir/ablate_eh_epsilon.cc.o"
  "CMakeFiles/ablate_eh_epsilon.dir/ablate_eh_epsilon.cc.o.d"
  "ablate_eh_epsilon"
  "ablate_eh_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_eh_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
