# Empty dependencies file for ablate_eh_epsilon.
# This may be replaced when dependencies are built.
