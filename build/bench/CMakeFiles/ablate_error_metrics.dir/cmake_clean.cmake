file(REMOVE_RECURSE
  "CMakeFiles/ablate_error_metrics.dir/ablate_error_metrics.cc.o"
  "CMakeFiles/ablate_error_metrics.dir/ablate_error_metrics.cc.o.d"
  "ablate_error_metrics"
  "ablate_error_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_error_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
