# Empty dependencies file for ablate_error_metrics.
# This may be replaced when dependencies are built.
