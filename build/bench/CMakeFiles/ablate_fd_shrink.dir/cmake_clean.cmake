file(REMOVE_RECURSE
  "CMakeFiles/ablate_fd_shrink.dir/ablate_fd_shrink.cc.o"
  "CMakeFiles/ablate_fd_shrink.dir/ablate_fd_shrink.cc.o.d"
  "ablate_fd_shrink"
  "ablate_fd_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fd_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
