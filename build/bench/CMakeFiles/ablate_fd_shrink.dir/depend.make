# Empty dependencies file for ablate_fd_shrink.
# This may be replaced when dependencies are built.
