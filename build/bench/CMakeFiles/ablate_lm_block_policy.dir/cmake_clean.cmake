file(REMOVE_RECURSE
  "CMakeFiles/ablate_lm_block_policy.dir/ablate_lm_block_policy.cc.o"
  "CMakeFiles/ablate_lm_block_policy.dir/ablate_lm_block_policy.cc.o.d"
  "ablate_lm_block_policy"
  "ablate_lm_block_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_lm_block_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
