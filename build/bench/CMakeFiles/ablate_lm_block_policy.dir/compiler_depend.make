# Empty compiler generated dependencies file for ablate_lm_block_policy.
# This may be replaced when dependencies are built.
