# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablate_lm_block_policy.
