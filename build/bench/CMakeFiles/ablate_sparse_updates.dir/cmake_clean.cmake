file(REMOVE_RECURSE
  "CMakeFiles/ablate_sparse_updates.dir/ablate_sparse_updates.cc.o"
  "CMakeFiles/ablate_sparse_updates.dir/ablate_sparse_updates.cc.o.d"
  "ablate_sparse_updates"
  "ablate_sparse_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sparse_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
