# Empty dependencies file for ablate_sparse_updates.
# This may be replaced when dependencies are built.
