file(REMOVE_RECURSE
  "CMakeFiles/ablate_swr_shared_rows.dir/ablate_swr_shared_rows.cc.o"
  "CMakeFiles/ablate_swr_shared_rows.dir/ablate_swr_shared_rows.cc.o.d"
  "ablate_swr_shared_rows"
  "ablate_swr_shared_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_swr_shared_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
