# Empty dependencies file for ablate_swr_shared_rows.
# This may be replaced when dependencies are built.
