file(REMOVE_RECURSE
  "CMakeFiles/appendix_variants.dir/appendix_variants.cc.o"
  "CMakeFiles/appendix_variants.dir/appendix_variants.cc.o.d"
  "appendix_variants"
  "appendix_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
