# Empty dependencies file for appendix_variants.
# This may be replaced when dependencies are built.
