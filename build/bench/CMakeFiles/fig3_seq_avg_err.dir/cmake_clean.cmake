file(REMOVE_RECURSE
  "CMakeFiles/fig3_seq_avg_err.dir/fig3_seq_avg_err.cc.o"
  "CMakeFiles/fig3_seq_avg_err.dir/fig3_seq_avg_err.cc.o.d"
  "fig3_seq_avg_err"
  "fig3_seq_avg_err.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_seq_avg_err.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
