# Empty dependencies file for fig3_seq_avg_err.
# This may be replaced when dependencies are built.
