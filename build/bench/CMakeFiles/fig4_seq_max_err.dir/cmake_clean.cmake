file(REMOVE_RECURSE
  "CMakeFiles/fig4_seq_max_err.dir/fig4_seq_max_err.cc.o"
  "CMakeFiles/fig4_seq_max_err.dir/fig4_seq_max_err.cc.o.d"
  "fig4_seq_max_err"
  "fig4_seq_max_err.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_seq_max_err.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
