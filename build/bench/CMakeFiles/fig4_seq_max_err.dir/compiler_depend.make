# Empty compiler generated dependencies file for fig4_seq_max_err.
# This may be replaced when dependencies are built.
