file(REMOVE_RECURSE
  "CMakeFiles/fig5_seq_update_cost.dir/fig5_seq_update_cost.cc.o"
  "CMakeFiles/fig5_seq_update_cost.dir/fig5_seq_update_cost.cc.o.d"
  "fig5_seq_update_cost"
  "fig5_seq_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_seq_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
