# Empty compiler generated dependencies file for fig5_seq_update_cost.
# This may be replaced when dependencies are built.
