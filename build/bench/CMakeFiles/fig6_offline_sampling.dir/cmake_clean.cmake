file(REMOVE_RECURSE
  "CMakeFiles/fig6_offline_sampling.dir/fig6_offline_sampling.cc.o"
  "CMakeFiles/fig6_offline_sampling.dir/fig6_offline_sampling.cc.o.d"
  "fig6_offline_sampling"
  "fig6_offline_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_offline_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
