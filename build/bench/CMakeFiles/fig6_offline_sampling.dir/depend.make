# Empty dependencies file for fig6_offline_sampling.
# This may be replaced when dependencies are built.
