file(REMOVE_RECURSE
  "CMakeFiles/fig7_time_avg_err.dir/fig7_time_avg_err.cc.o"
  "CMakeFiles/fig7_time_avg_err.dir/fig7_time_avg_err.cc.o.d"
  "fig7_time_avg_err"
  "fig7_time_avg_err.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_time_avg_err.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
