# Empty compiler generated dependencies file for fig7_time_avg_err.
# This may be replaced when dependencies are built.
