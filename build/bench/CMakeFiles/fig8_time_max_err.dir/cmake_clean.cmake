file(REMOVE_RECURSE
  "CMakeFiles/fig8_time_max_err.dir/fig8_time_max_err.cc.o"
  "CMakeFiles/fig8_time_max_err.dir/fig8_time_max_err.cc.o.d"
  "fig8_time_max_err"
  "fig8_time_max_err.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_time_max_err.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
