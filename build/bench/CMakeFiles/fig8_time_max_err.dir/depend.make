# Empty dependencies file for fig8_time_max_err.
# This may be replaced when dependencies are built.
