file(REMOVE_RECURSE
  "CMakeFiles/fig9_time_update_cost.dir/fig9_time_update_cost.cc.o"
  "CMakeFiles/fig9_time_update_cost.dir/fig9_time_update_cost.cc.o.d"
  "fig9_time_update_cost"
  "fig9_time_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_time_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
