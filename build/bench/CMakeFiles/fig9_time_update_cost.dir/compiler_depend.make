# Empty compiler generated dependencies file for fig9_time_update_cost.
# This may be replaced when dependencies are built.
