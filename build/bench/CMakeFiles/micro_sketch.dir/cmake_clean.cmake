file(REMOVE_RECURSE
  "CMakeFiles/micro_sketch.dir/micro_sketch.cc.o"
  "CMakeFiles/micro_sketch.dir/micro_sketch.cc.o.d"
  "micro_sketch"
  "micro_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
