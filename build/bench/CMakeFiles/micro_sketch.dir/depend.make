# Empty dependencies file for micro_sketch.
# This may be replaced when dependencies are built.
