file(REMOVE_RECURSE
  "CMakeFiles/micro_window.dir/micro_window.cc.o"
  "CMakeFiles/micro_window.dir/micro_window.cc.o.d"
  "micro_window"
  "micro_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
