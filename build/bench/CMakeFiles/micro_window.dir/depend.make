# Empty dependencies file for micro_window.
# This may be replaced when dependencies are built.
