file(REMOVE_RECURSE
  "CMakeFiles/streaming_baselines.dir/streaming_baselines.cc.o"
  "CMakeFiles/streaming_baselines.dir/streaming_baselines.cc.o.d"
  "streaming_baselines"
  "streaming_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
