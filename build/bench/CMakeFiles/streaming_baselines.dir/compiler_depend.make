# Empty compiler generated dependencies file for streaming_baselines.
# This may be replaced when dependencies are built.
