file(REMOVE_RECURSE
  "CMakeFiles/swsketch_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/swsketch_bench_util.dir/bench_util.cc.o.d"
  "libswsketch_bench_util.a"
  "libswsketch_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
