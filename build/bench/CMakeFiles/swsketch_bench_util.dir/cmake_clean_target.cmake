file(REMOVE_RECURSE
  "libswsketch_bench_util.a"
)
