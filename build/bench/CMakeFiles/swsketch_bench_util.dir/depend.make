# Empty dependencies file for swsketch_bench_util.
# This may be replaced when dependencies are built.
