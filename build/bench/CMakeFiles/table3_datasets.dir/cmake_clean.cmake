file(REMOVE_RECURSE
  "CMakeFiles/table3_datasets.dir/table3_datasets.cc.o"
  "CMakeFiles/table3_datasets.dir/table3_datasets.cc.o.d"
  "table3_datasets"
  "table3_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
