# Empty dependencies file for table3_datasets.
# This may be replaced when dependencies are built.
