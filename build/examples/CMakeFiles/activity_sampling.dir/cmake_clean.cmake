file(REMOVE_RECURSE
  "CMakeFiles/activity_sampling.dir/activity_sampling.cpp.o"
  "CMakeFiles/activity_sampling.dir/activity_sampling.cpp.o.d"
  "activity_sampling"
  "activity_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
