# Empty compiler generated dependencies file for activity_sampling.
# This may be replaced when dependencies are built.
