file(REMOVE_RECURSE
  "CMakeFiles/anomaly_pca.dir/anomaly_pca.cpp.o"
  "CMakeFiles/anomaly_pca.dir/anomaly_pca.cpp.o.d"
  "anomaly_pca"
  "anomaly_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
