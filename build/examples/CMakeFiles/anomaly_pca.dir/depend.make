# Empty dependencies file for anomaly_pca.
# This may be replaced when dependencies are built.
