file(REMOVE_RECURSE
  "CMakeFiles/csv_sketch.dir/csv_sketch.cpp.o"
  "CMakeFiles/csv_sketch.dir/csv_sketch.cpp.o.d"
  "csv_sketch"
  "csv_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
