# Empty dependencies file for csv_sketch.
# This may be replaced when dependencies are built.
