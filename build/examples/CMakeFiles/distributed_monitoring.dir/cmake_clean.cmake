file(REMOVE_RECURSE
  "CMakeFiles/distributed_monitoring.dir/distributed_monitoring.cpp.o"
  "CMakeFiles/distributed_monitoring.dir/distributed_monitoring.cpp.o.d"
  "distributed_monitoring"
  "distributed_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
