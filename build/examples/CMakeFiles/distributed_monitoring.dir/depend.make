# Empty dependencies file for distributed_monitoring.
# This may be replaced when dependencies are built.
