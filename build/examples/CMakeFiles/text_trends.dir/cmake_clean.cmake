file(REMOVE_RECURSE
  "CMakeFiles/text_trends.dir/text_trends.cpp.o"
  "CMakeFiles/text_trends.dir/text_trends.cpp.o.d"
  "text_trends"
  "text_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
