# Empty dependencies file for text_trends.
# This may be replaced when dependencies are built.
