
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_rank_k.cc" "src/CMakeFiles/swsketch_core.dir/core/best_rank_k.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/best_rank_k.cc.o.d"
  "/root/repo/src/core/dyadic_interval.cc" "src/CMakeFiles/swsketch_core.dir/core/dyadic_interval.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/dyadic_interval.cc.o.d"
  "/root/repo/src/core/exact_window.cc" "src/CMakeFiles/swsketch_core.dir/core/exact_window.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/exact_window.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/swsketch_core.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/factory.cc.o.d"
  "/root/repo/src/core/logarithmic_method.cc" "src/CMakeFiles/swsketch_core.dir/core/logarithmic_method.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/logarithmic_method.cc.o.d"
  "/root/repo/src/core/swor.cc" "src/CMakeFiles/swsketch_core.dir/core/swor.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/swor.cc.o.d"
  "/root/repo/src/core/swr.cc" "src/CMakeFiles/swsketch_core.dir/core/swr.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/swr.cc.o.d"
  "/root/repo/src/core/window_pca.cc" "src/CMakeFiles/swsketch_core.dir/core/window_pca.cc.o" "gcc" "src/CMakeFiles/swsketch_core.dir/core/window_pca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swsketch_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
