file(REMOVE_RECURSE
  "CMakeFiles/swsketch_core.dir/core/best_rank_k.cc.o"
  "CMakeFiles/swsketch_core.dir/core/best_rank_k.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/dyadic_interval.cc.o"
  "CMakeFiles/swsketch_core.dir/core/dyadic_interval.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/exact_window.cc.o"
  "CMakeFiles/swsketch_core.dir/core/exact_window.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/factory.cc.o"
  "CMakeFiles/swsketch_core.dir/core/factory.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/logarithmic_method.cc.o"
  "CMakeFiles/swsketch_core.dir/core/logarithmic_method.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/swor.cc.o"
  "CMakeFiles/swsketch_core.dir/core/swor.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/swr.cc.o"
  "CMakeFiles/swsketch_core.dir/core/swr.cc.o.d"
  "CMakeFiles/swsketch_core.dir/core/window_pca.cc.o"
  "CMakeFiles/swsketch_core.dir/core/window_pca.cc.o.d"
  "libswsketch_core.a"
  "libswsketch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
