file(REMOVE_RECURSE
  "libswsketch_core.a"
)
