# Empty dependencies file for swsketch_core.
# This may be replaced when dependencies are built.
