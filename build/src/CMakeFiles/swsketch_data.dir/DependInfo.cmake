
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/bibd.cc" "src/CMakeFiles/swsketch_data.dir/data/bibd.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/bibd.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/swsketch_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/pamap.cc" "src/CMakeFiles/swsketch_data.dir/data/pamap.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/pamap.cc.o.d"
  "/root/repo/src/data/rail.cc" "src/CMakeFiles/swsketch_data.dir/data/rail.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/rail.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/swsketch_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/wiki.cc" "src/CMakeFiles/swsketch_data.dir/data/wiki.cc.o" "gcc" "src/CMakeFiles/swsketch_data.dir/data/wiki.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swsketch_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
