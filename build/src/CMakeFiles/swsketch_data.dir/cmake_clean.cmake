file(REMOVE_RECURSE
  "CMakeFiles/swsketch_data.dir/data/bibd.cc.o"
  "CMakeFiles/swsketch_data.dir/data/bibd.cc.o.d"
  "CMakeFiles/swsketch_data.dir/data/csv.cc.o"
  "CMakeFiles/swsketch_data.dir/data/csv.cc.o.d"
  "CMakeFiles/swsketch_data.dir/data/pamap.cc.o"
  "CMakeFiles/swsketch_data.dir/data/pamap.cc.o.d"
  "CMakeFiles/swsketch_data.dir/data/rail.cc.o"
  "CMakeFiles/swsketch_data.dir/data/rail.cc.o.d"
  "CMakeFiles/swsketch_data.dir/data/synthetic.cc.o"
  "CMakeFiles/swsketch_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/swsketch_data.dir/data/wiki.cc.o"
  "CMakeFiles/swsketch_data.dir/data/wiki.cc.o.d"
  "libswsketch_data.a"
  "libswsketch_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
