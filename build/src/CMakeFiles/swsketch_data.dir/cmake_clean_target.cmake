file(REMOVE_RECURSE
  "libswsketch_data.a"
)
