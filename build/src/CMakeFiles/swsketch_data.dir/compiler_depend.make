# Empty compiler generated dependencies file for swsketch_data.
# This may be replaced when dependencies are built.
