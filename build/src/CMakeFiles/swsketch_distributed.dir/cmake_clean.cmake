file(REMOVE_RECURSE
  "CMakeFiles/swsketch_distributed.dir/distributed/distributed.cc.o"
  "CMakeFiles/swsketch_distributed.dir/distributed/distributed.cc.o.d"
  "libswsketch_distributed.a"
  "libswsketch_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
