file(REMOVE_RECURSE
  "libswsketch_distributed.a"
)
