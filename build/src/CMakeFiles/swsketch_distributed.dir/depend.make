# Empty dependencies file for swsketch_distributed.
# This may be replaced when dependencies are built.
