file(REMOVE_RECURSE
  "CMakeFiles/swsketch_eval.dir/eval/cov_err.cc.o"
  "CMakeFiles/swsketch_eval.dir/eval/cov_err.cc.o.d"
  "CMakeFiles/swsketch_eval.dir/eval/harness.cc.o"
  "CMakeFiles/swsketch_eval.dir/eval/harness.cc.o.d"
  "CMakeFiles/swsketch_eval.dir/eval/report.cc.o"
  "CMakeFiles/swsketch_eval.dir/eval/report.cc.o.d"
  "libswsketch_eval.a"
  "libswsketch_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
