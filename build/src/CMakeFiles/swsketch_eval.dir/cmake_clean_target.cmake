file(REMOVE_RECURSE
  "libswsketch_eval.a"
)
