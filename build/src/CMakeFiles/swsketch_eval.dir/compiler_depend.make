# Empty compiler generated dependencies file for swsketch_eval.
# This may be replaced when dependencies are built.
