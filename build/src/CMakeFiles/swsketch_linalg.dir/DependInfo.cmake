
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/jacobi_eigen.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/jacobi_eigen.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/jacobi_eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/power_iteration.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/power_iteration.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/power_iteration.cc.o.d"
  "/root/repo/src/linalg/sparse_vector.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/sparse_vector.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/sparse_vector.cc.o.d"
  "/root/repo/src/linalg/subspace_iteration.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/subspace_iteration.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/subspace_iteration.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/svd.cc.o.d"
  "/root/repo/src/linalg/tridiag_eigen.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/tridiag_eigen.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/tridiag_eigen.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/swsketch_linalg.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/swsketch_linalg.dir/linalg/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swsketch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
