file(REMOVE_RECURSE
  "CMakeFiles/swsketch_linalg.dir/linalg/jacobi_eigen.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/jacobi_eigen.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/power_iteration.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/power_iteration.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/sparse_vector.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/sparse_vector.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/subspace_iteration.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/subspace_iteration.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/svd.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/svd.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/tridiag_eigen.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/tridiag_eigen.cc.o.d"
  "CMakeFiles/swsketch_linalg.dir/linalg/vector_ops.cc.o"
  "CMakeFiles/swsketch_linalg.dir/linalg/vector_ops.cc.o.d"
  "libswsketch_linalg.a"
  "libswsketch_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
