file(REMOVE_RECURSE
  "libswsketch_linalg.a"
)
