# Empty compiler generated dependencies file for swsketch_linalg.
# This may be replaced when dependencies are built.
