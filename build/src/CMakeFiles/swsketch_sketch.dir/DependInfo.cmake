
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/exact_covariance.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/exact_covariance.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/exact_covariance.cc.o.d"
  "/root/repo/src/sketch/frequent_directions.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/frequent_directions.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/frequent_directions.cc.o.d"
  "/root/repo/src/sketch/hash_sketch.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/hash_sketch.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/hash_sketch.cc.o.d"
  "/root/repo/src/sketch/incremental_svd.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/incremental_svd.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/incremental_svd.cc.o.d"
  "/root/repo/src/sketch/priority_sampler.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/priority_sampler.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/priority_sampler.cc.o.d"
  "/root/repo/src/sketch/random_projection.cc" "src/CMakeFiles/swsketch_sketch.dir/sketch/random_projection.cc.o" "gcc" "src/CMakeFiles/swsketch_sketch.dir/sketch/random_projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swsketch_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swsketch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
