file(REMOVE_RECURSE
  "CMakeFiles/swsketch_sketch.dir/sketch/exact_covariance.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/exact_covariance.cc.o.d"
  "CMakeFiles/swsketch_sketch.dir/sketch/frequent_directions.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/frequent_directions.cc.o.d"
  "CMakeFiles/swsketch_sketch.dir/sketch/hash_sketch.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/hash_sketch.cc.o.d"
  "CMakeFiles/swsketch_sketch.dir/sketch/incremental_svd.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/incremental_svd.cc.o.d"
  "CMakeFiles/swsketch_sketch.dir/sketch/priority_sampler.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/priority_sampler.cc.o.d"
  "CMakeFiles/swsketch_sketch.dir/sketch/random_projection.cc.o"
  "CMakeFiles/swsketch_sketch.dir/sketch/random_projection.cc.o.d"
  "libswsketch_sketch.a"
  "libswsketch_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
