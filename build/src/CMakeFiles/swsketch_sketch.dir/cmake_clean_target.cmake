file(REMOVE_RECURSE
  "libswsketch_sketch.a"
)
