# Empty dependencies file for swsketch_sketch.
# This may be replaced when dependencies are built.
