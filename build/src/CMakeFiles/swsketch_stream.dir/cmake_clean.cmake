file(REMOVE_RECURSE
  "CMakeFiles/swsketch_stream.dir/stream/incremental_gram.cc.o"
  "CMakeFiles/swsketch_stream.dir/stream/incremental_gram.cc.o.d"
  "CMakeFiles/swsketch_stream.dir/stream/window.cc.o"
  "CMakeFiles/swsketch_stream.dir/stream/window.cc.o.d"
  "CMakeFiles/swsketch_stream.dir/stream/window_buffer.cc.o"
  "CMakeFiles/swsketch_stream.dir/stream/window_buffer.cc.o.d"
  "libswsketch_stream.a"
  "libswsketch_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
