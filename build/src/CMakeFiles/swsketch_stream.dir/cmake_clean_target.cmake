file(REMOVE_RECURSE
  "libswsketch_stream.a"
)
