# Empty dependencies file for swsketch_stream.
# This may be replaced when dependencies are built.
