file(REMOVE_RECURSE
  "CMakeFiles/swsketch_util.dir/util/exponential_histogram.cc.o"
  "CMakeFiles/swsketch_util.dir/util/exponential_histogram.cc.o.d"
  "CMakeFiles/swsketch_util.dir/util/flags.cc.o"
  "CMakeFiles/swsketch_util.dir/util/flags.cc.o.d"
  "CMakeFiles/swsketch_util.dir/util/random.cc.o"
  "CMakeFiles/swsketch_util.dir/util/random.cc.o.d"
  "libswsketch_util.a"
  "libswsketch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsketch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
