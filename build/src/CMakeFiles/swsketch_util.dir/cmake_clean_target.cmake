file(REMOVE_RECURSE
  "libswsketch_util.a"
)
