# Empty dependencies file for swsketch_util.
# This may be replaced when dependencies are built.
