file(REMOVE_RECURSE
  "CMakeFiles/core_concurrent_sketch_test.dir/core_concurrent_sketch_test.cc.o"
  "CMakeFiles/core_concurrent_sketch_test.dir/core_concurrent_sketch_test.cc.o.d"
  "core_concurrent_sketch_test"
  "core_concurrent_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_concurrent_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
