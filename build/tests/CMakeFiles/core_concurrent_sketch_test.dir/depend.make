# Empty dependencies file for core_concurrent_sketch_test.
# This may be replaced when dependencies are built.
