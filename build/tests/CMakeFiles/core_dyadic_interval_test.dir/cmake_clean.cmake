file(REMOVE_RECURSE
  "CMakeFiles/core_dyadic_interval_test.dir/core_dyadic_interval_test.cc.o"
  "CMakeFiles/core_dyadic_interval_test.dir/core_dyadic_interval_test.cc.o.d"
  "core_dyadic_interval_test"
  "core_dyadic_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dyadic_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
