# Empty compiler generated dependencies file for core_dyadic_interval_test.
# This may be replaced when dependencies are built.
