file(REMOVE_RECURSE
  "CMakeFiles/core_exact_best_test.dir/core_exact_best_test.cc.o"
  "CMakeFiles/core_exact_best_test.dir/core_exact_best_test.cc.o.d"
  "core_exact_best_test"
  "core_exact_best_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_exact_best_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
