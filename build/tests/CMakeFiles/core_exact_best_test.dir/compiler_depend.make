# Empty compiler generated dependencies file for core_exact_best_test.
# This may be replaced when dependencies are built.
