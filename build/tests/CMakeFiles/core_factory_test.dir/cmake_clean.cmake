file(REMOVE_RECURSE
  "CMakeFiles/core_factory_test.dir/core_factory_test.cc.o"
  "CMakeFiles/core_factory_test.dir/core_factory_test.cc.o.d"
  "core_factory_test"
  "core_factory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
