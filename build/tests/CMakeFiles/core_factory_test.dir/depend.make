# Empty dependencies file for core_factory_test.
# This may be replaced when dependencies are built.
