file(REMOVE_RECURSE
  "CMakeFiles/core_frobenius_tracker_test.dir/core_frobenius_tracker_test.cc.o"
  "CMakeFiles/core_frobenius_tracker_test.dir/core_frobenius_tracker_test.cc.o.d"
  "core_frobenius_tracker_test"
  "core_frobenius_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_frobenius_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
