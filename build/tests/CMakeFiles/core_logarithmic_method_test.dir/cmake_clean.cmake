file(REMOVE_RECURSE
  "CMakeFiles/core_logarithmic_method_test.dir/core_logarithmic_method_test.cc.o"
  "CMakeFiles/core_logarithmic_method_test.dir/core_logarithmic_method_test.cc.o.d"
  "core_logarithmic_method_test"
  "core_logarithmic_method_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_logarithmic_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
