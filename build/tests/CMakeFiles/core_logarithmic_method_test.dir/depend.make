# Empty dependencies file for core_logarithmic_method_test.
# This may be replaced when dependencies are built.
