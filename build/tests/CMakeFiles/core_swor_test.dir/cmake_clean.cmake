file(REMOVE_RECURSE
  "CMakeFiles/core_swor_test.dir/core_swor_test.cc.o"
  "CMakeFiles/core_swor_test.dir/core_swor_test.cc.o.d"
  "core_swor_test"
  "core_swor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_swor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
