# Empty compiler generated dependencies file for core_swor_test.
# This may be replaced when dependencies are built.
