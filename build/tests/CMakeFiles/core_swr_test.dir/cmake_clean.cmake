file(REMOVE_RECURSE
  "CMakeFiles/core_swr_test.dir/core_swr_test.cc.o"
  "CMakeFiles/core_swr_test.dir/core_swr_test.cc.o.d"
  "core_swr_test"
  "core_swr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_swr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
