# Empty dependencies file for core_swr_test.
# This may be replaced when dependencies are built.
