file(REMOVE_RECURSE
  "CMakeFiles/core_window_pca_test.dir/core_window_pca_test.cc.o"
  "CMakeFiles/core_window_pca_test.dir/core_window_pca_test.cc.o.d"
  "core_window_pca_test"
  "core_window_pca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_window_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
