# Empty compiler generated dependencies file for core_window_pca_test.
# This may be replaced when dependencies are built.
