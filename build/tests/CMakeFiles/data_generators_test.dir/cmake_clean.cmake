file(REMOVE_RECURSE
  "CMakeFiles/data_generators_test.dir/data_generators_test.cc.o"
  "CMakeFiles/data_generators_test.dir/data_generators_test.cc.o.d"
  "data_generators_test"
  "data_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
