# Empty dependencies file for data_generators_test.
# This may be replaced when dependencies are built.
