file(REMOVE_RECURSE
  "CMakeFiles/data_sparse_stream_test.dir/data_sparse_stream_test.cc.o"
  "CMakeFiles/data_sparse_stream_test.dir/data_sparse_stream_test.cc.o.d"
  "data_sparse_stream_test"
  "data_sparse_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_sparse_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
