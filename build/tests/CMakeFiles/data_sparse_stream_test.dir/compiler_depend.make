# Empty compiler generated dependencies file for data_sparse_stream_test.
# This may be replaced when dependencies are built.
