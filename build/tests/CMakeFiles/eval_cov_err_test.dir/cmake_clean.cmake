file(REMOVE_RECURSE
  "CMakeFiles/eval_cov_err_test.dir/eval_cov_err_test.cc.o"
  "CMakeFiles/eval_cov_err_test.dir/eval_cov_err_test.cc.o.d"
  "eval_cov_err_test"
  "eval_cov_err_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cov_err_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
