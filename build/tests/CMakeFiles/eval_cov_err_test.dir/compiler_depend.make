# Empty compiler generated dependencies file for eval_cov_err_test.
# This may be replaced when dependencies are built.
