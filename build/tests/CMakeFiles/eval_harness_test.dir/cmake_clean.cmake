file(REMOVE_RECURSE
  "CMakeFiles/eval_harness_test.dir/eval_harness_test.cc.o"
  "CMakeFiles/eval_harness_test.dir/eval_harness_test.cc.o.d"
  "eval_harness_test"
  "eval_harness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
