# Empty dependencies file for eval_harness_test.
# This may be replaced when dependencies are built.
