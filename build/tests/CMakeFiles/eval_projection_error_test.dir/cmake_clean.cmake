file(REMOVE_RECURSE
  "CMakeFiles/eval_projection_error_test.dir/eval_projection_error_test.cc.o"
  "CMakeFiles/eval_projection_error_test.dir/eval_projection_error_test.cc.o.d"
  "eval_projection_error_test"
  "eval_projection_error_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_projection_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
