# Empty dependencies file for eval_projection_error_test.
# This may be replaced when dependencies are built.
