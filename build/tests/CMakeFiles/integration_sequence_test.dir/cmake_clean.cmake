file(REMOVE_RECURSE
  "CMakeFiles/integration_sequence_test.dir/integration_sequence_test.cc.o"
  "CMakeFiles/integration_sequence_test.dir/integration_sequence_test.cc.o.d"
  "integration_sequence_test"
  "integration_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
