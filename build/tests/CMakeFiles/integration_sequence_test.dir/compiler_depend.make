# Empty compiler generated dependencies file for integration_sequence_test.
# This may be replaced when dependencies are built.
