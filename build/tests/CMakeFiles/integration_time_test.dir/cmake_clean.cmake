file(REMOVE_RECURSE
  "CMakeFiles/integration_time_test.dir/integration_time_test.cc.o"
  "CMakeFiles/integration_time_test.dir/integration_time_test.cc.o.d"
  "integration_time_test"
  "integration_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
