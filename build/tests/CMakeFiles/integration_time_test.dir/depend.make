# Empty dependencies file for integration_time_test.
# This may be replaced when dependencies are built.
