file(REMOVE_RECURSE
  "CMakeFiles/linalg_jacobi_eigen_test.dir/linalg_jacobi_eigen_test.cc.o"
  "CMakeFiles/linalg_jacobi_eigen_test.dir/linalg_jacobi_eigen_test.cc.o.d"
  "linalg_jacobi_eigen_test"
  "linalg_jacobi_eigen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_jacobi_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
