# Empty dependencies file for linalg_jacobi_eigen_test.
# This may be replaced when dependencies are built.
