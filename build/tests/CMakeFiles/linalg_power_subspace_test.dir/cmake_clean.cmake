file(REMOVE_RECURSE
  "CMakeFiles/linalg_power_subspace_test.dir/linalg_power_subspace_test.cc.o"
  "CMakeFiles/linalg_power_subspace_test.dir/linalg_power_subspace_test.cc.o.d"
  "linalg_power_subspace_test"
  "linalg_power_subspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_power_subspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
