# Empty compiler generated dependencies file for linalg_power_subspace_test.
# This may be replaced when dependencies are built.
