# Empty dependencies file for linalg_tridiag_eigen_test.
# This may be replaced when dependencies are built.
