file(REMOVE_RECURSE
  "CMakeFiles/property_differential_test.dir/property_differential_test.cc.o"
  "CMakeFiles/property_differential_test.dir/property_differential_test.cc.o.d"
  "property_differential_test"
  "property_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
