# Empty dependencies file for property_differential_test.
# This may be replaced when dependencies are built.
