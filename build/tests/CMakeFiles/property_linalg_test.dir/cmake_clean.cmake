file(REMOVE_RECURSE
  "CMakeFiles/property_linalg_test.dir/property_linalg_test.cc.o"
  "CMakeFiles/property_linalg_test.dir/property_linalg_test.cc.o.d"
  "property_linalg_test"
  "property_linalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
