# Empty compiler generated dependencies file for property_linalg_test.
# This may be replaced when dependencies are built.
