file(REMOVE_RECURSE
  "CMakeFiles/property_samplers_test.dir/property_samplers_test.cc.o"
  "CMakeFiles/property_samplers_test.dir/property_samplers_test.cc.o.d"
  "property_samplers_test"
  "property_samplers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_samplers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
