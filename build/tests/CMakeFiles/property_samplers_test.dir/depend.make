# Empty dependencies file for property_samplers_test.
# This may be replaced when dependencies are built.
