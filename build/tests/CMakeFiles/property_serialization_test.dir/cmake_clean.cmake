file(REMOVE_RECURSE
  "CMakeFiles/property_serialization_test.dir/property_serialization_test.cc.o"
  "CMakeFiles/property_serialization_test.dir/property_serialization_test.cc.o.d"
  "property_serialization_test"
  "property_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
