# Empty compiler generated dependencies file for property_serialization_test.
# This may be replaced when dependencies are built.
