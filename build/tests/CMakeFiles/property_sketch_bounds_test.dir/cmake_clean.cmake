file(REMOVE_RECURSE
  "CMakeFiles/property_sketch_bounds_test.dir/property_sketch_bounds_test.cc.o"
  "CMakeFiles/property_sketch_bounds_test.dir/property_sketch_bounds_test.cc.o.d"
  "property_sketch_bounds_test"
  "property_sketch_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sketch_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
