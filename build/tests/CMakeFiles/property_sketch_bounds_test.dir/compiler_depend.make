# Empty compiler generated dependencies file for property_sketch_bounds_test.
# This may be replaced when dependencies are built.
