file(REMOVE_RECURSE
  "CMakeFiles/property_window_semantics_test.dir/property_window_semantics_test.cc.o"
  "CMakeFiles/property_window_semantics_test.dir/property_window_semantics_test.cc.o.d"
  "property_window_semantics_test"
  "property_window_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_window_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
