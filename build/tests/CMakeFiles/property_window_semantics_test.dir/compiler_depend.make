# Empty compiler generated dependencies file for property_window_semantics_test.
# This may be replaced when dependencies are built.
