file(REMOVE_RECURSE
  "CMakeFiles/shape_regression_test.dir/shape_regression_test.cc.o"
  "CMakeFiles/shape_regression_test.dir/shape_regression_test.cc.o.d"
  "shape_regression_test"
  "shape_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
