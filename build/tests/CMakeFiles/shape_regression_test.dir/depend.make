# Empty dependencies file for shape_regression_test.
# This may be replaced when dependencies are built.
