file(REMOVE_RECURSE
  "CMakeFiles/sketch_exact_covariance_test.dir/sketch_exact_covariance_test.cc.o"
  "CMakeFiles/sketch_exact_covariance_test.dir/sketch_exact_covariance_test.cc.o.d"
  "sketch_exact_covariance_test"
  "sketch_exact_covariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_exact_covariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
