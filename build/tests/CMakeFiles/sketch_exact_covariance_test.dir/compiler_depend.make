# Empty compiler generated dependencies file for sketch_exact_covariance_test.
# This may be replaced when dependencies are built.
