file(REMOVE_RECURSE
  "CMakeFiles/sketch_frequent_directions_test.dir/sketch_frequent_directions_test.cc.o"
  "CMakeFiles/sketch_frequent_directions_test.dir/sketch_frequent_directions_test.cc.o.d"
  "sketch_frequent_directions_test"
  "sketch_frequent_directions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_frequent_directions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
