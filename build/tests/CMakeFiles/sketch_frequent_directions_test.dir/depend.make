# Empty dependencies file for sketch_frequent_directions_test.
# This may be replaced when dependencies are built.
