file(REMOVE_RECURSE
  "CMakeFiles/sketch_incremental_svd_test.dir/sketch_incremental_svd_test.cc.o"
  "CMakeFiles/sketch_incremental_svd_test.dir/sketch_incremental_svd_test.cc.o.d"
  "sketch_incremental_svd_test"
  "sketch_incremental_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_incremental_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
