# Empty compiler generated dependencies file for sketch_incremental_svd_test.
# This may be replaced when dependencies are built.
