file(REMOVE_RECURSE
  "CMakeFiles/sketch_priority_sampler_test.dir/sketch_priority_sampler_test.cc.o"
  "CMakeFiles/sketch_priority_sampler_test.dir/sketch_priority_sampler_test.cc.o.d"
  "sketch_priority_sampler_test"
  "sketch_priority_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_priority_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
