# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sketch_priority_sampler_test.
