# Empty dependencies file for sketch_priority_sampler_test.
# This may be replaced when dependencies are built.
