file(REMOVE_RECURSE
  "CMakeFiles/sketch_rp_hash_test.dir/sketch_rp_hash_test.cc.o"
  "CMakeFiles/sketch_rp_hash_test.dir/sketch_rp_hash_test.cc.o.d"
  "sketch_rp_hash_test"
  "sketch_rp_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_rp_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
