# Empty dependencies file for sketch_rp_hash_test.
# This may be replaced when dependencies are built.
