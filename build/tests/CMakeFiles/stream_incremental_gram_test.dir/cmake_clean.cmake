file(REMOVE_RECURSE
  "CMakeFiles/stream_incremental_gram_test.dir/stream_incremental_gram_test.cc.o"
  "CMakeFiles/stream_incremental_gram_test.dir/stream_incremental_gram_test.cc.o.d"
  "stream_incremental_gram_test"
  "stream_incremental_gram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_incremental_gram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
