# Empty compiler generated dependencies file for stream_incremental_gram_test.
# This may be replaced when dependencies are built.
