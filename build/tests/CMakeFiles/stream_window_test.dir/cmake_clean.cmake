file(REMOVE_RECURSE
  "CMakeFiles/stream_window_test.dir/stream_window_test.cc.o"
  "CMakeFiles/stream_window_test.dir/stream_window_test.cc.o.d"
  "stream_window_test"
  "stream_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
