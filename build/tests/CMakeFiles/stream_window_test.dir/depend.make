# Empty dependencies file for stream_window_test.
# This may be replaced when dependencies are built.
