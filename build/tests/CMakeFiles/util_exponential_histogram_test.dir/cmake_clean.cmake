file(REMOVE_RECURSE
  "CMakeFiles/util_exponential_histogram_test.dir/util_exponential_histogram_test.cc.o"
  "CMakeFiles/util_exponential_histogram_test.dir/util_exponential_histogram_test.cc.o.d"
  "util_exponential_histogram_test"
  "util_exponential_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_exponential_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
