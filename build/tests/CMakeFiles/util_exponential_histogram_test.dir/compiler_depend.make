# Empty compiler generated dependencies file for util_exponential_histogram_test.
# This may be replaced when dependencies are built.
