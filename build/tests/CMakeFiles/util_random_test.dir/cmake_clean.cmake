file(REMOVE_RECURSE
  "CMakeFiles/util_random_test.dir/util_random_test.cc.o"
  "CMakeFiles/util_random_test.dir/util_random_test.cc.o.d"
  "util_random_test"
  "util_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
