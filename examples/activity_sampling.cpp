// Interpretable window samples on a sensor stream. The sampling sketches'
// key selling point (Table 1: "B ⊂ A") is that the approximation consists
// of actual stream rows — here we maintain an SWR sample over a PAMAP-like
// activity stream and show how the sampled rows track the currently
// dominant activity regime.
//
//   ./activity_sampling [--window=5000] [--ell=12]
#include <cstdio>

#include "core/swr.h"
#include "data/pamap.h"
#include "linalg/vector_ops.h"
#include "util/flags.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 5000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 12));

  PamapStream stream(PamapStream::Options{
      .rows = 60000, .window = window, .plant_skewed_window = false,
      .seed = 99});

  SwrSketch sketch(stream.dim(), WindowSpec::Sequence(window),
                   SwrSketch::Options{.ell = ell, .seed = 7});

  size_t i = 0;
  double window_mass = 0.0;  // For intensity context (decayed).
  std::printf(
      "Norm-proportional samples: vigorous activity rows dominate the\n"
      "sample exactly when they dominate the window's energy.\n\n");
  while (auto row = stream.Next()) {
    sketch.Update(row->view(), row->ts);
    window_mass = 0.999 * window_mass + row->NormSq();
    ++i;
    if (i % 10000 == 0) {
      Matrix b = sketch.Query();
      double mean_norm = 0.0;
      for (size_t s = 0; s < b.rows(); ++s) {
        mean_norm += Norm(b.Row(s));
      }
      mean_norm /= static_cast<double>(b.rows() == 0 ? 1 : b.rows());
      std::printf(
          "row %6zu | candidates stored %4zu (window %llu) | samples %2zu | "
          "mean sample magnitude %10.2f\n",
          i, sketch.RowsStored(), static_cast<unsigned long long>(window),
          b.rows(), mean_norm);
    }
  }

  std::printf(
      "\nEach sample above IS a real sensor reading from the last %llu\n"
      "rows (interpretability); the sketch kept only %zu candidate rows.\n",
      static_cast<unsigned long long>(window), sketch.RowsStored());
  return 0;
}
