// Two-stream product tracker: the AMM workload end to end. Reads paired
// rows for two synchronized streams (clicks x queries, sensors x
// actuators, ...) and maintains a sliding-window estimate of the
// cross-correlation matrix A_W^T B_W with any AMM backend, alongside the
// exact dual-buffer reference so the live normalized error is visible.
//
// Protocol (one command per line, matching tenant_server's shape):
//   U <ts> <a0> ... <a{da-1}> <b0> ... <b{db-1}>   ingest one pair
//   A <now>                                        advance the clock
//   Q                                              print the estimate
//   TOP                                            print the strongest
//                                                  (i, j) cross pair
//   STATS                                          print amm.* counters
//                                                  (process-wide; the
//                                                  exact reference's
//                                                  traffic counts too)
//
// Q prints the da x db estimate with %.17g values — bit-stable across
// runs (tests/amm_differential_test pins replay determinism). With
// --reference=1 (default) Q also prints the normalized spectral error
// ||A^T B - est||_2 / (||A||_F ||B||_F) against the exact window
// product. Without a command file, --demo=1 self-generates a correlated
// paired stream and prints a checkpoint every --demo_every pairs.
//
//   ./amm_tracker [--algorithm=amm-co-fd] [--da=4] [--db=6]
//                 [--window=512] [--time_window=0] [--ell=16]
//                 [--reference=1] [--demo=0] [--demo_pairs=4000]
//                 [--demo_every=500] < commands.txt
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "amm/amm_exact.h"
#include "amm/amm_sketch.h"
#include "core/factory.h"
#include "eval/amm_err.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

namespace {

struct Tracker {
  std::unique_ptr<SlidingWindowSketch> owner;
  AmmSketch* amm = nullptr;
  std::unique_ptr<AmmExact> reference;  // Null when --reference=0.
  size_t da = 0, db = 0;

  void Ingest(std::span<const double> a, std::span<const double> b,
              double ts) {
    amm->UpdatePair(a, b, ts);
    if (reference) reference->UpdatePair(a, b, ts);
  }

  void Advance(double now) {
    amm->AdvanceTo(now);
    if (reference) reference->AdvanceTo(now);
  }

  void PrintEstimate() {
    const Matrix est = amm->QueryProduct();
    std::printf("Q %zu %zu\n", est.rows(), est.cols());
    for (size_t i = 0; i < est.rows(); ++i) {
      for (size_t j = 0; j < est.cols(); ++j) {
        std::printf(j ? " %.17g" : "%.17g", est(i, j));
      }
      std::printf("\n");
    }
    if (reference) {
      const double fa_sq = reference->buffer_a().FrobeniusNormSq();
      const double fb_sq = reference->buffer_b().FrobeniusNormSq();
      if (fa_sq > 0.0 && fb_sq > 0.0) {
        const double err =
            AmmError(reference->QueryProduct(), fa_sq, fb_sq, est);
        std::printf("ERR %.6g\n", err);
      } else {
        std::printf("ERR empty-window\n");
      }
    }
  }

  void PrintTop() {
    const Matrix est = amm->QueryProduct();
    size_t bi = 0, bj = 0;
    double best = 0.0;
    for (size_t i = 0; i < est.rows(); ++i) {
      for (size_t j = 0; j < est.cols(); ++j) {
        const double m = est(i, j) < 0.0 ? -est(i, j) : est(i, j);
        if (m > best) best = m, bi = i, bj = j;
      }
    }
    std::printf("TOP %zu %zu %.17g\n", bi, bj,
                est.rows() ? est(bi, bj) : 0.0);
  }
};

int RunDemo(Tracker* tracker, size_t pairs, size_t every) {
  Rng rng(11);
  std::vector<double> a(tracker->da), b(tracker->db);
  for (size_t i = 0; i < pairs; ++i) {
    const double latent = rng.Gaussian();
    for (auto& v : a) v = 0.6 * latent + rng.Gaussian();
    for (auto& v : b) v = 0.6 * latent + rng.Gaussian();
    tracker->Ingest(a, b, static_cast<double>(i + 1));
    if (every != 0 && i % every == every - 1) {
      std::printf("# pair %zu\n", i + 1);
      tracker->PrintEstimate();
    }
  }
  tracker->PrintTop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string algorithm =
      flags.GetString("algorithm", "amm-co-fd");
  const size_t da = static_cast<size_t>(flags.GetInt("da", 4));
  const size_t db = static_cast<size_t>(flags.GetInt("db", 6));
  const double time_window = flags.GetDouble("time_window", 0.0);
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 512));
  const WindowSpec spec = time_window > 0.0 ? WindowSpec::Time(time_window)
                                            : WindowSpec::Sequence(window);

  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = static_cast<size_t>(flags.GetInt("ell", 16));
  config.amm_dim_a = da;
  config.max_norm_sq = 16.0 * static_cast<double>(da + db);
  config.seed = 11;
  auto made = MakeSlidingWindowSketch(da + db, spec, config);
  if (!made.ok()) {
    std::cerr << "error: " << made.status().ToString() << "\n";
    return 1;
  }
  Tracker tracker;
  tracker.owner = made.take();
  tracker.amm = dynamic_cast<AmmSketch*>(tracker.owner.get());
  if (tracker.amm == nullptr) {
    std::cerr << "error: " << algorithm
              << " is not an AMM backend (try amm-exact, amm-co-fd, "
                 "amm-lm-fd, amm-di-fd)\n";
    return 1;
  }
  tracker.da = da;
  tracker.db = db;
  if (flags.GetBool("reference", true)) {
    tracker.reference = std::make_unique<AmmExact>(da, db, spec);
  }

  if (flags.GetBool("demo", false)) {
    return RunDemo(&tracker,
                   static_cast<size_t>(flags.GetInt("demo_pairs", 4000)),
                   static_cast<size_t>(flags.GetInt("demo_every", 500)));
  }

  std::vector<double> a(da), b(db);
  std::string line;
  size_t line_no = 0;
  while (std::getline(std::cin, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "U") {
      double ts = 0.0;
      in >> ts;
      bool ok = static_cast<bool>(in);
      for (auto& v : a) ok = ok && static_cast<bool>(in >> v);
      for (auto& v : b) ok = ok && static_cast<bool>(in >> v);
      if (!ok) {
        std::cerr << "line " << line_no << ": bad U (need ts + " << da
                  << "+" << db << " values)\n";
        continue;
      }
      tracker.Ingest(a, b, ts);
    } else if (cmd == "A") {
      double now = 0.0;
      if (in >> now) tracker.Advance(now);
    } else if (cmd == "Q") {
      tracker.PrintEstimate();
    } else if (cmd == "TOP") {
      tracker.PrintTop();
    } else if (cmd == "STATS") {
      std::printf("STATS pairs=%" PRId64 " queries=%" PRId64 "\n",
                  tracker.amm->metrics().pairs_ingested->Value(),
                  tracker.amm->metrics().product_queries->Value());
    } else {
      std::cerr << "line " << line_no << ": unknown command " << cmd
                << "\n";
    }
  }
  return 0;
}
