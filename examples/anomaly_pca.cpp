// Sliding-window PCA change detection — the paper's motivating application
// (Section 1, "A concrete application"), built on the library's
// PcaChangeDetector: a reference window's principal subspace is frozen and
// compared against a continuously-sketched test window; when the data
// distribution shifts, the subspace rotates and the detector fires. The
// test window never has to fit in memory.
//
//   ./anomaly_pca [--window=1000] [--ell=24] [--k=3] [--threshold=0.5]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/logarithmic_method.h"
#include "core/window_pca.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

namespace {

// Regime-switching source: Gaussian data concentrated on a k-dimensional
// subspace that rotates at the anomaly.
std::vector<double> DrawRow(Rng* rng, size_t d, size_t k, bool anomalous) {
  std::vector<double> row(d);
  for (auto& v : row) v = 0.05 * rng->Gaussian();  // Ambient noise.
  for (size_t c = 0; c < k; ++c) {
    const size_t axis = anomalous ? d - 1 - c : c;  // Rotated subspace.
    row[axis] += 2.0 * rng->Gaussian();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 1000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 24));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 3));
  const double threshold = flags.GetDouble("threshold", 0.5);
  const size_t d = 40;
  const size_t total = 8000;
  const size_t anomaly_at = 5000;

  auto sketch = std::make_unique<LmFd>(
      d, WindowSpec::Sequence(window),
      LmFd::Options{.ell = ell, .blocks_per_level = 8});
  PcaChangeDetector detector(
      std::move(sketch),
      PcaChangeDetector::Options{.k = k, .threshold = threshold});

  Rng rng(1234);
  bool fired = false;
  std::printf("row      affinity  state\n");
  for (size_t i = 0; i < total; ++i) {
    detector.Update(DrawRow(&rng, d, k, /*anomalous=*/i >= anomaly_at),
                    static_cast<double>(i));
    if (i == window) {
      detector.FreezeReference();
      std::printf("%-8zu %-9s reference basis frozen\n", i, "-");
    }
    if (i > window && i % 500 == 0) {
      const double score = detector.Score();
      const bool alarm = score < threshold;
      std::printf("%-8zu %-9.4f %s\n", i, score,
                  alarm ? "ANOMALY: principal subspace rotated" : "normal");
      if (alarm) fired = true;
    }
  }

  std::printf("\nanomaly injected at row %zu; detector %s\n", anomaly_at,
              fired ? "fired (as expected)" : "did NOT fire");
  return fired ? 0 : 1;
}
