// Checkpoint/resume: persist a sliding-window sketch to disk mid-stream
// and continue from the saved state — the approximations of the resumed
// and the uninterrupted sketch match exactly.
//
//   ./checkpoint_resume [--rows=30000] [--window=3000]
#include <cstdio>
#include <fstream>

#include "core/logarithmic_method.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/serialize.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 30000));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 3000));
  const std::string path = "/tmp/swsketch_checkpoint.bin";

  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = 80, .signal_dim = 16, .window = window});
  LmFd live(stream.dim(), WindowSpec::Sequence(window),
            LmFd::Options{.ell = 24});

  // Phase 1: process half the stream, then checkpoint.
  size_t i = 0;
  std::vector<Row> second_half;
  while (auto row = stream.Next()) {
    if (i < rows / 2) {
      live.Update(row->view(), row->ts);
    } else {
      second_half.push_back(std::move(*row));
    }
    ++i;
  }
  {
    ByteWriter writer;
    live.Serialize(&writer);
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.bytes().size()));
    std::printf("checkpointed %zu rows of state (%zu bytes) to %s\n",
                live.RowsStored(), writer.bytes().size(), path.c_str());
  }

  // Phase 2: "restart" — load the checkpoint into a fresh object.
  std::ifstream f(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  ByteReader reader(bytes);
  auto resumed = LmFd::Deserialize(&reader);
  if (!resumed.ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 resumed.status().ToString().c_str());
    return 1;
  }

  // Both continue over the second half.
  for (const Row& row : second_half) {
    live.Update(row.view(), row.ts);
    resumed->Update(row.view(), row.ts);
  }
  const Matrix b_live = live.Query();
  const Matrix b_resumed = resumed->Query();
  const double diff = b_live.MaxAbsDiff(b_resumed);
  std::printf("after resuming and processing %zu more rows:\n"
              "  live sketch B: %zu rows; resumed sketch B: %zu rows\n"
              "  max |difference| = %.3g  (exact match expected)\n",
              second_half.size(), b_live.rows(), b_resumed.rows(), diff);
  std::remove(path.c_str());
  return diff == 0.0 ? 0 : 1;
}
