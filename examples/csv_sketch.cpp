// Run a sliding-window sketch over your own CSV data and write the window
// approximation B to a CSV file.
//
//   ./csv_sketch --input=data.csv [--output=approx.csv] [--algo=lm-fd]
//                [--ell=32] [--window=10000] [--time-column] [--delta=3600]
//                [--header] [--batch=256]
//
// Without --time-column rows are indexed sequentially (sequence window of
// N = --window rows); with it the first CSV column is the timestamp and a
// time window of span --delta is used. --batch > 1 pulls blocks through
// the CSV loader's NextBatch and feeds UpdateBatch (amortized shrinks).
#include <cstdio>
#include <vector>

#include "core/factory.h"
#include "data/csv.h"
#include "util/flags.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: csv_sketch --input=data.csv [--output=approx.csv]\n"
                 "  [--algo=lm-fd] [--ell=32] [--window=10000]\n"
                 "  [--time-column] [--delta=3600] [--header]\n");
    return 1;
  }

  CsvRowStream::Options csv_options;
  csv_options.first_column_is_timestamp = flags.GetBool("time-column", false);
  csv_options.skip_header = flags.GetBool("header", false);
  auto stream = CsvRowStream::Open(input, csv_options);
  if (!stream.ok()) {
    std::fprintf(stderr, "error: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  const WindowSpec window =
      csv_options.first_column_is_timestamp
          ? WindowSpec::Time(flags.GetDouble("delta", 3600.0))
          : WindowSpec::Sequence(
                static_cast<uint64_t>(flags.GetInt("window", 10000)));

  SketchConfig config;
  config.algorithm = flags.GetString("algo", "lm-fd");
  config.ell = static_cast<size_t>(flags.GetInt("ell", 32));
  auto sketch = MakeSlidingWindowSketch((*stream)->dim(), window, config);
  if (!sketch.ok()) {
    std::fprintf(stderr, "error: %s\n", sketch.status().ToString().c_str());
    return 1;
  }

  size_t rows = 0;
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 1));
  if (batch > 1) {
    Matrix block(0, (*stream)->dim());
    std::vector<double> block_ts;
    while (size_t got = (*stream)->NextBatch(batch, &block, &block_ts)) {
      (*sketch)->UpdateBatch(block, block_ts);
      rows += got;
    }
  } else {
    while (auto row = (*stream)->Next()) {
      (*sketch)->Update(row->view(), row->ts);
      ++rows;
    }
  }
  const Matrix b = (*sketch)->Query();
  std::printf("processed %zu rows (d=%zu, %s); sketch %s stores %zu rows;\n"
              "window approximation B has %zu rows\n",
              rows, (*stream)->dim(), window.ToString().c_str(),
              (*sketch)->name().c_str(), (*sketch)->RowsStored(), b.rows());

  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    if (Status s = WriteMatrixCsv(b, output); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote B to %s\n", output.c_str());
  }
  return 0;
}
