// Distributed sliding-window monitoring (the paper's Section 9 future
// work, implemented in src/distributed/): a stream is partitioned across
// k workers, each maintaining a local SWR sketch over the same time
// window; a coordinator answers union-window queries by max-stable
// priority merging, without ever centralizing rows.
//
//   ./distributed_monitoring [--workers=4] [--window=2000] [--ell=16]
#include <cstdio>
#include <memory>
#include <vector>

#include "distributed/distributed.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 2000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 16));
  const size_t d = 32;
  const size_t rows = 20000;

  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < workers; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Sequence(window / workers),
        SwrSketch::Options{.ell = ell, .seed = 100 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);

  // Ground truth for the demo only: the union window's exact Gram.
  WindowBuffer truth(WindowSpec::Sequence(window));

  Rng rng(7);
  size_t local_clock = 0;
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.Gaussian();
    // Round-robin partitioning: worker streams see every k-th row, so a
    // local window of N/k rows matches the union window of N rows.
    coordinator.Update(i % workers, row, static_cast<double>(local_clock));
    if (i % workers == workers - 1) ++local_clock;
    truth.Add(Row(row, static_cast<double>(i)));

    if ((i + 1) % (rows / 4) == 0) {
      Matrix b = coordinator.Query();
      const double err = CovarianceError(truth.GramMatrix(d),
                                         truth.FrobeniusNormSq(), b);
      std::printf(
          "after %6zu rows across %zu workers: union sample B has %3zu "
          "rows, candidates stored %4zu, cova-err = %.4f\n",
          i + 1, workers, b.rows(), coordinator.RowsStored(), err);
    }
  }

  std::printf(
      "\nk = %zu workers each kept ~%zu candidate rows; the coordinator\n"
      "answered union-window queries without centralizing any stream "
      "data.\n",
      workers, coordinator.RowsStored() / workers);
  return 0;
}
