// Distributed sliding-window monitoring (the paper's Section 9 future
// work, implemented in src/distributed/), in two acts:
//
//  1. DistributedSwr: a stream partitioned across k workers, each with a
//     local SWR sketch over the same time window; a coordinator answers
//     union-window queries by max-stable priority merging, without ever
//     centralizing rows.
//  2. ShardedSketch: the same partitioning idea turned into a parallel
//     ingest engine — S single-writer LM-FD shards fed through bounded
//     SPSC queues, queried through the deterministic mergeable
//     tree-reduce. The demo shows that the parallel pipeline answers
//     byte-for-byte what the serial reference execution answers.
//
//   ./distributed_monitoring [--workers=4] [--window=2000] [--ell=16]
#include <cstdio>
#include <memory>
#include <vector>

#include "distributed/distributed.h"
#include "distributed/sharded_sketch.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/flags.h"
#include "util/random.h"

using namespace swsketch;

namespace {

std::vector<double> GaussianRow(Rng* rng, size_t d) {
  std::vector<double> row(d);
  for (auto& v : row) v = rng->Gaussian();
  return row;
}

void RunDistributedSwr(size_t workers, uint64_t window, size_t ell, size_t d,
                       size_t rows) {
  std::printf("== DistributedSwr: max-stable union sampling ==\n");
  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < workers; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Sequence(window / workers),
        SwrSketch::Options{.ell = ell, .seed = 100 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);

  // Ground truth for the demo only: the union window's exact Gram.
  WindowBuffer truth(WindowSpec::Sequence(window));

  Rng rng(7);
  size_t local_clock = 0;
  for (size_t i = 0; i < rows; ++i) {
    const std::vector<double> row = GaussianRow(&rng, d);
    // Round-robin partitioning: worker streams see every k-th row, so a
    // local window of N/k rows matches the union window of N rows.
    coordinator.Update(i % workers, row, static_cast<double>(local_clock));
    if (i % workers == workers - 1) ++local_clock;
    truth.Add(Row(row, static_cast<double>(i)));

    if ((i + 1) % (rows / 4) == 0) {
      Matrix b = coordinator.Query();
      const double err = CovarianceError(truth.GramMatrix(d),
                                         truth.FrobeniusNormSq(), b);
      std::printf(
          "after %6zu rows across %zu workers: union sample B has %3zu "
          "rows, candidates stored %4zu, cova-err = %.4f\n",
          i + 1, workers, b.rows(), coordinator.RowsStored(), err);
    }
  }

  std::printf(
      "k = %zu workers each kept ~%zu candidate rows; the coordinator\n"
      "answered union-window queries without centralizing any stream "
      "data.\n\n",
      workers, coordinator.RowsStored() / workers);
}

void RunShardedIngest(size_t shards, uint64_t window, size_t ell, size_t d,
                      size_t rows) {
  std::printf("== ShardedSketch: parallel single-writer ingest ==\n");
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = ell;

  // The parallel pipeline (one writer thread per shard) and its serial
  // reference execution (same shards, same blocks, applied inline).
  ShardedSketch::Options popt;
  popt.shards = shards;
  ShardedSketch::Options sopt = popt;
  sopt.parallel = false;
  auto parallel =
      ShardedSketch::Make(d, WindowSpec::Sequence(window), config, popt);
  auto serial =
      ShardedSketch::Make(d, WindowSpec::Sequence(window), config, sopt);
  if (!parallel.ok() || !serial.ok()) {
    std::printf("construction failed\n");
    return;
  }

  WindowBuffer truth(WindowSpec::Sequence(window));
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    const std::vector<double> row = GaussianRow(&rng, d);
    const double ts = static_cast<double>(i);  // Global arrival index.
    parallel.value()->Update(row, ts);
    serial.value()->Update(row, ts);
    truth.Add(Row(row, ts));

    if ((i + 1) % (rows / 4) == 0) {
      const Matrix bp = parallel.value()->Query();
      const Matrix bs = serial.value()->Query();
      const double err =
          CovarianceError(truth.GramMatrix(d), truth.FrobeniusNormSq(), bp);
      std::printf(
          "after %6zu rows across %zu shards: B has %3zu rows, stored "
          "%4zu, cova-err = %.4f, parallel == serial bytes: %s\n",
          i + 1, shards, bp.rows(), parallel.value()->RowsStored(), err,
          bp.ApproxEquals(bs, 0.0) ? "yes" : "NO");
    }
  }

  std::printf(
      "S = %zu single-writer shards ingested the stream with no shared\n"
      "lock on the hot path; queries tree-reduce the shards "
      "deterministically.\n",
      shards);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 2000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 16));
  const size_t d = 32;
  const size_t rows = 20000;

  RunDistributedSwr(workers, window, ell, d, rows);
  RunShardedIngest(workers, window, ell, d, rows);
  return 0;
}
