// Quickstart: maintain a sliding-window matrix sketch over a stream and
// compare its approximation against the exact window.
//
//   ./quickstart [--algo=lm-fd] [--ell=32] [--window=2000] [--rows=20000]
//
// Walks through the core API: build a sketch via the factory, feed rows,
// query B, and measure the covariance error against ground truth.
#include <cstdio>

#include "core/factory.h"
#include "data/synthetic.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/flags.h"

using namespace swsketch;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string algo = flags.GetString("algo", "lm-fd");
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 32));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 5000));
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 25000));

  // 1. A stream: here the paper's SYNTHETIC generator; plug in your own
  //    RowStream for real data.
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = 100, .signal_dim = 20, .window = window});

  // 2. A sliding-window sketch from the factory.
  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  config.max_norm_sq = stream.info().max_norm_sq;
  auto sketch =
      MakeSlidingWindowSketch(stream.dim(), WindowSpec::Sequence(window),
                              config);
  if (!sketch.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 sketch.status().ToString().c_str());
    return 1;
  }

  // 3. Stream rows through the sketch. The WindowBuffer below is ONLY for
  //    demonstrating the error — a real deployment never stores the window.
  WindowBuffer exact(WindowSpec::Sequence(window));
  size_t i = 0;
  while (auto row = stream.Next()) {
    (*sketch)->Update(row->view(), row->ts);
    exact.Add(*row);
    ++i;
    if (i % (rows / 4) == 0) {
      // 4. Query at any moment: B approximates the CURRENT window matrix.
      Matrix b = (*sketch)->Query();
      const double err = CovarianceError(exact.GramMatrix(stream.dim()),
                                         exact.FrobeniusNormSq(), b);
      std::printf(
          "after %7zu rows: sketch %-8s stores %5zu rows "
          "(window holds %zu), B has %4zu rows, cova-err = %.5f\n",
          i, (*sketch)->name().c_str(), (*sketch)->RowsStored(),
          exact.size(), b.rows(), err);
    }
  }

  std::printf(
      "\nA %s sketch tracked a %llu-row sliding window using %zu stored "
      "rows.\n",
      (*sketch)->name().c_str(), static_cast<unsigned long long>(window),
      (*sketch)->RowsStored());
  return 0;
}
