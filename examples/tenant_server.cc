// Multi-tenant sketch server: a stdin line-protocol driver over
// TenantManager, the serving shape the manager was built for — one
// process holding 100k+ keyed sliding windows under a memory budget.
//
// Protocol (one command per line):
//   U <key> <ts> <v0> ... <v{d-1}>   ingest one row for tenant <key>
//   A <key> <now>                    advance tenant <key>'s clock
//   Q <key>                          print the tenant's approximation
//   STATS                            print deterministic manager counts
//
// Updates are buffered and flushed through the keyed batch path
// (UpdateKeyed) every --batch rows and before any Q/A/STATS, so answers
// always reflect every preceding U line. Q prints the key, the row count
// and each sketch row with %.17g values — bit-stable across runs for the
// deterministic algorithms, which is what the ctest smoke fixture pins.
// Throughput (rows/s and QPS) goes to stderr so stdout stays comparable.
//
//   ./tenant_server [--algorithm=lm-fd] [--d=4] [--window=4096]
//                   [--time_window=0] [--ell=8] [--budget_mb=0]
//                   [--batch=256] < commands.txt
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "service/tenant_manager.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace swsketch;

namespace {

struct PendingRows {
  std::vector<uint64_t> keys;
  std::vector<double> ts;
  std::vector<double> values;  // Flat, d per row (stable backing store).
};

bool FlushPending(TenantManager* manager, PendingRows* pending, size_t d) {
  if (pending->keys.empty()) return true;
  std::vector<KeyedRow> batch(pending->keys.size());
  for (size_t i = 0; i < pending->keys.size(); ++i) {
    batch[i] = KeyedRow{
        pending->keys[i], pending->ts[i],
        std::span<const double>(pending->values.data() + i * d, d)};
  }
  const Status st = manager->UpdateKeyed(batch);
  if (!st.ok()) {
    std::cerr << "update failed: " << st.ToString() << "\n";
    return false;
  }
  pending->keys.clear();
  pending->ts.clear();
  pending->values.clear();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string algorithm = flags.GetString("algorithm", "lm-fd");
  const size_t d = static_cast<size_t>(flags.GetInt("d", 4));
  const uint64_t window = static_cast<uint64_t>(flags.GetInt("window", 4096));
  const double time_window = flags.GetDouble("time_window", 0.0);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 8));
  const size_t budget_mb = static_cast<size_t>(flags.GetInt("budget_mb", 0));
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 256));

  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = ell;
  const WindowSpec spec = time_window > 0.0
                              ? WindowSpec::Time(time_window)
                              : WindowSpec::Sequence(window);
  TenantManager::Options options;
  options.memory_budget_bytes = budget_mb << 20;
  auto made = TenantManager::Make(d, spec, config, options);
  if (!made.ok()) {
    std::cerr << "cannot build manager: " << made.status().ToString() << "\n";
    return 1;
  }
  auto& manager = *made.value();

  PendingRows pending;
  uint64_t rows = 0, queries = 0;
  double update_s = 0.0, query_s = 0.0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "U") {
      uint64_t key;
      double ts;
      if (!(in >> key >> ts)) {
        std::cerr << "bad U line: " << line << "\n";
        return 1;
      }
      pending.keys.push_back(key);
      pending.ts.push_back(ts);
      for (size_t j = 0; j < d; ++j) {
        double v;
        if (!(in >> v)) {
          std::cerr << "U line needs " << d << " values: " << line << "\n";
          return 1;
        }
        pending.values.push_back(v);
      }
      ++rows;
      if (pending.keys.size() >= batch) {
        Timer t;
        if (!FlushPending(&manager, &pending, d)) return 1;
        update_s += t.ElapsedSeconds();
      }
    } else if (cmd == "A") {
      uint64_t key;
      double now;
      if (!(in >> key >> now)) {
        std::cerr << "bad A line: " << line << "\n";
        return 1;
      }
      {
        Timer t;
        if (!FlushPending(&manager, &pending, d)) return 1;
        update_s += t.ElapsedSeconds();
      }
      const Status st = manager.AdvanceTo(key, now);
      if (!st.ok()) {
        std::cerr << "advance failed: " << st.ToString() << "\n";
        return 1;
      }
    } else if (cmd == "Q") {
      uint64_t key;
      if (!(in >> key)) {
        std::cerr << "bad Q line: " << line << "\n";
        return 1;
      }
      {
        Timer t;
        if (!FlushPending(&manager, &pending, d)) return 1;
        update_s += t.ElapsedSeconds();
      }
      Timer t;
      auto result = manager.Query(key);
      if (!result.ok()) {
        std::cerr << "query failed: " << result.status().ToString() << "\n";
        return 1;
      }
      query_s += t.ElapsedSeconds();
      ++queries;
      const Matrix& m = result.value();
      std::printf("Q %" PRIu64 " rows=%zu\n", key, m.rows());
      for (size_t i = 0; i < m.rows(); ++i) {
        for (size_t j = 0; j < m.cols(); ++j) {
          std::printf(j ? " %.17g" : "%.17g", m(i, j));
        }
        std::printf("\n");
      }
    } else if (cmd == "STATS") {
      Timer t;
      if (!FlushPending(&manager, &pending, d)) return 1;
      update_s += t.ElapsedSeconds();
      std::printf("STATS tenants=%zu resident=%zu spilled=%zu rows=%" PRIu64
                  " queries=%" PRIu64 "\n",
                  manager.num_tenants(), manager.resident_tenants(),
                  manager.spilled_tenants(), rows, queries);
    } else {
      std::cerr << "unknown command: " << line << "\n";
      return 1;
    }
  }
  {
    Timer t;
    if (!FlushPending(&manager, &pending, d)) return 1;
    update_s += t.ElapsedSeconds();
  }
  // Timing to stderr only: stdout is the deterministic transcript.
  if (rows > 0 && update_s > 0.0) {
    std::fprintf(stderr, "ingest: %" PRIu64 " rows, %.0f rows/s\n", rows,
                 static_cast<double>(rows) / update_s);
  }
  if (queries > 0 && query_s > 0.0) {
    std::fprintf(stderr, "queries: %" PRIu64 ", %.0f q/s\n", queries,
                 static_cast<double>(queries) / query_s);
  }
  return 0;
}
