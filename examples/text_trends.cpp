// Trending-topic directions over a time-based window of documents — the
// paper's text-analysis motivation ("analyze tweets posted in the last 24
// hours"). Maintains LM-FD over a WIKI-like tf-idf stream with a
// time-based window and periodically prints the features (words) with the
// largest weight in the window's top principal direction.
//
//   ./text_trends [--delta=300] [--ell=24]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/logarithmic_method.h"
#include "data/wiki.h"
#include "linalg/jacobi_eigen.h"
#include "util/flags.h"

using namespace swsketch;

namespace {

// Indices of the top-m entries (by absolute weight) of the leading right
// singular direction of B.
std::vector<size_t> TopFeatures(const Matrix& b, size_t d, size_t m) {
  Matrix gram(d, d);
  for (size_t i = 0; i < b.rows(); ++i) gram.AddOuterProduct(b.Row(i));
  SymmetricEigen eig = JacobiEigen(gram);
  std::vector<std::pair<double, size_t>> weighted(d);
  for (size_t j = 0; j < d; ++j) {
    weighted[j] = {std::fabs(eig.eigenvectors(j, 0)), j};
  }
  std::partial_sort(weighted.begin(), weighted.begin() + m, weighted.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<size_t> out(m);
  for (size_t t = 0; t < m; ++t) out[t] = weighted[t].second;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double delta = flags.GetDouble("delta", 300.0);
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 24));

  WikiStream stream(WikiStream::Options{
      .rows = 30000, .dim = 300, .nnz_min = 20, .nnz_max = 80,
      .span = 1500.0, .window = delta, .seed = 5});

  LmFd sketch(stream.dim(), WindowSpec::Time(delta),
              LmFd::Options{.ell = ell, .blocks_per_level = 8});

  size_t i = 0, windows_printed = 0;
  double next_report = delta;
  while (auto row = stream.Next()) {
    sketch.Update(row->view(), row->ts);
    ++i;
    if (row->ts >= next_report) {
      next_report += delta / 2.0;
      ++windows_printed;
      Matrix b = sketch.Query();
      if (b.rows() == 0) continue;
      auto top = TopFeatures(b, stream.dim(), 5);
      std::printf("t = %7.1f | %6zu docs seen | sketch rows %4zu | "
                  "trending features:",
                  row->ts, i, sketch.RowsStored());
      for (size_t f : top) std::printf(" w%zu", f);
      std::printf("\n");
    }
  }

  std::printf(
      "\nTracked the top direction of a %.0f-unit time window across an\n"
      "accelerating stream (%zu docs) with a sketch of %zu rows.\n",
      delta, i, sketch.RowsStored());
  return windows_printed > 0 ? 0 : 1;
}
