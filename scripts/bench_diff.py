#!/usr/bin/env python3
"""Diff BENCH_<slug>.json files between two revisions of the repo.

Each figure binary writes one BENCH_<slug>.json per run (see
bench/bench_util.cc). To track the perf/accuracy trajectory across PRs,
check out or stash the old JSONs in one directory, the new ones in
another, and run:

    scripts/bench_diff.py OLD_DIR NEW_DIR [--threshold 0.10]

Both arguments may also be single files. Cells are keyed by
(figure, algorithm, ell); the report shows the relative change per metric
for every key present on both sides, and lists keys that appear on only
one side. The exit code is nonzero when any update_ns cell regresses by
more than --threshold (default 10%), so CI or a pre-merge hook can gate
on it. Error metrics are reported but do not gate: accuracy cells move
when sketch parameters change and are judged by the paper's bounds, not
by drift.
"""

import argparse
import json
import os
import sys

METRICS = ("update_ns", "avg_err", "max_err", "max_rows_stored")


def load_cells(path):
    """Returns {(figure, algorithm, ell): cell_dict} from a file or dir."""
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, f)
            for f in os.listdir(path)
            if f.startswith("BENCH_") and f.endswith(".json")
        )
    else:
        files = [path]
    cells = {}
    for f in files:
        with open(f) as fh:
            doc = json.load(fh)
        for cell in doc.get("cells", []):
            key = (doc.get("figure", "?"), cell["algorithm"], cell["ell"])
            cells[key] = cell
    return cells


def rel_change(old, new):
    if old == 0:
        return float("inf") if new != 0 else 0.0
    return (new - old) / old


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH json file or directory")
    parser.add_argument("new", help="candidate BENCH json file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="update_ns regression fraction that fails the diff "
        "(default 0.10 = 10%%)",
    )
    args = parser.parse_args()

    old_cells = load_cells(args.old)
    new_cells = load_cells(args.new)
    if not old_cells:
        sys.exit(f"no BENCH_*.json cells found in {args.old}")
    if not new_cells:
        sys.exit(f"no BENCH_*.json cells found in {args.new}")

    common = sorted(set(old_cells) & set(new_cells))
    regressions = []

    header = f"{'figure':<28} {'algorithm':<10} {'ell':>4}"
    header += "".join(f" {m:>16}" for m in METRICS)
    print(header)
    print("-" * len(header))
    for key in common:
        figure, algorithm, ell = key
        old, new = old_cells[key], new_cells[key]
        row = f"{figure[:28]:<28} {algorithm:<10} {ell:>4}"
        for metric in METRICS:
            if metric not in old or metric not in new:
                row += f" {'-':>16}"
                continue
            change = rel_change(old[metric], new[metric])
            row += f" {change:>+15.1%} "
            if metric == "update_ns" and change > args.threshold:
                regressions.append((key, old[metric], new[metric], change))
        print(row)

    for key in sorted(set(old_cells) - set(new_cells)):
        print(f"only in {args.old}: {key}")
    for key in sorted(set(new_cells) - set(old_cells)):
        print(f"only in {args.new}: {key}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} update_ns regression(s) over "
            f"{args.threshold:.0%}:"
        )
        for (figure, algorithm, ell), old_ns, new_ns, change in regressions:
            print(
                f"  {figure} / {algorithm} / ell={ell}: "
                f"{old_ns:.0f} ns -> {new_ns:.0f} ns ({change:+.1%})"
            )
        return 1
    print(f"\nOK: no update_ns regression over {args.threshold:.0%} "
          f"across {len(common)} cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
