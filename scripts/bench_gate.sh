#!/usr/bin/env bash
# Perf regression gate for the sketch-update and query-serving hot paths.
#
# Builds the release preset, runs the micro_sketch append benchmarks and
# the micro_query query-serving benchmark, converts the results to BENCH
# cells and diffs them against the committed baselines in bench/baselines/.
# Exits nonzero when any update_ns cell regresses by more than the
# bench_diff threshold (default 10%), so it can run as a pre-merge check:
#
#     scripts/bench_gate.sh [extra bench_diff.py args, e.g. --threshold 0.15]
#
# The micro_query baseline keeps only the warm-query latency cells: cold
# latency depends on the block structure the ingest happened to leave and
# multi-reader QPS depends on the host's core count, so neither gates.
#
# To refresh the baselines after an intentional perf change:
#
#     scripts/bench_gate.sh --update-baselines      (alias: --update-baseline)
set -euo pipefail
cd "$(dirname "$0")/.."

SKETCH_BASELINE=bench/baselines/BENCH_micro_sketch.json
QUERY_BASELINE=bench/baselines/BENCH_micro_query.json
METRICS_BASELINE=bench/baselines/BENCH_micro_metrics.json
SHARD_BASELINE=bench/baselines/BENCH_micro_shard.json
TENANT_BASELINE=bench/baselines/BENCH_micro_tenant.json
AMM_BASELINE=bench/baselines/BENCH_micro_amm.json
FILTER='BM_FrequentDirectionsAppend|BM_RandomProjectionAppend|BM_HashSketchAppend|BM_DsFdAppend'
# Per-event metrics costs (counter add, histogram record, scoped timer).
# The contended-counter and registry-lookup cells depend on core count /
# scheduler mood, so only the single-thread cached-handle paths gate.
METRICS_FILTER='BM_CounterAdd$|BM_GaugeSet|BM_HistogramRecord|BM_ScopedTimer'
MIN_TIME=2

update_baseline=0
diff_args=()
for arg in "$@"; do
  if [[ "$arg" == "--update-baseline" || "$arg" == "--update-baselines" ]]; then
    update_baseline=1
  else
    diff_args+=("$arg")
  fi
done

cmake --preset release >/dev/null
cmake --build build-release -j"$(nproc)" \
  --target micro_sketch micro_query micro_metrics micro_shard \
           micro_tenant micro_amm >/dev/null

./build-release/bench/micro_sketch \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json 2>/dev/null |
  python3 scripts/microbench_to_cells.py --figure micro_sketch \
    -o BENCH_micro_sketch.json

./build-release/bench/micro_metrics \
  --benchmark_filter="${METRICS_FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json 2>/dev/null |
  python3 scripts/microbench_to_cells.py --figure micro_metrics \
    -o BENCH_micro_metrics.json

# micro_query / micro_shard emit the cells format directly; run from the
# repo root so the BENCH_*.json artifacts land next to the others.
./build-release/bench/micro_query --iters=3000 --duration_ms=200 >/dev/null
./build-release/bench/micro_shard >/dev/null
./build-release/bench/micro_tenant >/dev/null
./build-release/bench/micro_amm >/dev/null

filter_warm_cells() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["cells"] = [c for c in doc["cells"] if c["algorithm"].startswith("warm-")]
with open(sys.argv[2], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
EOF
}

# Only the single-threaded cells gate: `-serial` (plain sketch) and `-s1`
# (one-shard pipeline, i.e. the sharding overhead itself). The S > 1
# scaling cells are machine-shaped — a 1-core runner cannot speed up — so
# micro_shard reports them but the baseline excludes them.
filter_shard_cells() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["cells"] = [c for c in doc["cells"]
                if c["algorithm"].endswith(("-serial", "-s1"))]
with open(sys.argv[2], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
EOF
}

# Only the steady-state single-thread cells gate: per-row keyed ingest
# (`keyed-*`) and the warm lookup path (`lookup-warm`). Creation bursts,
# eviction churn and the 100k budget fill are allocation-heavy and shaped
# by the host allocator, and the resident-bytes-* cells are capacity
# measurements (update_ns = bytes/tenant), so micro_tenant reports them
# but the baseline excludes them.
filter_tenant_cells() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["cells"] = [c for c in doc["cells"]
                if c["algorithm"].startswith("keyed-")
                or c["algorithm"] == "lookup-warm"]
with open(sys.argv[2], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
EOF
}

# Only the ingest cells gate: `update-<alg>` (per-pair) and
# `update-<alg>-batch` (block fast path) are tight single-threaded loops
# and stable on any host. The product-* query-latency cells are
# eigensolve/allocation-shaped and too noisy at micro scale, so
# micro_amm reports them but the baseline excludes them.
filter_amm_cells() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["cells"] = [c for c in doc["cells"]
                if c["algorithm"].startswith("update-")]
with open(sys.argv[2], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
EOF
}

if [[ "$update_baseline" == 1 ]]; then
  cp BENCH_micro_sketch.json "$SKETCH_BASELINE"
  cp BENCH_micro_metrics.json "$METRICS_BASELINE"
  filter_warm_cells BENCH_micro_query.json "$QUERY_BASELINE"
  filter_shard_cells BENCH_micro_shard.json "$SHARD_BASELINE"
  filter_tenant_cells BENCH_micro_tenant.json "$TENANT_BASELINE"
  filter_amm_cells BENCH_micro_amm.json "$AMM_BASELINE"
  echo "baselines refreshed: $SKETCH_BASELINE $METRICS_BASELINE" \
       "$QUERY_BASELINE $SHARD_BASELINE $TENANT_BASELINE $AMM_BASELINE"
  exit 0
fi

status=0
python3 scripts/bench_diff.py "$SKETCH_BASELINE" BENCH_micro_sketch.json \
  ${diff_args[@]+"${diff_args[@]}"} || status=1
python3 scripts/bench_diff.py "$QUERY_BASELINE" BENCH_micro_query.json \
  ${diff_args[@]+"${diff_args[@]}"} || status=1
# Metrics cells sit in the single-digit-ns range where timer granularity
# alone can swing a run several percent, so they gate at a looser 50%:
# still catches "someone put a lock on the counter path" regressions.
python3 scripts/bench_diff.py "$METRICS_BASELINE" BENCH_micro_metrics.json \
  --threshold 0.5 || status=1
# Restrict the fresh run to the gated (single-threaded) shard cells before
# diffing, mirroring what the committed baseline holds.
filter_shard_cells BENCH_micro_shard.json BENCH_micro_shard.gated.json
python3 scripts/bench_diff.py "$SHARD_BASELINE" BENCH_micro_shard.gated.json \
  ${diff_args[@]+"${diff_args[@]}"} || status=1
rm -f BENCH_micro_shard.gated.json
filter_tenant_cells BENCH_micro_tenant.json BENCH_micro_tenant.gated.json
python3 scripts/bench_diff.py "$TENANT_BASELINE" BENCH_micro_tenant.gated.json \
  ${diff_args[@]+"${diff_args[@]}"} || status=1
rm -f BENCH_micro_tenant.gated.json
filter_amm_cells BENCH_micro_amm.json BENCH_micro_amm.gated.json
python3 scripts/bench_diff.py "$AMM_BASELINE" BENCH_micro_amm.gated.json \
  ${diff_args[@]+"${diff_args[@]}"} || status=1
rm -f BENCH_micro_amm.gated.json
exit $status
