#!/usr/bin/env bash
# Perf regression gate for the sketch-update hot path.
#
# Builds the release preset, runs the micro_sketch append benchmarks,
# converts the result to BENCH cells and diffs them against the committed
# baseline in bench/baselines/. Exits nonzero when any update_ns cell
# regresses by more than the bench_diff threshold (default 10%), so it
# can run as a pre-merge check:
#
#     scripts/bench_gate.sh [extra bench_diff.py args, e.g. --threshold 0.15]
#
# To refresh the baseline after an intentional perf change:
#
#     scripts/bench_gate.sh --update-baseline
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=bench/baselines/BENCH_micro_sketch.json
FILTER='BM_FrequentDirectionsAppend|BM_RandomProjectionAppend|BM_HashSketchAppend'
MIN_TIME=2

update_baseline=0
diff_args=()
for arg in "$@"; do
  if [[ "$arg" == "--update-baseline" ]]; then
    update_baseline=1
  else
    diff_args+=("$arg")
  fi
done

cmake --preset release >/dev/null
cmake --build build-release -j"$(nproc)" --target micro_sketch >/dev/null

./build-release/bench/micro_sketch \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json 2>/dev/null |
  python3 scripts/microbench_to_cells.py --figure micro_sketch \
    -o BENCH_micro_sketch.json

if [[ "$update_baseline" == 1 ]]; then
  cp BENCH_micro_sketch.json "$BASELINE"
  echo "baseline refreshed: $BASELINE"
  exit 0
fi

python3 scripts/bench_diff.py "$BASELINE" BENCH_micro_sketch.json \
  ${diff_args[@]+"${diff_args[@]}"}
