#!/usr/bin/env python3
"""Convert google-benchmark JSON output into the BENCH cells format.

The figure binaries in bench/ emit BENCH_<slug>.json documents with a
`cells` list keyed by (figure, algorithm, ell) — the shape consumed by
scripts/bench_diff.py. The google-benchmark microbenchmarks
(micro_sketch, micro_linalg, ...) emit their own JSON schema instead.
This script bridges the two so microbenchmark runs can be gated by the
same diff tool:

    ./build-release/bench/micro_sketch --benchmark_format=json ... \
        | scripts/microbench_to_cells.py --figure micro_sketch \
              -o BENCH_micro_sketch.json

Mapping: each per-iteration benchmark entry named `BM_Foo/N` becomes a
cell with algorithm "BM_Foo", ell N and update_ns = real_time (the
microbenchmarks all report nanoseconds per item). Aggregate entries
(_mean/_median/_stddev) are skipped; when repetitions are used, pass
--use-aggregate mean to keep only the mean rows instead.
"""

import argparse
import json
import sys


def to_cells(doc, use_aggregate=None):
    cells = []
    for b in doc.get("benchmarks", []):
        run_type = b.get("run_type", "iteration")
        if use_aggregate is None:
            if run_type != "iteration":
                continue
        else:
            if run_type != "aggregate" or b.get("aggregate_name") != use_aggregate:
                continue
        name = b["name"]
        if use_aggregate is not None:
            name = name.rsplit("_", 1)[0]  # strip `_mean` etc.
        algorithm, _, arg = name.partition("/")
        try:
            ell = int(arg)
        except ValueError:
            ell = 0
        if b.get("time_unit", "ns") != "ns":
            raise SystemExit(f"{name}: expected ns time_unit, got {b['time_unit']}")
        cells.append(
            {
                "algorithm": algorithm,
                "ell": ell,
                "update_ns": b["real_time"],
            }
        )
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "input",
        nargs="?",
        default="-",
        help="google-benchmark JSON file (default: stdin)",
    )
    parser.add_argument(
        "--figure",
        required=True,
        help="figure label for the emitted cells (e.g. micro_sketch)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="-",
        help="output BENCH json path (default: stdout)",
    )
    parser.add_argument(
        "--use-aggregate",
        default=None,
        help="keep only this aggregate row per benchmark (e.g. mean); "
        "default keeps per-iteration rows",
    )
    args = parser.parse_args()

    with (sys.stdin if args.input == "-" else open(args.input)) as fh:
        doc = json.load(fh)
    cells = to_cells(doc, args.use_aggregate)
    if not cells:
        raise SystemExit("no benchmark entries converted")
    out = {"figure": args.figure, "cells": cells}
    text = json.dumps(out, indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")


if __name__ == "__main__":
    main()
