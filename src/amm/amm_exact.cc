#include "amm/amm_exact.h"

#include <utility>
#include <vector>

#include "util/logging.h"

namespace swsketch {

AmmExact::AmmExact(size_t dim_a, size_t dim_b, WindowSpec window)
    : AmmExact(dim_a, dim_b, window, MetricSet(MetricScope("amm"))) {}

AmmExact::AmmExact(size_t dim_a, size_t dim_b, WindowSpec window,
                   const MetricSet& metrics)
    : AmmSketch(dim_a, dim_b, metrics),
      window_(window),
      buffer_a_(window),
      buffer_b_(window) {}

void AmmExact::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim());
  SWSKETCH_CHECK_GE(ts, now_);
  ++mutation_version_;
  now_ = ts;
  metrics().pairs_ingested->Add();
  buffer_a_.Add(
      Row(std::vector<double>(row.begin(), row.begin() + dim_a()), ts));
  buffer_b_.Add(
      Row(std::vector<double>(row.begin() + dim_a(), row.end()), ts));
}

void AmmExact::UpdateBatch(const Matrix& rows, std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() > 0) SWSKETCH_CHECK_EQ(rows.cols(), dim());
  for (size_t i = 0; i < rows.rows(); ++i) Update(rows.Row(i), ts[i]);
}

void AmmExact::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  ++mutation_version_;
  now_ = now;
  buffer_a_.AdvanceTo(now);
  buffer_b_.AdvanceTo(now);
}

Matrix AmmExact::Query() {
  SWSKETCH_CHECK_EQ(buffer_a_.size(), buffer_b_.size());
  Matrix stacked(buffer_a_.size(), dim());
  size_t i = 0;
  auto it_b = buffer_b_.rows().begin();
  for (const Row& ra : buffer_a_.rows()) {
    const Row& rb = *it_b++;
    for (size_t j = 0; j < dim_a(); ++j) stacked(i, j) = ra.values[j];
    for (size_t j = 0; j < dim_b(); ++j) {
      stacked(i, dim_a() + j) = rb.values[j];
    }
    ++i;
  }
  return stacked;
}

Matrix AmmExact::ComputeProduct() {
  SWSKETCH_CHECK_EQ(buffer_a_.size(), buffer_b_.size());
  Matrix product(dim_a(), dim_b());
  auto it_b = buffer_b_.rows().begin();
  for (const Row& ra : buffer_a_.rows()) {
    const Row& rb = *it_b++;
    for (size_t i = 0; i < dim_a(); ++i) {
      const double left = ra.values[i];
      if (left == 0.0) continue;
      for (size_t j = 0; j < dim_b(); ++j) {
        product(i, j) += left * rb.values[j];
      }
    }
  }
  return product;
}

void AmmExact::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kSerialTag, 1);
  writer->Put<uint64_t>(dim_a());
  writer->Put<uint64_t>(dim_b());
  window_.Serialize(writer);
  writer->Put(now_);
  SWSKETCH_CHECK_EQ(buffer_a_.size(), buffer_b_.size());
  writer->Put<uint64_t>(buffer_a_.size());
  auto it_b = buffer_b_.rows().begin();
  for (const Row& ra : buffer_a_.rows()) {
    const Row& rb = *it_b++;
    writer->Put(ra.ts);
    writer->PutVector(ra.values);
    writer->PutVector(rb.values);
  }
}

Result<AmmExact> AmmExact::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, kSerialTag, 1)) {
    return Status::InvalidArgument("bad AMM-EXACT header");
  }
  uint64_t dim_a = 0, dim_b = 0;
  if (!reader->Get(&dim_a) || !reader->Get(&dim_b) || dim_a == 0 ||
      dim_b == 0) {
    return Status::InvalidArgument("bad AMM-EXACT dims");
  }
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  double now = 0.0;
  uint64_t n = 0;
  if (!reader->Get(&now) || !reader->Get(&n)) {
    return Status::InvalidArgument("truncated AMM-EXACT payload");
  }
  AmmExact sketch(dim_a, dim_b, *window);
  for (uint64_t i = 0; i < n; ++i) {
    double ts = 0.0;
    std::vector<double> a, b;
    if (!reader->Get(&ts) || !reader->GetVector(&a) ||
        !reader->GetVector(&b) || a.size() != dim_a || b.size() != dim_b) {
      return Status::InvalidArgument("bad AMM-EXACT pair");
    }
    sketch.buffer_a_.Add(Row(std::move(a), ts));
    sketch.buffer_b_.Add(Row(std::move(b), ts));
  }
  sketch.buffer_a_.AdvanceTo(now);
  sketch.buffer_b_.AdvanceTo(now);
  sketch.now_ = now;
  sketch.mutation_version_ = 1;  // Loaded state is valid but cold.
  sketch.metrics().reloads->Add();
  return sketch;
}

}  // namespace swsketch
