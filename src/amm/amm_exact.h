// Exact AMM reference backend: dual WindowBuffers hold every live
// (row_a, row_b) pair, so QueryProduct() is the exact A_W^T B_W — the
// ground truth the differential harness locksteps every approximate AMM
// backend against (the same role ExactWindow plays for covariance, and
// the same Theta(N) space Theorem 4.1 proves unavoidable for exactness).
#ifndef SWSKETCH_AMM_AMM_EXACT_H_
#define SWSKETCH_AMM_AMM_EXACT_H_

#include <cstdint>
#include <string>

#include "amm/amm_sketch.h"
#include "stream/window_buffer.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Linear-space exact two-operand window tracker.
class AmmExact : public AmmSketch {
 public:
  AmmExact(size_t dim_a, size_t dim_b, WindowSpec window);

  /// Mass-construction overload (SketchPrototype): pre-resolved metric
  /// handles instead of per-instance registry probes.
  AmmExact(size_t dim_a, size_t dim_b, WindowSpec window,
           const MetricSet& metrics);

  AmmExact(AmmExact&&) = default;

  void Update(std::span<const double> row, double ts) override;
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;
  void AdvanceTo(double now) override;

  /// The stacked window matrix [A_W | B_W] itself (zero error).
  Matrix Query() override;

  uint64_t StateVersion() const override { return mutation_version_; }

  /// Both operand buffers count: the honest dual-storage footprint.
  size_t RowsStored() const override {
    return buffer_a_.size() + buffer_b_.size();
  }

  std::string name() const override { return "AMM-EXACT"; }
  const WindowSpec& window() const override { return window_; }

  const WindowBuffer& buffer_a() const { return buffer_a_; }
  const WindowBuffer& buffer_b() const { return buffer_b_; }

  /// Version 1 AMM-EXACT wire format (v2 container conventions): framed
  /// header, dims, window, clock, then the live pairs in arrival order.
  static constexpr uint32_t kSerialTag = 0x414D4531;  // "AME1"
  void Serialize(ByteWriter* writer) const;
  static Result<AmmExact> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 protected:
  /// Exact A_W^T B_W, accumulated pair-by-pair in arrival order (the
  /// stacked-row-outermost order ProductFromStacked documents, so operand
  /// swap transposes the result bitwise).
  Matrix ComputeProduct() override;

 private:
  WindowSpec window_;
  WindowBuffer buffer_a_;
  WindowBuffer buffer_b_;
  double now_ = 0.0;
  uint64_t mutation_version_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_AMM_AMM_EXACT_H_
