// Sliding-window approximate matrix multiplication (AMM): estimate
// A_W^T B_W for two synchronized row streams A (d_a columns) and B (d_b
// columns) over one shared sliding window, per "Optimal Approximate
// Matrix Multiplication over Sliding Window" (PAPERS.md, arXiv
// 2502.17940).
//
// The estimator is the paper's co-sketching identity: sketch the stacked
// rows M = [A | B] (dimension d = d_a + d_b) with any sliding-window
// covariance sketch C, so
//
//     C^T C  ~=  M_W^T M_W  =  [ A^T A   A^T B ]
//                              [ B^T A   B^T B ]
//
// and the off-diagonal d_a x d_b block of C^T C estimates A_W^T B_W with
// spectral error at most ||M_W^T M_W - C^T C||_2 — every bound the
// single-operand machinery earns on the stacked stream transfers to the
// product verbatim. AmmSketch therefore IS-A SlidingWindowSketch at the
// stacked dimension: Query() returns the stacked sketch C itself (so
// ConcurrentSketch snapshots, ShardedSketch FD-merge reduction, tenant
// spill and the factory round-trip contract all work unchanged), and
// QueryProduct() extracts the product estimate from C.
#ifndef SWSKETCH_AMM_AMM_SKETCH_H_
#define SWSKETCH_AMM_AMM_SKETCH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "linalg/matrix.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

/// Two-operand sliding-window sketch: ingests synchronized row pairs
/// (row_a, row_b) and estimates the product A_W^T B_W of the window.
class AmmSketch : public SlidingWindowSketch {
 public:
  // Handles into the global registry under the "amm." scope, shared by
  // every AMM backend (exact and stacked). Ledger (checked by
  // metrics_invariants_test):
  //   product_queries == product_cache_hits + product_cache_misses
  // pairs_ingested counts every (row_a, row_b) pair consumed by Update /
  // UpdateBatch across all instances; reloads counts deserializations.
  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : pairs_ingested(scope.counter("pairs_ingested")),
          product_queries(scope.counter("product_queries")),
          product_cache_hits(scope.counter("product_cache_hits")),
          product_cache_misses(scope.counter("product_cache_misses")),
          reloads(scope.counter("reloads")) {}
    Counter* pairs_ingested;
    Counter* product_queries;
    Counter* product_cache_hits;
    Counter* product_cache_misses;
    Counter* reloads;
  };

  AmmSketch(size_t dim_a, size_t dim_b, const MetricSet& metrics)
      : dim_a_(dim_a), dim_b_(dim_b), metrics_(metrics) {
    SWSKETCH_CHECK_GT(dim_a, 0u);
    SWSKETCH_CHECK_GT(dim_b, 0u);
  }

  size_t dim_a() const { return dim_a_; }
  size_t dim_b() const { return dim_b_; }

  /// Stacked dimension d_a + d_b (the SlidingWindowSketch contract:
  /// Update rows and Query columns are both this wide).
  size_t dim() const override { return dim_a_ + dim_b_; }

  /// Two-operand convenience: stacks (row_a, row_b) and forwards to the
  /// single-operand Update at the stacked dimension.
  void UpdatePair(std::span<const double> row_a,
                  std::span<const double> row_b, double ts) {
    SWSKETCH_CHECK_EQ(row_a.size(), dim_a_);
    SWSKETCH_CHECK_EQ(row_b.size(), dim_b_);
    stack_scratch_.resize(dim());
    for (size_t j = 0; j < dim_a_; ++j) stack_scratch_[j] = row_a[j];
    for (size_t j = 0; j < dim_b_; ++j) {
      stack_scratch_[dim_a_ + j] = row_b[j];
    }
    Update(stack_scratch_, ts);
  }

  /// Batched two-operand ingest: a.Row(i) and b.Row(i) arrive together at
  /// ts[i]. Stacks once and rides the backend's UpdateBatch fast path.
  void UpdatePairBatch(const Matrix& a, const Matrix& b,
                       std::span<const double> ts) {
    SWSKETCH_CHECK_EQ(a.rows(), b.rows());
    SWSKETCH_CHECK_EQ(a.rows(), ts.size());
    if (a.rows() > 0) {
      SWSKETCH_CHECK_EQ(a.cols(), dim_a_);
      SWSKETCH_CHECK_EQ(b.cols(), dim_b_);
    }
    UpdateBatch(StackOperands(a, b), ts);
  }

  /// The d_a x d_b product estimate for the current window, extracted
  /// from the stacked approximation Query() returns. Cached until
  /// StateVersion() moves (version 0 = untracked = always cold).
  Matrix QueryProduct() {
    metrics_.product_queries->Add();
    const uint64_t version = StateVersion();
    if (product_valid_ && version != 0 && version == product_version_) {
      metrics_.product_cache_hits->Add();
      return cached_product_;
    }
    metrics_.product_cache_misses->Add();
    cached_product_ = ComputeProduct();
    product_version_ = version;
    product_valid_ = true;
    return cached_product_;
  }

  /// Off-diagonal block extraction: given a stacked approximation `c`
  /// (any row count, d_a + d_b columns), returns the d_a x d_b estimate
  /// (first d_a columns of c)^T x (last d_b columns of c). Accumulates
  /// row-major with the stacked row index outermost, so two sketches
  /// whose states are column-block swaps of each other produce exact
  /// transposes (the transpose-symmetry law the property tests pin).
  static Matrix ProductFromStacked(const Matrix& c, size_t dim_a) {
    SWSKETCH_CHECK_GE(c.cols(), dim_a + 1);
    const size_t dim_b = c.cols() - dim_a;
    Matrix product(dim_a, dim_b);
    for (size_t r = 0; r < c.rows(); ++r) {
      for (size_t i = 0; i < dim_a; ++i) {
        const double left = c(r, i);
        if (left == 0.0) continue;
        for (size_t j = 0; j < dim_b; ++j) {
          product(i, j) += left * c(r, dim_a + j);
        }
      }
    }
    return product;
  }

  /// Horizontal concatenation [a | b] of two row-synchronized operands.
  static Matrix StackOperands(const Matrix& a, const Matrix& b) {
    SWSKETCH_CHECK_EQ(a.rows(), b.rows());
    Matrix stacked(a.rows(), a.cols() + b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) stacked(i, j) = a(i, j);
      for (size_t j = 0; j < b.cols(); ++j) {
        stacked(i, a.cols() + j) = b(i, j);
      }
    }
    return stacked;
  }

  /// Read-only handle set into the shared "amm." counters (drivers print
  /// pairs_ingested / product_queries for live stats).
  const MetricSet& metrics() const { return metrics_; }

 protected:
  /// Backend hook for the cold product path. AmmExact computes the exact
  /// A_W^T B_W; stacked backends extract the block from Query().
  virtual Matrix ComputeProduct() = 0;

  /// Subclasses call this on reload to restart the product cache cold
  /// (caches are runtime state and never ride in the wire payload).
  void ResetProductCache() {
    product_valid_ = false;
    product_version_ = 0;
    cached_product_ = Matrix(0, 0);
  }

 private:
  size_t dim_a_;
  size_t dim_b_;
  MetricSet metrics_;
  std::vector<double> stack_scratch_;

  bool product_valid_ = false;
  uint64_t product_version_ = 0;
  Matrix cached_product_;
};

}  // namespace swsketch

#endif  // SWSKETCH_AMM_AMM_SKETCH_H_
