#include "amm/amm_stacked.h"

#include "core/factory.h"
#include "util/logging.h"

namespace swsketch {

AmmStacked::AmmStacked(size_t dim_a, size_t dim_b,
                       std::unique_ptr<SlidingWindowSketch> inner)
    : AmmStacked(dim_a, dim_b, std::move(inner),
                 MetricSet(MetricScope("amm"))) {}

AmmStacked::AmmStacked(size_t dim_a, size_t dim_b,
                       std::unique_ptr<SlidingWindowSketch> inner,
                       const MetricSet& metrics)
    : AmmSketch(dim_a, dim_b, metrics), inner_(std::move(inner)) {
  SWSKETCH_CHECK(inner_ != nullptr);
  SWSKETCH_CHECK_EQ(inner_->dim(), dim_a + dim_b);
}

void AmmStacked::Update(std::span<const double> row, double ts) {
  metrics().pairs_ingested->Add();
  inner_->Update(row, ts);
}

void AmmStacked::UpdateBatch(const Matrix& rows,
                             std::span<const double> ts) {
  metrics().pairs_ingested->Add(rows.rows());
  inner_->UpdateBatch(rows, ts);
}

void AmmStacked::UpdateSparse(const SparseVector& row, double ts) {
  metrics().pairs_ingested->Add();
  inner_->UpdateSparse(row, ts);
}

void AmmStacked::Serialize(ByteWriter* writer) const {
  const Status st = SerializeTo(writer);
  SWSKETCH_CHECK(st.ok());
}

Status AmmStacked::SerializeTo(ByteWriter* writer) const {
  WriteHeader(writer, kSerialTag, 1);
  writer->Put<uint64_t>(dim_a());
  writer->Put<uint64_t>(dim_b());
  return inner_->SerializeTo(writer);
}

Result<AmmStacked> AmmStacked::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, kSerialTag, 1)) {
    return Status::InvalidArgument("bad AMM-stacked header");
  }
  uint64_t dim_a = 0, dim_b = 0;
  if (!reader->Get(&dim_a) || !reader->Get(&dim_b) || dim_a == 0 ||
      dim_b == 0) {
    return Status::InvalidArgument("bad AMM-stacked dims");
  }
  auto inner = DeserializeSlidingWindowSketch(reader);
  if (!inner.ok()) return inner.status();
  if ((*inner)->dim() != dim_a + dim_b) {
    return Status::InvalidArgument("AMM-stacked dims disagree with payload");
  }
  AmmStacked sketch(dim_a, dim_b, inner.take());
  sketch.metrics().reloads->Add();
  return sketch;
}

}  // namespace swsketch
