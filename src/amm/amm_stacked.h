// Stacked-operand AMM backends: wrap any single-operand sliding-window
// covariance sketch at the stacked dimension d_a + d_b and read the
// product estimate off the off-diagonal block of its approximation's
// Gram (see amm_sketch.h for the identity). The factory registers three
// wrappers over the existing FrequentDirections-core machinery:
//
//   amm-co-fd  — DS-FD underlying: one live frame FD ingests the stacked
//                rows directly (the co-FD estimator of arXiv 2502.17940:
//                the product block of the shrunk Gram), dump/snapshot
//                ladder handles the window boundary.
//   amm-lm-fd  — LogarithmicMethod<FrequentDirections> underlying: the
//                paper's LM block lifecycle, EH norm levels, merge caches
//                and shared shrink scratch, all at the stacked dimension.
//   amm-di-fd  — DyadicInterval<FrequentDirections> underlying (sequence
//                windows only), dyadic cover over stacked FD blocks.
//
// Every SlidingWindowSketch obligation (Update/UpdateBatch/AdvanceTo/
// Query/Flush/StateVersion/serialize) forwards to the underlying sketch,
// so the wrapper inherits its error bound, its caches and its
// concurrency contract unchanged; QueryProduct() adds a product cache
// keyed on the underlying StateVersion.
#ifndef SWSKETCH_AMM_AMM_STACKED_H_
#define SWSKETCH_AMM_AMM_STACKED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "amm/amm_sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// AMM wrapper over an arbitrary stacked-dimension sliding-window sketch.
class AmmStacked : public AmmSketch {
 public:
  /// `inner` must sketch dimension dim_a + dim_b.
  AmmStacked(size_t dim_a, size_t dim_b,
             std::unique_ptr<SlidingWindowSketch> inner);

  /// Mass-construction overload (SketchPrototype): pre-resolved amm.*
  /// metric handles.
  AmmStacked(size_t dim_a, size_t dim_b,
             std::unique_ptr<SlidingWindowSketch> inner,
             const MetricSet& metrics);

  AmmStacked(AmmStacked&&) = default;

  void Update(std::span<const double> row, double ts) override;
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;
  void UpdateSparse(const SparseVector& row, double ts) override;
  void AdvanceTo(double now) override { inner_->AdvanceTo(now); }

  /// The underlying stacked approximation C (columns = d_a + d_b).
  Matrix Query() override { return inner_->Query(); }

  void Flush() override { inner_->Flush(); }
  uint64_t StateVersion() const override { return inner_->StateVersion(); }
  size_t RowsStored() const override { return inner_->RowsStored(); }
  std::string name() const override { return "AMM[" + inner_->name() + "]"; }
  const WindowSpec& window() const override { return inner_->window(); }

  const SlidingWindowSketch& inner() const { return *inner_; }

  /// Version 1 AMM-stacked wire format: framed header + dims, then the
  /// underlying sketch's own tagged payload (reload dispatches on that
  /// inner tag, so one wrapper format covers every underlying backend).
  static constexpr uint32_t kSerialTag = 0x414D5331;  // "AMS1"
  void Serialize(ByteWriter* writer) const;
  static Result<AmmStacked> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override;

 protected:
  Matrix ComputeProduct() override {
    return ProductFromStacked(inner_->Query(), dim_a());
  }

 private:
  std::unique_ptr<SlidingWindowSketch> inner_;
};

}  // namespace swsketch

#endif  // SWSKETCH_AMM_AMM_STACKED_H_
