#include "core/best_rank_k.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/subspace_iteration.h"
#include "util/logging.h"

namespace swsketch {

void BestRankK::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  buffer_.Add(Row(std::vector<double>(row.begin(), row.end()), ts));
}

Matrix BestRankK::Query() {
  Matrix b(0, dim_);
  if (buffer_.empty()) return b;
  const Matrix gram = buffer_.GramMatrix(dim_);
  const TopEigen top = TopEigenpairsPsd(gram, std::min(k_, dim_));
  for (size_t i = 0; i < top.values.size(); ++i) {
    const double lam = std::max(top.values[i], 0.0);
    if (lam <= 0.0) break;
    const double s = std::sqrt(lam);
    std::vector<double> row(dim_);
    for (size_t j = 0; j < dim_; ++j) row[j] = s * top.vectors(j, i);
    b.AppendRow(row);
  }
  return b;
}

double BestRankKError(const Matrix& gram, size_t k, double frob_sq) {
  return BestAndZeroError(gram, k, frob_sq).best_err;
}

ReferenceErrors BestAndZeroError(const Matrix& gram, size_t k,
                                 double frob_sq) {
  SWSKETCH_CHECK_GT(frob_sq, 0.0);
  ReferenceErrors out;
  const size_t want = std::min(k + 1, gram.rows());
  const TopEigen top = TopEigenpairsPsd(gram, want);
  out.zero_err = std::max(top.values.front(), 0.0) / frob_sq;
  // lambda_{k+1} is zero when k >= rank of the Gram matrix.
  out.best_err =
      k >= gram.rows() ? 0.0 : std::max(top.values.back(), 0.0) / frob_sq;
  return out;
}

}  // namespace swsketch
