// BEST(offline): the best rank-k approximation per window, the theoretical
// optimum among k-row sketches (Section 8, "BEST"). Computed offline from
// the exact window — it is a reference line, not a streaming algorithm
// (computing it in a stream is open, as the paper notes).
#ifndef SWSKETCH_CORE_BEST_RANK_K_H_
#define SWSKETCH_CORE_BEST_RANK_K_H_

#include <string>

#include "core/sliding_window_sketch.h"
#include "stream/window_buffer.h"

namespace swsketch {

/// Offline best rank-k reference over the sliding window.
class BestRankK : public SlidingWindowSketch {
 public:
  BestRankK(size_t dim, WindowSpec window, size_t k)
      : dim_(dim), window_(window), k_(k), buffer_(window) {}

  void Update(std::span<const double> row, double ts) override;
  void AdvanceTo(double now) override { buffer_.AdvanceTo(now); }

  /// B with k rows: sqrt(lambda_i) v_i^T for the top-k eigenpairs of
  /// A_W^T A_W, so B^T B = (A_k)^T (A_k) and the covariance error equals
  /// lambda_{k+1} / ||A||_F^2 — the optimum.
  Matrix Query() override;

  size_t RowsStored() const override { return k_; }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "BEST"; }
  const WindowSpec& window() const override { return window_; }

  size_t k() const { return k_; }

 private:
  size_t dim_;
  WindowSpec window_;
  size_t k_;
  WindowBuffer buffer_;
};

/// Optimal covariance error of any rank-k approximation of a window with
/// Gram matrix `gram` and squared Frobenius norm `frob_sq`:
/// lambda_{k+1}(gram) / frob_sq.
double BestRankKError(const Matrix& gram, size_t k, double frob_sq);

/// Both reference errors from one eigensolve: the best-rank-k error and
/// the trivial-approximation floor err(B = 0) = lambda_1 / frob_sq (the
/// paper's Section 8.1 observation (5) reference point).
struct ReferenceErrors {
  double best_err = 0.0;  // lambda_{k+1} / frob_sq.
  double zero_err = 0.0;  // lambda_1 / frob_sq.
};
ReferenceErrors BestAndZeroError(const Matrix& gram, size_t k,
                                 double frob_sq);

}  // namespace swsketch

#endif  // SWSKETCH_CORE_BEST_RANK_K_H_
