// Thread-safe decorator for sliding-window sketches: one writer thread
// ingesting the stream, any number of reader threads querying. All methods
// are serialized by one mutex — sketch updates are microseconds, so a
// single lock is the right tradeoff; use one sketch per stream partition
// (see distributed/) when the ingest rate needs sharding.
#ifndef SWSKETCH_CORE_CONCURRENT_SKETCH_H_
#define SWSKETCH_CORE_CONCURRENT_SKETCH_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/sliding_window_sketch.h"
#include "util/logging.h"

namespace swsketch {

/// Mutex-guarded SlidingWindowSketch wrapper.
class ConcurrentSketch : public SlidingWindowSketch {
 public:
  explicit ConcurrentSketch(std::unique_ptr<SlidingWindowSketch> inner)
      : inner_(std::move(inner)) {
    SWSKETCH_CHECK(inner_ != nullptr);
  }

  void Update(std::span<const double> row, double ts) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Update(row, ts);
  }

  void UpdateSparse(const SparseVector& row, double ts) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->UpdateSparse(row, ts);
  }

  void AdvanceTo(double now) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->AdvanceTo(now);
  }

  Matrix Query() override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Query();
  }

  size_t RowsStored() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->RowsStored();
  }

  size_t dim() const override { return inner_->dim(); }
  std::string name() const override { return inner_->name() + "+lock"; }
  const WindowSpec& window() const override { return inner_->window(); }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<SlidingWindowSketch> inner_;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_CONCURRENT_SKETCH_H_
