// Thread-safe decorator for sliding-window sketches: one writer thread
// ingesting the stream, any number of reader threads querying.
//
// Two modes:
//  - kSnapshot (default): the writer holds a mutex across mutations and,
//    after each one, publishes an immutable QuerySnapshot (approximation +
//    metadata) by swapping a shared_ptr slot. Readers never take the
//    ingest mutex — Query()/RowsStored()/Snapshot() copy the slot under a
//    dedicated pointer mutex held for a refcount bump only, so readers
//    block neither the writer's ingest nor each other's recompute. (A
//    std::atomic<shared_ptr> slot would make the copy lock-free, but
//    libstdc++'s _Sp_atomic trips ThreadSanitizer on this toolchain; the
//    pointer mutex is held for ~ns and costs nothing at bench scale.)
//    A snapshot
//    reflects the state as of the writer's last mutation; between
//    mutations a time window's wall-clock slide is visible only after the
//    next Update/AdvanceTo, which is exactly the staleness a cached query
//    result already has.
//  - kMutex: every method serializes behind one mutex and queries recompute
//    on the inner sketch — the pre-snapshot behaviour, kept as the
//    comparison baseline (bench/micro_query) and for workloads where
//    per-update publication costs more than reader blocking.
//
// Identity accessors (dim/name/window) are captured at construction: the
// inner sketch never changes them after construction, and caching removes
// the old unguarded read of inner_ racing the writer.
//
// Use one sketch per stream partition (see distributed/) when the ingest
// rate itself needs sharding.
#ifndef SWSKETCH_CORE_CONCURRENT_SKETCH_H_
#define SWSKETCH_CORE_CONCURRENT_SKETCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/sliding_window_sketch.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

/// Thread-safe SlidingWindowSketch wrapper (snapshot or mutex mode).
class ConcurrentSketch : public SlidingWindowSketch {
 public:
  enum class Mode : uint8_t {
    kSnapshot = 0,  // Lock-free readers via published snapshots (default).
    kMutex = 1,     // Single-mutex serialization (comparison baseline).
  };

  /// Immutable view of the sketch published by the writer. update_count
  /// says how many Update/UpdateSparse/UpdateBatch *rows* produced it, so
  /// a validation thread can replay the stream to the same point.
  struct QuerySnapshot {
    Matrix approximation;    // inner->Query() at publication time.
    size_t rows_stored = 0;  // inner->RowsStored() at publication time.
    uint64_t update_count = 0;
    double last_ts = 0.0;  // Timestamp of the latest ingested row/advance.
  };

  explicit ConcurrentSketch(std::unique_ptr<SlidingWindowSketch> inner,
                            Mode mode = Mode::kSnapshot)
      : inner_(std::move(inner)), mode_(mode) {
    SWSKETCH_CHECK(inner_ != nullptr);
    dim_ = inner_->dim();
    window_ = inner_->window();
    name_ = inner_->name() + (mode_ == Mode::kSnapshot ? "+snap" : "+lock");
    if (mode_ == Mode::kSnapshot) {
      Metrics().snapshot_ctors->Add();
      Publish();
    }
  }

  void Update(std::span<const double> row, double ts) override {
    std::lock_guard<std::mutex> lock(mu_);
    Metrics().mutations->Add();
    inner_->Update(row, ts);
    ++update_count_;
    last_ts_ = ts;
    if (mode_ == Mode::kSnapshot) Publish();
  }

  void UpdateSparse(const SparseVector& row, double ts) override {
    std::lock_guard<std::mutex> lock(mu_);
    Metrics().mutations->Add();
    inner_->UpdateSparse(row, ts);
    ++update_count_;
    last_ts_ = ts;
    if (mode_ == Mode::kSnapshot) Publish();
  }

  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override {
    std::lock_guard<std::mutex> lock(mu_);
    Metrics().mutations->Add();
    inner_->UpdateBatch(rows, ts);
    update_count_ += rows.rows();
    if (!ts.empty()) last_ts_ = ts.back();
    if (mode_ == Mode::kSnapshot) Publish();  // One snapshot per batch.
  }

  void AdvanceTo(double now) override {
    std::lock_guard<std::mutex> lock(mu_);
    Metrics().mutations->Add();
    inner_->AdvanceTo(now);
    last_ts_ = now;
    if (mode_ == Mode::kSnapshot) Publish();
  }

  Matrix Query() override {
    if (mode_ == Mode::kSnapshot) return Snapshot()->approximation;
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Query();
  }

  size_t RowsStored() const override {
    if (mode_ == Mode::kSnapshot) return Snapshot()->rows_stored;
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->RowsStored();
  }

  /// Loads the current snapshot: a shared_ptr copy under the pointer
  /// mutex, never blocked by ingest (snapshot mode only; dies in mutex
  /// mode, which has no published state).
  std::shared_ptr<const QuerySnapshot> Snapshot() const {
    SWSKETCH_CHECK(mode_ == Mode::kSnapshot);
    Metrics().reader_copies->Add();
    std::lock_guard<std::mutex> lock(snap_mu_);
    return snapshot_;
  }

  Status SerializeTo(ByteWriter* writer) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->SerializeTo(writer);
  }

  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }
  const WindowSpec& window() const override { return window_; }
  Mode mode() const { return mode_; }

 private:
  // Builds and publishes a fresh snapshot. Caller holds mu_ (or is the
  // constructor). The snapshot is fully built before snap_mu_ is taken,
  // so readers only ever wait out a pointer assignment.
  // Handles into the global registry under the fixed "concurrent." prefix
  // (shared by all instances; modes are distinguished by the invariant
  // snapshots_published == mutations + snapshot_ctors, which holds while
  // only snapshot-mode instances mutate).
  struct MetricSet {
    Counter* snapshot_ctors;
    Counter* mutations;
    Counter* snapshots_published;
    Counter* reader_copies;
  };
  static const MetricSet& Metrics() {
    static const MetricSet m = [] {
      MetricScope scope("concurrent");
      return MetricSet{scope.counter("snapshot_ctors"),
                       scope.counter("mutations"),
                       scope.counter("snapshots_published"),
                       scope.counter("reader_copies")};
    }();
    return m;
  }

  void Publish() {
    Metrics().snapshots_published->Add();
    auto snap = std::make_shared<QuerySnapshot>();
    snap->approximation = inner_->Query();
    snap->rows_stored = inner_->RowsStored();
    snap->update_count = update_count_;
    snap->last_ts = last_ts_;
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshot_ = std::move(snap);
  }

  mutable std::mutex mu_;  // Writer-side mutex (all methods in kMutex mode).
  std::unique_ptr<SlidingWindowSketch> inner_;
  Mode mode_;
  mutable std::mutex snap_mu_;  // Guards only the snapshot_ slot swap/copy.
  std::shared_ptr<const QuerySnapshot> snapshot_;
  uint64_t update_count_ = 0;  // Rows ingested; guarded by mu_.
  double last_ts_ = 0.0;       // Guarded by mu_.

  // Immutable identity, captured at construction so readers never touch
  // inner_ unguarded.
  size_t dim_ = 0;
  std::string name_;
  WindowSpec window_ = WindowSpec::Sequence(1);
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_CONCURRENT_SKETCH_H_
