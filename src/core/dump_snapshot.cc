#include "core/dump_snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/svd.h"
#include "linalg/tridiag_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

namespace {

constexpr size_t kNoRun = static_cast<size_t>(-1);

FrobeniusTracker MakeTracker(const DsFd::Options& options) {
  return FrobeniusTracker(options.exact_frobenius
                              ? FrobeniusTracker::Mode::kExact
                              : FrobeniusTracker::Mode::kExponentialHistogram,
                          options.frobenius_eps);
}

}  // namespace

DsFd::DsFd(size_t dim, WindowSpec window, Options options)
    : DsFd(dim, window, options,
           MetricSet(MetricScope(MetricScope::Slug("DS-FD"))),
           FrequentDirections::MakeShrinkScratch()) {}

DsFd::DsFd(size_t dim, WindowSpec window, Options options,
           const MetricSet& metrics, std::shared_ptr<FdShrinkScratch> scratch)
    : dim_(dim),
      window_(window),
      options_(options),
      metrics_(metrics),
      fd_scratch_(std::move(scratch)),
      tracker_(MakeTracker(options)) {
  SWSKETCH_CHECK_GE(options_.ell, 2u);
  SWSKETCH_CHECK_GE(options_.fd_buffer_factor, 1.0);
  SWSKETCH_CHECK_GE(options_.snapshot_trunc, 0.0);
  SWSKETCH_CHECK_GE(options_.frame_ell_factor, 1.0);
  SWSKETCH_CHECK_GT(options_.frobenius_eps, 0.0);
  frame_ell_ = std::clamp(
      static_cast<size_t>(std::lround(options_.frame_ell_factor *
                                      static_cast<double>(options_.ell))),
      options_.ell, std::max(options_.ell, (dim_ + 1) / 2));
  // Frame shrinks are Gram eigensolves on capacity-sized systems, so the
  // capacity cap keeps them well under dim (16/25 ~ 0.64 of dim).
  frame_capacity_ = std::clamp(
      static_cast<size_t>(options_.fd_buffer_factor *
                          static_cast<double>(frame_ell_)),
      frame_ell_, std::max(frame_ell_, 16 * dim_ / 25));
  ladder_k_ = options_.snapshots_per_window != 0
                  ? options_.snapshots_per_window
                  : std::max<size_t>(8, 3 * options_.ell / 8);
}

DsFd::~DsFd() {
  const size_t nf = frames_.size();
  const size_t ns = num_snapshots();
  if (nf != 0) {
    metrics_.frames_discarded->Add(nf);
    metrics_.live_frames->Add(-static_cast<int64_t>(nf));
  }
  if (ns != 0) {
    metrics_.snapshots_discarded->Add(ns);
    metrics_.live_snapshots->Add(-static_cast<int64_t>(ns));
  }
}

size_t DsFd::num_snapshots() const {
  size_t n = 0;
  for (const Frame& f : frames_) n += f.snapshots.size();
  return n;
}

size_t DsFd::RowsStored() const {
  size_t n = 0;
  for (const Frame& f : frames_) {
    n += f.fd.RowsStored();
    for (const Snapshot& s : f.snapshots) n += s.rows.rows();
  }
  return n;
}

DsFd::Frame& DsFd::OpenFrame(double ts) {
  // buffer_factor chosen so FD's truncating capacity resolution lands on
  // exactly frame_capacity_ rows.
  FrequentDirections fd(
      dim_,
      FrequentDirections::Options{
          .ell = frame_ell_,
          .buffer_factor = (static_cast<double>(frame_capacity_) + 0.5) /
                           static_cast<double>(frame_ell_)});
  if (fd_scratch_) fd.ShareShrinkScratch(fd_scratch_);
  frames_.push_back(
      Frame{.fd = std::move(fd), .birth = ts, .last = ts, .snapshots = {}});
  metrics_.frames_opened->Add();
  metrics_.live_frames->Add(1);
  ++structure_version_;
  return frames_.back();
}

void DsFd::Expire(double now) {
  const double start = window_.Start(now);
  tracker_.EvictBefore(start);
  while (!frames_.empty() && frames_.front().last < start) {
    const size_t ns = frames_.front().snapshots.size();
    if (ns != 0) {
      metrics_.snapshots_evicted->Add(ns);
      metrics_.live_snapshots->Add(-static_cast<int64_t>(ns));
    }
    metrics_.frames_expired->Add();
    metrics_.live_frames->Add(-1);
    frames_.erase(frames_.begin());
    ++structure_version_;
  }
  if (!frames_.empty()) EvictFrontSnapshots(start);
}

void DsFd::EvictFrontSnapshots(double window_start) {
  // A snapshot may be dropped once its successor also lies before the
  // window start: the newest expired snapshot is exactly the C_i the next
  // query subtracts and must survive. Only the front frame can hold
  // expired snapshots (later frames are born after the front's last row).
  std::vector<Snapshot>& sn = frames_.front().snapshots;
  size_t drop = 0;
  while (drop + 1 < sn.size() && sn[drop + 1].ts < window_start) ++drop;
  if (drop != 0) {
    sn.erase(sn.begin(), sn.begin() + static_cast<ptrdiff_t>(drop));
    metrics_.snapshots_evicted->Add(drop);
    metrics_.live_snapshots->Add(-static_cast<int64_t>(drop));
    ++structure_version_;
  }
}

double DsFd::SnapshotSpacing() const {
  const double fhat = tracker_.Estimate(window_.Start(now_));
  return std::max(fhat, 1e-300) / static_cast<double>(ladder_k_);
}

void DsFd::DumpSnapshot(Frame& frame, double ts) {
  const double spacing = SnapshotSpacing();
  // Flush the frame FD so its rows are the diagonalized post-shrink state
  // (mutually orthogonal, squared norm = shrunk eigenvalue). Spectral
  // truncation is then a free row-norm filter — no extra eigensolve on
  // the ingest path; the forced shrink is work the frame FD was about to
  // do anyway (dumps are rarer than the amortized shrink cadence).
  frame.fd.ShrinkNow();
  const Matrix& b = frame.fd.Approximation();
  const double cutoff = options_.snapshot_trunc * spacing;
  Matrix snap(0, dim_);
  snap.ReserveRows(b.rows());
  for (size_t i = 0; i < b.rows(); ++i) {
    const double w = NormSq(b.Row(i));
    if (w > 0.0 && w >= cutoff) snap.AppendRow(b.Row(i));
  }
  metrics_.snapshot_rows->Record(snap.rows());
  frame.snapshots.push_back(Snapshot{ts, frame.mass, std::move(snap)});
  frame.mass_since_snapshot = 0.0;
  metrics_.snapshots_taken->Add();
  metrics_.live_snapshots->Add(1);
  ++structure_version_;
  ThinLadder(frame, spacing);
}

void DsFd::ThinLadder(Frame& frame, double spacing) {
  // Re-thin against the CURRENT quantum. Early in a frame's life the
  // window-mass estimate (and with it the quantum) is still small, so the
  // ladder is dumped geometrically dense; without thinning the startup
  // transient holds O(log) snapshots instead of O(k). Dropping an interior
  // snapshot is safe while the frame mass between its retained neighbours
  // stays <= spacing: any window start landing in the merged gap still
  // finds a snapshot at most one quantum of mass behind it, which is the
  // dump-time leak bound. The newest snapshot is never dropped (it is the
  // freshest pre-cut state the next straddle will subtract). Only the
  // active frame is thinned, and while a frame is active none of its
  // snapshots can lie before the window start (the frame freezes at the
  // first update where its birth falls behind the start), so thinning
  // never removes a snapshot a query could already need.
  std::vector<Snapshot>& sn = frame.snapshots;
  if (sn.size() < 2) return;
  std::vector<Snapshot> kept;
  kept.reserve(sn.size());
  double last_kept_mass = 0.0;
  for (size_t i = 0; i + 1 < sn.size(); ++i) {
    if (sn[i + 1].frame_mass - last_kept_mass <= spacing) continue;
    last_kept_mass = sn[i].frame_mass;
    kept.push_back(std::move(sn[i]));
  }
  kept.push_back(std::move(sn.back()));
  if (kept.size() != sn.size()) {
    const size_t dropped = sn.size() - kept.size();
    metrics_.snapshots_evicted->Add(dropped);
    metrics_.live_snapshots->Add(-static_cast<int64_t>(dropped));
    ++structure_version_;
  }
  sn = std::move(kept);
}

void DsFd::NoteRowNorm(double norm_sq) {
  if (min_row_norm_sq_ == 0.0 || norm_sq < min_row_norm_sq_) {
    min_row_norm_sq_ = norm_sq;
  }
  if (norm_sq > max_row_norm_sq_) max_row_norm_sq_ = norm_sq;
  if (!heavy_tail_warned_ &&
      max_row_norm_sq_ >= kHeavyTailNormSqRatio * min_row_norm_sq_) {
    heavy_tail_warned_ = true;
    metrics_.heavy_tail_warnings->Add();
  }
}

void DsFd::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  SWSKETCH_CHECK_GE(ts, now_);
  ++mutation_version_;
  now_ = ts;
  Expire(ts);
  const double w = NormSq(row);
  if (w <= 0.0) return;
  metrics_.rows_ingested->Add();
  NoteRowNorm(w);
  tracker_.Add(w, ts);
  if (frames_.empty() || frames_.back().frozen) OpenFrame(ts);
  Frame& f = frames_.back();
  f.fd.Append(row, next_id_++);
  f.last = ts;
  f.mass += w;
  f.mass_since_snapshot += w;
  if (f.mass_since_snapshot >= SnapshotSpacing()) DumpSnapshot(f, ts);
  // Cut once the frame alone spans a full window extent: every older
  // frame is then strictly older than any window starting at or after
  // `ts`, so at most this frame ever straddles the window start.
  if (f.birth <= window_.Start(ts)) {
    f.frozen = true;
    ++structure_version_;
  }
}

void DsFd::UpdateBatch(const Matrix& rows, std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() != 0) SWSKETCH_CHECK_EQ(rows.cols(), dim_);
  // Per-row trigger bookkeeping, batched FD appends: rows destined for
  // the active frame accumulate in [run_begin, i) and flush through
  // AppendBatch at the first structural trigger (snapshot, cut, frame
  // open, expiry of the active frame, zero-norm row). Trigger decisions
  // depend only on timestamps and masses — never on FD buffer contents —
  // so the frame/snapshot structure is identical to per-row Update.
  size_t run_begin = kNoRun;
  uint64_t run_first_id = 0;
  const auto flush = [&](size_t end) {
    if (run_begin == kNoRun) return;
    frames_.back().fd.AppendBatch(rows, run_begin, end, run_first_id);
    run_begin = kNoRun;
  };
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double t = ts[i];
    SWSKETCH_CHECK_GE(t, now_);
    ++mutation_version_;
    now_ = t;
    // A time gap inside the batch can expire the active frame itself;
    // its staged rows must land before the frame is destroyed.
    if (!frames_.empty() && frames_.back().last < window_.Start(t)) flush(i);
    Expire(t);
    const double w = NormSq(rows.Row(i));
    if (w <= 0.0) continue;
    metrics_.rows_ingested->Add();
    NoteRowNorm(w);
    tracker_.Add(w, t);
    if (frames_.empty() || frames_.back().frozen) {
      flush(i);  // No-op unless the previous frame still has staged rows.
      OpenFrame(t);
    }
    Frame& f = frames_.back();
    if (run_begin == kNoRun) {
      run_begin = i;
      run_first_id = next_id_;
    }
    ++next_id_;
    f.last = t;
    f.mass += w;
    f.mass_since_snapshot += w;
    const bool snap = f.mass_since_snapshot >= SnapshotSpacing();
    const bool cut = f.birth <= window_.Start(t);
    if (snap || cut) {
      flush(i + 1);
      if (snap) DumpSnapshot(f, t);
      if (cut) {
        f.frozen = true;
        ++structure_version_;
      }
    }
  }
  flush(rows.rows());
}

void DsFd::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  ++mutation_version_;
  now_ = now;
  Expire(now);
}

Matrix DsFd::Query() {
  metrics_.queries->Add();
  Expire(now_);
  // Empty window: an empty approximation (counted as a miss so
  // hits + misses == queries stays exact).
  if (frames_.empty()) {
    metrics_.query_cache_misses->Add();
    return Matrix(0, dim_);
  }
  if (result_valid_ && result_version_ == mutation_version_) {
    metrics_.query_cache_hits->Add();
    return cached_result_;
  }
  metrics_.query_cache_misses->Add();

  const double start = window_.Start(now_);
  CompressScratch& s = EnsureCompress();
  s.stack.ResetShape(0, dim_);
  s.signs.clear();
  size_t total = 0;
  for (const Frame& f : frames_) total += f.fd.RowsStored();
  s.stack.ReserveRows(total + options_.ell);
  for (const Frame& f : frames_) {
    const Matrix b = f.fd.Approximation();
    for (size_t i = 0; i < b.rows(); ++i) {
      s.stack.AppendRow(b.Row(i));
      s.signs.push_back(1.0);
    }
  }
  // Only the oldest frame can straddle the window start; subtract its
  // newest expired snapshot to cancel the pre-window prefix.
  const Frame& front = frames_.front();
  if (front.birth < start) {
    const Snapshot* c = nullptr;
    for (auto it = front.snapshots.rbegin(); it != front.snapshots.rend();
         ++it) {
      if (it->ts < start) {
        c = &*it;
        break;
      }
    }
    if (c != nullptr) {
      for (size_t i = 0; i < c->rows.rows(); ++i) {
        s.stack.AppendRow(c->rows.Row(i));
        s.signs.push_back(-1.0);
      }
    }
  }

  Matrix out = CompressSigned(options_.ell, 0.0);
  cached_result_ = out;
  result_valid_ = true;
  result_version_ = mutation_version_;
  return out;
}

DsFd::CompressScratch& DsFd::EnsureCompress() {
  if (!compress_) compress_ = std::make_unique<CompressScratch>();
  return *compress_;
}

Matrix DsFd::CompressSigned(size_t max_rows, double min_eigenvalue) {
  CompressScratch& s = *compress_;
  const Matrix& stack = s.stack;
  const size_t m = stack.rows();
  if (m == 0 || max_rows == 0) return Matrix(0, dim_);
  SWSKETCH_CHECK_EQ(s.signs.size(), m);

  // A = S S^T, the m x m row-space Gram (never a d x d system).
  stack.GramOuterInto(&s.gram);
  const SymmetricEigen& ea = SymmetricEigenSolve(s.gram, &s.eigen_a);
  // Same numerical-rank cutoff as the FD shrink, so degenerate stacks
  // retain the same directions as the sketches they came from.
  const double rank_tol = SvdOptions{}.rank_tol;
  const double lmax =
      std::max(ea.eigenvalues.empty() ? 0.0 : ea.eigenvalues[0], 0.0);
  const double cutoff_a = rank_tol * std::max(std::sqrt(lmax), 1e-300);
  size_t r = 0;
  while (r < m && ea.eigenvalues[r] > 0.0 &&
         std::sqrt(ea.eigenvalues[r]) > cutoff_a) {
    ++r;
  }
  if (r == 0) return Matrix(0, dim_);

  // Restricted signed target M = Q (S^T J S) Q^T for the orthonormal
  // row-span basis Q = Lambda^{-1/2} W^T S, which collapses to
  // M_{bc} = sqrt(lambda_b lambda_c) sum_a J_a W_{ab} W_{ac}.
  s.restricted.ResetShape(r, r);
  s.restricted.SetZero();
  for (size_t a = 0; a < m; ++a) {
    const double ja = s.signs[a];
    for (size_t b = 0; b < r; ++b) {
      const double coef = ja * ea.eigenvectors(a, b);
      if (coef == 0.0) continue;
      for (size_t c = b; c < r; ++c) {
        s.restricted(b, c) += coef * ea.eigenvectors(a, c);
      }
    }
  }
  for (size_t b = 0; b < r; ++b) {
    const double sb = std::sqrt(ea.eigenvalues[b]);
    for (size_t c = b; c < r; ++c) {
      s.restricted(b, c) *= sb * std::sqrt(ea.eigenvalues[c]);
    }
  }
  s.restricted.MirrorUpperToLower();

  const SymmetricEigen& em = SymmetricEigenSolve(s.restricted, &s.eigen_m);
  const double smax =
      std::max(em.eigenvalues.empty() ? 0.0 : em.eigenvalues[0], 0.0);
  const double cutoff_m = rank_tol * std::max(std::sqrt(smax), 1e-300);
  size_t k = 0;
  while (k < r && k < max_rows && em.eigenvalues[k] > min_eigenvalue &&
         std::sqrt(std::max(em.eigenvalues[k], 0.0)) > cutoff_m) {
    ++k;
  }
  if (k == 0) return Matrix(0, dim_);

  // Y = W_r^T S re-expresses the basis in R^d; output row j is
  // sqrt(sigma_j) u_j^T Q = sum_b (sqrt(sigma_j) U_{bj} / sqrt(lambda_b))
  // y_b, assembled as one k x r by r x d multiply.
  s.coeff.ResetShape(r, m);
  for (size_t b = 0; b < r; ++b) {
    for (size_t a = 0; a < m; ++a) s.coeff(b, a) = ea.eigenvectors(a, b);
  }
  s.coeff.MultiplyRowsInto(stack, 0, &s.basis);  // basis = W_r^T S.
  s.coeff.ResetShape(k, r);
  for (size_t j = 0; j < k; ++j) {
    const double sj = std::sqrt(em.eigenvalues[j]);
    for (size_t b = 0; b < r; ++b) {
      s.coeff(j, b) =
          sj * em.eigenvectors(b, j) / std::sqrt(ea.eigenvalues[b]);
    }
  }
  Matrix out;
  s.coeff.MultiplyRowsInto(s.basis, 0, &out);
  return out;
}

void DsFd::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kSerialTag, 1);
  writer->Put<uint64_t>(dim_);
  window_.Serialize(writer);
  writer->Put<uint64_t>(options_.ell);
  writer->Put<uint64_t>(options_.snapshots_per_window);
  writer->Put(options_.snapshot_trunc);
  writer->Put(options_.frame_ell_factor);
  writer->Put(options_.fd_buffer_factor);
  writer->Put(options_.frobenius_eps);
  writer->Put<uint8_t>(options_.exact_frobenius ? 1 : 0);
  writer->Put(now_);
  writer->Put<uint64_t>(next_id_);
  tracker_.Serialize(writer);
  writer->Put<uint64_t>(frames_.size());
  for (const Frame& f : frames_) {
    writer->Put(f.birth);
    writer->Put(f.last);
    writer->Put(f.mass);
    writer->Put(f.mass_since_snapshot);
    writer->Put<uint8_t>(f.frozen ? 1 : 0);
    f.fd.Serialize(writer);
    writer->Put<uint64_t>(f.snapshots.size());
    for (const Snapshot& sn : f.snapshots) {
      writer->Put(sn.ts);
      writer->Put(sn.frame_mass);
      sn.rows.Serialize(writer);
    }
  }
}

Result<DsFd> DsFd::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, kSerialTag, 1)) {
    return Status::InvalidArgument("bad DsFd header");
  }
  uint64_t dim = 0, ell = 0, k = 0;
  if (!reader->Get(&dim) || dim == 0) {
    return Status::InvalidArgument("corrupt DsFd payload");
  }
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  double trunc = 0.0, fell = 1.0, factor = 1.0, eps = 0.0;
  uint8_t exact = 0;
  if (!reader->Get(&ell) || !reader->Get(&k) || !reader->Get(&trunc) ||
      !reader->Get(&fell) || !reader->Get(&factor) || !reader->Get(&eps) ||
      !reader->Get(&exact) || ell < 2 || trunc < 0.0 || fell < 1.0 ||
      factor < 1.0 || eps <= 0.0) {
    return Status::InvalidArgument("corrupt DsFd payload");
  }
  DsFd sketch(dim, *window,
              Options{.ell = ell, .snapshots_per_window = k,
                      .snapshot_trunc = trunc, .frame_ell_factor = fell,
                      .fd_buffer_factor = factor, .frobenius_eps = eps,
                      .exact_frobenius = exact != 0});
  uint64_t nframes = 0;
  if (!reader->Get(&sketch.now_) || !reader->Get(&sketch.next_id_) ||
      !sketch.tracker_.Deserialize(reader) || !reader->Get(&nframes)) {
    return Status::InvalidArgument("corrupt DsFd payload");
  }
  sketch.frames_.reserve(nframes);
  for (uint64_t i = 0; i < nframes; ++i) {
    double birth = 0.0, last = 0.0, mass = 0.0, since = 0.0;
    uint8_t frozen = 0;
    if (!reader->Get(&birth) || !reader->Get(&last) || !reader->Get(&mass) ||
        !reader->Get(&since) || !reader->Get(&frozen) || last < birth) {
      return Status::InvalidArgument("corrupt DsFd frame");
    }
    auto fd = FrequentDirections::Deserialize(reader);
    if (!fd.ok()) return fd.status();
    if (fd->dim() != sketch.dim_) {
      return Status::InvalidArgument("DsFd frame dim mismatch");
    }
    if (sketch.fd_scratch_) fd->ShareShrinkScratch(sketch.fd_scratch_);
    Frame frame{.fd = std::move(fd.take()), .birth = birth, .last = last,
                .mass = mass, .mass_since_snapshot = since,
                .frozen = frozen != 0, .snapshots = {}};
    uint64_t nsnaps = 0;
    if (!reader->Get(&nsnaps)) {
      return Status::InvalidArgument("corrupt DsFd frame");
    }
    frame.snapshots.reserve(nsnaps);
    for (uint64_t j = 0; j < nsnaps; ++j) {
      double ts = 0.0, fm = 0.0;
      if (!reader->Get(&ts) || !reader->Get(&fm)) {
        return Status::InvalidArgument("corrupt DsFd snapshot");
      }
      auto rows = Matrix::Deserialize(reader);
      if (!rows.ok()) return rows.status();
      if (!rows->empty() && rows->cols() != sketch.dim_) {
        return Status::InvalidArgument("DsFd snapshot dim mismatch");
      }
      frame.snapshots.push_back(Snapshot{ts, fm, std::move(rows.take())});
    }
    sketch.frames_.push_back(std::move(frame));
  }
  // Ledger: loaded frames/snapshots enter the live gauges through the
  // *_loaded counters so conservation holds across checkpoint/restore.
  const size_t ns = sketch.num_snapshots();
  if (!sketch.frames_.empty()) {
    sketch.metrics_.frames_loaded->Add(sketch.frames_.size());
    sketch.metrics_.live_frames->Add(
        static_cast<int64_t>(sketch.frames_.size()));
  }
  if (ns != 0) {
    sketch.metrics_.snapshots_loaded->Add(ns);
    sketch.metrics_.live_snapshots->Add(static_cast<int64_t>(ns));
  }
  sketch.metrics_.reloads->Add();
  ++sketch.structure_version_;
  ++sketch.mutation_version_;
  return sketch;
}

}  // namespace swsketch
