// DS-FD (dump-snapshot Frequent Directions): the optimal-space sliding-
// window FD of "Optimal Matrix Sketching over Sliding Windows" (PAPERS.md,
// arXiv 2405.07792), reconstructed on this library's FD core.
//
// Where LM-FD covers the window with O(log) levels of closed FD blocks,
// DS-FD keeps ONE live FD per time *frame* and exploits FD's monotone
// per-direction error: for two states C (earlier) and B (later) of the
// same FD instance, B^T B - C^T C approximates the Gram of the rows that
// arrived in between, with spectral error bounded by the shrink mass shed
// between the two states. So the window Gram is
//
//     sum_{fully live frames j} B_j^T B_j  +  (B_s^T B_s - C_i^T C_i)
//
// where B_s is the unique frame straddling the window start and C_i is a
// *snapshot* of that frame's FD taken just before the window start. Only
// the boundary granularity costs anything: rows that arrived between the
// snapshot instant t_i and the window start leak into the estimate.
//
// Structure:
//  * Frames tile time: the active frame ingests every row into its own
//    FD (one FD append per row — no cascade of merges), and is cut once
//    its span covers a full window extent, so at most one frozen frame
//    can straddle the window start and at most ~3 frames are ever alive.
//  * The dump/snapshot ladder: while a frame is active, a snapshot of its
//    FD state is dumped every time the frame accretes Theta = F_hat / k
//    of squared-norm mass, where F_hat is the FrobeniusTracker estimate
//    of the current window mass (the "Frobenius-norm level" quantum) and
//    k = Options::snapshots_per_window. The boundary leak is < Theta.
//  * Snapshots are spectrally truncated: a snapshot is only ever used as
//    the subtrahend C_i with Theta-scale slack already conceded, and only
//    ONE snapshot is subtracted per query, so directions with eigenvalue
//    below snapshot_trunc * Theta are dropped at dump time (error <= the
//    largest dropped eigenvalue, not the sum). This is what makes the
//    ladder O(k) rows total instead of O(k * ell): early snapshots of a
//    frame hold only the few directions above the level quantum.
//  * Eviction: a frame dies when its last row expires; a snapshot dies
//    when a newer snapshot also lies before the window start (the newest
//    expired snapshot is exactly C_i and must be retained).
//
// Query assembles the signed stack [B_j...; B_s; -C_i] and extracts the
// best rank-<=ell PSD approximation *restricted to the stack's row span*:
// with S the stacked rows, J the signs, A = S S^T = W Lambda W^T, the
// orthonormal row-span basis is Q = Lambda^{-1/2} W^T S and the restricted
// target Q (S^T J S) Q^T works out to M_{bc} = sqrt(lambda_b lambda_c) *
// sum_a J_a W_{ab} W_{ac} — an m x m problem (m <= ~4 ell) that never
// touches a d x d matrix, mirroring the FD Gram-eigen shrink. Positive
// eigenpairs of M give the output rows. Subtracting a snapshot can leave
// the difference slightly indefinite (both states are shrunk); the PSD
// projection is what makes that safe.
//
// Space: ~3 frame FDs + O(k) snapshot rows = O((ell + k) d) resident —
// no log factor. Update: one FD append + one EH add per row. Query:
// O(m^2 d + m^3) cold, cached until the next mutation.
#ifndef SWSKETCH_CORE_DUMP_SNAPSHOT_H_
#define SWSKETCH_CORE_DUMP_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/frobenius_tracker.h"
#include "core/sliding_window_sketch.h"
#include "linalg/jacobi_eigen.h"
#include "sketch/frequent_directions.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Dump-snapshot FD sliding-window sketch (sequence and time windows).
class DsFd : public SlidingWindowSketch {
 public:
  struct Options {
    /// Output sketch size (rows returned by Query is at most ell).
    size_t ell = 16;
    /// Snapshot ladder density k: a snapshot is dumped every
    /// F_hat / k of window mass, so the boundary leak is about 1/k of
    /// the window's squared Frobenius norm. 0 (the default) auto-scales
    /// with the sketch size, k = max(8, 3*ell/8): the ladder quantum
    /// then tracks the FD error floor ~1/ell instead of wasting dumps
    /// (small ell, shed-dominated) or starving the boundary (large ell,
    /// leak-dominated).
    size_t snapshots_per_window = 0;
    /// Spectral truncation of dumped snapshots: directions below
    /// snapshot_trunc * (F_hat / k) are dropped (see file comment).
    /// 0 disables truncation (snapshots keep up to ell rows each).
    double snapshot_trunc = 0.25;
    /// Internal frame-FD oversize: each frame's FD runs at
    /// round(frame_ell_factor * ell) directions — capped at (dim + 1) / 2,
    /// past which the Gram small-side advantage is gone — while Query
    /// still caps its output at ell. The straddle estimate
    /// B_s^T B_s - C_i^T C_i pays the shrink mass shed *between* the two
    /// states, which scales like 1/(frame ell); oversizing the internal
    /// frame cuts that boundary error at a modest space cost that stays
    /// O(ell * d). Must be >= 1.
    double frame_ell_factor = 1.5;
    /// buffer_factor for the per-frame FD instances (see
    /// FrequentDirections::Options::buffer_factor). The resolved buffer
    /// capacity is additionally capped at 16 * dim / 25 rows, keeping the
    /// shrink eigensolve well clear of the d x d crossover. Defaults to
    /// 3 — frames are long-lived single-writer FDs, so amortizing the
    /// shrink cadence buys update time for resident rows the
    /// dump-snapshot layout has to spare.
    double fd_buffer_factor = 3.0;
    /// FrobeniusTracker accuracy for the window-mass estimate F_hat.
    double frobenius_eps = 0.05;
    /// Exact window-mass tracking instead of the EH estimate.
    bool exact_frobenius = false;
  };

  // Handles into the global registry under the "ds_fd." scope. Resolved
  // once at construction; instances share counters by name. Ledgers
  // (checked by metrics_invariants_test):
  //   frames_opened + frames_loaded
  //     == frames_expired + frames_discarded + live_frames
  //   snapshots_taken + snapshots_loaded
  //     == snapshots_evicted + snapshots_discarded + live_snapshots
  //   queries == query_cache_hits + query_cache_misses
  // Public so SketchPrototype can resolve the set once and stamp it into
  // every arena-constructed tenant (same contract as LM's MetricSet).
  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : rows_ingested(scope.counter("rows_ingested")),
          frames_opened(scope.counter("frames_opened")),
          frames_expired(scope.counter("frames_expired")),
          frames_loaded(scope.counter("frames_loaded")),
          frames_discarded(scope.counter("frames_discarded")),
          snapshots_taken(scope.counter("snapshots_taken")),
          snapshots_evicted(scope.counter("snapshots_evicted")),
          snapshots_loaded(scope.counter("snapshots_loaded")),
          snapshots_discarded(scope.counter("snapshots_discarded")),
          queries(scope.counter("queries")),
          query_cache_hits(scope.counter("query_cache_hits")),
          query_cache_misses(scope.counter("query_cache_misses")),
          reloads(scope.counter("reloads")),
          heavy_tail_warnings(scope.counter("heavy_tail_warnings")),
          live_frames(scope.gauge("live_frames")),
          live_snapshots(scope.gauge("live_snapshots")),
          snapshot_rows(scope.histogram("snapshot_rows")) {}
    Counter* rows_ingested;
    Counter* frames_opened;
    Counter* frames_expired;
    Counter* frames_loaded;
    Counter* frames_discarded;
    Counter* snapshots_taken;
    Counter* snapshots_evicted;
    Counter* snapshots_loaded;
    Counter* snapshots_discarded;
    Counter* queries;
    Counter* query_cache_hits;
    Counter* query_cache_misses;
    Counter* reloads;
    /// Bumped once per instance lifetime when the observed squared-norm
    /// ratio crosses kHeavyTailNormSqRatio (see its doc comment).
    Counter* heavy_tail_warnings;
    Gauge* live_frames;
    Gauge* live_snapshots;
    Histogram* snapshot_rows;
  };

  DsFd(size_t dim, WindowSpec window, Options options);

  /// Mass-construction overload (SketchPrototype): pre-resolved metric
  /// handles and a shared FD shrink scratch instead of per-instance
  /// registry probes and arena churn. All sharers must run one thread at
  /// a time (the TenantManager contract).
  DsFd(size_t dim, WindowSpec window, Options options,
       const MetricSet& metrics, std::shared_ptr<FdShrinkScratch> scratch);

  // Move-only: the destructor settles the live gauges for whatever this
  // instance still holds, and moving leaves the source's frames_ empty
  // (vector move guarantee) so each frame/snapshot is settled exactly
  // once.
  DsFd(DsFd&&) = default;
  ~DsFd() override;

  void Update(std::span<const double> row, double ts) override;

  /// Block fast path: per-row trigger bookkeeping (expiry, tracker,
  /// snapshot/cut decisions) with the FD appends of each trigger-free run
  /// batched through FrequentDirections::AppendBatch. Structural
  /// decisions (frames, snapshots) are identical to per-row Update; the
  /// FD buffer bytes are bit-identical whenever AppendBatch replays the
  /// serial schedule (buffer capacity < dim — see its contract).
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;

  void AdvanceTo(double now) override;

  /// Signed-stack PSD projection described in the file comment. At most
  /// ell rows. Cached until the next mutation.
  Matrix Query() override;

  uint64_t StateVersion() const override { return mutation_version_; }

  /// Resident rows: every frame's FD buffer plus every retained snapshot
  /// row (the honest space figure the harness reports).
  size_t RowsStored() const override;

  size_t dim() const override { return dim_; }
  std::string name() const override { return "DS-FD"; }
  const WindowSpec& window() const override { return window_; }

  size_t num_frames() const { return frames_.size(); }
  size_t num_snapshots() const;
  const Options& options() const { return options_; }

  /// Squared-norm ratio (max / min over positive-norm rows ingested by
  /// this instance) at which DS-FD's boundary-leak weak spot becomes a
  /// real accuracy risk: the ladder quantum Theta = F_hat / k is sized
  /// for the window's aggregate mass, so with row-norm ratio R ~ 1e4+
  /// (squared ratio 1e8+) a single heavy row rivals Theta and expiring it
  /// can leak an order-1 fraction of a snapshot into the answer
  /// (EXPERIMENTS.md, PAMAP known limitation; use lm-fd there). Crossing
  /// this threshold bumps heavy_tail_warnings once per instance.
  static constexpr double kHeavyTailNormSqRatio = 1e8;

  /// Resolved internals (options after dim-aware auto-scaling).
  size_t frame_ell() const { return frame_ell_; }
  size_t frame_capacity() const { return frame_capacity_; }
  size_t ladder_k() const { return ladder_k_; }

  /// Version 1 DS-FD wire format (v2 container conventions: framed
  /// header, explicit sizes; FD payloads use the FD tag's own format).
  static constexpr uint32_t kSerialTag = 0x44534601;  // "DSF\x01"
  void Serialize(ByteWriter* writer) const;
  static Result<DsFd> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 private:
  struct Snapshot {
    double ts = 0.0;          // Dump instant: covers rows with ts' <= ts.
    double frame_mass = 0.0;  // Frame mass ingested up to the dump.
    Matrix rows;              // Truncated FD state at the dump instant.
  };

  struct Frame {
    FrequentDirections fd;
    double birth = 0.0;  // ts of the frame's first row.
    double last = 0.0;   // ts of the frame's newest row.
    double mass = 0.0;   // Squared-norm mass ingested into the frame.
    double mass_since_snapshot = 0.0;
    bool frozen = false;  // Cut: no longer ingests.
    std::vector<Snapshot> snapshots;  // ts-ascending.
  };

  // Reusable workspace of the signed-stack projection (and snapshot
  // truncation, which is the all-positive special case).
  struct CompressScratch {
    Matrix stack;                  // Stacked signed rows (m x d).
    std::vector<double> signs;     // +1 / -1 per stacked row.
    Matrix gram;                   // A = S S^T (m x m).
    SymmetricEigenScratch eigen_a;
    Matrix restricted;             // M (r x r).
    SymmetricEigenScratch eigen_m;
    Matrix coeff;                  // Output coefficients (rows x r).
    Matrix basis;                  // Y = W_r^T S (r x d).
  };

  Frame& OpenFrame(double ts);
  void NoteRowNorm(double norm_sq);
  void Expire(double now);
  void EvictFrontSnapshots(double window_start);
  void ThinLadder(Frame& frame, double spacing);
  double SnapshotSpacing() const;
  void DumpSnapshot(Frame& frame, double ts);
  CompressScratch& EnsureCompress();

  // Emits the best rank-<=max_rows PSD approximation of
  // sum_a signs[a] * stack_a^T stack_a restricted to the stack's row
  // span, dropping eigenvalues below min_eigenvalue. Deterministic.
  Matrix CompressSigned(size_t max_rows, double min_eigenvalue);

  size_t dim_;
  WindowSpec window_;
  Options options_;
  // Dim-aware resolution of the options (see the Options doc comments):
  // frame_ell_ = round(frame_ell_factor * ell) in [ell, (dim + 1) / 2],
  // frame_capacity_ = fd_buffer_factor * frame_ell_ capped at 16 dim / 25,
  // ladder_k_ = snapshots_per_window or max(8, 3 ell / 8) when auto.
  size_t frame_ell_ = 0;
  size_t frame_capacity_ = 0;
  size_t ladder_k_ = 0;
  MetricSet metrics_;
  std::shared_ptr<FdShrinkScratch> fd_scratch_;
  std::unique_ptr<CompressScratch> compress_;  // Lazy, stable address.

  std::vector<Frame> frames_;  // Oldest first; back() may be active.
  FrobeniusTracker tracker_;
  double now_ = 0.0;
  uint64_t next_id_ = 0;

  // Heavy-tail detector state (kHeavyTailNormSqRatio). Lifetime extrema,
  // deliberately NOT serialized: a reloaded instance re-derives the ratio
  // from the rows it sees (keeping the v1 wire format byte-stable).
  double max_row_norm_sq_ = 0.0;
  double min_row_norm_sq_ = 0.0;  // 0 = no positive-norm row seen yet.
  bool heavy_tail_warned_ = false;

  uint64_t mutation_version_ = 0;
  uint64_t structure_version_ = 0;

  bool result_valid_ = false;
  uint64_t result_version_ = 0;
  Matrix cached_result_;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_DUMP_SNAPSHOT_H_
