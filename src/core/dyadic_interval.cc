#include "core/dyadic_interval.h"

#include <algorithm>

namespace swsketch {

namespace {

size_t LevelEll(size_t level, size_t num_levels, size_t ell_top,
                size_t ell_min) {
  // Sizes halve from the top level down (Section 8's setup: the highest
  // level holds roughly half the query budget).
  const size_t shift = num_levels - level;
  size_t ell = shift >= 63 ? 0 : (ell_top >> shift);
  return std::max(ell, std::max(ell_min, size_t{2}));
}

}  // namespace

DiFd::DiFd(size_t dim, Options options)
    : DyadicInterval<FrequentDirections>(
          dim,
          DyadicIntervalOptions{.levels = options.levels,
                                .window_size = options.window_size,
                                .max_norm_sq = options.max_norm_sq},
          // All levels share one shrink arena (sized once by the largest
          // level ell): level sketches are advanced sequentially by the
          // owning thread, so the shared workspace never sees concurrent
          // shrinks.
          [dim, options,
           scratch = FrequentDirections::MakeShrinkScratch()](size_t level) {
            FrequentDirections fd(
                dim, FrequentDirections::Options{
                         .ell = LevelEll(level, options.levels,
                                         options.ell_top, options.ell_min),
                         .buffer_factor = options.fd_buffer_factor});
            fd.ShareShrinkScratch(scratch);
            return fd;
          },
          "DI-FD"),
      di_options_(options) {}

DiFd::DiFd(size_t dim, Options options, const MetricSet& metrics,
           std::shared_ptr<FdShrinkScratch> scratch)
    : DyadicInterval<FrequentDirections>(
          dim,
          DyadicIntervalOptions{.levels = options.levels,
                                .window_size = options.window_size,
                                .max_norm_sq = options.max_norm_sq},
          [dim, options, scratch = std::move(scratch)](size_t level) {
            FrequentDirections fd(
                dim, FrequentDirections::Options{
                         .ell = LevelEll(level, options.levels,
                                         options.ell_top, options.ell_min),
                         .buffer_factor = options.fd_buffer_factor});
            if (scratch) fd.ShareShrinkScratch(scratch);
            return fd;
          },
          "DI-FD", metrics),
      di_options_(options) {}

void DiFd::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, DiFd::kSerialTag, 2);
  writer->Put<uint64_t>(dim());
  writer->Put<uint64_t>(di_options_.levels);
  writer->Put<uint64_t>(di_options_.window_size);
  writer->Put(di_options_.max_norm_sq);
  writer->Put<uint64_t>(di_options_.ell_top);
  writer->Put<uint64_t>(di_options_.ell_min);
  writer->Put(di_options_.fd_buffer_factor);
  SerializeCore(writer);
}

Result<DiFd> DiFd::Deserialize(ByteReader* reader) {
  // Version 2: per-block FD buffer factor added (version-1 payloads
  // predate amortized buffering and are not readable).
  if (!CheckHeader(reader, DiFd::kSerialTag, 2)) {
    return Status::InvalidArgument("bad DiFd header");
  }
  uint64_t dim = 0, levels = 0, window = 0, ell_top = 0, ell_min = 0;
  double max_norm_sq = 0.0, fd_factor = 1.0;
  if (!reader->Get(&dim) || !reader->Get(&levels) || !reader->Get(&window) ||
      !reader->Get(&max_norm_sq) || !reader->Get(&ell_top) ||
      !reader->Get(&ell_min) || !reader->Get(&fd_factor) || levels == 0 ||
      window == 0 || max_norm_sq <= 0.0 || fd_factor < 1.0) {
    return Status::InvalidArgument("corrupt DiFd payload");
  }
  DiFd sketch(dim, Options{.levels = levels, .window_size = window,
                           .max_norm_sq = max_norm_sq, .ell_top = ell_top,
                           .ell_min = ell_min,
                           .fd_buffer_factor = fd_factor});
  if (Status s = sketch.DeserializeCore(reader); !s.ok()) return s;
  return sketch;
}

DiRp::DiRp(size_t dim, Options options)
    : DyadicInterval<RandomProjection>(
          dim,
          DyadicIntervalOptions{.levels = options.levels,
                                .window_size = options.window_size,
                                .max_norm_sq = options.max_norm_sq},
          [dim, options, seed = options.seed](size_t level) mutable {
            // Every block needs its own independent projection: chain a
            // per-instance seed per construction (same idiom as LmRp) so
            // two identically-seeded DI-RP instances fed the same stream
            // are reproducible.
            seed = seed * 0x9E3779B97F4A7C15ULL + 1;
            return RandomProjection(
                dim,
                LevelEll(level, options.levels, options.ell_top,
                         options.ell_min),
                seed);
          },
          "DI-RP") {}

DiHash::DiHash(size_t dim, Options options)
    : DyadicInterval<HashSketch>(
          dim,
          DyadicIntervalOptions{.levels = options.levels,
                                .window_size = options.window_size,
                                .max_norm_sq = options.max_norm_sq},
          [dim, options](size_t level) {
            return HashSketch(dim,
                              LevelEll(level, options.levels, options.ell_top,
                                       options.ell_min),
                              options.seed);
          },
          "DI-HASH") {}

template class DyadicInterval<FrequentDirections>;
template class DyadicInterval<RandomProjection>;
template class DyadicInterval<HashSketch>;

}  // namespace swsketch
