// Dyadic Interval framework (Section 7): converts an *arbitrary* streaming
// matrix sketch into a sequence-based sliding-window sketch, relying only
// on decomposability (Lemma 7.1): approximations of disjoint row ranges
// concatenate into an approximation of their union.
//
// Level 1 partitions the stream into blocks of squared-norm mass about
// N*R/2^L; a level-i block covers exactly 2^{i-1} level-1 blocks. Every
// level ingests each row into its active sketch; when the level-1 active
// block fills, all levels whose dyadic boundary aligns close their active
// block (Algorithm 7.1's trailing-zeros rule). A query covers the window
// with at most 2 closed blocks per level (greedy maximal-dyadic cover) plus
// the level-1 active sketch, skipping the straddling expiring level-1 block
// (the epsilon/2 expiry error of Theorem 7.1), and returns the stacked
// approximations.
//
// Per-level sketch sizes follow the experimental setup of Section 8: the
// top level runs the largest sketch (roughly half the query budget) and
// sizes halve per level downward, so higher levels (bigger blocks) get
// proportionally more accurate sketches — the ell_{1/(2^i L)} schedule of
// Theorem 7.1 in its practical form.
//
// Query serving: the closed-block structure changes only at structural
// events (level-1 close, expiry, deserialize), tracked by a version
// counter. The stacked approximation of the dyadic cover is cached keyed
// on (version, j0) — under a fixed structure the cover is a pure function
// of the first in-window level-1 block — and the final result is
// additionally keyed on next_id_, which pins the level-1 active sketch
// contents. A warm query is a single matrix copy; the cold cover assembly
// computes per-block approximations on the shared ThreadPool (reads only,
// stacked in deterministic cover order, byte-identical to serial).
//
// SketchT requirements: Append(span<const double>, uint64_t id),
// Approximation() -> Matrix, RowsStored(). Mergeability is NOT required.
#ifndef SWSKETCH_CORE_DYADIC_INTERVAL_H_
#define SWSKETCH_CORE_DYADIC_INTERVAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "linalg/vector_ops.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Parameters shared by all DI instantiations.
struct DyadicIntervalOptions {
  /// Number of dyadic levels L ~ ceil(log2(R / epsilon)).
  size_t levels = 6;
  /// Sequence window size N (DI is sequence-based only).
  uint64_t window_size = 10000;
  /// Upper bound R on squared row norms (needed a priori, Table 1).
  double max_norm_sq = 1.0;
};

/// The Dyadic Interval method over an arbitrary streaming sketch type.
template <typename SketchT>
class DyadicInterval : public SlidingWindowSketch {
 public:
  /// Builds the sketch for a given level in [1, levels].
  using LevelSketchFactory = std::function<SketchT(size_t level)>;

  // Handles into the global registry under this sketch's name slug
  // ("di_fd.", "di_rp.", ...), resolved once at construction. DI never
  // merges, so the block ledger is
  //   blocks_closed + blocks_loaded
  //     == blocks_expired + blocks_discarded + live_blocks.
  //
  // Public for the same reason as LogarithmicMethod::MetricSet: mass
  // constructors (core/factory.h SketchPrototype) resolve the set once and
  // stamp it into every instance of one name.
  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : rows_ingested(scope.counter("rows_ingested")),
          l1_closes(scope.counter("l1_closes")),
          blocks_closed(scope.counter("blocks_closed")),
          blocks_expired(scope.counter("blocks_expired")),
          blocks_loaded(scope.counter("blocks_loaded")),
          blocks_discarded(scope.counter("blocks_discarded")),
          queries(scope.counter("queries")),
          query_cache_hits(scope.counter("query_cache_hits")),
          query_cache_misses(scope.counter("query_cache_misses")),
          cover_cache_hits(scope.counter("cover_cache_hits")),
          cover_cache_misses(scope.counter("cover_cache_misses")),
          reloads(scope.counter("reloads")),
          live_blocks(scope.gauge("live_blocks")) {}
    Counter* rows_ingested;
    Counter* l1_closes;
    Counter* blocks_closed;
    Counter* blocks_expired;
    Counter* blocks_loaded;
    Counter* blocks_discarded;
    Counter* queries;
    Counter* query_cache_hits;
    Counter* query_cache_misses;
    Counter* cover_cache_hits;
    Counter* cover_cache_misses;
    Counter* reloads;
    Gauge* live_blocks;
  };

  DyadicInterval(size_t dim, DyadicIntervalOptions options,
                 LevelSketchFactory factory, std::string name)
      : DyadicInterval(dim, options, std::move(factory), name,
                       MetricSet(MetricScope(MetricScope::Slug(name)))) {}

  /// Mass-construction overload: copies pre-resolved registry handles
  /// instead of looking each one up (see LogarithmicMethod's overload).
  DyadicInterval(size_t dim, DyadicIntervalOptions options,
                 LevelSketchFactory factory, std::string name,
                 const MetricSet& metrics)
      : dim_(dim),
        window_(WindowSpec::Sequence(options.window_size)),
        options_(options),
        factory_(std::move(factory)),
        name_(std::move(name)),
        metrics_(metrics) {
    SWSKETCH_CHECK_GE(options_.levels, 1u);
    SWSKETCH_CHECK_GT(options_.max_norm_sq, 0.0);
    const double total = static_cast<double>(options_.window_size) *
                         options_.max_norm_sq;
    level1_capacity_ = total / std::ldexp(1.0, static_cast<int>(options_.levels));
    SWSKETCH_CHECK_GT(level1_capacity_, 0.0);
    levels_.resize(options_.levels);
    for (size_t i = 0; i < options_.levels; ++i) {
      actives_.push_back(Active{factory_(i + 1), 0.0, 0.0, false});
    }
  }

  // Move-only, for the same block-ledger reason as LogarithmicMethod: the
  // destructor settles live_blocks for whatever this instance still holds,
  // and the defaulted move leaves the source's levels_ empty.
  DyadicInterval(DyadicInterval&&) = default;

  ~DyadicInterval() override {
    const size_t n = NumBlocks();
    if (n != 0) {
      metrics_.blocks_discarded->Add(n);
      metrics_.live_blocks->Add(-static_cast<int64_t>(n));
    }
  }

  void Update(std::span<const double> row, double ts) override {
    SWSKETCH_CHECK_EQ(row.size(), dim_);
    UpdateImpl(ts, NormSq(row), [&](SketchT& sketch, uint64_t id) {
      sketch.Append(row, id);
    });
  }

  /// O(nnz) per level instead of O(d): the row fans into L active
  /// sketches, so sparse streams (WIKI/RAIL at paper scale) gain the most
  /// here.
  void UpdateSparse(const SparseVector& row, double ts) override {
    SWSKETCH_CHECK_EQ(row.dim(), dim_);
    UpdateImpl(ts, row.NormSq(), [&](SketchT& sketch, uint64_t id) {
      sketch.AppendSparse(row, id);
    });
  }

  /// Splits the block at level boundaries: contiguous runs of nonzero rows
  /// are forwarded to every level's active sketch as one AppendBatch; a run
  /// ends at a zero row (never appended), at a level-1 close (the aligned
  /// actives are replaced by fresh sketches, so the run must land first),
  /// or at the end of the block. All per-row bookkeeping — started flags,
  /// start/end timestamps, ids, mass and row counters, close triggers —
  /// replays the serial order exactly. Expiry runs once at the end of the
  /// block: DI never merges, the update path only pushes onto the closed
  /// deques, and expired blocks form a front prefix, so the deferral is
  /// state-identical. DI-FD stays bit-identical (FD runs replay per-row
  /// appends); DI-RP inherits RP's batch accumulation-order caveat.
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override {
    SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
    if (rows.rows() == 0) return;
    ++mutation_version_;
    SWSKETCH_CHECK_EQ(rows.cols(), dim_);
    size_t rb = 0;                     // Pending (unforwarded) run start.
    uint64_t run_first_id = next_id_;  // Id of the run's first row.
    const auto flush = [&](size_t re) {
      if (rb < re) {
        for (auto& a : actives_) {
          AppendRunTo(a.sketch, rows, rb, re, run_first_id);
        }
      }
      rb = re;
      run_first_id = next_id_;
    };
    const uint64_t row_cap = std::max<uint64_t>(1, options_.window_size / 8);
    for (size_t i = 0; i < rows.rows(); ++i) {
      SWSKETCH_CHECK_GE(ts[i], now_);
      now_ = ts[i];
      const double w = NormSq(rows.Row(i));
      if (w <= 0.0) {
        flush(i);
        rb = i + 1;  // The zero row itself is never appended.
        continue;
      }
      for (auto& a : actives_) {
        if (!a.started) {
          a.start_ts = ts[i];
          a.started = true;
        }
        a.end_ts = ts[i];
      }
      ++next_id_;
      metrics_.rows_ingested->Add();
      level1_mass_ += w;
      ++level1_rows_;
      if (level1_mass_ > level1_capacity_ || level1_rows_ >= row_cap) {
        flush(i + 1);
        level1_mass_ = 0.0;
        level1_rows_ = 0;
        ++closed_l1_;
        ++structure_version_;
        metrics_.l1_closes->Add();
        for (size_t li = 0; li < options_.levels; ++li) {
          const uint64_t span = 1ULL << li;
          if (closed_l1_ % span != 0) break;
          levels_[li].push_back(Block(std::move(actives_[li].sketch),
                                      closed_l1_ - span, closed_l1_,
                                      actives_[li].start_ts,
                                      actives_[li].end_ts));
          actives_[li] = Active{factory_(li + 1), 0.0, 0.0, false};
          metrics_.blocks_closed->Add();
          metrics_.live_blocks->Add(1);
        }
      }
    }
    flush(rows.rows());
    Expire(now_);
  }

 private:
  template <typename AppendFn>
  void UpdateImpl(double ts, double w, AppendFn&& append) {
    SWSKETCH_CHECK_GE(ts, now_);
    ++mutation_version_;
    now_ = ts;
    Expire(ts);

    if (w <= 0.0) return;

    for (auto& a : actives_) {
      if (!a.started) {
        a.start_ts = ts;
        a.started = true;
      }
      append(a.sketch, next_id_);
      a.end_ts = ts;
    }
    ++next_id_;
    metrics_.rows_ingested->Add();
    level1_mass_ += w;
    ++level1_rows_;

    // Close the level-1 block on mass overflow (Algorithm 7.1 line 7) or,
    // as a safety valve when max_norm_sq grossly over-estimates the actual
    // norms, on row-count overflow — otherwise a single level-1 block could
    // span more than a window and the active sketch would cover expired
    // rows. With correctly-sized R the mass rule always fires first.
    const uint64_t row_cap = std::max<uint64_t>(1, options_.window_size / 8);
    if (level1_mass_ > level1_capacity_ || level1_rows_ >= row_cap) {
      level1_mass_ = 0.0;
      level1_rows_ = 0;
      ++closed_l1_;
      ++structure_version_;
      metrics_.l1_closes->Add();
      // Algorithm 7.1 lines 7-11: close the active block at every level
      // whose dyadic boundary aligns with the new level-1 count.
      for (size_t li = 0; li < options_.levels; ++li) {
        const uint64_t span = 1ULL << li;  // Level li+1 covers 2^li blocks.
        if (closed_l1_ % span != 0) break;
        levels_[li].push_back(Block(std::move(actives_[li].sketch),
                                    closed_l1_ - span, closed_l1_,
                                    actives_[li].start_ts,
                                    actives_[li].end_ts));
        actives_[li] = Active{factory_(li + 1), 0.0, 0.0, false};
        metrics_.blocks_closed->Add();
        metrics_.live_blocks->Add(1);
      }
    }
  }

 public:
  void AdvanceTo(double now) override {
    SWSKETCH_CHECK_GE(now, now_);
    ++mutation_version_;
    now_ = now;
    Expire(now);
  }

  Matrix Query() override {
    metrics_.queries->Add();
    Expire(now_);
    const double start = window_.Start(now_);

    // First level-1 block fully inside the window.
    uint64_t j0 = closed_l1_;
    for (const Block& blk : levels_[0]) {
      if (blk.start_ts >= start) {
        j0 = blk.l1_begin;
        break;
      }
    }

    // Final-result cache: same structure, same cover anchor, same active
    // rows (next_id_ pins the level-1 active sketch) — return the copy.
    if (result_valid_ && result_version_ == structure_version_ &&
        result_j0_ == j0 && result_next_id_ == next_id_) {
      metrics_.query_cache_hits->Add();
      return cached_result_;
    }
    metrics_.query_cache_misses->Add();

    // Cover cache: under a fixed version the greedy cover is a pure
    // function of j0 (closed_l1_ only changes with the version).
    if (!closed_valid_ || closed_version_ != structure_version_ ||
        closed_j0_ != j0) {
      metrics_.cover_cache_misses->Add();
      cached_closed_ = AssembleCover(j0);
      closed_valid_ = true;
      closed_version_ = structure_version_;
      closed_j0_ = j0;
    } else {
      metrics_.cover_cache_hits->Add();
    }

    // The level-1 active sketch covers the most recent rows.
    Matrix b = cached_closed_;
    if (actives_[0].started) {
      b = b.VStack(actives_[0].sketch.Approximation());
    }
    cached_result_ = std::move(b);
    result_valid_ = true;
    result_version_ = structure_version_;
    result_j0_ = j0;
    result_next_id_ = next_id_;
    return cached_result_;
  }

  /// Drops the cached cover and cached result so the next Query() takes
  /// the cold path (bench/test hook; behaviour is unchanged).
  void InvalidateQueryCache() {
    closed_valid_ = false;
    result_valid_ = false;
    cached_closed_ = Matrix(0, dim_);
    cached_result_ = Matrix(0, dim_);
  }

  /// Structure version: bumped on every level-1 close (which closes all
  /// aligned levels), on block expiry, and on reload (test hook).
  uint64_t structure_version() const { return structure_version_; }

  /// Unlike structure_version(), this also moves on active-sketch appends
  /// and window advances (both feed Query directly), so wrappers can key
  /// result caches on it.
  uint64_t StateVersion() const override { return mutation_version_; }

  size_t RowsStored() const override {
    size_t n = 0;
    for (const auto& level : levels_) {
      for (const Block& blk : level) n += blk.sketch.RowsStored();
    }
    for (const auto& a : actives_) n += a.sketch.RowsStored();
    return n;
  }

  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }
  const WindowSpec& window() const override { return window_; }

  size_t NumLevels() const { return options_.levels; }

  /// Total closed blocks currently retained.
  size_t NumBlocks() const {
    size_t n = 0;
    for (const auto& level : levels_) n += level.size();
    return n;
  }

  /// Serializes framework state (counters, actives, closed blocks); the
  /// concrete subclass writes its configuration first.
  void SerializeCore(ByteWriter* writer) const {
    writer->Put(level1_capacity_);
    writer->Put(level1_mass_);
    writer->Put<uint64_t>(level1_rows_);
    writer->Put<uint64_t>(closed_l1_);
    writer->Put<uint64_t>(next_id_);
    writer->Put(now_);
    writer->Put<uint64_t>(actives_.size());
    for (const Active& a : actives_) {
      writer->Put(a.start_ts);
      writer->Put(a.end_ts);
      writer->Put<uint8_t>(a.started ? 1 : 0);
      a.sketch.Serialize(writer);
    }
    writer->Put<uint64_t>(levels_.size());
    for (const auto& level : levels_) {
      writer->Put<uint64_t>(level.size());
      for (const Block& blk : level) {
        writer->Put<uint64_t>(blk.l1_begin);
        writer->Put<uint64_t>(blk.l1_end);
        writer->Put(blk.start_ts);
        writer->Put(blk.end_ts);
        blk.sketch.Serialize(writer);
      }
    }
  }

  /// Loads framework state into a freshly-constructed matching object.
  Status DeserializeCore(ByteReader* reader) {
    // Blocks held before the load are overwritten: settle them in the
    // ledger as discarded so the live_blocks gauge stays exact.
    const size_t overwritten = NumBlocks();
    if (overwritten != 0) {
      metrics_.blocks_discarded->Add(overwritten);
      metrics_.live_blocks->Add(-static_cast<int64_t>(overwritten));
    }
    uint64_t num_actives = 0, num_levels = 0;
    if (!reader->Get(&level1_capacity_) || !reader->Get(&level1_mass_) ||
        !reader->Get(&level1_rows_) || !reader->Get(&closed_l1_) ||
        !reader->Get(&next_id_) || !reader->Get(&now_) ||
        !reader->Get(&num_actives) || num_actives != actives_.size()) {
      return Status::InvalidArgument("corrupt DI payload");
    }
    for (Active& a : actives_) {
      uint8_t started = 0;
      if (!reader->Get(&a.start_ts) || !reader->Get(&a.end_ts) ||
          !reader->Get(&started)) {
        return Status::InvalidArgument("corrupt DI payload");
      }
      a.started = started != 0;
      auto sketch = SketchT::Deserialize(reader);
      if (!sketch.ok()) return sketch.status();
      a.sketch = sketch.take();
    }
    if (!reader->Get(&num_levels) || num_levels != levels_.size()) {
      return Status::InvalidArgument("corrupt DI payload");
    }
    for (auto& level : levels_) {
      uint64_t blocks = 0;
      if (!reader->Get(&blocks)) {
        return Status::InvalidArgument("corrupt DI payload");
      }
      level.clear();
      for (uint64_t i = 0; i < blocks; ++i) {
        uint64_t begin = 0, end = 0;
        double st = 0.0, et = 0.0;
        if (!reader->Get(&begin) || !reader->Get(&end) ||
            !reader->Get(&st) || !reader->Get(&et)) {
          return Status::InvalidArgument("corrupt DI payload");
        }
        auto sketch = SketchT::Deserialize(reader);
        if (!sketch.ok()) return sketch.status();
        level.push_back(Block(sketch.take(), begin, end, st, et));
      }
    }
    // Cache state is never serialized: a reloaded sketch starts cold with
    // a fresh structure version.
    ++structure_version_;
    ++mutation_version_;
    InvalidateQueryCache();
    metrics_.reloads->Add();
    const size_t loaded = NumBlocks();
    if (loaded != 0) {
      metrics_.blocks_loaded->Add(loaded);
      metrics_.live_blocks->Add(loaded);
    }
    return Status::OK();
  }

  /// Test hook: structural invariants — dyadic alignment and time order.
  void CheckInvariants() const {
    for (size_t li = 0; li < levels_.size(); ++li) {
      const uint64_t span = 1ULL << li;
      uint64_t prev_end = 0;
      bool first = true;
      for (const Block& blk : levels_[li]) {
        SWSKETCH_CHECK_EQ(blk.l1_end - blk.l1_begin, span);
        SWSKETCH_CHECK_EQ(blk.l1_begin % span, 0u);
        if (!first) SWSKETCH_CHECK_EQ(blk.l1_begin, prev_end);
        prev_end = blk.l1_end;
        first = false;
      }
    }
  }

 private:
  struct Active {
    SketchT sketch;
    double start_ts = 0.0;
    double end_ts = 0.0;
    bool started = false;
  };

  struct Block {
    SketchT sketch;
    uint64_t l1_begin;  // Covered level-1 block range [begin, end).
    uint64_t l1_end;
    double start_ts;
    double end_ts;

    Block(SketchT s, uint64_t begin, uint64_t end, double st, double et)
        : sketch(std::move(s)),
          l1_begin(begin),
          l1_end(end),
          start_ts(st),
          end_ts(et) {}
  };

  // Forwards rows[rb:re) to one active sketch. FD replays per-row appends
  // so the shrink schedule — and hence DI-FD's state — is bit-identical to
  // the serial path regardless of the block/buffer shape; every other
  // backend takes its block fast path.
  static void AppendRunTo(SketchT& sketch, const Matrix& rows, size_t rb,
                          size_t re, uint64_t first_id) {
    if constexpr (std::is_same_v<SketchT, FrequentDirections>) {
      for (size_t i = rb; i < re; ++i) {
        sketch.Append(rows.Row(i), first_id + (i - rb));
      }
    } else {
      sketch.AppendBatch(rows, rb, re, first_id);
    }
  }

  const Block* FindBlock(size_t li, uint64_t l1_begin) const {
    for (const Block& blk : levels_[li]) {
      if (blk.l1_begin == l1_begin) return &blk;
    }
    return nullptr;
  }

  // Greedy maximal-dyadic cover of [j0, closed_l1_): at position p, take
  // the largest aligned block that fits — at most 2 per level overall.
  // Per-block approximations are computed on the thread pool (const reads
  // of disjoint sketches) and stacked in cover order, so the bytes match
  // the serial VStack chain exactly.
  Matrix AssembleCover(uint64_t j0) {
    cover_scratch_.clear();
    uint64_t p = j0;
    while (p < closed_l1_) {
      size_t li = options_.levels - 1;
      while (li > 0) {
        const uint64_t span = 1ULL << li;
        if (p % span == 0 && p + span <= closed_l1_) break;
        --li;
      }
      const uint64_t span = 1ULL << li;
      const Block* blk = FindBlock(li, p);
      SWSKETCH_CHECK(blk != nullptr);
      cover_scratch_.push_back(blk);
      p += span;
    }
    std::vector<Matrix> parts(cover_scratch_.size());
    ParallelFor(
        cover_scratch_.size(),
        [&](size_t i) { parts[i] = cover_scratch_[i]->sketch.Approximation(); },
        {.grain = 1});
    size_t total = 0;
    for (const Matrix& m : parts) total += m.rows();
    Matrix b(0, dim_);
    b.ReserveRows(total);
    for (const Matrix& m : parts) {
      for (size_t r = 0; r < m.rows(); ++r) b.AppendRow(m.Row(r));
    }
    return b;
  }

  void Expire(double now) {
    const double start = window_.Start(now);
    for (auto& level : levels_) {
      while (!level.empty() && level.front().end_ts < start) {
        level.pop_front();
        ++structure_version_;
        metrics_.blocks_expired->Add();
        metrics_.live_blocks->Add(-1);
      }
    }
  }

  size_t dim_;
  WindowSpec window_;
  DyadicIntervalOptions options_;
  LevelSketchFactory factory_;
  std::string name_;
  MetricSet metrics_;  // Initialized after name_ (declaration order).

  double level1_capacity_ = 0.0;
  double level1_mass_ = 0.0;
  uint64_t level1_rows_ = 0;
  uint64_t closed_l1_ = 0;
  uint64_t next_id_ = 0;
  double now_ = 0.0;

  std::vector<Active> actives_;              // One active block per level.
  std::vector<std::deque<Block>> levels_;    // Closed blocks, oldest first.

  // Query-cache state (never serialized; see DESIGN.md "Query path").
  uint64_t structure_version_ = 0;
  uint64_t mutation_version_ = 0;  // Every Update/AdvanceTo/reload.
  std::vector<const Block*> cover_scratch_;  // Rebuilt on cover assembly.
  Matrix cached_closed_{0, 0};  // Stacked cover; guarded by closed_valid_.
  bool closed_valid_ = false;
  uint64_t closed_version_ = 0;
  uint64_t closed_j0_ = 0;
  Matrix cached_result_{0, 0};  // Guarded by result_valid_.
  bool result_valid_ = false;
  uint64_t result_version_ = 0;
  uint64_t result_j0_ = 0;
  uint64_t result_next_id_ = 0;
};

/// DI-FD (Section 7.3): Frequent Directions per block, sizes halving from
/// `ell_top` at the highest level downward.
class DiFd : public DyadicInterval<FrequentDirections> {
 public:
  struct Options {
    size_t levels = 6;
    uint64_t window_size = 10000;
    double max_norm_sq = 1.0;
    /// FD rows at the top level; level i gets max(ell_min, ell_top >>
    /// (L - i)). Query output has roughly 2 * ell_top rows.
    size_t ell_top = 32;
    size_t ell_min = 2;
    /// Amortized-shrink buffer factor of every per-block FD sketch
    /// (FrequentDirections::Options::buffer_factor). Must be >= 1.
    double fd_buffer_factor = 1.0;
  };

  DiFd(size_t dim, Options options);

  /// Cheap-construction path (core/factory.h SketchPrototype): shares
  /// pre-resolved metric handles and a caller-owned shrink workspace
  /// instead of resolving/allocating its own per instance. A null
  /// `scratch` falls back to a private workspace. Bit-identical behaviour
  /// to the primary constructor (the workspace never influences results).
  DiFd(size_t dim, Options options, const MetricSet& metrics,
       std::shared_ptr<FdShrinkScratch> scratch);

  /// Checkpoint/resume of the full sliding-window state.
  static constexpr uint32_t kSerialTag = 0x44494601;
  void Serialize(ByteWriter* writer) const;
  static Result<DiFd> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 private:
  Options di_options_;
};

/// DI-RP (Appendix A): random projection per block.
class DiRp : public DyadicInterval<RandomProjection> {
 public:
  struct Options {
    size_t levels = 6;
    uint64_t window_size = 10000;
    double max_norm_sq = 1.0;
    size_t ell_top = 64;
    size_t ell_min = 8;
    uint64_t seed = 1;
  };

  DiRp(size_t dim, Options options);
};

/// DI-HASH (Appendix A): feature hashing per block.
class DiHash : public DyadicInterval<HashSketch> {
 public:
  struct Options {
    size_t levels = 6;
    uint64_t window_size = 10000;
    double max_norm_sq = 1.0;
    size_t ell_top = 64;
    size_t ell_min = 8;
    uint64_t seed = 1;
  };

  DiHash(size_t dim, Options options);
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_DYADIC_INTERVAL_H_
