#include "core/exact_window.h"

#include <vector>

#include "util/logging.h"

namespace swsketch {

void ExactWindow::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  buffer_.Add(Row(std::vector<double>(row.begin(), row.end()), ts));
}

void ExactWindow::UpdateBatch(const Matrix& rows, std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() > 0) SWSKETCH_CHECK_EQ(rows.cols(), dim_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    const auto row = rows.Row(i);
    buffer_.Add(Row(std::vector<double>(row.begin(), row.end()), ts[i]));
  }
}

}  // namespace swsketch
