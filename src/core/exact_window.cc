#include "core/exact_window.h"

#include <vector>

#include "util/logging.h"

namespace swsketch {

void ExactWindow::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  buffer_.Add(Row(std::vector<double>(row.begin(), row.end()), ts));
}

}  // namespace swsketch
