// The exact sliding-window baseline: stores every window row, answers with
// the window matrix itself (zero covariance error). Theorem 4.1 proves this
// linear space cost is unavoidable for exactness — this class exists to
// demonstrate that cost (bench/lower_bound_demo) and to serve as ground
// truth in examples.
#ifndef SWSKETCH_CORE_EXACT_WINDOW_H_
#define SWSKETCH_CORE_EXACT_WINDOW_H_

#include <string>

#include "core/sliding_window_sketch.h"
#include "stream/window_buffer.h"

namespace swsketch {

/// Linear-space exact window tracker.
class ExactWindow : public SlidingWindowSketch {
 public:
  ExactWindow(size_t dim, WindowSpec window)
      : dim_(dim), window_(window), buffer_(window) {}

  void Update(std::span<const double> row, double ts) override;

  /// Bit-identical to the serial loop (the buffer append commutes with
  /// nothing); overridden only to skip per-row virtual dispatch and to
  /// reserve the block up front.
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;

  void AdvanceTo(double now) override { buffer_.AdvanceTo(now); }

  /// Returns A_W itself (B = A => zero error).
  Matrix Query() override { return buffer_.ToMatrix(); }

  size_t RowsStored() const override { return buffer_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "EXACT"; }
  const WindowSpec& window() const override { return window_; }

  /// Exact covariance A_W^T A_W.
  Matrix Covariance() const { return buffer_.GramMatrix(dim_); }

  const WindowBuffer& buffer() const { return buffer_; }

 private:
  size_t dim_;
  WindowSpec window_;
  WindowBuffer buffer_;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_EXACT_WINDOW_H_
