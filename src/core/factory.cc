#include "core/factory.h"

#include "core/best_rank_k.h"
#include "core/dyadic_interval.h"
#include "core/exact_window.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "core/swr.h"

namespace swsketch {

namespace {

Status RequireSequence(const WindowSpec& window, const std::string& algo) {
  if (window.type() != WindowType::kSequence) {
    return Status::InvalidArgument(
        algo + " supports sequence-based windows only (Section 7)");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SlidingWindowSketch>> MakeSlidingWindowSketch(
    size_t dim, WindowSpec window, const SketchConfig& config) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (config.ell == 0) return Status::InvalidArgument("ell must be positive");
  const std::string& a = config.algorithm;

  if (a == "swr") {
    return std::unique_ptr<SlidingWindowSketch>(new SwrSketch(
        dim, window,
        SwrSketch::Options{.ell = config.ell,
                           .frobenius_eps = config.frobenius_eps,
                           .exact_frobenius = config.exact_frobenius,
                           .seed = config.seed}));
  }
  if (a == "swor" || a == "swor-all") {
    return std::unique_ptr<SlidingWindowSketch>(new SworSketch(
        dim, window,
        SworSketch::Options{
            .ell = config.ell,
            .query_mode = a == "swor-all" ? SworSketch::QueryMode::kAll
                                          : SworSketch::QueryMode::kTopEll,
            .frobenius_eps = config.frobenius_eps,
            .exact_frobenius = config.exact_frobenius,
            .seed = config.seed}));
  }
  if (a == "lm-fd") {
    return std::unique_ptr<SlidingWindowSketch>(new LmFd(
        dim, window,
        LmFd::Options{.ell = config.ell,
                      .blocks_per_level = config.blocks_per_level,
                      .block_capacity = config.lm_block_capacity,
                      .fd_buffer_factor = config.fd_buffer_factor}));
  }
  if (a == "lm-rp") {
    return std::unique_ptr<SlidingWindowSketch>(new LmRp(
        dim, window,
        LmRp::Options{.ell = config.ell,
                      .blocks_per_level = config.blocks_per_level,
                      .block_capacity = config.lm_block_capacity,
                      .seed = config.seed}));
  }
  if (a == "lm-hash") {
    return std::unique_ptr<SlidingWindowSketch>(new LmHash(
        dim, window,
        LmHash::Options{.ell = config.ell,
                        .blocks_per_level = config.blocks_per_level,
                        .block_capacity = config.lm_block_capacity,
                        .seed = config.seed}));
  }
  if (a == "di-fd") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiFd(
        dim, DiFd::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .fd_buffer_factor = config.fd_buffer_factor}));
  }
  if (a == "di-rp") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiRp(
        dim, DiRp::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .seed = config.seed}));
  }
  if (a == "di-hash") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiHash(
        dim, DiHash::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .seed = config.seed}));
  }
  if (a == "exact") {
    return std::unique_ptr<SlidingWindowSketch>(new ExactWindow(dim, window));
  }
  if (a == "best") {
    return std::unique_ptr<SlidingWindowSketch>(
        new BestRankK(dim, window, config.ell));
  }
  return Status::InvalidArgument("unknown algorithm: " + a);
}

namespace {

template <typename T>
Result<std::unique_ptr<SlidingWindowSketch>> LoadAs(ByteReader* reader) {
  auto loaded = T::Deserialize(reader);
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<SlidingWindowSketch>(
      std::make_unique<T>(std::move(loaded.take())));
}

}  // namespace

Result<std::unique_ptr<SlidingWindowSketch>> DeserializeSlidingWindowSketch(
    ByteReader* reader) {
  uint32_t tag = 0;
  if (!reader->Peek(&tag)) {
    return Status::InvalidArgument("empty sketch payload");
  }
  switch (tag) {
    case SwrSketch::kSerialTag: return LoadAs<SwrSketch>(reader);
    case SworSketch::kSerialTag: return LoadAs<SworSketch>(reader);
    case LmFd::kSerialTag: return LoadAs<LmFd>(reader);
    case LmHash::kSerialTag: return LoadAs<LmHash>(reader);
    case DiFd::kSerialTag: return LoadAs<DiFd>(reader);
    default:
      return Status::InvalidArgument("unknown sketch serialization tag");
  }
}

std::vector<std::string> KnownAlgorithms() {
  return {"swr",   "swor",  "swor-all", "lm-fd", "lm-hash", "lm-rp",
          "di-fd", "di-rp", "di-hash",  "exact", "best"};
}

}  // namespace swsketch
