#include "core/factory.h"

#include <memory>
#include <new>
#include <utility>

#include "amm/amm_exact.h"
#include "amm/amm_stacked.h"
#include "core/best_rank_k.h"
#include "core/dump_snapshot.h"
#include "core/dyadic_interval.h"
#include "core/exact_window.h"
#include "core/logarithmic_method.h"
#include "core/swor.h"
#include "core/swr.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

namespace {

Status RequireSequence(const WindowSpec& window, const std::string& algo) {
  if (window.type() != WindowType::kSequence) {
    return Status::InvalidArgument(
        algo + " supports sequence-based windows only (Section 7)");
  }
  return Status::OK();
}

// Single-operand backend an AMM name wraps at the stacked dimension, or
// "" for names that are not AMM ("amm-exact" maps to itself: the dual-
// buffer reference needs no underlying covariance sketch).
std::string AmmInnerAlgorithm(const std::string& algo) {
  if (algo == "amm-exact") return "amm-exact";
  if (algo == "amm-co-fd") return "ds-fd";
  if (algo == "amm-lm-fd") return "lm-fd";
  if (algo == "amm-di-fd") return "di-fd";
  return "";
}

// Resolves SketchConfig::amm_dim_a against the stacked dimension.
Result<size_t> ResolveAmmDimA(size_t dim, const SketchConfig& config) {
  if (dim < 2) {
    return Status::InvalidArgument(
        "AMM needs a stacked dimension of at least 2 (one column per "
        "operand)");
  }
  const size_t dim_a = config.amm_dim_a == 0 ? dim / 2 : config.amm_dim_a;
  if (dim_a == 0 || dim_a >= dim) {
    return Status::InvalidArgument(
        "amm_dim_a must satisfy 0 < amm_dim_a < dim");
  }
  return dim_a;
}

}  // namespace

Result<std::unique_ptr<SlidingWindowSketch>> MakeSlidingWindowSketch(
    size_t dim, WindowSpec window, const SketchConfig& config) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (config.ell == 0) return Status::InvalidArgument("ell must be positive");
  const std::string& a = config.algorithm;

  if (a == "swr") {
    return std::unique_ptr<SlidingWindowSketch>(new SwrSketch(
        dim, window,
        SwrSketch::Options{.ell = config.ell,
                           .frobenius_eps = config.frobenius_eps,
                           .exact_frobenius = config.exact_frobenius,
                           .seed = config.seed}));
  }
  if (a == "swor" || a == "swor-all") {
    return std::unique_ptr<SlidingWindowSketch>(new SworSketch(
        dim, window,
        SworSketch::Options{
            .ell = config.ell,
            .query_mode = a == "swor-all" ? SworSketch::QueryMode::kAll
                                          : SworSketch::QueryMode::kTopEll,
            .frobenius_eps = config.frobenius_eps,
            .exact_frobenius = config.exact_frobenius,
            .seed = config.seed}));
  }
  if (a == "lm-fd") {
    return std::unique_ptr<SlidingWindowSketch>(new LmFd(
        dim, window,
        LmFd::Options{.ell = config.ell,
                      .blocks_per_level = config.blocks_per_level,
                      .block_capacity = config.lm_block_capacity,
                      .fd_buffer_factor = config.fd_buffer_factor}));
  }
  if (a == "ds-fd") {
    return std::unique_ptr<SlidingWindowSketch>(new DsFd(
        dim, window,
        DsFd::Options{.ell = config.ell,
                      .snapshots_per_window = config.ds_snapshots_per_window,
                      .snapshot_trunc = config.ds_snapshot_trunc,
                      .frame_ell_factor = config.ds_frame_ell_factor,
                      .fd_buffer_factor = config.ds_fd_buffer_factor,
                      .frobenius_eps = config.frobenius_eps,
                      .exact_frobenius = config.exact_frobenius}));
  }
  if (a == "lm-rp") {
    return std::unique_ptr<SlidingWindowSketch>(new LmRp(
        dim, window,
        LmRp::Options{.ell = config.ell,
                      .blocks_per_level = config.blocks_per_level,
                      .block_capacity = config.lm_block_capacity,
                      .seed = config.seed}));
  }
  if (a == "lm-hash") {
    return std::unique_ptr<SlidingWindowSketch>(new LmHash(
        dim, window,
        LmHash::Options{.ell = config.ell,
                        .blocks_per_level = config.blocks_per_level,
                        .block_capacity = config.lm_block_capacity,
                        .seed = config.seed}));
  }
  if (a == "di-fd") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiFd(
        dim, DiFd::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .fd_buffer_factor = config.fd_buffer_factor}));
  }
  if (a == "di-rp") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiRp(
        dim, DiRp::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .seed = config.seed}));
  }
  if (a == "di-hash") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    return std::unique_ptr<SlidingWindowSketch>(new DiHash(
        dim, DiHash::Options{
                 .levels = config.levels,
                 .window_size = static_cast<uint64_t>(window.extent()),
                 .max_norm_sq = config.max_norm_sq,
                 .ell_top = config.ell,
                 .seed = config.seed}));
  }
  if (a == "exact") {
    return std::unique_ptr<SlidingWindowSketch>(new ExactWindow(dim, window));
  }
  if (a == "best") {
    return std::unique_ptr<SlidingWindowSketch>(
        new BestRankK(dim, window, config.ell));
  }
  if (const std::string inner_algo = AmmInnerAlgorithm(a);
      !inner_algo.empty()) {
    auto dim_a = ResolveAmmDimA(dim, config);
    if (!dim_a.ok()) return dim_a.status();
    if (a == "amm-exact") {
      return std::unique_ptr<SlidingWindowSketch>(
          new AmmExact(*dim_a, dim - *dim_a, window));
    }
    SketchConfig inner_config = config;
    inner_config.algorithm = inner_algo;
    auto inner = MakeSlidingWindowSketch(dim, window, inner_config);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<SlidingWindowSketch>(
        new AmmStacked(*dim_a, dim - *dim_a, inner.take()));
  }
  return Status::InvalidArgument("unknown algorithm: " + a);
}

namespace {

template <typename T>
Result<std::unique_ptr<SlidingWindowSketch>> LoadAs(ByteReader* reader) {
  auto loaded = T::Deserialize(reader);
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<SlidingWindowSketch>(
      std::make_unique<T>(std::move(loaded.take())));
}

}  // namespace

Result<std::unique_ptr<SlidingWindowSketch>> DeserializeSlidingWindowSketch(
    ByteReader* reader) {
  uint32_t tag = 0;
  if (!reader->Peek(&tag)) {
    return Status::InvalidArgument("empty sketch payload");
  }
  switch (tag) {
    case SwrSketch::kSerialTag: return LoadAs<SwrSketch>(reader);
    case SworSketch::kSerialTag: return LoadAs<SworSketch>(reader);
    case LmFd::kSerialTag: return LoadAs<LmFd>(reader);
    case LmHash::kSerialTag: return LoadAs<LmHash>(reader);
    case DiFd::kSerialTag: return LoadAs<DiFd>(reader);
    case DsFd::kSerialTag: return LoadAs<DsFd>(reader);
    case AmmExact::kSerialTag: return LoadAs<AmmExact>(reader);
    case AmmStacked::kSerialTag: return LoadAs<AmmStacked>(reader);
    default:
      return Status::InvalidArgument("unknown sketch serialization tag");
  }
}

namespace {

// Placement counterpart of LoadAs: deserializes T and move-constructs it
// into caller storage. On a corrupt payload nothing is constructed.
template <typename T>
Result<SlidingWindowSketch*> PlacementLoad(void* mem, ByteReader* reader) {
  auto loaded = T::Deserialize(reader);
  if (!loaded.ok()) return loaded.status();
  return static_cast<SlidingWindowSketch*>(
      new (mem) T(std::move(loaded.take())));
}

}  // namespace

Result<SketchPrototype> SketchPrototype::Make(size_t dim, WindowSpec window,
                                              const SketchConfig& config) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (config.ell == 0) return Status::InvalidArgument("ell must be positive");
  const std::string& a = config.algorithm;

  SketchPrototype proto;
  proto.dim_ = dim;
  proto.window_ = window;

  // Per-branch: record the instance footprint, build a construct lambda
  // that captures everything resolved here (options struct, metric
  // handles, shared FD scratch) by value, and point deserialize_ at the
  // type's placement loader when the algorithm serializes.
  if (a == "swr") {
    SwrSketch::Options options{.ell = config.ell,
                               .frobenius_eps = config.frobenius_eps,
                               .exact_frobenius = config.exact_frobenius,
                               .seed = config.seed};
    proto.size_ = sizeof(SwrSketch);
    proto.align_ = alignof(SwrSketch);
    proto.construct_ = [dim, window, options](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) SwrSketch(dim, window, options));
    };
    proto.deserialize_ = &PlacementLoad<SwrSketch>;
    return proto;
  }
  if (a == "swor" || a == "swor-all") {
    SworSketch::Options options{
        .ell = config.ell,
        .query_mode = a == "swor-all" ? SworSketch::QueryMode::kAll
                                      : SworSketch::QueryMode::kTopEll,
        .frobenius_eps = config.frobenius_eps,
        .exact_frobenius = config.exact_frobenius,
        .seed = config.seed};
    proto.size_ = sizeof(SworSketch);
    proto.align_ = alignof(SworSketch);
    proto.construct_ = [dim, window, options](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) SworSketch(dim, window, options));
    };
    proto.deserialize_ = &PlacementLoad<SworSketch>;
    return proto;
  }
  if (a == "lm-fd") {
    LmFd::Options options{.ell = config.ell,
                          .blocks_per_level = config.blocks_per_level,
                          .block_capacity = config.lm_block_capacity,
                          .fd_buffer_factor = config.fd_buffer_factor};
    auto metrics =
        std::make_shared<LogarithmicMethod<FrequentDirections>::MetricSet>(
            MetricScope(MetricScope::Slug("LM-FD")));
    auto scratch = FrequentDirections::MakeShrinkScratch();
    proto.size_ = sizeof(LmFd);
    proto.align_ = alignof(LmFd);
    proto.construct_ = [dim, window, options, metrics, scratch](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) LmFd(dim, window, options, *metrics, scratch));
    };
    proto.deserialize_ = &PlacementLoad<LmFd>;
    return proto;
  }
  if (a == "ds-fd") {
    DsFd::Options options{.ell = config.ell,
                          .snapshots_per_window =
                              config.ds_snapshots_per_window,
                          .snapshot_trunc = config.ds_snapshot_trunc,
                          .frame_ell_factor = config.ds_frame_ell_factor,
                          .fd_buffer_factor = config.ds_fd_buffer_factor,
                          .frobenius_eps = config.frobenius_eps,
                          .exact_frobenius = config.exact_frobenius};
    auto metrics = std::make_shared<DsFd::MetricSet>(
        MetricScope(MetricScope::Slug("DS-FD")));
    auto scratch = FrequentDirections::MakeShrinkScratch();
    proto.size_ = sizeof(DsFd);
    proto.align_ = alignof(DsFd);
    proto.construct_ = [dim, window, options, metrics, scratch](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) DsFd(dim, window, options, *metrics, scratch));
    };
    proto.deserialize_ = &PlacementLoad<DsFd>;
    return proto;
  }
  if (a == "lm-hash") {
    LmHash::Options options{.ell = config.ell,
                            .blocks_per_level = config.blocks_per_level,
                            .block_capacity = config.lm_block_capacity,
                            .seed = config.seed};
    auto metrics = std::make_shared<LogarithmicMethod<HashSketch>::MetricSet>(
        MetricScope(MetricScope::Slug("LM-HASH")));
    proto.size_ = sizeof(LmHash);
    proto.align_ = alignof(LmHash);
    proto.construct_ = [dim, window, options, metrics](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) LmHash(dim, window, options, *metrics));
    };
    proto.deserialize_ = &PlacementLoad<LmHash>;
    return proto;
  }
  if (a == "lm-rp") {
    LmRp::Options options{.ell = config.ell,
                          .blocks_per_level = config.blocks_per_level,
                          .block_capacity = config.lm_block_capacity,
                          .seed = config.seed};
    proto.size_ = sizeof(LmRp);
    proto.align_ = alignof(LmRp);
    proto.construct_ = [dim, window, options](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) LmRp(dim, window, options));
    };
    return proto;
  }
  if (a == "di-fd") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    DiFd::Options options{.levels = config.levels,
                          .window_size =
                              static_cast<uint64_t>(window.extent()),
                          .max_norm_sq = config.max_norm_sq,
                          .ell_top = config.ell,
                          .fd_buffer_factor = config.fd_buffer_factor};
    auto metrics =
        std::make_shared<DyadicInterval<FrequentDirections>::MetricSet>(
            MetricScope(MetricScope::Slug("DI-FD")));
    auto scratch = FrequentDirections::MakeShrinkScratch();
    proto.size_ = sizeof(DiFd);
    proto.align_ = alignof(DiFd);
    proto.construct_ = [dim, options, metrics, scratch](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) DiFd(dim, options, *metrics, scratch));
    };
    proto.deserialize_ = &PlacementLoad<DiFd>;
    return proto;
  }
  if (a == "di-rp") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    DiRp::Options options{.levels = config.levels,
                          .window_size =
                              static_cast<uint64_t>(window.extent()),
                          .max_norm_sq = config.max_norm_sq,
                          .ell_top = config.ell,
                          .seed = config.seed};
    proto.size_ = sizeof(DiRp);
    proto.align_ = alignof(DiRp);
    proto.construct_ = [dim, options](void* mem) {
      return static_cast<SlidingWindowSketch*>(new (mem) DiRp(dim, options));
    };
    return proto;
  }
  if (a == "di-hash") {
    if (Status s = RequireSequence(window, a); !s.ok()) return s;
    DiHash::Options options{.levels = config.levels,
                            .window_size =
                                static_cast<uint64_t>(window.extent()),
                            .max_norm_sq = config.max_norm_sq,
                            .ell_top = config.ell,
                            .seed = config.seed};
    proto.size_ = sizeof(DiHash);
    proto.align_ = alignof(DiHash);
    proto.construct_ = [dim, options](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) DiHash(dim, options));
    };
    return proto;
  }
  if (a == "exact") {
    proto.size_ = sizeof(ExactWindow);
    proto.align_ = alignof(ExactWindow);
    proto.construct_ = [dim, window](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) ExactWindow(dim, window));
    };
    return proto;
  }
  if (a == "best") {
    const size_t k = config.ell;
    proto.size_ = sizeof(BestRankK);
    proto.align_ = alignof(BestRankK);
    proto.construct_ = [dim, window, k](void* mem) {
      return static_cast<SlidingWindowSketch*>(
          new (mem) BestRankK(dim, window, k));
    };
    return proto;
  }
  if (const std::string inner_algo = AmmInnerAlgorithm(a);
      !inner_algo.empty()) {
    auto dim_a_r = ResolveAmmDimA(dim, config);
    if (!dim_a_r.ok()) return dim_a_r.status();
    const size_t dim_a = *dim_a_r;
    const size_t dim_b = dim - dim_a;
    // The amm.* handles resolve once here; the wrapped stacked backend
    // still resolves its own scoped handles per instance inside its
    // constructor — same registry names, so tenants share them anyway.
    auto metrics = std::make_shared<AmmSketch::MetricSet>(MetricScope("amm"));
    if (a == "amm-exact") {
      proto.size_ = sizeof(AmmExact);
      proto.align_ = alignof(AmmExact);
      proto.construct_ = [dim_a, dim_b, window, metrics](void* mem) {
        return static_cast<SlidingWindowSketch*>(
            new (mem) AmmExact(dim_a, dim_b, window, *metrics));
      };
      proto.deserialize_ = &PlacementLoad<AmmExact>;
      return proto;
    }
    if (inner_algo == "di-fd") {
      if (Status s = RequireSequence(window, a); !s.ok()) return s;
    }
    SketchConfig inner_config = config;
    inner_config.algorithm = inner_algo;
    // Probe-build one underlying sketch now so the construct lambda's
    // CHECK can never fire: any config error surfaces here as a Status.
    if (auto probe = MakeSlidingWindowSketch(dim, window, inner_config);
        !probe.ok()) {
      return probe.status();
    }
    proto.size_ = sizeof(AmmStacked);
    proto.align_ = alignof(AmmStacked);
    // The underlying sketch lives on the heap behind the slab-resident
    // wrapper: its size varies by backend, so only the fixed-size wrapper
    // participates in the arena slab contract.
    proto.construct_ = [dim, dim_a, dim_b, window, inner_config,
                        metrics](void* mem) {
      auto inner = MakeSlidingWindowSketch(dim, window, inner_config);
      SWSKETCH_CHECK(inner.ok());  // Validated when the prototype was made.
      return static_cast<SlidingWindowSketch*>(
          new (mem) AmmStacked(dim_a, dim_b, inner.take(), *metrics));
    };
    proto.deserialize_ = &PlacementLoad<AmmStacked>;
    return proto;
  }
  return Status::InvalidArgument("unknown algorithm: " + a);
}

std::vector<std::string> KnownAlgorithms() {
  return {"swr",      "swor",  "swor-all",  "lm-fd",     "ds-fd",
          "lm-hash",  "lm-rp", "di-fd",     "di-rp",     "di-hash",
          "exact",    "best",  "amm-exact", "amm-co-fd", "amm-lm-fd",
          "amm-di-fd"};
}

}  // namespace swsketch
