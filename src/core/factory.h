// Name-based construction of sliding-window sketches, used by benches,
// examples and integration tests to sweep algorithms uniformly.
#ifndef SWSKETCH_CORE_FACTORY_H_
#define SWSKETCH_CORE_FACTORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Union of the knobs of every algorithm; each algorithm reads the subset
/// it understands.
struct SketchConfig {
  /// One of: swr, swor, swor-all, lm-fd, ds-fd, lm-hash, lm-rp, di-fd,
  /// di-rp, di-hash, exact, best, or a two-operand AMM backend:
  /// amm-exact, amm-co-fd, amm-lm-fd, amm-di-fd (src/amm/). AMM sketches
  /// run at the stacked dimension d = d_a + d_b; see amm_dim_a.
  std::string algorithm = "lm-fd";

  /// Sample count (samplers), FD rows per block (LM-FD), top-level size
  /// (DI-*), hash buckets (LM-HASH), or k (best).
  size_t ell = 32;

  /// LM: blocks per level (b ~ 1/epsilon).
  size_t blocks_per_level = 8;

  /// LM: block capacity in squared-norm mass. 0 means ell — the paper's
  /// convention, which assumes row norms of order 1. When typical norms
  /// are far from 1, set this to ell * (typical squared norm) so level-1
  /// blocks hold about ell rows and the FD amortization works as analyzed.
  double lm_block_capacity = 0.0;

  /// DI: number of dyadic levels (L ~ log2(R / epsilon)).
  size_t levels = 6;

  /// DI: a-priori bound R on squared row norms.
  double max_norm_sq = 1.0;

  /// FD-based algorithms (lm-fd, di-fd): amortized-shrink buffer factor.
  /// Each FD instance may hold up to fd_buffer_factor * (its ell) rows
  /// before shrinking (Desai et al.), halving SVD frequency at 2.0. Must
  /// be >= 1; 1 disables buffering.
  double fd_buffer_factor = 1.0;

  /// DS-FD: snapshot ladder density k — a snapshot is dumped every
  /// F_hat / k of window mass, so the boundary leak is about 1/k of the
  /// window's squared Frobenius norm; 0 auto-scales with ell
  /// (see DsFd::Options::snapshots_per_window).
  size_t ds_snapshots_per_window = 0;

  /// DS-FD: spectral truncation of dumped snapshots relative to the
  /// ladder quantum F_hat / k; 0 disables truncation.
  double ds_snapshot_trunc = 0.25;

  /// DS-FD: internal frame-FD oversize; the per-frame FD runs at
  /// round(factor * ell) directions, dim-capped, while Query output stays
  /// <= ell (see DsFd::Options::frame_ell_factor).
  double ds_frame_ell_factor = 1.5;

  /// DS-FD: buffer_factor of the internal frame FDs, separate from the
  /// global fd_buffer_factor because frame FDs are long-lived
  /// single-writer instances that benefit from amortized shrinks by
  /// default (see DsFd::Options::fd_buffer_factor; dim-capped capacity).
  double ds_fd_buffer_factor = 3.0;

  /// Samplers and DS-FD: exponential-histogram error for the ||A||_F^2
  /// tracker, or exact tracking when exact_frobenius is set.
  double frobenius_eps = 0.05;
  bool exact_frobenius = false;

  /// AMM backends only: columns of the first operand A inside the stacked
  /// dimension passed to the factory (operand B gets dim - amm_dim_a).
  /// 0 (the default) splits the stacked dimension evenly, dim / 2.
  /// Must satisfy 0 < amm_dim_a < dim; AMM requires dim >= 2.
  size_t amm_dim_a = 0;

  uint64_t seed = 1;
};

/// Builds the sketch named by `config.algorithm`, or InvalidArgument for
/// unknown names / incompatible window types (DI requires sequence
/// windows).
Result<std::unique_ptr<SlidingWindowSketch>> MakeSlidingWindowSketch(
    size_t dim, WindowSpec window, const SketchConfig& config);

/// All algorithm names the factory accepts.
std::vector<std::string> KnownAlgorithms();

/// Reloads a sketch serialized with SlidingWindowSketch::SerializeTo,
/// dispatching on the serialized tag (SWR, SWOR, LM-FD, LM-HASH, DI-FD).
Result<std::unique_ptr<SlidingWindowSketch>> DeserializeSlidingWindowSketch(
    ByteReader* reader);

/// Arena-aware construction hook: resolves one SketchConfig's algorithm
/// dispatch, window validation and metric-registry handles ONCE, then
/// stamps instances into caller-provided storage with placement new. A
/// multi-tenant manager constructing 100k identical sketches pays the
/// registry mutex and name dispatch once here instead of once per tenant,
/// and every FD-backed instance shares one shrink workspace (safe while
/// instances are driven one at a time, which the owning manager
/// guarantees; the workspace never influences results).
///
/// The caller owns the storage: instance_size() bytes at instance_align()
/// alignment per instance, destruction via the virtual destructor
/// (sketch->~SlidingWindowSketch()).
class SketchPrototype {
 public:
  /// Validates dim/window/config exactly like MakeSlidingWindowSketch.
  static Result<SketchPrototype> Make(size_t dim, WindowSpec window,
                                      const SketchConfig& config);

  /// Slab footprint of one instance (fixed per prototype).
  size_t instance_size() const { return size_; }
  size_t instance_align() const { return align_; }

  /// True when instances support SerializeTo / DeserializeAt (the
  /// algorithms DeserializeSlidingWindowSketch can reload).
  bool serializable() const { return deserialize_ != nullptr; }

  size_t dim() const { return dim_; }
  const WindowSpec& window() const { return window_; }

  /// Placement-constructs a fresh empty sketch into `mem`.
  SlidingWindowSketch* ConstructAt(void* mem) const { return construct_(mem); }

  /// Placement-deserializes a sketch previously written with SerializeTo
  /// into `mem`. On error nothing is constructed and `mem` stays free.
  /// Requires serializable().
  Result<SlidingWindowSketch*> DeserializeAt(void* mem,
                                             ByteReader* reader) const {
    return deserialize_(mem, reader);
  }

 private:
  SketchPrototype() = default;

  std::function<SlidingWindowSketch*(void*)> construct_;
  Result<SlidingWindowSketch*> (*deserialize_)(void*, ByteReader*) = nullptr;
  size_t size_ = 0;
  size_t align_ = 0;
  size_t dim_ = 0;
  WindowSpec window_ = WindowSpec::Sequence(1);
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_FACTORY_H_
