// Tracks ||A_W||_F^2 (the sum of squared row norms over the window) for the
// sampling sketches. Two modes, both discussed in Section 5.1:
//  * kExponentialHistogram: the sublinear-space (1 +/- eps) approximation;
//  * kExact: stores one scalar per window row (much smaller than the rows
//    themselves, as the paper notes, but linear space).
#ifndef SWSKETCH_CORE_FROBENIUS_TRACKER_H_
#define SWSKETCH_CORE_FROBENIUS_TRACKER_H_

#include <deque>
#include <utility>
#include <vector>

#include "util/exponential_histogram.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace swsketch {

/// Sliding-window sum of squared norms.
class FrobeniusTracker {
 public:
  enum class Mode { kExponentialHistogram, kExact };

  FrobeniusTracker(Mode mode, double eps)
      : mode_(mode), eh_(eps) {}

  void Add(double norm_sq, double ts) {
    if (mode_ == Mode::kExponentialHistogram) {
      eh_.Add(norm_sq, ts);
    } else {
      exact_.emplace_back(ts, norm_sq);
      exact_sum_ += norm_sq;
    }
  }

  /// Expires state for windows starting at `window_start`.
  void EvictBefore(double window_start) {
    if (mode_ == Mode::kExponentialHistogram) {
      eh_.EvictBefore(window_start);
      return;
    }
    while (!exact_.empty() && exact_.front().first < window_start) {
      exact_sum_ -= exact_.front().second;
      exact_.pop_front();
    }
  }

  /// Estimated window sum for window start `window_start`.
  double Estimate(double window_start) const {
    if (mode_ == Mode::kExponentialHistogram) {
      return eh_.Estimate(window_start);
    }
    double s = exact_sum_;
    for (const auto& [ts, w] : exact_) {
      if (ts >= window_start) break;
      s -= w;
    }
    return s;
  }

  /// Auxiliary storage used (EH boundaries or stored scalars) — counted
  /// separately from sketch rows in reports.
  size_t AuxiliarySize() const {
    return mode_ == Mode::kExponentialHistogram ? eh_.NumBuckets()
                                                : exact_.size();
  }

  void Serialize(ByteWriter* writer) const {
    writer->Put<uint8_t>(mode_ == Mode::kExponentialHistogram ? 0 : 1);
    eh_.Serialize(writer);
    std::vector<TsValue> flat;
    flat.reserve(exact_.size());
    for (const auto& [ts, v] : exact_) flat.push_back(TsValue{ts, v});
    writer->PutVector(flat);
    writer->Put(exact_sum_);
  }

  bool Deserialize(ByteReader* reader) {
    uint8_t mode = 0;
    std::vector<TsValue> flat;
    if (!reader->Get(&mode) || !eh_.Deserialize(reader) ||
        !reader->GetVector(&flat) || !reader->Get(&exact_sum_)) {
      return false;
    }
    mode_ = mode == 0 ? Mode::kExponentialHistogram : Mode::kExact;
    exact_.clear();
    for (const auto& e : flat) exact_.emplace_back(e.ts, e.value);
    return true;
  }

 private:
  struct TsValue {
    double ts;
    double value;
  };

  Mode mode_;
  ExponentialHistogram eh_;
  std::deque<std::pair<double, double>> exact_;
  double exact_sum_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_FROBENIUS_TRACKER_H_
