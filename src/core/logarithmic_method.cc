#include "core/logarithmic_method.h"

namespace swsketch {

namespace {

double ResolveCapacity(double requested, size_t ell) {
  return requested > 0.0 ? requested : static_cast<double>(ell);
}

}  // namespace

LmFd::LmFd(size_t dim, WindowSpec window, Options options)
    : LogarithmicMethod<FrequentDirections>(
          dim, window,
          LogarithmicMethodOptions{
              .block_capacity =
                  ResolveCapacity(options.block_capacity, options.ell),
              .blocks_per_level = options.blocks_per_level},
          // Every per-block FD shares one shrink arena: blocks are closed
          // and queried sequentially on the owning thread, so the shared
          // workspace is never used concurrently and the steady state
          // allocates nothing per block.
          [dim, ell = options.ell, factor = options.fd_buffer_factor,
           scratch = FrequentDirections::MakeShrinkScratch()] {
            FrequentDirections fd(
                dim, FrequentDirections::Options{.ell = ell,
                                                 .buffer_factor = factor});
            fd.ShareShrinkScratch(scratch);
            return fd;
          },
          "LM-FD"),
      lm_options_(options) {}

LmFd::LmFd(size_t dim, WindowSpec window, Options options,
           const MetricSet& metrics,
           std::shared_ptr<FdShrinkScratch> scratch)
    : LogarithmicMethod<FrequentDirections>(
          dim, window,
          LogarithmicMethodOptions{
              .block_capacity =
                  ResolveCapacity(options.block_capacity, options.ell),
              .blocks_per_level = options.blocks_per_level},
          [dim, ell = options.ell, factor = options.fd_buffer_factor,
           scratch = std::move(scratch)] {
            FrequentDirections fd(
                dim, FrequentDirections::Options{.ell = ell,
                                                 .buffer_factor = factor});
            if (scratch) fd.ShareShrinkScratch(scratch);
            return fd;
          },
          "LM-FD", metrics),
      lm_options_(options) {}

void LmFd::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, LmFd::kSerialTag, 2);
  writer->Put<uint64_t>(dim());
  window().Serialize(writer);
  writer->Put<uint64_t>(lm_options_.ell);
  writer->Put<uint64_t>(lm_options_.blocks_per_level);
  writer->Put(lm_options_.block_capacity);
  writer->Put(lm_options_.fd_buffer_factor);
  SerializeCore(writer);
}

Result<LmFd> LmFd::Deserialize(ByteReader* reader) {
  // Version 2: per-block FD buffer factor added (version-1 payloads
  // predate amortized buffering and are not readable).
  if (!CheckHeader(reader, LmFd::kSerialTag, 2)) {
    return Status::InvalidArgument("bad LmFd header");
  }
  uint64_t dim = 0, ell = 0, b = 0;
  double capacity = 0.0, fd_factor = 1.0;
  if (!reader->Get(&dim)) return Status::InvalidArgument("corrupt LmFd");
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  if (!reader->Get(&ell) || !reader->Get(&b) || !reader->Get(&capacity) ||
      !reader->Get(&fd_factor) || ell < 2 || b < 2 || fd_factor < 1.0) {
    return Status::InvalidArgument("corrupt LmFd payload");
  }
  LmFd sketch(dim, *window,
              Options{.ell = ell, .blocks_per_level = b,
                      .block_capacity = capacity,
                      .fd_buffer_factor = fd_factor});
  if (Status s = sketch.DeserializeCore(reader); !s.ok()) return s;
  return sketch;
}

LmHash::LmHash(size_t dim, WindowSpec window, Options options)
    : LogarithmicMethod<HashSketch>(
          dim, window,
          LogarithmicMethodOptions{
              .block_capacity =
                  ResolveCapacity(options.block_capacity, options.ell),
              .blocks_per_level = options.blocks_per_level},
          [dim, ell = options.ell, seed = options.seed] {
            return HashSketch(dim, ell, seed);
          },
          "LM-HASH"),
      lm_options_(options) {}

LmHash::LmHash(size_t dim, WindowSpec window, Options options,
               const MetricSet& metrics)
    : LogarithmicMethod<HashSketch>(
          dim, window,
          LogarithmicMethodOptions{
              .block_capacity =
                  ResolveCapacity(options.block_capacity, options.ell),
              .blocks_per_level = options.blocks_per_level},
          [dim, ell = options.ell, seed = options.seed] {
            return HashSketch(dim, ell, seed);
          },
          "LM-HASH", metrics),
      lm_options_(options) {}

void LmHash::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, LmHash::kSerialTag, 1);
  writer->Put<uint64_t>(dim());
  window().Serialize(writer);
  writer->Put<uint64_t>(lm_options_.ell);
  writer->Put<uint64_t>(lm_options_.blocks_per_level);
  writer->Put(lm_options_.block_capacity);
  writer->Put<uint64_t>(lm_options_.seed);
  SerializeCore(writer);
}

Result<LmHash> LmHash::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, LmHash::kSerialTag, 1)) {
    return Status::InvalidArgument("bad LmHash header");
  }
  uint64_t dim = 0, ell = 0, b = 0, seed = 0;
  double capacity = 0.0;
  if (!reader->Get(&dim)) return Status::InvalidArgument("corrupt LmHash");
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  if (!reader->Get(&ell) || !reader->Get(&b) || !reader->Get(&capacity) ||
      !reader->Get(&seed) || ell == 0 || b < 2) {
    return Status::InvalidArgument("corrupt LmHash payload");
  }
  LmHash sketch(dim, *window,
                Options{.ell = ell, .blocks_per_level = b,
                        .block_capacity = capacity, .seed = seed});
  if (Status s = sketch.DeserializeCore(reader); !s.ok()) return s;
  return sketch;
}

LmRp::LmRp(size_t dim, WindowSpec window, Options options)
    : LogarithmicMethod<RandomProjection>(
          dim, window,
          LogarithmicMethodOptions{
              .block_capacity =
                  ResolveCapacity(options.block_capacity, options.ell),
              .blocks_per_level = options.blocks_per_level},
          [dim, ell = options.ell, seed = options.seed]() mutable {
            // Each block needs independent signs.
            return RandomProjection(dim, ell,
                                    seed = seed * 6364136223846793005ULL + 1);
          },
          "LM-RP") {}

// Explicit instantiations keep the template's heavy code out of every
// translation unit that includes the header.
template class LogarithmicMethod<FrequentDirections>;
template class LogarithmicMethod<HashSketch>;
template class LogarithmicMethod<RandomProjection>;

}  // namespace swsketch
