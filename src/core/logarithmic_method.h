// Logarithmic Method (Section 6): converts a *mergeable* streaming matrix
// sketch into a sliding-window sketch for both sequence- and time-based
// windows (Algorithms 6.1 / 6.2).
//
// The window is covered by blocks grouped into levels of exponentially
// increasing squared-norm mass: a block at level i holds mass in
// [2^{i-1} C, 2^i C] for block capacity C, each level holds at most b
// blocks, and when a level overflows its two oldest blocks merge one level
// up (sketch merge = the mergeability operation). The active block stores
// raw rows — the paper's fast-update modification (Corollary 6.1) — and
// closes into a level-1 block when its mass exceeds C.
//
// Oversized rows (mass > C) make their block "unmergeable" until it reaches
// a level whose capacity covers it (the Section 6.2 remark); we implement
// the equivalent general rule: a block may merge at level i only if its
// mass fits 2^i C, otherwise it is promoted unmerged.
//
// Query merges the sketches of every block fully inside the window plus
// the raw rows of the active block; the straddling (expiring) block is
// excluded, contributing the epsilon/2 expiry error of Theorem 6.1.
//
// Query serving: the block structure changes only at structural events
// (block close, level merge, expiry, deserialize), tracked by a version
// counter. The merged sketch of the in-window closed blocks is cached and
// keyed on (version, live-block count) — under a fixed structure the live
// set only shrinks as the window slides, so the count pins the set — and
// the final approximation is additionally keyed on the active-block row
// identity. A warm query is therefore an O(ell d) copy instead of an
// O(#blocks) merge chain, bit-identical to the cold path. The cold merge
// itself runs as a deterministic pairwise reduction tree whose pairing
// depends only on the leaf count, so executing tree levels on the shared
// ThreadPool is byte-identical to the serial schedule.
//
// SketchT requirements: constructible via the factory callable,
// Append(span<const double>, uint64_t id), MergeWith(const SketchT&),
// Approximation() -> Matrix, RowsStored().
#ifndef SWSKETCH_CORE_LOGARITHMIC_METHOD_H_
#define SWSKETCH_CORE_LOGARITHMIC_METHOD_H_

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "stream/row.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Parameters shared by all LM instantiations.
struct LogarithmicMethodOptions {
  /// Block capacity C in squared-norm mass: the active block closes when
  /// its mass exceeds this. The paper sets C = ell (the sketch size).
  double block_capacity = 32.0;
  /// Blocks per level (b = Theta(1/epsilon)); levels overflow at b + 1.
  size_t blocks_per_level = 8;
};

/// The Logarithmic Method over a mergeable streaming sketch type.
template <typename SketchT>
class LogarithmicMethod : public SlidingWindowSketch {
 public:
  using SketchFactory = std::function<SketchT()>;

  // Handles into the global registry under this sketch's name slug
  // ("lm_fd.", "lm_hash.", ...). Resolved once at construction; instances
  // with the same name share the same counters. The block-count ledger is
  //   blocks_closed + blocks_loaded
  //     == level_merges + blocks_expired + blocks_discarded + live_blocks
  // (a merge turns two blocks into one, a discard is destruction or
  // overwrite-by-load), which degenerates to the textbook
  // closed - expired == live when nothing merges or reloads.
  //
  // Public so mass constructors (core/factory.h SketchPrototype) can
  // resolve the set once and hand it to every instance of one name: each
  // lookup is a mutex-guarded map probe, and at 100k tenants those probes
  // dominate the cost of constructing an empty sketch.
  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : rows_ingested(scope.counter("rows_ingested")),
          blocks_closed(scope.counter("blocks_closed")),
          level_merges(scope.counter("level_merges")),
          block_promotions(scope.counter("block_promotions")),
          blocks_expired(scope.counter("blocks_expired")),
          blocks_loaded(scope.counter("blocks_loaded")),
          blocks_discarded(scope.counter("blocks_discarded")),
          active_rows_expired(scope.counter("active_rows_expired")),
          queries(scope.counter("queries")),
          query_cache_hits(scope.counter("query_cache_hits")),
          query_cache_misses(scope.counter("query_cache_misses")),
          merge_cache_hits(scope.counter("merge_cache_hits")),
          merge_cache_misses(scope.counter("merge_cache_misses")),
          cold_merges(scope.counter("cold_merges")),
          reloads(scope.counter("reloads")),
          live_blocks(scope.gauge("live_blocks")) {}
    Counter* rows_ingested;
    Counter* blocks_closed;
    Counter* level_merges;
    Counter* block_promotions;
    Counter* blocks_expired;
    Counter* blocks_loaded;
    Counter* blocks_discarded;
    Counter* active_rows_expired;
    Counter* queries;
    Counter* query_cache_hits;
    Counter* query_cache_misses;
    Counter* merge_cache_hits;
    Counter* merge_cache_misses;
    Counter* cold_merges;
    Counter* reloads;
    Gauge* live_blocks;
  };

  LogarithmicMethod(size_t dim, WindowSpec window,
                    LogarithmicMethodOptions options, SketchFactory factory,
                    std::string name)
      : LogarithmicMethod(dim, window, options, std::move(factory), name,
                          MetricSet(MetricScope(MetricScope::Slug(name)))) {}

  /// Mass-construction overload: behaves exactly like the primary
  /// constructor but copies pre-resolved registry handles instead of
  /// looking each one up. Instances of one name share handles anyway, so
  /// resolving the MetricSet once per prototype and stamping it into every
  /// tenant removes the registry mutex from per-tenant construction.
  LogarithmicMethod(size_t dim, WindowSpec window,
                    LogarithmicMethodOptions options, SketchFactory factory,
                    std::string name, const MetricSet& metrics)
      : dim_(dim),
        window_(window),
        options_(options),
        factory_(std::move(factory)),
        name_(std::move(name)),
        metrics_(metrics) {
    SWSKETCH_CHECK_GT(options_.block_capacity, 0.0);
    SWSKETCH_CHECK_GE(options_.blocks_per_level, 2u);
  }

  // Move-only: the destructor settles the live_blocks gauge for whatever
  // this instance still holds, and the defaulted move leaves the source's
  // levels_ empty (vector move-construction guarantee) so each closed
  // block is settled exactly once. Copies would double-settle; they are
  // implicitly deleted by the declared move constructor.
  LogarithmicMethod(LogarithmicMethod&&) = default;

  ~LogarithmicMethod() override {
    const size_t n = NumBlocks();
    if (n != 0) {
      metrics_.blocks_discarded->Add(n);
      metrics_.live_blocks->Add(-static_cast<int64_t>(n));
    }
  }

  void Update(std::span<const double> row, double ts) override {
    SWSKETCH_CHECK_EQ(row.size(), dim_);
    SWSKETCH_CHECK_GE(ts, now_);
    ++mutation_version_;
    now_ = ts;
    Expire(ts);

    const double w = NormSq(row);
    if (w <= 0.0) return;
    metrics_.rows_ingested->Add();

    // Algorithm 6.1 lines 4-6: insert into the active block.
    if (active_.rows.empty()) active_.start = ts;
    active_.rows.push_back(RawRow{
        MakeSharedRow(std::vector<double>(row.begin(), row.end()), ts),
        next_id_++});
    active_.end = ts;
    active_.mass += w;

    // Lines 7-8: close the active block when full.
    if (active_.mass > options_.block_capacity) {
      CloseActiveBlock();
      Cascade();
    }
  }

  /// Replays the serial per-row schedule with the virtual dispatch hoisted
  /// out of the loop (bit-identical). LM cannot defer more than that: the
  /// active block's mass is a running float sum (adds on arrival, subtracts
  /// on expiry) and block-close triggers compare it against the capacity,
  /// so any reordering of the per-row add/expire interleaving could move a
  /// close boundary and change the whole level structure downstream.
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override {
    SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
    for (size_t i = 0; i < rows.rows(); ++i) {
      LogarithmicMethod::Update(rows.Row(i), ts[i]);
    }
  }

  void AdvanceTo(double now) override {
    SWSKETCH_CHECK_GE(now, now_);
    ++mutation_version_;
    now_ = now;
    Expire(now);
  }

  Matrix Query() override {
    metrics_.queries->Add();
    Expire(now_);
    const double start = window_.Start(now_);
    // Live closed blocks in merge order (highest level first, oldest block
    // first within a level). The straddling block (start < window start
    // <= end) is excluded (Algorithm 6.2).
    live_scratch_.clear();
    for (auto level = levels_.rbegin(); level != levels_.rend(); ++level) {
      for (const Block& blk : *level) {
        if (blk.start >= start) live_scratch_.push_back(&blk);
      }
    }
    // Empty window: report an empty approximation rather than a
    // fixed-shape zero sketch (hashing blocks have static shape). Counted
    // as a cache miss so hits + misses == queries stays exact.
    if (live_scratch_.empty() && active_.rows.empty()) {
      metrics_.query_cache_misses->Add();
      return Matrix(0, dim_);
    }

    // Final-result cache: nothing changed since the last query (same
    // structure, same live set, same active rows) — return the copy.
    if (result_valid_ && result_version_ == structure_version_ &&
        result_live_count_ == live_scratch_.size() &&
        result_next_id_ == next_id_ &&
        result_active_rows_ == active_.rows.size()) {
      metrics_.query_cache_hits->Add();
      return cached_result_;
    }
    metrics_.query_cache_misses->Add();

    // Merged-blocks cache: under a fixed structure version the live set
    // only shrinks as the window slides, so (version, count) pins it.
    if (!cached_blocks_ || blocks_version_ != structure_version_ ||
        blocks_live_count_ != live_scratch_.size()) {
      metrics_.merge_cache_misses->Add();
      cached_blocks_.emplace(MergeLiveBlocks());
      blocks_version_ = structure_version_;
      blocks_live_count_ = live_scratch_.size();
    } else {
      metrics_.merge_cache_hits->Add();
    }

    // Warm path: copy the merged closed blocks and replay the active rows
    // — exactly the computation the cold path performs after its merge, so
    // the result is byte-identical to an uncached query.
    SketchT acc = *cached_blocks_;
    for (const RawRow& rr : active_.rows) {
      acc.Append(rr.row->view(), rr.id);
    }
    cached_result_ = acc.Approximation();
    result_valid_ = true;
    result_version_ = structure_version_;
    result_live_count_ = live_scratch_.size();
    result_next_id_ = next_id_;
    result_active_rows_ = active_.rows.size();
    return cached_result_;
  }

  /// Drops the cached merged blocks and cached result so the next Query()
  /// takes the cold path (bench/test hook; behaviour is unchanged).
  void InvalidateQueryCache() {
    cached_blocks_.reset();
    result_valid_ = false;
    cached_result_ = Matrix(0, dim_);
  }

  /// Structure version: bumped whenever a block closes, merges up a level,
  /// expires, or the state is reloaded. Queries between equal versions hit
  /// the merge cache (test hook).
  uint64_t structure_version() const { return structure_version_; }

  /// Unlike structure_version(), this also moves on active-block appends
  /// and window advances (both feed Query directly), so wrappers can key
  /// result caches on it.
  uint64_t StateVersion() const override { return mutation_version_; }

  size_t RowsStored() const override {
    size_t n = active_.rows.size();
    for (const auto& level : levels_) {
      for (const Block& blk : level) n += blk.sketch.RowsStored();
    }
    return n;
  }

  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }
  const WindowSpec& window() const override { return window_; }

  /// Number of levels currently in the structure (L in the paper).
  size_t NumLevels() const { return levels_.size(); }

  /// Total number of closed blocks.
  size_t NumBlocks() const {
    size_t n = 0;
    for (const auto& level : levels_) n += level.size();
    return n;
  }

  /// Serializes the framework state (blocks, active rows, counters); the
  /// concrete subclass serializes its own configuration first so that
  /// Deserialize can reconstruct the object before loading state.
  void SerializeCore(ByteWriter* writer) const {
    writer->Put(now_);
    writer->Put<uint64_t>(next_id_);
    writer->Put(active_.start);
    writer->Put(active_.end);
    writer->Put(active_.mass);
    writer->Put<uint64_t>(active_.rows.size());
    for (const RawRow& rr : active_.rows) {
      writer->Put(rr.row->ts);
      writer->Put<uint64_t>(rr.id);
      writer->PutVector(rr.row->values);
    }
    writer->Put<uint64_t>(levels_.size());
    for (const auto& level : levels_) {
      writer->Put<uint64_t>(level.size());
      for (const Block& blk : level) {
        writer->Put(blk.start);
        writer->Put(blk.end);
        writer->Put(blk.mass);
        blk.sketch.Serialize(writer);
      }
    }
  }

  /// Loads the framework state into a freshly-constructed object whose
  /// configuration already matches the serialized one.
  Status DeserializeCore(ByteReader* reader) {
    // Blocks held before the load are overwritten: settle them in the
    // ledger as discarded so the live_blocks gauge stays exact.
    const size_t overwritten = NumBlocks();
    if (overwritten != 0) {
      metrics_.blocks_discarded->Add(overwritten);
      metrics_.live_blocks->Add(-static_cast<int64_t>(overwritten));
    }
    uint64_t raw_rows = 0, num_levels = 0;
    if (!reader->Get(&now_) || !reader->Get(&next_id_) ||
        !reader->Get(&active_.start) || !reader->Get(&active_.end) ||
        !reader->Get(&active_.mass) || !reader->Get(&raw_rows)) {
      return Status::InvalidArgument("corrupt LM payload");
    }
    active_.rows.clear();
    for (uint64_t i = 0; i < raw_rows; ++i) {
      double ts = 0.0;
      uint64_t id = 0;
      std::vector<double> values;
      if (!reader->Get(&ts) || !reader->Get(&id) ||
          !reader->GetVector(&values) || values.size() != dim_) {
        return Status::InvalidArgument("corrupt LM payload");
      }
      active_.rows.push_back(RawRow{MakeSharedRow(std::move(values), ts), id});
    }
    if (!reader->Get(&num_levels)) {
      return Status::InvalidArgument("corrupt LM payload");
    }
    levels_.clear();
    levels_.resize(num_levels);
    for (auto& level : levels_) {
      uint64_t blocks = 0;
      if (!reader->Get(&blocks)) {
        return Status::InvalidArgument("corrupt LM payload");
      }
      for (uint64_t i = 0; i < blocks; ++i) {
        double start = 0.0, end = 0.0, mass = 0.0;
        if (!reader->Get(&start) || !reader->Get(&end) ||
            !reader->Get(&mass)) {
          return Status::InvalidArgument("corrupt LM payload");
        }
        auto sketch = SketchT::Deserialize(reader);
        if (!sketch.ok()) return sketch.status();
        level.push_back(Block{sketch.take(), start, end, mass});
      }
    }
    // Cache state is never serialized: a reloaded sketch starts cold with
    // a fresh structure version.
    ++structure_version_;
    ++mutation_version_;
    InvalidateQueryCache();
    metrics_.reloads->Add();
    const size_t loaded = NumBlocks();
    if (loaded != 0) {
      metrics_.blocks_loaded->Add(loaded);
      metrics_.live_blocks->Add(loaded);
    }
    return Status::OK();
  }

  /// Validates the structural invariants (test hook): per-level block
  /// counts, time ordering, and mass lower bounds.
  void CheckInvariants() const {
    double prev_end = -1e300;
    for (size_t li = levels_.size(); li-- > 0;) {
      const auto& level = levels_[li];
      SWSKETCH_CHECK_LE(level.size(), options_.blocks_per_level);
      for (const Block& blk : level) {
        SWSKETCH_CHECK_GE(blk.start, prev_end);
        prev_end = blk.end;
        SWSKETCH_CHECK_GT(blk.mass, 0.0);
      }
    }
    for (const RawRow& rr : active_.rows) {
      SWSKETCH_CHECK_GE(rr.row->ts, prev_end);
      prev_end = rr.row->ts;
    }
  }

 private:
  struct RawRow {
    SharedRow row;
    uint64_t id;
  };

  struct ActiveBlock {
    std::deque<RawRow> rows;  // Raw rows can expire from the front.
    double start = 0.0;
    double end = 0.0;
    double mass = 0.0;
  };

  struct Block {
    SketchT sketch;
    double start;
    double end;
    double mass;
  };

  // Capacity of level index `li` (level li+1 in paper numbering): 2^li * C.
  double LevelCapacity(size_t li) const {
    return std::ldexp(options_.block_capacity, static_cast<int>(li));
  }

  void CloseActiveBlock() {
    Block blk{factory_(), active_.start, active_.end, active_.mass};
    for (const RawRow& rr : active_.rows) {
      blk.sketch.Append(rr.row->view(), rr.id);
    }
    if (levels_.empty()) levels_.emplace_back();
    levels_[0].push_back(std::move(blk));
    active_ = ActiveBlock{};
    ++structure_version_;
    metrics_.blocks_closed->Add();
    metrics_.live_blocks->Add(1);
  }

  // Algorithm 6.1 lines 9-13 with the generalized mergeability rule.
  void Cascade() {
    for (size_t li = 0; li < levels_.size(); ++li) {
      while (levels_[li].size() > options_.blocks_per_level) {
        Block oldest = std::move(levels_[li].front());
        levels_[li].pop_front();
        if (li + 1 >= levels_.size()) levels_.emplace_back();
        auto& up = levels_[li + 1];
        const double cap = LevelCapacity(li);
        Block& second = levels_[li].front();
        if (oldest.mass <= cap && second.mass <= cap) {
          // Merge the two oldest blocks one level up.
          oldest.sketch.MergeWith(second.sketch);
          oldest.end = second.end;
          oldest.mass += second.mass;
          levels_[li].pop_front();
          metrics_.level_merges->Add();
          metrics_.live_blocks->Add(-1);
        } else {
          // Promote `oldest` unmerged (oversized-row rule).
          metrics_.block_promotions->Add();
        }
        up.push_back(std::move(oldest));
        ++structure_version_;
      }
    }
  }

  // Deterministic pairwise reduction of the live blocks collected in
  // live_scratch_. The pairing depends only on the leaf count, and every
  // pair merge at a tree level is independent, so running a level's merges
  // on the thread pool produces bytes identical to the serial schedule.
  // FD accumulators detach from the shared shrink arena first: the arena
  // contents never influence results, but concurrent pair merges must not
  // share one workspace.
  SketchT MergeLiveBlocks() {
    metrics_.cold_merges->Add();
    const size_t m = live_scratch_.size();
    if (m == 0) return factory_();
    std::vector<std::optional<SketchT>> nodes((m + 1) / 2);
    ParallelFor(
        nodes.size(),
        [&](size_t p) {
          SketchT acc = live_scratch_[2 * p]->sketch;
          DetachScratch(&acc);
          if (2 * p + 1 < m) acc.MergeWith(live_scratch_[2 * p + 1]->sketch);
          nodes[p].emplace(std::move(acc));
        },
        {.grain = 1});
    size_t width = nodes.size();
    while (width > 1) {
      const size_t next = (width + 1) / 2;
      ParallelFor(
          next,
          [&](size_t p) {
            if (2 * p + 1 < width) {
              nodes[2 * p]->MergeWith(*nodes[2 * p + 1]);
            }
          },
          {.grain = 1});
      // Compact serially: tasks above read nodes[2p + 1], which is exactly
      // the slot a concurrent compaction of pair p' = 2p + 1 would move.
      for (size_t p = 1; p < next; ++p) nodes[p] = std::move(nodes[2 * p]);
      width = next;
    }
    return std::move(*nodes[0]);
  }

  static void DetachScratch(SketchT* sketch) {
    if constexpr (std::is_same_v<SketchT, FrequentDirections>) {
      sketch->ShareShrinkScratch(FrequentDirections::MakeShrinkScratch());
    }
  }

  void Expire(double now) {
    const double start = window_.Start(now);
    // Fully expired blocks sit at the old end: the front of the highest
    // levels. Walk from the top level down.
    while (!levels_.empty()) {
      auto& top = levels_.back();
      while (!top.empty() && top.front().end < start) {
        top.pop_front();
        ++structure_version_;
        metrics_.blocks_expired->Add();
        metrics_.live_blocks->Add(-1);
      }
      if (top.empty()) {
        levels_.pop_back();
        continue;
      }
      break;
    }
    // Lower levels can only contain newer blocks, but guard against the
    // rare case where promotion left an expired block below the top.
    for (auto& level : levels_) {
      while (!level.empty() && level.front().end < start) {
        level.pop_front();
        ++structure_version_;
        metrics_.blocks_expired->Add();
        metrics_.live_blocks->Add(-1);
      }
    }
    // Raw rows of the active block expire individually (a time window can
    // outlive a slow-filling active block).
    while (!active_.rows.empty() && active_.rows.front().row->ts < start) {
      active_.mass -= active_.rows.front().row->NormSq();
      active_.rows.pop_front();
      metrics_.active_rows_expired->Add();
    }
    if (active_.rows.empty()) {
      active_.mass = 0.0;
    } else {
      active_.start = active_.rows.front().row->ts;
    }
  }

  size_t dim_;
  WindowSpec window_;
  LogarithmicMethodOptions options_;
  SketchFactory factory_;
  std::string name_;
  MetricSet metrics_;  // Initialized after name_ (declaration order).

  // levels_[0] = level 1 (newest blocks); back = level L (oldest).
  // Within a level: front = oldest block.
  std::vector<std::deque<Block>> levels_;
  ActiveBlock active_;
  uint64_t next_id_ = 0;
  double now_ = 0.0;

  // Query-cache state (never serialized; see DESIGN.md "Query path").
  uint64_t structure_version_ = 0;
  uint64_t mutation_version_ = 0;  // Every Update/AdvanceTo/reload.
  std::vector<const Block*> live_scratch_;  // Rebuilt by every Query().
  std::optional<SketchT> cached_blocks_;    // Merged live closed blocks.
  uint64_t blocks_version_ = 0;
  size_t blocks_live_count_ = 0;
  Matrix cached_result_{0, 0};  // Guarded by result_valid_.
  bool result_valid_ = false;
  uint64_t result_version_ = 0;
  size_t result_live_count_ = 0;
  uint64_t result_next_id_ = 0;
  size_t result_active_rows_ = 0;
};

/// LM-FD: the paper's recommended general-purpose sliding-window sketch
/// (Corollary 6.1).
class LmFd : public LogarithmicMethod<FrequentDirections> {
 public:
  struct Options {
    /// FD sketch rows per block (and of the final approximation).
    size_t ell = 32;
    /// Blocks per level, b ~ 1/epsilon.
    size_t blocks_per_level = 8;
    /// Block capacity in squared-norm mass; 0 means the paper's default
    /// C = ell (so a level-1 block holds about ell unit-norm rows).
    double block_capacity = 0.0;
    /// Amortized-shrink buffer factor of every per-block FD sketch
    /// (FrequentDirections::Options::buffer_factor). Must be >= 1.
    double fd_buffer_factor = 1.0;
  };

  LmFd(size_t dim, WindowSpec window, Options options);

  /// Cheap-construction path (core/factory.h SketchPrototype): shares
  /// pre-resolved metric handles and a caller-owned shrink workspace
  /// instead of resolving/allocating its own per instance. A null
  /// `scratch` falls back to a private workspace. Bit-identical behaviour
  /// to the primary constructor (the workspace never influences results).
  LmFd(size_t dim, WindowSpec window, Options options,
       const MetricSet& metrics, std::shared_ptr<FdShrinkScratch> scratch);

  /// Checkpoint/resume of the full sliding-window state.
  static constexpr uint32_t kSerialTag = 0x4C4D4601;
  void Serialize(ByteWriter* writer) const;
  static Result<LmFd> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 private:
  Options lm_options_;
};

/// LM-HASH (Appendix A): feature hashing blocks merged by addition.
class LmHash : public LogarithmicMethod<HashSketch> {
 public:
  struct Options {
    size_t ell = 64;          // Hash buckets per block.
    size_t blocks_per_level = 8;
    double block_capacity = 0.0;  // 0 => ell.
    uint64_t seed = 1;        // Shared hash seed (mergeability).
  };

  LmHash(size_t dim, WindowSpec window, Options options);

  /// Cheap-construction path (core/factory.h SketchPrototype): shares
  /// pre-resolved metric handles instead of resolving its own.
  LmHash(size_t dim, WindowSpec window, Options options,
         const MetricSet& metrics);

  /// Checkpoint/resume of the full sliding-window state.
  static constexpr uint32_t kSerialTag = 0x4C4D4801;
  void Serialize(ByteWriter* writer) const;
  static Result<LmHash> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 private:
  Options lm_options_;
};

/// LM-RP: random projection blocks, merged by addition (every block draws
/// independent signs, so the sum is itself a projection of the stacked
/// input). Not in the paper's evaluation; included for completeness of the
/// mergeable family.
class LmRp : public LogarithmicMethod<RandomProjection> {
 public:
  struct Options {
    size_t ell = 64;              // Projection rows per block.
    size_t blocks_per_level = 8;
    double block_capacity = 0.0;  // 0 => ell.
    uint64_t seed = 1;
  };

  LmRp(size_t dim, WindowSpec window, Options options);
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_LOGARITHMIC_METHOD_H_
