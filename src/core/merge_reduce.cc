#include "core/merge_reduce.h"

#include <utility>

#include "sketch/frequent_directions.h"
#include "util/logging.h"

namespace swsketch {

QueryReduceSpec ReduceSpecFor(const std::string& algorithm, size_t ell) {
  if (algorithm == "lm-fd" || algorithm == "ds-fd" ||
      algorithm == "amm-co-fd" || algorithm == "amm-lm-fd") {
    // AMM wrappers expose Query() as the stacked [A | B] approximation, so
    // FD-merging shard outputs at the stacked dimension preserves the
    // co-sketch product bound exactly like the covariance bound.
    return {QueryReduceKind::kFdMerge, ell};
  }
  if (algorithm == "di-fd" || algorithm == "amm-di-fd") {
    return {QueryReduceKind::kFdMerge, 2 * ell};
  }
  if (algorithm == "lm-hash" || algorithm == "lm-rp") {
    return {QueryReduceKind::kSum, 0};
  }
  return {QueryReduceKind::kStack, 0};
}

Matrix CombineQueryPair(const QueryReduceSpec& spec, size_t dim,
                        const Matrix& a, const Matrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  SWSKETCH_CHECK_EQ(a.cols(), dim);
  SWSKETCH_CHECK_EQ(b.cols(), dim);
  switch (spec.kind) {
    case QueryReduceKind::kStack:
      return a.VStack(b);
    case QueryReduceKind::kSum: {
      SWSKETCH_CHECK_EQ(a.rows(), b.rows());
      Matrix out = a;
      auto data = out.Data();
      const auto other = b.Data();
      for (size_t i = 0; i < data.size(); ++i) data[i] += other[i];
      return out;
    }
    case QueryReduceKind::kFdMerge: {
      SWSKETCH_CHECK_GE(spec.reduce_ell, 2u);
      FrequentDirections fd(
          dim, FrequentDirections::Options{.ell = spec.reduce_ell});
      fd.AppendMatrix(a);
      fd.AppendMatrix(b);
      return fd.Approximation();
    }
  }
  SWSKETCH_CHECK(false);
  return Matrix(0, dim);
}

Matrix TreeReduceQueries(const QueryReduceSpec& spec, size_t dim,
                         std::vector<Matrix> parts, ThreadPool* pool) {
  const size_t m = parts.size();
  if (m == 0) return Matrix(0, dim);
  if (m == 1) return std::move(parts[0]);
  const ParallelForOptions opts{.grain = 1, .pool = pool};
  std::vector<Matrix> nodes((m + 1) / 2, Matrix(0, dim));
  ParallelFor(
      nodes.size(),
      [&](size_t p) {
        nodes[p] = 2 * p + 1 < m
                       ? CombineQueryPair(spec, dim, parts[2 * p],
                                          parts[2 * p + 1])
                       : std::move(parts[2 * p]);
      },
      opts);
  size_t width = nodes.size();
  while (width > 1) {
    const size_t next = (width + 1) / 2;
    ParallelFor(
        next,
        [&](size_t p) {
          if (2 * p + 1 < width) {
            nodes[2 * p] =
                CombineQueryPair(spec, dim, nodes[2 * p], nodes[2 * p + 1]);
          }
        },
        opts);
    // Compact serially: tasks above read nodes[2p + 1], which is exactly
    // the slot a concurrent compaction of pair p' = 2p + 1 would move.
    for (size_t p = 1; p < next; ++p) nodes[p] = std::move(nodes[2 * p]);
    width = next;
  }
  return std::move(nodes[0]);
}

}  // namespace swsketch
