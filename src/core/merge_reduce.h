// Backend-aware reduction of per-shard window approximations into one
// approximation of the union window. This is the query half of sharded
// ingest (DESIGN.md section 8): each shard answers Query() for its
// sub-stream, and the paper's composition properties say how to combine
// the answers —
//
//  - kStack: decomposability (Lemma 7.1). Stacking [B_1; ...; B_S]
//    preserves every per-shard guarantee additively; the output grows to
//    sum_i rows(B_i). Correct for every backend, used where no tighter
//    combiner exists (DI covers, samplers, exact buffers).
//  - kSum: linear sketches of fixed shape (LM-HASH buckets, LM-RP
//    projections). Per-shard seeds are independent, so the cross terms of
//    the summed sketch vanish in expectation and the output keeps the
//    single-sketch shape.
//  - kFdMerge: FD mergeability (Section 6.1). Feeding both operands
//    through one FD at reduce_ell rows sheds at most the sum of the
//    operands' shed mass, so the merged bound telescopes up the tree.
//
// Determinism: CombineQueryPair is a pure function of its operands, and
// TreeReduceQueries pairs nodes by index exactly like the PR 4 LM merge
// tree (pairing depends only on the leaf count, never on scheduling), so
// pool execution is byte-identical to a serial left-to-right evaluation of
// the same tree.
#ifndef SWSKETCH_CORE_MERGE_REDUCE_H_
#define SWSKETCH_CORE_MERGE_REDUCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/parallel.h"

namespace swsketch {

enum class QueryReduceKind : uint8_t {
  kStack = 0,
  kSum = 1,
  kFdMerge = 2,
};

struct QueryReduceSpec {
  QueryReduceKind kind = QueryReduceKind::kStack;
  /// kFdMerge only: rows the reduced sketch keeps (per-node FD size).
  size_t reduce_ell = 0;
};

/// The reduction for a factory algorithm name (`ell` = SketchConfig::ell):
/// lm-fd / di-fd -> kFdMerge at ell / 2*ell rows (a DI cover carries up to
/// ~2*ell rows, so halving it at the reduce would discard accuracy the
/// shards paid for); lm-hash / lm-rp -> kSum; everything else -> kStack.
/// FD-backed AMM wrappers (amm-co-fd / amm-lm-fd / amm-di-fd) follow their
/// underlying backend — their Query() is the stacked [A | B] approximation,
/// which FD-merges at the stacked dimension like any covariance sketch.
QueryReduceSpec ReduceSpecFor(const std::string& algorithm, size_t ell);

/// Combines the approximations of two disjoint sub-streams. Either operand
/// may be empty (0 rows, the empty-window convention), in which case the
/// other is returned unchanged.
Matrix CombineQueryPair(const QueryReduceSpec& spec, size_t dim,
                        const Matrix& a, const Matrix& b);

/// Deterministic pairwise reduction tree over per-shard approximations in
/// shard order: level 0 combines (parts[2p], parts[2p+1]) into node p, and
/// so on up. Inner nodes run concurrently on `pool` (nullptr = shared
/// pool) but each writes only its own slot, so the result is byte-identical
/// to serial evaluation. Returns Matrix(0, dim) for no parts.
Matrix TreeReduceQueries(const QueryReduceSpec& spec, size_t dim,
                         std::vector<Matrix> parts, ThreadPool* pool);

}  // namespace swsketch

#endif  // SWSKETCH_CORE_MERGE_REDUCE_H_
