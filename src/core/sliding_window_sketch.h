// Interface for sliding-window matrix sketches: the paper's problem
// statement (Section 1). A sketch continuously consumes timestamped rows
// and can at any moment produce an approximation B for the matrix A_W of
// the rows currently in the window.
#ifndef SWSKETCH_CORE_SLIDING_WINDOW_SKETCH_H_
#define SWSKETCH_CORE_SLIDING_WINDOW_SKETCH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "stream/window.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Continuously queryable sliding-window matrix sketch.
class SlidingWindowSketch {
 public:
  virtual ~SlidingWindowSketch() = default;

  /// Consumes a row arriving at time `ts` (sequence windows: arrival
  /// index). Timestamps must be non-decreasing.
  virtual void Update(std::span<const double> row, double ts) = 0;

  /// Sparse-row variant. The default densifies and calls Update;
  /// frameworks whose update fans a row into many block sketches (DI)
  /// override it with an O(nnz)-per-sketch fast path.
  virtual void UpdateSparse(const SparseVector& row, double ts) {
    const std::vector<double> dense = row.ToDense();
    Update(dense, ts);
  }

  /// Batched variant: consumes rows.rows() rows in one call; ts[i] is the
  /// timestamp of rows.Row(i) and must be non-decreasing (continuing from
  /// any previous Update). Window semantics are identical to feeding the
  /// rows one at a time; backends override the default row loop with block
  /// fast paths. Deterministic backends produce bit-identical state to the
  /// serial path unless their override documents otherwise; randomized
  /// backends draw the same randomness per row but may accumulate in a
  /// different floating-point order.
  virtual void UpdateBatch(const Matrix& rows, std::span<const double> ts) {
    SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
    for (size_t i = 0; i < rows.rows(); ++i) Update(rows.Row(i), ts[i]);
  }

  /// Moves the window forward to `now` without an arrival (time-based
  /// windows slide between arrivals). Default: remembers `now` for Query.
  virtual void AdvanceTo(double now) = 0;

  /// Approximation B for the current window. May expire internal state
  /// (hence non-const).
  virtual Matrix Query() = 0;

  /// Completes any deferred or asynchronous ingest: after Flush() returns,
  /// Query() and RowsStored() observe every row already passed to Update /
  /// UpdateBatch. Synchronous sketches are trivially flushed (default
  /// no-op); the sharded ingest wrapper overrides this to drain its writer
  /// queues.
  virtual void Flush() {}

  /// Monotone version of the queryable state: advances whenever a mutation
  /// (row ingest, window advance, deserialization) may change what Query()
  /// returns, and holds steady while the sketch is quiescent. Wrappers key
  /// result caches on it. 0 means "not tracked" — callers must then assume
  /// every query is cold.
  virtual uint64_t StateVersion() const { return 0; }

  /// Rows currently materialized by the sketch: the paper's "sketch size".
  virtual size_t RowsStored() const = 0;

  /// Row dimensionality d.
  virtual size_t dim() const = 0;

  virtual std::string name() const = 0;

  /// The window this sketch maintains.
  virtual const WindowSpec& window() const = 0;

  /// Checkpoints the full sketch state; Unimplemented for algorithms
  /// without serialization support. Reload with
  /// DeserializeSlidingWindowSketch (factory.h), which dispatches on the
  /// serialized tag.
  virtual Status SerializeTo(ByteWriter*) const {
    return Status::Unimplemented(name() + " does not support serialization");
  }
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_SLIDING_WINDOW_SKETCH_H_
