#include "core/swor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sketch/priority_sampler.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

namespace {

// Handles per query mode ("swor." / "swor_all.", matching the name()
// slug), resolved once per process.
struct SworMetrics {
  Counter* rows_ingested;
  Counter* priority_draws;
  Counter* replacements;
  Counter* front_expiries;
  Counter* queries;

  explicit SworMetrics(const std::string& prefix) {
    MetricScope scope(prefix);
    rows_ingested = scope.counter("rows_ingested");
    priority_draws = scope.counter("priority_draws");
    replacements = scope.counter("replacements");
    front_expiries = scope.counter("front_expiries");
    queries = scope.counter("queries");
  }

  static const SworMetrics& Get(bool all_mode) {
    static const SworMetrics top("swor");
    static const SworMetrics all("swor_all");
    return all_mode ? all : top;
  }
};

}  // namespace

SworSketch::SworSketch(size_t dim, WindowSpec window, Options options)
    : dim_(dim),
      window_(window),
      options_(options),
      rng_(options.seed),
      frobenius_(options.exact_frobenius
                     ? FrobeniusTracker::Mode::kExact
                     : FrobeniusTracker::Mode::kExponentialHistogram,
                 options.frobenius_eps) {
  SWSKETCH_CHECK_GT(options_.ell, 0u);
}

void SworSketch::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  SWSKETCH_CHECK_GE(ts, now_);
  now_ = ts;
  Expire(ts);

  const double w = NormSq(row);
  if (w <= 0.0) return;
  frobenius_.Add(w, ts);

  const SworMetrics& metrics =
      SworMetrics::Get(options_.query_mode == QueryMode::kAll);
  metrics.rows_ingested->Add();
  metrics.priority_draws->Add();
  const double lp = LogPriority(&rng_, w);
  // Algorithm 5.2 lines 4-8: bump the rank of every dominated candidate
  // and evict those pushed past ell. Compaction is done in one pass.
  const size_t before = queue_.size();
  size_t write = 0;
  for (size_t read = 0; read < queue_.size(); ++read) {
    Candidate& c = queue_[read];
    if (lp > c.log_priority) ++c.rank;
    if (c.rank > options_.ell) continue;  // Dropped.
    if (write != read) queue_[write] = std::move(c);
    ++write;
  }
  if (before != write) metrics.replacements->Add(before - write);
  queue_.resize(write);
  queue_.push_back(Candidate{
      MakeSharedRow(std::vector<double>(row.begin(), row.end()), ts), lp, 1});
}

void SworSketch::UpdateBatch(const Matrix& rows, std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() == 0) return;
  SWSKETCH_CHECK_EQ(rows.cols(), dim_);
  for (size_t r = 0; r < rows.rows(); ++r) {
    const auto row = rows.Row(r);
    SWSKETCH_CHECK_GE(ts[r], now_);
    now_ = ts[r];
    frobenius_.EvictBefore(window_.Start(ts[r]));

    const double w = NormSq(row);
    if (w <= 0.0) continue;
    frobenius_.Add(w, ts[r]);

    const SworMetrics& metrics =
        SworMetrics::Get(options_.query_mode == QueryMode::kAll);
    metrics.rows_ingested->Add();
    metrics.priority_draws->Add();
    const double lp = LogPriority(&rng_, w);
    const size_t before = queue_.size();
    size_t write = 0;
    for (size_t read = 0; read < queue_.size(); ++read) {
      Candidate& c = queue_[read];
      if (lp > c.log_priority) ++c.rank;
      if (c.rank > options_.ell) continue;
      if (write != read) queue_[write] = std::move(c);
      ++write;
    }
    if (before != write) metrics.replacements->Add(before - write);
    queue_.resize(write);
    queue_.push_back(Candidate{
        MakeSharedRow(std::vector<double>(row.begin(), row.end()), ts[r]), lp,
        1});
  }
  Expire(now_);
}

void SworSketch::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  now_ = now;
  Expire(now);
}

void SworSketch::Expire(double now) {
  const double start = window_.Start(now);
  uint64_t expired = 0;
  while (!queue_.empty() && queue_.front().row->ts < start) {
    queue_.pop_front();
    ++expired;
  }
  if (expired != 0) {
    SworMetrics::Get(options_.query_mode == QueryMode::kAll)
        .front_expiries->Add(expired);
  }
  frobenius_.EvictBefore(start);
}

Matrix SworSketch::Query() {
  SworMetrics::Get(options_.query_mode == QueryMode::kAll).queries->Add();
  Expire(now_);
  const double start = window_.Start(now_);
  const double frob_sq = frobenius_.Estimate(start);
  Matrix b(0, dim_);
  if (frob_sq <= 0.0 || queue_.empty()) return b;

  std::vector<const Candidate*> selected;
  selected.reserve(queue_.size());
  for (const auto& c : queue_) selected.push_back(&c);

  if (options_.query_mode == QueryMode::kTopEll &&
      selected.size() > options_.ell) {
    std::nth_element(selected.begin(), selected.begin() + options_.ell - 1,
                     selected.end(), [](const Candidate* a, const Candidate* b) {
                       return a->log_priority > b->log_priority;
                     });
    selected.resize(options_.ell);
  }

  if (options_.query_mode == QueryMode::kTopEll) {
    // Per-row rescaling by ||A||_F / (sqrt(ell) ||a_j||) — the paper's
    // Section 5.1 query (responsible for the Figure 6 skew behavior).
    const double frob = std::sqrt(frob_sq);
    const double k = static_cast<double>(selected.size());
    for (const Candidate* c : selected) {
      b.AppendRowScaled(c->row->view(),
                        frob / std::sqrt(k * c->row->NormSq()));
    }
    return b;
  }

  // SWOR-ALL: all candidates with the common factor
  // ||A||_F / sqrt(sum of candidate squared norms) (Section 3 scheme).
  double sampled_mass = 0.0;
  for (const Candidate* c : selected) sampled_mass += c->row->NormSq();
  if (sampled_mass <= 0.0) return b;
  const double scale = std::sqrt(frob_sq / sampled_mass);
  for (const Candidate* c : selected) {
    b.AppendRowScaled(c->row->view(), scale);
  }
  return b;
}

void SworSketch::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, SworSketch::kSerialTag, 1);
  writer->Put<uint64_t>(dim_);
  window_.Serialize(writer);
  writer->Put<uint64_t>(options_.ell);
  writer->Put<uint8_t>(options_.query_mode == QueryMode::kAll ? 1 : 0);
  writer->Put(options_.frobenius_eps);
  writer->Put<uint8_t>(options_.exact_frobenius ? 1 : 0);
  writer->Put<uint64_t>(options_.seed);
  rng_.Serialize(writer);
  writer->Put(now_);
  frobenius_.Serialize(writer);
  writer->Put<uint64_t>(queue_.size());
  for (const auto& c : queue_) {
    writer->Put(c.log_priority);
    writer->Put<uint64_t>(c.rank);
    writer->Put(c.row->ts);
    writer->PutVector(c.row->values);
  }
}

Result<SworSketch> SworSketch::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, SworSketch::kSerialTag, 1)) {
    return Status::InvalidArgument("bad SworSketch header");
  }
  uint64_t dim = 0;
  if (!reader->Get(&dim)) {
    return Status::InvalidArgument("corrupt SworSketch payload");
  }
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  Options options;
  uint64_t ell = 0, seed = 0;
  uint8_t all = 0, exact = 0;
  if (!reader->Get(&ell) || !reader->Get(&all) ||
      !reader->Get(&options.frobenius_eps) || !reader->Get(&exact) ||
      !reader->Get(&seed) || ell == 0) {
    return Status::InvalidArgument("corrupt SworSketch payload");
  }
  options.ell = ell;
  options.query_mode = all ? QueryMode::kAll : QueryMode::kTopEll;
  options.exact_frobenius = exact != 0;
  options.seed = seed;
  SworSketch sketch(dim, *window, options);
  uint64_t n = 0;
  if (!sketch.rng_.Deserialize(reader) || !reader->Get(&sketch.now_) ||
      !sketch.frobenius_.Deserialize(reader) || !reader->Get(&n)) {
    return Status::InvalidArgument("corrupt SworSketch payload");
  }
  for (uint64_t i = 0; i < n; ++i) {
    Candidate c;
    uint64_t rank = 0;
    double ts = 0.0;
    std::vector<double> values;
    if (!reader->Get(&c.log_priority) || !reader->Get(&rank) ||
        !reader->Get(&ts) || !reader->GetVector(&values) ||
        values.size() != dim || rank == 0 || rank > ell) {
      return Status::InvalidArgument("corrupt SworSketch payload");
    }
    c.rank = rank;
    c.row = MakeSharedRow(std::move(values), ts);
    sketch.queue_.push_back(std::move(c));
  }
  return sketch;
}

}  // namespace swsketch
