// SWOR: sliding-window row sampling WITHOUT replacement (Algorithm 5.2),
// plus the SWOR-ALL variant evaluated in Section 8.
//
// A single candidate queue stores (row, log-priority, rank), where rank is
// the row's priority rank within [t_j, now]. A row can only enter the
// window top-ell if it is top-ell in every suffix starting at its own
// arrival, so candidates with rank > ell are discarded. Query extracts the
// top-ell candidates by priority (SWOR) or uses every candidate (SWOR-ALL)
// and rescales by ||A||_F / sqrt(sum of selected squared norms).
#ifndef SWSKETCH_CORE_SWOR_H_
#define SWSKETCH_CORE_SWOR_H_

#include <cstdint>
#include <deque>
#include <string>

#include "core/frobenius_tracker.h"
#include "core/sliding_window_sketch.h"
#include "stream/row.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Sampling-without-replacement sliding-window sketch (sequence and time
/// windows).
class SworSketch : public SlidingWindowSketch {
 public:
  enum class QueryMode {
    kTopEll,  // SWOR: the ell window samples.
    kAll,     // SWOR-ALL: every candidate row.
  };

  struct Options {
    size_t ell = 64;
    QueryMode query_mode = QueryMode::kTopEll;
    double frobenius_eps = 0.05;
    bool exact_frobenius = false;
    uint64_t seed = 1;
  };

  SworSketch(size_t dim, WindowSpec window, Options options);

  void Update(std::span<const double> row, double ts) override;

  /// Bit-identical to the serial loop. Priority draws and EH evictions stay
  /// per-row; only the queue-front expiry scan is deferred to one pass at
  /// the end of the block. Safe because rank bumps are per-candidate
  /// (dominated-by-new-arrival only — candidates never interact), so stale
  /// expired entries lingering at the front never change a survivor's rank,
  /// and they still form a timestamp-ordered prefix for the final expiry.
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;

  void AdvanceTo(double now) override;
  Matrix Query() override;
  size_t RowsStored() const override { return queue_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override {
    return options_.query_mode == QueryMode::kAll ? "SWOR-ALL" : "SWOR";
  }
  const WindowSpec& window() const override { return window_; }

  size_t AuxiliarySize() const { return frobenius_.AuxiliarySize(); }

  /// Checkpoint/resume.
  static constexpr uint32_t kSerialTag = 0x53574F01;
  void Serialize(ByteWriter* writer) const;
  static Result<SworSketch> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

 private:
  struct Candidate {
    SharedRow row;
    double log_priority;
    size_t rank;  // Priority rank within [row->ts, now], 1-based.
  };

  void Expire(double now);

  size_t dim_;
  WindowSpec window_;
  Options options_;
  Rng rng_;
  std::deque<Candidate> queue_;
  FrobeniusTracker frobenius_;
  double now_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_SWOR_H_
