#include "core/swr.h"

#include <cmath>
#include <unordered_set>

#include "sketch/priority_sampler.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

namespace {

// Handles under the fixed "swr." prefix, resolved once per process.
struct SwrMetrics {
  Counter* rows_ingested;
  Counter* priority_draws;
  Counter* replacements;
  Counter* front_expiries;
  Counter* queries;

  static const SwrMetrics& Get() {
    static const SwrMetrics m = [] {
      MetricScope scope("swr");
      return SwrMetrics{scope.counter("rows_ingested"),
                        scope.counter("priority_draws"),
                        scope.counter("replacements"),
                        scope.counter("front_expiries"),
                        scope.counter("queries")};
    }();
    return m;
  }
};

}  // namespace

SwrSketch::SwrSketch(size_t dim, WindowSpec window, Options options)
    : dim_(dim),
      window_(window),
      options_(options),
      rng_(options.seed),
      chains_(options.ell),
      frobenius_(options.exact_frobenius
                     ? FrobeniusTracker::Mode::kExact
                     : FrobeniusTracker::Mode::kExponentialHistogram,
                 options.frobenius_eps) {
  SWSKETCH_CHECK_GT(options_.ell, 0u);
}

void SwrSketch::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  SWSKETCH_CHECK_GE(ts, now_);
  now_ = ts;
  Expire(ts);

  const double w = NormSq(row);
  if (w <= 0.0) return;  // Zero rows carry no weight (and are disallowed in
                         // sequence windows, Section 1).
  frobenius_.Add(w, ts);

  const SwrMetrics& metrics = SwrMetrics::Get();
  metrics.rows_ingested->Add();
  metrics.priority_draws->Add(chains_.size());
  const SharedRow shared =
      MakeSharedRow(std::vector<double>(row.begin(), row.end()), ts);
  uint64_t replaced = 0;
  for (auto& chain : chains_) {
    const double lp = LogPriority(&rng_, w);
    // Algorithm 5.1 lines 4-8: drop dominated candidates from the back.
    while (!chain.empty() && chain.back().log_priority < lp) {
      chain.pop_back();
      ++replaced;
    }
    chain.push_back(Candidate{shared, lp});
  }
  if (replaced != 0) metrics.replacements->Add(replaced);
}

void SwrSketch::UpdateBatch(const Matrix& rows, std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() == 0) return;
  SWSKETCH_CHECK_EQ(rows.cols(), dim_);
  for (size_t r = 0; r < rows.rows(); ++r) {
    const auto row = rows.Row(r);
    SWSKETCH_CHECK_GE(ts[r], now_);
    now_ = ts[r];
    // The EH must see evictions at the same timestamps as the serial path
    // (its bucket merges depend on when mass leaves), so it is advanced per
    // row even though the chain fronts are expired only once at the end.
    frobenius_.EvictBefore(window_.Start(ts[r]));

    const double w = NormSq(row);
    if (w <= 0.0) continue;
    frobenius_.Add(w, ts[r]);

    const SwrMetrics& metrics = SwrMetrics::Get();
    metrics.rows_ingested->Add();
    metrics.priority_draws->Add(chains_.size());
    const SharedRow shared =
        MakeSharedRow(std::vector<double>(row.begin(), row.end()), ts[r]);
    uint64_t replaced = 0;
    for (auto& chain : chains_) {
      const double lp = LogPriority(&rng_, w);
      while (!chain.empty() && chain.back().log_priority < lp) {
        chain.pop_back();
        ++replaced;
      }
      chain.push_back(Candidate{shared, lp});
    }
    if (replaced != 0) metrics.replacements->Add(replaced);
  }
  // Expired candidates form a prefix of each deque (timestamps increase
  // front to back) and a stale front never influences back-side pops, so
  // one final expiry leaves exactly the serial state.
  Expire(now_);
}

void SwrSketch::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  now_ = now;
  Expire(now);
}

void SwrSketch::Expire(double now) {
  const double start = window_.Start(now);
  uint64_t expired = 0;
  for (auto& chain : chains_) {
    while (!chain.empty() && chain.front().row->ts < start) {
      chain.pop_front();
      ++expired;
    }
  }
  if (expired != 0) SwrMetrics::Get().front_expiries->Add(expired);
  frobenius_.EvictBefore(start);
}

Matrix SwrSketch::Query() {
  SwrMetrics::Get().queries->Add();
  Expire(now_);
  const double start = window_.Start(now_);
  const double frob_sq = frobenius_.Estimate(start);
  Matrix b(0, dim_);
  if (frob_sq <= 0.0) return b;
  const double frob = std::sqrt(frob_sq);
  const double ell = static_cast<double>(chains_.size());
  for (const auto& chain : chains_) {
    if (chain.empty()) continue;
    const Row& sample = *chain.front().row;
    const double w = sample.NormSq();
    b.AppendRowScaled(sample.view(), frob / std::sqrt(ell * w));
  }
  return b;
}

size_t SwrSketch::RowsStored() const {
  // Paper accounting: every candidate entry counts as a stored row (each
  // sampler conceptually owns its queue).
  size_t n = 0;
  for (const auto& chain : chains_) n += chain.size();
  return n;
}

size_t SwrSketch::UniqueRowsStored() const {
  std::unordered_set<const Row*> distinct;
  for (const auto& chain : chains_) {
    for (const auto& c : chain) distinct.insert(c.row.get());
  }
  return distinct.size();
}

std::vector<std::optional<SwrSketch::ChainSample>> SwrSketch::ChainSamples() {
  Expire(now_);
  std::vector<std::optional<ChainSample>> out;
  out.reserve(chains_.size());
  for (const auto& chain : chains_) {
    if (chain.empty()) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(
          ChainSample{chain.front().row, chain.front().log_priority});
    }
  }
  return out;
}

double SwrSketch::FrobeniusSqEstimate() {
  Expire(now_);
  return frobenius_.Estimate(window_.Start(now_));
}

void SwrSketch::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, SwrSketch::kSerialTag, 1);
  writer->Put<uint64_t>(dim_);
  window_.Serialize(writer);
  writer->Put<uint64_t>(options_.ell);
  writer->Put(options_.frobenius_eps);
  writer->Put<uint8_t>(options_.exact_frobenius ? 1 : 0);
  writer->Put<uint64_t>(options_.seed);
  rng_.Serialize(writer);
  writer->Put(now_);
  frobenius_.Serialize(writer);
  writer->Put<uint64_t>(chains_.size());
  for (const auto& chain : chains_) {
    writer->Put<uint64_t>(chain.size());
    for (const auto& c : chain) {
      writer->Put(c.log_priority);
      writer->Put(c.row->ts);
      writer->PutVector(c.row->values);
    }
  }
}

Result<SwrSketch> SwrSketch::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, SwrSketch::kSerialTag, 1)) {
    return Status::InvalidArgument("bad SwrSketch header");
  }
  uint64_t dim = 0;
  if (!reader->Get(&dim)) {
    return Status::InvalidArgument("corrupt SwrSketch payload");
  }
  auto window = WindowSpec::Deserialize(reader);
  if (!window.ok()) return window.status();
  Options options;
  uint64_t ell = 0, seed = 0;
  uint8_t exact = 0;
  if (!reader->Get(&ell) || !reader->Get(&options.frobenius_eps) ||
      !reader->Get(&exact) || !reader->Get(&seed) || ell == 0) {
    return Status::InvalidArgument("corrupt SwrSketch payload");
  }
  options.ell = ell;
  options.exact_frobenius = exact != 0;
  options.seed = seed;
  SwrSketch sketch(dim, *window, options);
  uint64_t num_chains = 0;
  if (!sketch.rng_.Deserialize(reader) || !reader->Get(&sketch.now_) ||
      !sketch.frobenius_.Deserialize(reader) || !reader->Get(&num_chains) ||
      num_chains != ell) {
    return Status::InvalidArgument("corrupt SwrSketch payload");
  }
  for (auto& chain : sketch.chains_) {
    uint64_t n = 0;
    if (!reader->Get(&n)) {
      return Status::InvalidArgument("corrupt SwrSketch payload");
    }
    double prev = std::numeric_limits<double>::infinity();
    for (uint64_t i = 0; i < n; ++i) {
      Candidate c;
      double ts = 0.0;
      std::vector<double> values;
      if (!reader->Get(&c.log_priority) || !reader->Get(&ts) ||
          !reader->GetVector(&values) || values.size() != dim ||
          c.log_priority >= prev) {
        return Status::InvalidArgument("corrupt SwrSketch payload");
      }
      prev = c.log_priority;
      c.row = MakeSharedRow(std::move(values), ts);
      chain.push_back(std::move(c));
    }
  }
  return sketch;
}

}  // namespace swsketch
