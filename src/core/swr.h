// SWR: sliding-window row sampling WITH replacement (Algorithm 5.1).
//
// One monotonic candidate deque per independent sample. A row a_t gets a
// priority rho_t = u^{1/||a_t||^2} (kept in log space); a stored row stays
// a candidate exactly while its priority is the maximum over [t_j, now],
// so the deque holds strictly decreasing priorities from oldest to newest:
// arrivals pop dominated candidates from the back, expiry pops from the
// front, and the front is always the window's sample.
//
// Expected candidates per deque: O(log NR) (Lemma 5.1); with ell deques the
// sketch stores O(ell log NR) candidate entries, while the actual rows are
// shared across deques via SharedRow.
#ifndef SWSKETCH_CORE_SWR_H_
#define SWSKETCH_CORE_SWR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/frobenius_tracker.h"
#include "core/sliding_window_sketch.h"
#include "stream/row.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Sampling-with-replacement sliding-window sketch (works for sequence and
/// time windows).
class SwrSketch : public SlidingWindowSketch {
 public:
  struct Options {
    /// Number of independent samples (ell). Theory: ell = O(d / eps^2).
    size_t ell = 64;
    /// Relative error of the exponential histogram tracking ||A||_F^2.
    double frobenius_eps = 0.05;
    /// Track ||A||_F^2 exactly (one scalar per window row) instead of the
    /// EH; the paper notes this option for when norms fit in memory.
    bool exact_frobenius = false;
    uint64_t seed = 1;
  };

  SwrSketch(size_t dim, WindowSpec window, Options options);

  void Update(std::span<const double> row, double ts) override;

  /// Bit-identical to the serial loop. Priority draws stay row-major and
  /// the EH evictions stay per-row (bucket merge cascades depend on
  /// eviction timing), but the per-chain *front* expiry scans — pure
  /// removals of a timestamp-ordered prefix, which commute with the
  /// back-side dominance pops — are deferred to one pass at the end of the
  /// block, saving ell deque checks per row.
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;

  void AdvanceTo(double now) override;
  Matrix Query() override;
  size_t RowsStored() const override;
  size_t dim() const override { return dim_; }
  std::string name() const override { return "SWR"; }
  const WindowSpec& window() const override { return window_; }

  /// Number of distinct rows currently referenced (shared storage).
  size_t UniqueRowsStored() const;

  /// Auxiliary scalars used by the Frobenius tracker.
  size_t AuxiliarySize() const { return frobenius_.AuxiliarySize(); }

  /// Checkpoint/resume. Note: candidate rows shared across chains are
  /// duplicated in the payload; on load every candidate owns its row.
  static constexpr uint32_t kSerialTag = 0x53575201;
  void Serialize(ByteWriter* writer) const;
  static Result<SwrSketch> Deserialize(ByteReader* reader);
  Status SerializeTo(ByteWriter* writer) const override {
    Serialize(writer);
    return Status::OK();
  }

  /// One independent sample with its priority (distributed merging:
  /// priorities are max-stable across disjoint sub-streams).
  struct ChainSample {
    SharedRow row;
    double log_priority;
  };

  /// Current per-chain window samples; empty optionals for empty chains.
  /// Expires state as of the last seen timestamp.
  std::vector<std::optional<ChainSample>> ChainSamples();

  /// Current window ||A||_F^2 estimate (exact or EH, per options).
  double FrobeniusSqEstimate();

  size_t ell() const { return chains_.size(); }

 private:
  struct Candidate {
    SharedRow row;
    double log_priority;
  };

  void Expire(double now);

  size_t dim_;
  WindowSpec window_;
  Options options_;
  Rng rng_;
  std::vector<std::deque<Candidate>> chains_;
  FrobeniusTracker frobenius_;
  double now_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_SWR_H_
