#include "core/window_pca.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/tridiag_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

WindowPca::WindowPca(std::unique_ptr<SlidingWindowSketch> sketch)
    : sketch_(std::move(sketch)) {
  SWSKETCH_CHECK(sketch_ != nullptr);
}

void WindowPca::Update(std::span<const double> row, double ts) {
  sketch_->Update(row, ts);
}

void WindowPca::AdvanceTo(double now) { sketch_->AdvanceTo(now); }

PcaResult WindowPca::Principal(size_t k) {
  const size_t d = sketch_->dim();
  k = std::min(k, d);
  const Matrix b = sketch_->Query();
  Matrix gram(d, d);
  for (size_t i = 0; i < b.rows(); ++i) gram.AddOuterProduct(b.Row(i));
  const SymmetricEigen eig = SymmetricEigenSolve(gram);

  PcaResult out;
  out.eigenvalues.assign(eig.eigenvalues.begin(), eig.eigenvalues.begin() + k);
  out.components = Matrix(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      out.components(c, j) = eig.eigenvectors(j, c);
    }
  }
  return out;
}

double WindowPca::CapturedEnergy(const Matrix& basis,
                                 std::span<const double> row) {
  SWSKETCH_CHECK_EQ(basis.cols(), row.size());
  const double total = NormSq(row);
  if (total <= 0.0) return 0.0;
  double captured = 0.0;
  for (size_t c = 0; c < basis.rows(); ++c) {
    const double proj = Dot(basis.Row(c), row);
    captured += proj * proj;
  }
  return captured / total;
}

double WindowPca::SubspaceAffinity(const Matrix& basis1,
                                   const Matrix& basis2) {
  SWSKETCH_CHECK_EQ(basis1.cols(), basis2.cols());
  SWSKETCH_CHECK_GT(basis1.rows(), 0u);
  const Matrix m = basis1.Multiply(basis2.Transpose());
  return m.FrobeniusNormSq() / static_cast<double>(basis1.rows());
}

PcaChangeDetector::PcaChangeDetector(
    std::unique_ptr<SlidingWindowSketch> sketch, Options options)
    : pca_(std::move(sketch)), options_(options) {
  SWSKETCH_CHECK_GT(options_.k, 0u);
}

void PcaChangeDetector::Update(std::span<const double> row, double ts) {
  pca_.Update(row, ts);
}

void PcaChangeDetector::FreezeReference() {
  reference_ = pca_.Principal(options_.k).components;
}

double PcaChangeDetector::Score() {
  SWSKETCH_CHECK(has_reference());
  const Matrix live = pca_.Principal(options_.k).components;
  return WindowPca::SubspaceAffinity(reference_, live);
}

}  // namespace swsketch
