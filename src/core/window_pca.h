// Sliding-window PCA and PCA-based change detection — the paper's
// motivating application (Section 1): approximate the window's principal
// components from any sliding-window sketch instead of storing the window,
// and detect distribution changes by comparing the live test-window basis
// against a frozen reference basis.
#ifndef SWSKETCH_CORE_WINDOW_PCA_H_
#define SWSKETCH_CORE_WINDOW_PCA_H_

#include <memory>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "linalg/matrix.h"

namespace swsketch {

/// Principal components extracted from a window approximation.
struct PcaResult {
  /// Top-k eigenvalues of B^T B (approximating those of A^T A), descending.
  std::vector<double> eigenvalues;
  /// k x d matrix with orthonormal rows: the principal directions.
  Matrix components;
};

/// PCA over a sliding window, backed by any SlidingWindowSketch.
class WindowPca {
 public:
  /// Takes ownership of the sketch.
  explicit WindowPca(std::unique_ptr<SlidingWindowSketch> sketch);

  /// Forwards a stream row to the underlying sketch.
  void Update(std::span<const double> row, double ts);
  void AdvanceTo(double now);

  /// Top-k principal components of the current window approximation.
  PcaResult Principal(size_t k);

  /// Fraction of `row`'s energy captured by `basis` (k x d orthonormal
  /// rows): ||V row||^2 / ||row||^2 in [0, 1].
  static double CapturedEnergy(const Matrix& basis,
                               std::span<const double> row);

  /// Subspace affinity between two orthonormal bases (k x d each):
  /// ||V1 V2^T||_F^2 / k. 1 = identical subspaces, ~k/d for random ones.
  static double SubspaceAffinity(const Matrix& basis1, const Matrix& basis2);

  SlidingWindowSketch& sketch() { return *sketch_; }

 private:
  std::unique_ptr<SlidingWindowSketch> sketch_;
};

/// Window-based change/anomaly detector (Section 1's "concrete
/// application"): freeze a reference basis, keep sketching the test
/// window, and alarm when the subspace affinity drops below a threshold.
class PcaChangeDetector {
 public:
  struct Options {
    size_t k = 3;              // Principal components compared.
    double threshold = 0.5;    // Affinity below this raises the alarm.
  };

  PcaChangeDetector(std::unique_ptr<SlidingWindowSketch> sketch,
                    Options options);

  void Update(std::span<const double> row, double ts);

  /// Captures the current window's basis as the reference distribution.
  void FreezeReference();
  bool has_reference() const { return reference_.rows() > 0; }

  /// Affinity of the live window's basis to the reference (1 = no change).
  double Score();

  /// True when Score() < threshold.
  bool Alarm() { return Score() < options_.threshold; }

 private:
  WindowPca pca_;
  Options options_;
  Matrix reference_;
};

}  // namespace swsketch

#endif  // SWSKETCH_CORE_WINDOW_PCA_H_
