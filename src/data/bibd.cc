#include "data/bibd.h"

#include <vector>

#include "util/logging.h"

namespace swsketch {

BibdStream::BibdStream(Options options) : options_(options), rng_(options.seed) {
  SWSKETCH_CHECK_GT(options_.row_weight, 0u);
  SWSKETCH_CHECK_LE(options_.row_weight, options_.dim);
}

std::optional<Row> BibdStream::Next() {
  if (produced_ >= options_.rows) return std::nullopt;
  std::vector<double> values(options_.dim, 0.0);
  for (size_t idx :
       rng_.SampleWithoutReplacement(options_.dim, options_.row_weight)) {
    values[idx] = 1.0;
  }
  const double ts = static_cast<double>(produced_);
  ++produced_;
  return Row(std::move(values), ts);
}

DatasetInfo BibdStream::info() const {
  DatasetInfo info;
  info.name = name();
  info.rows = options_.rows;
  info.dim = options_.dim;
  info.window = WindowSpec::Sequence(options_.window);
  info.max_norm_sq = static_cast<double>(options_.row_weight);
  info.norm_ratio_hint = 1.0;  // All rows share one norm.
  return info;
}

}  // namespace swsketch
