// BIBD-sim: stand-in for the bibd_22_8 incidence matrix (UF Sparse Matrix
// Collection). The rows of the real matrix are 0/1 indicators of the
// C(8,2) = 28 element-pairs covered by each block of a (22, 8) design, so
// every row has exactly 28 ones out of d = 231 columns and all row norms
// are equal (norm-ratio R = 1) — the property the experiments use BIBD for
// (DI-FD's sweet spot). We generate random constant-weight 0/1 rows with
// the same d, weight, and R.
#ifndef SWSKETCH_DATA_BIBD_H_
#define SWSKETCH_DATA_BIBD_H_

#include "data/generators.h"
#include "util/random.h"

namespace swsketch {

/// Constant-row-weight binary incidence stream.
class BibdStream : public DatasetStream {
 public:
  struct Options {
    size_t rows = 100000;
    size_t dim = 231;
    size_t row_weight = 28;  // Ones per row; C(8,2) for bibd_22_8.
    uint64_t window = 10000;
    uint64_t seed = 7;
  };

  explicit BibdStream(Options options);

  std::optional<Row> Next() override;
  size_t dim() const override { return options_.dim; }
  std::string name() const override { return "BIBD"; }
  DatasetInfo info() const override;

 private:
  Options options_;
  Rng rng_;
  size_t produced_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_BIBD_H_
