#include "data/csv.h"

#include <cstdlib>
#include <span>
#include <utility>
#include <vector>

namespace swsketch {

namespace {

// Splits a CSV line into doubles; returns false on any unparseable field.
bool ParseDoubles(const std::string& line, std::vector<double>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= line.size()) {
    size_t comma = line.find(',', pos);
    if (comma == std::string::npos) comma = line.size();
    const std::string field = line.substr(pos, comma - pos);
    if (field.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0') return false;
    out->push_back(v);
    if (comma == line.size()) break;
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

CsvRowStream::CsvRowStream(std::ifstream file, Options options,
                           std::string name)
    : file_(std::move(file)), options_(options), name_(std::move(name)) {}

Result<std::unique_ptr<CsvRowStream>> CsvRowStream::Open(
    const std::string& path, Options options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  auto stream = std::unique_ptr<CsvRowStream>(
      new CsvRowStream(std::move(file), options, path));

  std::string line;
  if (options.skip_header && !std::getline(stream->file_, line)) {
    return Status::InvalidArgument("CSV file has no data lines: " + path);
  }
  if (!std::getline(stream->file_, line)) {
    return Status::InvalidArgument("CSV file is empty: " + path);
  }
  auto first = stream->ParseLine(line);
  if (!first.has_value()) {
    return Status::InvalidArgument("malformed first CSV data line: " + path);
  }
  stream->dim_ = first->dim();
  stream->first_row_ = std::move(first);
  return stream;
}

std::optional<Row> CsvRowStream::ParseLine(const std::string& line) {
  std::vector<double> fields;
  if (!ParseDoubles(line, &fields)) return std::nullopt;
  double ts;
  std::vector<double> values;
  if (options_.first_column_is_timestamp) {
    if (fields.size() < 2) return std::nullopt;
    ts = fields[0];
    if (ts < last_ts_) return std::nullopt;  // Out-of-order stamp.
    values.assign(fields.begin() + 1, fields.end());
  } else {
    ts = static_cast<double>(line_index_);
    values = std::move(fields);
  }
  last_ts_ = ts;
  ++line_index_;
  return Row(std::move(values), ts);
}

size_t CsvRowStream::NextBatch(size_t max_rows, Matrix* rows,
                               std::vector<double>* ts) {
  rows->ResetShape(0, dim_);
  rows->ReserveRows(max_rows);
  ts->clear();
  if (first_row_.has_value() && max_rows > 0) {
    rows->AppendRow(first_row_->view());
    ts->push_back(first_row_->ts);
    first_row_.reset();
  }
  // Same termination rules as Next(): a malformed line or a dimension
  // mismatch ends the stream.
  while (ts->size() < max_rows && std::getline(file_, batch_line_)) {
    if (batch_line_.empty()) continue;
    if (!ParseDoubles(batch_line_, &batch_fields_)) break;
    double t;
    std::span<const double> values;
    if (options_.first_column_is_timestamp) {
      if (batch_fields_.size() < 2 || batch_fields_[0] < last_ts_) break;
      t = batch_fields_[0];
      values = std::span<const double>(batch_fields_).subspan(1);
    } else {
      t = static_cast<double>(line_index_);
      values = batch_fields_;
    }
    if (values.size() != dim_) break;
    last_ts_ = t;
    ++line_index_;
    rows->AppendRow(values);
    ts->push_back(t);
  }
  return ts->size();
}

std::optional<Row> CsvRowStream::Next() {
  if (first_row_.has_value()) {
    auto row = std::move(*first_row_);
    first_row_.reset();
    return row;
  }
  std::string line;
  while (std::getline(file_, line)) {
    if (line.empty()) continue;
    auto row = ParseLine(line);
    if (!row.has_value() || row->dim() != dim_) return std::nullopt;
    return row;
  }
  return std::nullopt;
}

Status WriteMatrixCsv(const Matrix& m, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot write CSV file: " + path);
  }
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j) file << ',';
      file << m(i, j);
    }
    file << '\n';
  }
  return file.good() ? Status::OK()
                     : Status::Internal("short write to " + path);
}

}  // namespace swsketch
