// CSV row streams: run the sliding-window sketches on your own data.
// Format: one row per line, comma-separated doubles; optionally the first
// column is the timestamp (otherwise the 0-based line index is used, i.e.
// sequence-window semantics).
#ifndef SWSKETCH_DATA_CSV_H_
#define SWSKETCH_DATA_CSV_H_

#include <fstream>
#include <memory>
#include <string>

#include "linalg/matrix.h"
#include "stream/row_stream.h"
#include "util/status.h"

namespace swsketch {

/// Streams rows from a CSV file.
class CsvRowStream : public RowStream {
 public:
  struct Options {
    /// First column is the row timestamp.
    bool first_column_is_timestamp = false;
    /// Skip the first line (header).
    bool skip_header = false;
  };

  /// Opens the file and validates the first data line (which fixes d).
  static Result<std::unique_ptr<CsvRowStream>> Open(const std::string& path,
                                                    Options options);
  static Result<std::unique_ptr<CsvRowStream>> Open(const std::string& path) {
    return Open(path, Options{});
  }

  std::optional<Row> Next() override;

  /// Parses lines straight into the block matrix through one reused field
  /// buffer — no per-row vector, so batched CSV ingest allocates nothing
  /// per row in steady state.
  size_t NextBatch(size_t max_rows, Matrix* rows,
                   std::vector<double>* ts) override;

  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }

 private:
  CsvRowStream(std::ifstream file, Options options, std::string name);

  // Parses one line; empty optional at EOF / on malformed trailing data.
  std::optional<Row> ParseLine(const std::string& line);

  std::ifstream file_;
  Options options_;
  std::string name_;
  size_t dim_ = 0;
  size_t line_index_ = 0;
  std::optional<Row> first_row_;  // Pre-parsed during Open.
  double last_ts_ = 0.0;
  std::vector<double> batch_fields_;  // Reused line buffer for NextBatch.
  std::string batch_line_;            // Reused getline target for NextBatch.
};

/// Writes a matrix as CSV (one row per line).
Status WriteMatrixCsv(const Matrix& m, const std::string& path);

}  // namespace swsketch

#endif  // SWSKETCH_DATA_CSV_H_
