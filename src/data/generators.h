// Shared declarations for the dataset generators reproducing the paper's
// experimental workloads (Tables 2 and 3). Every generator is a streaming
// RowStream: rows are produced on demand and never materialized in bulk.
//
// Real-data substitutions (see DESIGN.md §2): BIBD / PAMAP / WIKI / RAIL
// are synthetic simulators that reproduce the properties the experiments
// actually exercise — norm-ratio R, sparsity pattern, and arrival process.
#ifndef SWSKETCH_DATA_GENERATORS_H_
#define SWSKETCH_DATA_GENERATORS_H_

#include <memory>
#include <string>

#include "stream/row_stream.h"
#include "stream/window.h"

namespace swsketch {

/// Metadata a generator reports about itself, mirroring Tables 2 / 3.
struct DatasetInfo {
  std::string name;
  size_t rows = 0;         // n.
  size_t dim = 0;          // d.
  WindowSpec window = WindowSpec::Sequence(1);  // N or delta.
  double max_norm_sq = 0.0;                     // Upper bound on ||a||^2.
  double norm_ratio_hint = 0.0;  // Expected R = max/min squared-norm ratio.
};

/// A RowStream that also describes itself.
class DatasetStream : public RowStream {
 public:
  virtual DatasetInfo info() const = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_GENERATORS_H_
