#include "data/pamap.h"

#include <cmath>

#include "util/logging.h"

namespace swsketch {

PamapStream::PamapStream(Options options)
    : options_(options),
      rng_(options.seed),
      baseline_(options.dim, 0.0),
      state_(options.dim, 0.0) {
  SWSKETCH_CHECK_GT(options_.dim, 0u);
  if (options_.plant_skewed_window) {
    // The paper locates its Figure-6 window at rows 125k-135k out of 198k
    // (~63% into the stream, one window long).
    skew_begin_ = static_cast<size_t>(0.63 * static_cast<double>(options_.rows));
    skew_end_ = skew_begin_ + options_.window;
  }
}

void PamapStream::MaybeSwitchRegime() {
  if (produced_ < regime_end_) return;
  const double len =
      rng_.Exponential(1.0 / static_cast<double>(options_.regime_length));
  regime_end_ = produced_ + 1 + static_cast<size_t>(len);
  // Log-uniform magnitude in [1, magnitude_max].
  regime_scale_ = std::exp(rng_.Uniform(0.0, std::log(options_.magnitude_max)));
  for (size_t j = 0; j < options_.dim; ++j) {
    baseline_[j] = rng_.Gaussian() * regime_scale_;
    state_[j] = baseline_[j];
  }
}

std::optional<Row> PamapStream::Next() {
  if (produced_ >= options_.rows) return std::nullopt;
  MaybeSwitchRegime();

  double scale = regime_scale_;
  bool spike = false;
  if (options_.plant_skewed_window && produced_ >= skew_begin_ &&
      produced_ < skew_end_) {
    // Inside the planted window: tiny rows, except a handful of huge ones
    // (the "ell - 1 large rows" configuration of Section 8.1 obs. (2)).
    const double spike_prob =
        30.0 / static_cast<double>(options_.window);
    spike = rng_.Bernoulli(spike_prob);
    scale = spike ? options_.magnitude_max : 0.3;
  }

  std::vector<double> values(options_.dim);
  for (size_t j = 0; j < options_.dim; ++j) {
    // Mean-reverting walk around the regime baseline.
    state_[j] = 0.9 * state_[j] + 0.1 * baseline_[j] +
                0.3 * regime_scale_ * rng_.Gaussian();
    values[j] = spike || scale != regime_scale_
                    ? scale * (0.5 * rng_.Gaussian() + (spike ? 1.0 : 0.0))
                    : state_[j];
    // Keep every row's squared norm >= 1 (the paper's normalization
    // assumption 1 <= ||a||^2 <= R).
  }
  // Enforce the lower norm bound by nudging the first channel if needed.
  double norm_sq = 0.0;
  for (double v : values) norm_sq += v * v;
  if (norm_sq < 1.0) values[0] += (values[0] >= 0.0 ? 1.0 : -1.0);

  const double ts = static_cast<double>(produced_);
  ++produced_;
  return Row(std::move(values), ts);
}

DatasetInfo PamapStream::info() const {
  DatasetInfo info;
  info.name = name();
  info.rows = options_.rows;
  info.dim = options_.dim;
  info.window = WindowSpec::Sequence(options_.window);
  // Worst squared norm ~ d * (magnitude_max * few-sigma)^2.
  info.max_norm_sq = static_cast<double>(options_.dim) *
                     options_.magnitude_max * options_.magnitude_max * 16.0;
  info.norm_ratio_hint = 9.0e4;  // Table 2's R for PAMAP.
  return info;
}

}  // namespace swsketch
