// PAMAP-sim: stand-in for the PAMAP physical-activity-monitoring recordings
// (subject 1, 35 sensor channels). What the paper's experiments exploit in
// PAMAP is its extremely skewed norm distribution (Table 2: R ~ 9 * 10^4):
// vigorous activities produce rows with squared norms four to five orders
// of magnitude above resting ones, which is exactly the regime where SWOR's
// rescaling degrades (Figure 6 / observation (2) in Section 8.1).
//
// The simulator switches between activity regimes of random duration; each
// regime has a magnitude scale drawn log-uniformly, and channels follow a
// mean-reverting random walk around regime-specific baselines. By default
// the regime schedule plants one "spiky" window (a few huge rows among many
// tiny ones) around rows 125k-135k scaled to the stream length, matching
// the window the paper dissects in Figure 6.
#ifndef SWSKETCH_DATA_PAMAP_H_
#define SWSKETCH_DATA_PAMAP_H_

#include <vector>

#include "data/generators.h"
#include "util/random.h"

namespace swsketch {

/// Regime-switching multichannel sensor stream with heavy-tailed norms.
class PamapStream : public DatasetStream {
 public:
  struct Options {
    size_t rows = 100000;
    size_t dim = 35;
    uint64_t window = 10000;
    /// Mean regime length in rows.
    size_t regime_length = 5000;
    /// Log-uniform regime magnitude range [1, magnitude_max].
    double magnitude_max = 300.0;
    /// Plant the Figure-6 skewed window (few huge rows + many tiny rows)
    /// at 1.25 * window-relative position.
    bool plant_skewed_window = true;
    uint64_t seed = 11;
  };

  explicit PamapStream(Options options);

  std::optional<Row> Next() override;
  size_t dim() const override { return options_.dim; }
  std::string name() const override { return "PAMAP"; }
  DatasetInfo info() const override;

  /// First row index of the planted skewed window (for Figure 6).
  size_t skewed_window_begin() const { return skew_begin_; }

 private:
  void MaybeSwitchRegime();

  Options options_;
  Rng rng_;
  size_t produced_ = 0;
  size_t regime_end_ = 0;
  double regime_scale_ = 1.0;
  std::vector<double> baseline_;
  std::vector<double> state_;
  size_t skew_begin_ = 0;
  size_t skew_end_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_PAMAP_H_
