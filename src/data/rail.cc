#include "data/rail.h"

#include <vector>

#include "util/logging.h"

namespace swsketch {

RailStream::RailStream(Options options) : options_(options), rng_(options.seed) {
  SWSKETCH_CHECK_GT(options_.dim, 0u);
  SWSKETCH_CHECK_GE(options_.nnz_max, options_.nnz_min);
  SWSKETCH_CHECK_LE(options_.nnz_max, options_.dim);
  SWSKETCH_CHECK_GE(options_.cost_max, 1);
}

std::optional<std::pair<SparseVector, double>> RailStream::Generate() {
  if (produced_ >= options_.rows) return std::nullopt;

  const size_t nnz =
      options_.nnz_min +
      static_cast<size_t>(
          rng_.UniformInt(options_.nnz_max - options_.nnz_min + 1));
  std::vector<uint32_t> indices;
  std::vector<double> values;
  indices.reserve(nnz);
  values.reserve(nnz);
  for (size_t idx : rng_.SampleWithoutReplacement(options_.dim, nnz)) {
    indices.push_back(static_cast<uint32_t>(idx));
    values.push_back(static_cast<double>(
        1 + rng_.UniformInt(static_cast<uint64_t>(options_.cost_max))));
  }

  clock_ += rng_.Exponential(1.0 / options_.mean_interarrival);
  ++produced_;
  return std::make_pair(
      SparseVector(options_.dim, std::move(indices), std::move(values)),
      clock_);
}

std::optional<Row> RailStream::Next() {
  auto sparse = Generate();
  if (!sparse.has_value()) return std::nullopt;
  return Row(sparse->first.ToDense(), sparse->second);
}

std::optional<std::pair<SparseVector, double>> RailStream::NextSparse() {
  return Generate();
}

DatasetInfo RailStream::info() const {
  DatasetInfo info;
  info.name = name();
  info.rows = options_.rows;
  info.dim = options_.dim;
  info.window = WindowSpec::Time(options_.window);
  info.max_norm_sq = static_cast<double>(options_.nnz_max) *
                     static_cast<double>(options_.cost_max) *
                     static_cast<double>(options_.cost_max);
  info.norm_ratio_hint = 12.0;  // Table 3's R for RAIL.
  return info;
}

}  // namespace swsketch
