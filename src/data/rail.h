// RAIL-sim: stand-in for the rail2586 crew-scheduling matrix (Table 3:
// d = 2586 trips, 923 269 rows, ~8.7 nonzero integer costs per row) with
// the synthetic Poisson arrival process the paper itself adds (interarrival
// times exponential with mean 0.5, window delta = 5000 => about 10 000 rows
// per window). Rows are sparse with small-integer costs, giving the modest
// norm ratio (R ~ 12) of the real matrix. Dimensionality is scaled to 400
// by default (DESIGN.md substitution table).
#ifndef SWSKETCH_DATA_RAIL_H_
#define SWSKETCH_DATA_RAIL_H_

#include "data/generators.h"
#include "util/random.h"

namespace swsketch {

/// Sparse integer-cost stream with Poisson arrivals.
class RailStream : public DatasetStream {
 public:
  struct Options {
    size_t rows = 100000;
    size_t dim = 400;
    size_t nnz_min = 4;
    size_t nnz_max = 14;
    int cost_max = 2;       // Costs uniform in [1, cost_max].
    double mean_interarrival = 0.5;
    double window = 5000.0;  // Time window delta.
    uint64_t seed = 31;
  };

  explicit RailStream(Options options);

  std::optional<Row> Next() override;
  std::optional<std::pair<SparseVector, double>> NextSparse() override;
  size_t dim() const override { return options_.dim; }
  std::string name() const override { return "RAIL"; }
  DatasetInfo info() const override;

 private:
  std::optional<std::pair<SparseVector, double>> Generate();

  Options options_;
  Rng rng_;
  size_t produced_ = 0;
  double clock_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_RAIL_H_
