#include "data/synthetic.h"

#include <vector>

#include "linalg/subspace_iteration.h"
#include "util/logging.h"

namespace swsketch {

SyntheticStream::SyntheticStream(Options options)
    : options_(options), rng_(options.seed) {
  SWSKETCH_CHECK_GT(options_.dim, 0u);
  SWSKETCH_CHECK_GT(options_.signal_dim, 0u);
  SWSKETCH_CHECK_LE(options_.signal_dim, options_.dim);
  // Random signal row space: orthonormalize k Gaussian columns of a
  // dim x k matrix, store transposed as k x dim.
  Matrix cols(options_.dim, options_.signal_dim);
  for (size_t i = 0; i < options_.dim; ++i) {
    for (size_t j = 0; j < options_.signal_dim; ++j) {
      cols(i, j) = rng_.Gaussian();
    }
  }
  OrthonormalizeColumns(&cols, options_.seed ^ 0xABCD);
  u_ = cols.Transpose();
}

std::optional<Row> SyntheticStream::Next() {
  if (produced_ >= options_.rows) return std::nullopt;
  const size_t d = options_.dim;
  const size_t k = options_.signal_dim;

  // Row = (s .* diag(D)) U + noise / zeta.
  std::vector<double> coeff(k);
  for (size_t j = 0; j < k; ++j) {
    const double dj = 1.0 - static_cast<double>(j) / static_cast<double>(k);
    coeff[j] = rng_.Gaussian() * dj;
  }
  std::vector<double> values(d);
  for (size_t j = 0; j < d; ++j) values[j] = rng_.Gaussian() / options_.zeta;
  for (size_t c = 0; c < k; ++c) {
    const double s = coeff[c];
    const double* urow = u_.RowPtr(c);
    for (size_t j = 0; j < d; ++j) values[j] += s * urow[j];
  }
  const double ts = static_cast<double>(produced_);
  ++produced_;
  return Row(std::move(values), ts);
}

DatasetInfo SyntheticStream::info() const {
  DatasetInfo info;
  info.name = name();
  info.rows = options_.rows;
  info.dim = options_.dim;
  info.window = WindowSpec::Sequence(options_.window);
  // ||row||^2 ~ sum_j (s_j D_j)^2 + d/zeta^2: a chi-square-ish variable
  // with mean about k/3 + d/zeta^2; bound it generously at 6x the mean.
  const double mean =
      static_cast<double>(options_.signal_dim) / 3.0 +
      static_cast<double>(options_.dim) / (options_.zeta * options_.zeta);
  info.max_norm_sq = 6.0 * mean;
  info.norm_ratio_hint = 8.35;  // Observed ratio in the paper's Table 2.
  return info;
}

}  // namespace swsketch
