// SYNTHETIC: the Random Noisy matrix of Appendix D (and of Liberty'13 /
// Ghashami et al.'14): A = S D U + N / zeta, where S has i.i.d. standard
// normal entries, D_jj = 1 - (j - 1) / k decays linearly, U has orthonormal
// rows spanning a random k-dimensional signal row space, and N is unit
// Gaussian noise damped by zeta.
#ifndef SWSKETCH_DATA_SYNTHETIC_H_
#define SWSKETCH_DATA_SYNTHETIC_H_

#include "data/generators.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace swsketch {

/// Streaming generator of the Random Noisy matrix.
class SyntheticStream : public DatasetStream {
 public:
  struct Options {
    size_t rows = 100000;
    size_t dim = 300;
    /// Signal dimensionality k (number of meaningful directions). The
    /// paper's appendix uses a full-dimensional signal; the standard
    /// evaluation setup (and ours) uses k << d so the spectrum has a knee.
    size_t signal_dim = 50;
    double zeta = 10.0;  // Noise damping (appendix D).
    uint64_t window = 10000;
    uint64_t seed = 42;
  };

  explicit SyntheticStream(Options options);

  std::optional<Row> Next() override;
  size_t dim() const override { return options_.dim; }
  std::string name() const override { return "SYNTHETIC"; }
  DatasetInfo info() const override;

 private:
  Options options_;
  Rng rng_;
  Matrix u_;  // signal_dim x dim, orthonormal rows.
  size_t produced_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_SYNTHETIC_H_
