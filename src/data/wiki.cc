#include "data/wiki.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace swsketch {

WikiStream::WikiStream(Options options) : options_(options), rng_(options.seed) {
  SWSKETCH_CHECK_GT(options_.dim, 0u);
  SWSKETCH_CHECK_GE(options_.nnz_max, options_.nnz_min);
  SWSKETCH_CHECK_LE(options_.nnz_max, options_.dim);
}

std::optional<std::pair<SparseVector, double>> WikiStream::Generate() {
  if (produced_ >= options_.rows) return std::nullopt;

  const size_t nnz =
      options_.nnz_min +
      static_cast<size_t>(
          rng_.UniformInt(options_.nnz_max - options_.nnz_min + 1));
  std::vector<uint32_t> indices;
  std::vector<double> values;
  indices.reserve(nnz);
  values.reserve(nnz);
  for (size_t idx : rng_.SampleWithoutReplacement(options_.dim, nnz)) {
    // tf-idf-like weight: (1 + log tf) with tf geometric-ish, times an
    // idf factor log-uniform in [1, 4].
    const double tf = 1.0 + rng_.Exponential(0.7);
    const double idf = std::exp(rng_.Uniform(0.0, std::log(4.0)));
    indices.push_back(static_cast<uint32_t>(idx));
    values.push_back((1.0 + std::log(tf)) * idf);
  }

  // Accelerating arrivals: t_i = T * ((i+1)/n)^{1/3} => the rate grows
  // quadratically, few rows early / many late (Section 8.2's observation).
  const double frac = static_cast<double>(produced_ + 1) /
                      static_cast<double>(options_.rows);
  const double ts = options_.span * std::cbrt(frac);
  ++produced_;
  return std::make_pair(
      SparseVector(options_.dim, std::move(indices), std::move(values)), ts);
}

std::optional<Row> WikiStream::Next() {
  auto sparse = Generate();
  if (!sparse.has_value()) return std::nullopt;
  return Row(sparse->first.ToDense(), sparse->second);
}

std::optional<std::pair<SparseVector, double>> WikiStream::NextSparse() {
  return Generate();
}

DatasetInfo WikiStream::info() const {
  DatasetInfo info;
  info.name = name();
  info.rows = options_.rows;
  info.dim = options_.dim;
  info.window = WindowSpec::Time(options_.window);
  // Max squared norm ~ nnz_max * (max weight)^2, with weights rarely
  // exceeding ~12.
  info.max_norm_sq = static_cast<double>(options_.nnz_max) * 150.0;
  info.norm_ratio_hint = 422.81;  // Table 3's R for WIKI.
  return info;
}

}  // namespace swsketch
