// WIKI-sim: stand-in for the paper's Wikipedia tf-idf corpus (Table 3:
// d = 7047 features, 68 319 articles, timestamps spanning years with
// sharply accelerating publication rate). The experimental behaviour the
// paper attributes to WIKI — early time windows hold very few rows, recent
// ones hold tens of thousands, which keeps the samplers' queues small early
// on (Section 8.2) — comes from the arrival process; the rows themselves
// are sparse non-negative tf-idf weights with moderate norm spread
// (R ~ 423).
//
// The simulator draws sparse rows with Zipf-like weights and publishes them
// at times t_i = T * (i / n)^{1/3}, so the instantaneous arrival rate grows
// quadratically in t. The default dimensionality is scaled to 500 to keep
// dense-algebra evaluation affordable (DESIGN.md, substitution table);
// raise it via Options for paper-scale runs.
#ifndef SWSKETCH_DATA_WIKI_H_
#define SWSKETCH_DATA_WIKI_H_

#include "data/generators.h"
#include "util/random.h"

namespace swsketch {

/// Sparse tf-idf-like stream with accelerating arrivals.
class WikiStream : public DatasetStream {
 public:
  struct Options {
    size_t rows = 40000;
    size_t dim = 500;
    /// Nonzero features per row: uniform in [nnz_min, nnz_max].
    size_t nnz_min = 50;
    size_t nnz_max = 250;
    /// Total time span T (days in the metaphor).
    double span = 2000.0;
    /// Time window delta; chosen so late windows hold ~10k rows.
    double window = 578.0;
    uint64_t seed = 23;
  };

  explicit WikiStream(Options options);

  std::optional<Row> Next() override;
  std::optional<std::pair<SparseVector, double>> NextSparse() override;
  size_t dim() const override { return options_.dim; }
  std::string name() const override { return "WIKI"; }
  DatasetInfo info() const override;

 private:
  // Shared generation core: produces the sorted nonzeros and timestamp.
  std::optional<std::pair<SparseVector, double>> Generate();

  Options options_;
  Rng rng_;
  size_t produced_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DATA_WIKI_H_
