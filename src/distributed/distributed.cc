#include "distributed/distributed.h"

#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {
namespace {

// Static-scope "distributed." metrics: these entry points are free
// functions / thin coordinators, so handles are cached once per process
// instead of per instance.
Counter* FdMergesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("distributed.fd_merges");
  return c;
}
Counter* QueryStacksCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("distributed.query_stacks");
  return c;
}
Gauge* StackedRowsGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("distributed.stacked_rows");
  return g;
}
Counter* SwrUpdatesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("distributed.swr_updates");
  return c;
}
Counter* SwrQueriesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("distributed.swr_queries");
  return c;
}

}  // namespace

FrequentDirections MergeFrequentDirections(
    std::span<const FrequentDirections* const> workers) {
  SWSKETCH_CHECK_GT(workers.size(), 0u);
  FdMergesCounter()->Add();
  FrequentDirections merged(workers[0]->dim(), workers[0]->ell());
  for (const FrequentDirections* w : workers) {
    merged.MergeWith(*w);
  }
  return merged;
}

Matrix MergeWindowQueries(std::span<SlidingWindowSketch* const> workers) {
  SWSKETCH_CHECK_GT(workers.size(), 0u);
  QueryStacksCounter()->Add();
  Matrix b(0, workers[0]->dim());
  for (SlidingWindowSketch* w : workers) {
    b = b.VStack(w->Query());
  }
  StackedRowsGauge()->Set(static_cast<int64_t>(b.rows()));
  return b;
}

DistributedSwr::DistributedSwr(std::vector<SwrSketch*> workers)
    : workers_(std::move(workers)) {
  SWSKETCH_CHECK_GT(workers_.size(), 0u);
  for (const SwrSketch* w : workers_) {
    SWSKETCH_CHECK_EQ(w->ell(), workers_[0]->ell());
    SWSKETCH_CHECK_EQ(w->dim(), workers_[0]->dim());
  }
}

void DistributedSwr::Update(size_t worker_index, std::span<const double> row,
                            double ts) {
  // The index is caller-controlled routing, not a trusted invariant, and
  // folding ts into now_ is what lets Query() serve the current window
  // without an explicit AdvanceTo heartbeat (it advances every worker to
  // the max timestamp seen, expiring rows the union window has dropped).
  SWSKETCH_CHECK_LT(worker_index, workers_.size());
  now_ = std::max(now_, ts);
  SwrUpdatesCounter()->Add();
  workers_[worker_index]->Update(row, ts);
}

void DistributedSwr::AdvanceTo(double now) {
  now_ = std::max(now_, now);
  for (SwrSketch* w : workers_) w->AdvanceTo(now_);
}

Matrix DistributedSwr::Query() {
  SwrQueriesCounter()->Add();
  AdvanceTo(now_);
  const size_t ell = workers_[0]->ell();
  const size_t dim = workers_[0]->dim();

  // Union-window Frobenius mass = sum of the workers' window masses
  // (sub-streams are disjoint).
  double frob_sq = 0.0;
  std::vector<std::vector<std::optional<SwrSketch::ChainSample>>> samples;
  samples.reserve(workers_.size());
  for (SwrSketch* w : workers_) {
    frob_sq += w->FrobeniusSqEstimate();
    samples.push_back(w->ChainSamples());
  }

  Matrix b(0, dim);
  if (frob_sq <= 0.0) return b;
  const double frob = std::sqrt(frob_sq);
  for (size_t s = 0; s < ell; ++s) {
    // Max-stability: the union sample for slot s is the highest-priority
    // candidate across workers.
    const SwrSketch::ChainSample* best = nullptr;
    for (const auto& worker_samples : samples) {
      const auto& cand = worker_samples[s];
      if (cand.has_value() &&
          (best == nullptr || cand->log_priority > best->log_priority)) {
        best = &*cand;
      }
    }
    if (best == nullptr) continue;
    const double w = best->row->NormSq();
    b.AppendRowScaled(best->row->view(),
                      frob / std::sqrt(static_cast<double>(ell) * w));
  }
  return b;
}

size_t DistributedSwr::RowsStored() const {
  size_t n = 0;
  for (const SwrSketch* w : workers_) n += w->RowsStored();
  return n;
}

}  // namespace swsketch
