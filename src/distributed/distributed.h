// Distributed sliding-window sketching — the extension the paper lists as
// future work (Section 9), built from the same primitives the paper's
// frameworks rest on:
//
//  * mergeability (Section 6.1): Frequent Directions sketches from k
//    workers merge into one sketch for the union stream within the summed
//    error budgets — the distributed-streams setting of the paper's
//    reference [21];
//  * max-stability of priorities: norm-proportional priority samples from
//    disjoint sub-streams combine by taking the highest-priority candidate
//    per sample slot, yielding an exact SWR sample of the union window;
//  * decomposability (Lemma 7.1): per-worker window approximations simply
//    stack into an approximation of the union window, with additive error.
#ifndef SWSKETCH_DISTRIBUTED_DISTRIBUTED_H_
#define SWSKETCH_DISTRIBUTED_DISTRIBUTED_H_

#include <memory>
#include <span>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "core/swr.h"
#include "sketch/frequent_directions.h"

namespace swsketch {

/// Merges per-worker Frequent Directions sketches (equal dim and ell) into
/// one sketch of the concatenated input. Workers are left untouched.
FrequentDirections MergeFrequentDirections(
    std::span<const FrequentDirections* const> workers);

/// Stacks per-worker sliding-window approximations into an approximation
/// of the union window (decomposability): B = [B_1; ...; B_k]. Valid for
/// any sketch type; the covariance error is at most the sum of the
/// workers' errors (each relative to its own sub-window mass).
Matrix MergeWindowQueries(std::span<SlidingWindowSketch* const> workers);

/// Coordinator for distributed SWR: each worker runs SwrSketch over its
/// local sub-stream (same window spec, same ell, distinct seeds). A query
/// selects, per sample slot, the worker candidate with the highest
/// priority — which is distributed norm-proportional sampling of the union
/// window — and rescales by the summed Frobenius estimate.
class DistributedSwr {
 public:
  /// Workers are borrowed and must outlive the coordinator. All must share
  /// ell and dim; seeds must differ for sample independence.
  explicit DistributedSwr(std::vector<SwrSketch*> workers);

  /// Routes a row to worker `worker_index` (the caller's partitioning).
  void Update(size_t worker_index, std::span<const double> row, double ts);

  /// Moves every worker's window forward (e.g. on coordinator heartbeat).
  void AdvanceTo(double now);

  /// The union-window approximation.
  Matrix Query();

  /// Total candidate rows stored across workers.
  size_t RowsStored() const;

  size_t num_workers() const { return workers_.size(); }

 private:
  std::vector<SwrSketch*> workers_;
  double now_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DISTRIBUTED_DISTRIBUTED_H_
