#include "distributed/sharded_sketch.h"

#include <utility>

#include "util/logging.h"

namespace swsketch {
namespace {

size_t CheckedDim(
    const std::vector<std::unique_ptr<SlidingWindowSketch>>& shards) {
  SWSKETCH_CHECK_GT(shards.size(), 0u);
  return shards[0]->dim();
}

}  // namespace

ShardedSketch::ShardedSketch(
    std::vector<std::unique_ptr<SlidingWindowSketch>> shards,
    QueryReduceSpec reduce, Options options)
    : dim_(CheckedDim(shards)),
      window_(shards[0]->window()),
      reduce_(reduce),
      options_(options),
      name_("SHARDED-" + shards[0]->name()),
      metrics_(MetricScope(MetricScope::Slug(name_))),
      cached_result_(0, dim_) {
  SWSKETCH_CHECK_GE(options_.block_rows, 1u);
  options_.shards = shards.size();
  const MetricScope scope(MetricScope::Slug(name_));
  shards_.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    SWSKETCH_CHECK_EQ(shards[i]->dim(), dim_);
    auto shard = std::make_unique<Shard>(std::move(shards[i]), dim_,
                                         options_.queue_blocks);
    const std::string suffix = std::to_string(i);
    shard->rows_in = scope.counter("shard_rows." + suffix);
    shard->queue_depth = scope.gauge("queue_depth." + suffix);
    shard->occupancy = scope.gauge("occupancy." + suffix);
    shards_.push_back(std::move(shard));
  }
  if (options_.parallel) {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->writer = std::thread([this, s] { WriterLoop(s); });
    }
  }
}

ShardedSketch::~ShardedSketch() {
  for (auto& shard : shards_) FlushStaged(shard.get());
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->writer.joinable()) shard->writer.join();
  }
}

Result<std::unique_ptr<ShardedSketch>> ShardedSketch::Make(
    size_t dim, WindowSpec window, const SketchConfig& config,
    const Options& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("ShardedSketch needs >= 1 shard");
  }
  std::vector<std::unique_ptr<SlidingWindowSketch>> shards;
  shards.reserve(options.shards);
  for (size_t s = 0; s < options.shards; ++s) {
    SketchConfig shard_config = config;
    shard_config.seed = ShardSeed(config.seed, s);
    auto sketch = MakeSlidingWindowSketch(dim, window, shard_config);
    if (!sketch.ok()) return sketch.status();
    shards.push_back(sketch.take());
  }
  return std::make_unique<ShardedSketch>(
      std::move(shards), ReduceSpecFor(config.algorithm, config.ell),
      options);
}

uint64_t ShardedSketch::ShardSeed(uint64_t seed, size_t shard) {
  if (shard == 0) return seed;  // S=1 == the unsharded sketch, bit-exact.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(shard);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void ShardedSketch::Update(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  SWSKETCH_CHECK_GE(ts, now_);
  ++mutation_seq_;
  now_ = ts;
  metrics_.rows_ingested->Add();
  Shard* shard = shards_[rr_].get();
  rr_ = rr_ + 1 == shards_.size() ? 0 : rr_ + 1;
  shard->rows_in->Add();
  if (shard->staged.rows() == 0) {
    shard->staged.ReserveRows(options_.block_rows);
  }
  shard->staged.AppendRow(row);
  shard->staged_ts.push_back(ts);
  if (shard->staged.rows() >= options_.block_rows) FlushStaged(shard);
}

void ShardedSketch::UpdateBatch(const Matrix& rows,
                                std::span<const double> ts) {
  SWSKETCH_CHECK_EQ(rows.rows(), ts.size());
  if (rows.rows() == 0) return;
  SWSKETCH_CHECK_EQ(rows.cols(), dim_);
  // The round-robin split re-blocks rows per shard anyway, so the batch
  // entry point is just the row loop with the dispatch inlined.
  for (size_t i = 0; i < rows.rows(); ++i) {
    ShardedSketch::Update(rows.Row(i), ts[i]);
  }
}

void ShardedSketch::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  ++mutation_seq_;
  now_ = now;
  metrics_.advances->Add();
  for (auto& shard : shards_) {
    // Staged rows must land before the advance: their timestamps precede
    // `now`, and each shard enforces monotone time on its own stream.
    FlushStaged(shard.get());
    Command cmd;
    cmd.kind = Command::kAdvance;
    cmd.now = now;
    Dispatch(shard.get(), std::move(cmd));
  }
}

Matrix ShardedSketch::Query() {
  metrics_.queries->Add();
  if (result_valid_ && result_seq_ == mutation_seq_) {
    metrics_.query_cache_hits->Add();
    return cached_result_;
  }
  metrics_.query_cache_misses->Add();
  // Align the shards: staged rows out, then every shard advanced to the
  // global high-water timestamp so expiry matches the logical window (a
  // shard that happened to receive no recent rows would otherwise still
  // hold rows the logical window has expired). Alignment is idempotent and
  // not a logical mutation, so it does not bump mutation_seq_.
  for (auto& shard : shards_) {
    FlushStaged(shard.get());
    Command cmd;
    cmd.kind = Command::kAdvance;
    cmd.now = now_;
    Dispatch(shard.get(), std::move(cmd));
  }
  Quiesce();

  {
    ScopedTimer timer(metrics_.query_reduce_ns);
    // Writers are quiescent, so the pool tasks have exclusive use of their
    // shard; each writes only parts[i] (ParallelFor determinism contract),
    // and the reduce tree's pair order is fixed by the shard count.
    std::vector<Matrix> parts(shards_.size(), Matrix(0, dim_));
    ParallelFor(
        shards_.size(),
        [&](size_t i) { parts[i] = shards_[i]->sketch->Query(); },
        {.grain = 1, .pool = options_.reduce_pool});
    cached_result_ = TreeReduceQueries(reduce_, dim_, std::move(parts),
                                       options_.reduce_pool);
  }
  if (shards_.size() > 1) {
    metrics_.reduce_merges->Add(shards_.size() - 1);
  }
  metrics_.stacked_rows->Set(static_cast<int64_t>(cached_result_.rows()));
  result_valid_ = true;
  result_seq_ = mutation_seq_;
  return cached_result_;
}

void ShardedSketch::Flush() {
  metrics_.flushes->Add();
  for (auto& shard : shards_) FlushStaged(shard.get());
  Quiesce();
}

size_t ShardedSketch::RowsStored() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->staged.rows() +
         shard->stored.load(std::memory_order_relaxed);
  }
  return n;
}

void ShardedSketch::InvalidateQueryCache() {
  result_valid_ = false;
  cached_result_ = Matrix(0, dim_);
}

const SlidingWindowSketch& ShardedSketch::shard(size_t i) const {
  SWSKETCH_CHECK_LT(i, shards_.size());
  return *shards_[i]->sketch;
}

void ShardedSketch::FlushStaged(Shard* shard) {
  if (shard->staged.rows() == 0) return;
  Command cmd;
  cmd.kind = Command::kRows;
  cmd.rows = std::move(shard->staged);
  cmd.ts = std::move(shard->staged_ts);
  shard->staged = Matrix(0, dim_);
  shard->staged_ts.clear();
  metrics_.blocks_enqueued->Add();
  Dispatch(shard, std::move(cmd));
}

void ShardedSketch::Dispatch(Shard* shard, Command cmd) {
  shard->queue_depth->Add(1);
  if (options_.parallel) {
    ++shard->enqueued;
    shard->queue.Push(std::move(cmd));
  } else {
    ApplyCommand(shard, &cmd);
  }
}

void ShardedSketch::ApplyCommand(Shard* shard, Command* cmd) {
  if (cmd->kind == Command::kRows) {
    ScopedTimer timer(metrics_.block_apply_ns);
    shard->sketch->UpdateBatch(cmd->rows, cmd->ts);
    metrics_.blocks_applied->Add();
  } else {
    shard->sketch->AdvanceTo(cmd->now);
  }
  const uint64_t stored = shard->sketch->RowsStored();
  shard->stored.store(stored, std::memory_order_relaxed);
  shard->occupancy->Set(static_cast<int64_t>(stored));
  shard->queue_depth->Add(-1);
}

void ShardedSketch::Quiesce() const {
  if (!options_.parallel) return;
  for (const auto& sp : shards_) {
    Shard* shard = sp.get();
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->applied_cv.wait(
        lock, [shard] { return shard->applied == shard->enqueued; });
  }
}

void ShardedSketch::WriterLoop(Shard* shard) {
  Command cmd;
  while (shard->queue.Pop(&cmd)) {
    ApplyCommand(shard, &cmd);
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      ++shard->applied;
    }
    shard->applied_cv.notify_all();
  }
}

}  // namespace swsketch
