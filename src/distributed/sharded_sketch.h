// Sharded parallel ingest: one logical sliding-window stream partitioned
// round-robin across S shard sketches, each owned by exactly one writer
// thread (DESIGN.md section 8).
//
// Ingest path: the coordinator thread stages rows per shard into row
// blocks and hands each full block to the shard's writer through a bounded
// SPSC queue — no lock is shared between shards, and the writer applies
// blocks through the UpdateBatch fast paths. Back-pressure is the queue
// bound: a coordinator outrunning every writer blocks instead of buffering
// unboundedly.
//
// Window semantics: every shard keeps the *same* WindowSpec and receives
// *global* timestamps (for sequence windows, the global arrival index), so
// each shard's window is exactly the logical window restricted to its
// sub-stream and the union of shard windows is the logical window — no
// per-shard re-indexing, no boundary drift. Before reducing, a query
// flushes staged rows and advances every shard to the global high-water
// timestamp so expiry is aligned across shards.
//
// Determinism (the sharded == serial contract, tested bit-exactly for
// LM-FD / DI-FD / LM-HASH / DI-HASH):
//  * block boundaries are decided by the coordinator alone, so parallel
//    and serial (Options::parallel = false) execution dispatch identical
//    command sequences; each shard applies its own commands in FIFO order
//    either way, and deterministic backends make shard state a pure
//    function of that sequence;
//  * the query reduce is TreeReduceQueries' fixed pair-order tree, so pool
//    scheduling cannot reorder a single floating-point operation;
//  * with one shard the reduce is the identity and Options::parallel makes
//    no observable difference, so an S=1 ShardedSketch is byte-equal to
//    the plain sketch it wraps.
//
// Seed-per-shard scheme: shard 0 keeps the configured seed (hence S=1
// equals the unsharded sketch bit-for-bit, randomized backends included);
// shards >= 1 get splitmix64-mixed seeds. Distinct seeds are *required*
// for correctness of the kSum reduce — shard-local row ids restart at 0
// per shard, so equal seeds would correlate the hash/projection draws of
// different shards and bias the summed sketch's cross terms.
#ifndef SWSKETCH_DISTRIBUTED_SHARDED_SKETCH_H_
#define SWSKETCH_DISTRIBUTED_SHARDED_SKETCH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "core/merge_reduce.h"
#include "core/sliding_window_sketch.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace swsketch {

/// One logical sliding-window sketch served by S single-writer shards.
/// The coordinator-facing interface (every method below) must be driven
/// from one thread, like any other SlidingWindowSketch; the parallelism
/// lives behind it. Wrap in ConcurrentSketch for multi-threaded callers.
class ShardedSketch : public SlidingWindowSketch {
 public:
  struct Options {
    /// Shard (and writer thread) count S. Must be >= 1.
    size_t shards = 4;
    /// Staged rows per hand-off block: the writer-side UpdateBatch unit.
    size_t block_rows = 256;
    /// Per-shard queue bound, in blocks (back-pressure depth).
    size_t queue_blocks = 8;
    /// False applies every command inline on the coordinator thread — the
    /// serial reference execution of the same sharded pipeline, used by
    /// the bit-identity tests and as the S=1 baseline.
    bool parallel = true;
    /// Pool for the per-shard queries + reduce tree at query time.
    /// nullptr = ThreadPool::Shared().
    ThreadPool* reduce_pool = nullptr;
  };

  /// Takes ownership of the shard sketches (all must share dim and
  /// window). `reduce` says how per-shard query results combine.
  ShardedSketch(std::vector<std::unique_ptr<SlidingWindowSketch>> shards,
                QueryReduceSpec reduce, Options options);

  /// Builds options.shards factory sketches with per-shard seeds
  /// (ShardSeed) and the reduce spec implied by config.algorithm.
  static Result<std::unique_ptr<ShardedSketch>> Make(size_t dim,
                                                     WindowSpec window,
                                                     const SketchConfig& config,
                                                     const Options& options);

  /// Seed for shard `shard` under base `seed`: shard 0 keeps `seed`
  /// (so S=1 reproduces the unsharded sketch exactly), later shards get
  /// splitmix64-mixed values.
  static uint64_t ShardSeed(uint64_t seed, size_t shard);

  /// Flushes staged rows to the shards, closes every queue and joins the
  /// writers. No row passed to Update is ever dropped.
  ~ShardedSketch() override;

  void Update(std::span<const double> row, double ts) override;
  void UpdateBatch(const Matrix& rows, std::span<const double> ts) override;
  void AdvanceTo(double now) override;

  /// Flush + align + quiesce + tree-reduce. Cached: repeated queries with
  /// no intervening mutation return the cached matrix without touching the
  /// shards.
  Matrix Query() override;

  /// Drains staged rows and blocks until every writer has applied its
  /// queue. Afterwards Query()/RowsStored() observe all ingested rows.
  void Flush() override;

  uint64_t StateVersion() const override { return mutation_seq_; }

  /// Staged rows plus each shard's last-published stored-row count. Never
  /// blocks (the harness samples it on the hot path): writers publish
  /// their count after every applied block, so the value is exact after
  /// Flush()/Query() and at most one queue of blocks stale mid-flight.
  size_t RowsStored() const override;

  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }
  const WindowSpec& window() const override { return window_; }

  /// Drops the cached query result (bench/test hook; behaviour unchanged).
  void InvalidateQueryCache();

  size_t num_shards() const { return shards_.size(); }

  /// Read access to a quiesced shard (test hook). Call Flush() first;
  /// unsynchronized access to an active shard is a data race.
  const SlidingWindowSketch& shard(size_t i) const;

  const QueryReduceSpec& reduce_spec() const { return reduce_; }

 private:
  /// One queue item: a row block or a window advance. FIFO per shard, so
  /// an advance takes effect exactly after the blocks dispatched before
  /// it.
  struct Command {
    enum Kind : uint8_t { kRows, kAdvance };
    Kind kind = kRows;
    Matrix rows{0, 0};
    std::vector<double> ts;
    double now = 0.0;
  };

  struct Shard {
    Shard(std::unique_ptr<SlidingWindowSketch> s, size_t dim,
          size_t queue_capacity)
        : sketch(std::move(s)), staged(0, dim), queue(queue_capacity) {}

    std::unique_ptr<SlidingWindowSketch> sketch;  // Writer-owned when live.
    Matrix staged;                  // Coordinator-side rows awaiting dispatch.
    std::vector<double> staged_ts;
    SpscQueue<Command> queue;
    std::thread writer;
    uint64_t enqueued = 0;          // Coordinator-side dispatch count.
    std::mutex mu;                  // Guards `applied`.
    std::condition_variable applied_cv;
    uint64_t applied = 0;
    /// Stored-row count published by the writer after each command; the
    /// per-instance source RowsStored() sums (the occupancy gauge mirrors
    /// it but is shared by name across instances).
    std::atomic<uint64_t> stored{0};
    Counter* rows_in = nullptr;     // sharded_*.shard_rows.<i>
    Gauge* queue_depth = nullptr;   // sharded_*.queue_depth.<i>
    Gauge* occupancy = nullptr;     // sharded_*.occupancy.<i>
  };

  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : rows_ingested(scope.counter("rows_ingested")),
          blocks_enqueued(scope.counter("blocks_enqueued")),
          blocks_applied(scope.counter("blocks_applied")),
          advances(scope.counter("advances")),
          flushes(scope.counter("flushes")),
          queries(scope.counter("queries")),
          query_cache_hits(scope.counter("query_cache_hits")),
          query_cache_misses(scope.counter("query_cache_misses")),
          reduce_merges(scope.counter("reduce_merges")),
          stacked_rows(scope.gauge("stacked_rows")),
          block_apply_ns(scope.histogram("block_apply_ns")),
          query_reduce_ns(scope.histogram("query_reduce_ns")) {}

    Counter* rows_ingested;
    Counter* blocks_enqueued;
    Counter* blocks_applied;
    Counter* advances;
    Counter* flushes;
    Counter* queries;
    Counter* query_cache_hits;
    Counter* query_cache_misses;
    Counter* reduce_merges;
    Gauge* stacked_rows;
    Histogram* block_apply_ns;
    Histogram* query_reduce_ns;
  };

  void FlushStaged(Shard* shard);
  void Dispatch(Shard* shard, Command cmd);
  void ApplyCommand(Shard* shard, Command* cmd);
  /// Blocks until applied == enqueued on every shard (no-op when serial).
  void Quiesce() const;
  void WriterLoop(Shard* shard);

  size_t dim_;
  WindowSpec window_;
  QueryReduceSpec reduce_;
  Options options_;
  std::string name_;
  MetricSet metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t rr_ = 0;          // Next shard in the round-robin rotation.
  double now_ = 0.0;       // Global high-water timestamp.
  uint64_t mutation_seq_ = 0;

  // Query cache: valid while mutation_seq_ is unchanged.
  Matrix cached_result_{0, 0};
  bool result_valid_ = false;
  uint64_t result_seq_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_DISTRIBUTED_SHARDED_SKETCH_H_
