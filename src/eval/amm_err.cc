#include "eval/amm_err.h"

#include <cmath>

#include "linalg/power_iteration.h"
#include "util/logging.h"

namespace swsketch {

double AmmError(const Matrix& exact_product, double frob_a_sq,
                double frob_b_sq, const Matrix& estimate) {
  SWSKETCH_CHECK_GT(frob_a_sq, 0.0);
  SWSKETCH_CHECK_GT(frob_b_sq, 0.0);
  Matrix diff = exact_product;
  if (!estimate.empty()) {
    SWSKETCH_CHECK_EQ(estimate.rows(), exact_product.rows());
    SWSKETCH_CHECK_EQ(estimate.cols(), exact_product.cols());
    auto data = diff.Data();
    const auto est = estimate.Data();
    for (size_t i = 0; i < data.size(); ++i) data[i] -= est[i];
  }
  return SpectralNorm(diff) / std::sqrt(frob_a_sq * frob_b_sq);
}

double AmmErrorDense(const Matrix& a, const Matrix& b,
                     const Matrix& estimate) {
  SWSKETCH_CHECK_EQ(a.rows(), b.rows());
  Matrix product(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const auto ra = a.Row(r);
    const auto rb = b.Row(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double left = ra[i];
      if (left == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) product(i, j) += left * rb[j];
    }
  }
  return AmmError(product, a.FrobeniusNormSq(), b.FrobeniusNormSq(),
                  estimate);
}

double AmmErrorBound(size_t ell, double frob_a_sq, double frob_b_sq,
                     double slack) {
  SWSKETCH_CHECK_GT(ell, 0u);
  SWSKETCH_CHECK_GT(frob_a_sq, 0.0);
  SWSKETCH_CHECK_GT(frob_b_sq, 0.0);
  return slack * (frob_a_sq + frob_b_sq) /
         (static_cast<double>(ell) * std::sqrt(frob_a_sq * frob_b_sq));
}

}  // namespace swsketch
