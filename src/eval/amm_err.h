// Approximate matrix multiplication error (the AMM workload's quality
// metric, following the co-sketch analysis of arXiv 2502.17940):
//   amm-err(A, B, P) = ||A^T B - P||_2 / (||A||_F ||B||_F).
// The d_a x d_b difference is a general rectangular matrix, so its
// spectral norm (largest singular value) comes from power iteration on
// the difference.
#ifndef SWSKETCH_EVAL_AMM_ERR_H_
#define SWSKETCH_EVAL_AMM_ERR_H_

#include <cstddef>

#include "linalg/matrix.h"

namespace swsketch {

/// amm-err given the exact window product A^T B and the operands' squared
/// Frobenius norms. `estimate` must be d_a x d_b (same shape as
/// `exact_product`); pass an empty estimate for the empty-sketch
/// convention (errors against the zero matrix).
double AmmError(const Matrix& exact_product, double frob_a_sq,
                double frob_b_sq, const Matrix& estimate);

/// amm-err between two explicit operand matrices and an estimate
/// (test/diagnostic form); rows of `a` and `b` are paired by index.
double AmmErrorDense(const Matrix& a, const Matrix& b,
                     const Matrix& estimate);

/// The co-sketch guarantee: an FD sketch of the stacked matrix M = [A | B]
/// at ell rows bounds the product error by the covariance bound on M,
///   ||A^T B - P||_2 <= ||M^T M - C^T C||_2 <= ||M||_F^2 / (ell - k),
/// which normalized by ||A||_F ||B||_F (with the rank term dropped, k = 0)
/// gives
///   amm-err <= (||A||_F^2 + ||B||_F^2) / (ell * ||A||_F ||B||_F).
/// The sliding-window backends (DS-FD, LM, DI) guarantee a constant-factor
/// relaxation of the one-shot bound over the window; `slack` carries that
/// constant (the harness and tests assert against slack-scaled bounds).
double AmmErrorBound(size_t ell, double frob_a_sq, double frob_b_sq,
                     double slack = 1.0);

}  // namespace swsketch

#endif  // SWSKETCH_EVAL_AMM_ERR_H_
