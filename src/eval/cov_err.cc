#include "eval/cov_err.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/power_iteration.h"
#include "linalg/subspace_iteration.h"
#include "linalg/svd.h"
#include "util/logging.h"

namespace swsketch {

double CovarianceError(const Matrix& window_gram, double window_frob_sq,
                       const Matrix& b) {
  SWSKETCH_CHECK_GT(window_frob_sq, 0.0);
  Matrix diff = window_gram;
  if (!b.empty()) {
    SWSKETCH_CHECK_EQ(b.cols(), window_gram.cols());
    // Subtract B^T B on the upper triangle only and mirror once: the
    // per-update mirror would double the cost of this evaluation hot path.
    for (size_t i = 0; i < b.rows(); ++i) {
      diff.AddOuterProductUpper(b.Row(i), -1.0);
    }
    diff.MirrorUpperToLower();
  }
  return SpectralNormSymmetric(diff) / window_frob_sq;
}

double CovarianceErrorDense(const Matrix& a, const Matrix& b) {
  return CovarianceError(a.Gram(), a.FrobeniusNormSq(), b);
}

double ProjectionError(const Matrix& a, const Matrix& b, size_t k) {
  SWSKETCH_CHECK_GT(k, 0u);
  SWSKETCH_CHECK_GT(a.rows(), 0u);
  const size_t d = a.cols();
  const double frob_sq = a.FrobeniusNormSq();
  SWSKETCH_CHECK_GT(frob_sq, 0.0);

  // Numerator: ||A - A V_k V_k^T||_F^2 = ||A||_F^2 - ||A V_k||_F^2, where
  // V_k spans the top-k right singular directions of B.
  double captured = 0.0;
  if (!b.empty()) {
    SWSKETCH_CHECK_EQ(b.cols(), d);
    const SvdResult svd = ThinSvd(b);
    const size_t kk = std::min(k, svd.vt.rows());
    std::vector<double> proj(a.rows());
    for (size_t c = 0; c < kk; ++c) {
      std::vector<double> v(d);
      for (size_t j = 0; j < d; ++j) v[j] = svd.vt(c, j);
      a.Apply(v, proj);
      for (double p : proj) captured += p * p;
    }
  }
  const double residual = std::max(frob_sq - captured, 0.0);

  // Denominator: ||A - A_k||_F^2 = ||A||_F^2 - sum of top-k eigenvalues of
  // A^T A.
  const Matrix gram = a.Gram();
  const TopEigen top = TopEigenpairsPsd(gram, std::min(k, d));
  double best_captured = 0.0;
  for (double l : top.values) best_captured += std::max(l, 0.0);
  const double best_residual = std::max(frob_sq - best_captured, 0.0);

  if (best_residual <= 1e-12 * frob_sq) {
    // A is (numerically) rank <= k: either B nails it too, or the metric
    // is infinite.
    return residual <= 1e-9 * frob_sq
               ? 1.0
               : std::numeric_limits<double>::infinity();
  }
  return residual / best_residual;
}

}  // namespace swsketch
