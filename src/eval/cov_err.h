// Covariance error (the paper's quality metric):
//   cova-err(A, B) = ||A^T A - B^T B||_2 / ||A||_F^2.
// Computed exactly at evaluation checkpoints: the d x d difference is
// symmetric (generally indefinite), so its spectral norm comes from power
// iteration on the difference matrix.
#ifndef SWSKETCH_EVAL_COV_ERR_H_
#define SWSKETCH_EVAL_COV_ERR_H_

#include "linalg/matrix.h"

namespace swsketch {

/// cova-err given the exact window Gram matrix and squared Frobenius norm.
/// `b` is the approximation (any number of rows, same column count).
double CovarianceError(const Matrix& window_gram, double window_frob_sq,
                       const Matrix& b);

/// Covariance error between two explicit matrices (test/diagnostic form).
double CovarianceErrorDense(const Matrix& a, const Matrix& b);

/// Projection error — the relative-error metric of the FD follow-up work
/// ([19], [20]; the "different error metrics" the paper's Section 9 points
/// to): project A onto the top-k row space of B and compare the residual
/// against the optimal rank-k residual:
///
///   proj-err(A, B, k) = ||A - A pi_{B,k}||_F^2 / ||A - A_k||_F^2  (>= 1)
///
/// 1 is optimal; values near 1 mean B's top-k subspace captures A as well
/// as A's own top-k subspace. Returns +inf when A is exactly rank <= k
/// but B's subspace misses it.
double ProjectionError(const Matrix& a, const Matrix& b, size_t k);

}  // namespace swsketch

#endif  // SWSKETCH_EVAL_COV_ERR_H_
