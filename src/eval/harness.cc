#include "eval/harness.h"

#include <algorithm>

#include "core/best_rank_k.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace swsketch {

namespace {

// Handles under the fixed "harness." prefix: stream rows pulled, mature
// checkpoints evaluated, and checkpoint evaluation latency.
struct HarnessMetrics {
  Counter* rows;
  Counter* checkpoints;
  Histogram* checkpoint_ns;

  static const HarnessMetrics& Get() {
    static const HarnessMetrics m = [] {
      MetricScope scope("harness");
      return HarnessMetrics{scope.counter("rows"),
                            scope.counter("checkpoints"),
                            scope.histogram("checkpoint_ns")};
    }();
    return m;
  }
};

// Evaluates one mature checkpoint (exact Gram + per-sketch Query/error,
// optionally on the pool) and appends a Checkpoint per sketch. Shared by
// the per-row and batched ingest paths so both produce identical records.
void EvalCheckpoint(std::span<SlidingWindowSketch* const> sketches,
                    const HarnessOptions& options, const WindowBuffer& buffer,
                    size_t dim, size_t row_index, double ts,
                    std::vector<HarnessResult>* results) {
  HarnessMetrics::Get().checkpoints->Add();
  ScopedTimer timer(HarnessMetrics::Get().checkpoint_ns);
  const Matrix gram = buffer.GramMatrix(dim);
  const double frob_sq = buffer.FrobeniusNormSq();
  double best_err = 0.0, zero_err = 0.0;
  if (options.best_k > 0) {
    const ReferenceErrors refs = BestAndZeroError(gram, options.best_k,
                                                  frob_sq);
    best_err = refs.best_err;
    zero_err = refs.zero_err;
  }
  // One task per sketch: Query + spectral-norm evaluation dominate
  // checkpoint cost and are independent across sketches. Each task
  // reads only its own sketch and writes its own slot, so parallel
  // and serial execution produce bit-identical checkpoints.
  std::vector<Checkpoint> ckpts(sketches.size());
  const auto eval_one = [&](size_t s) {
    // Asynchronous-ingest sketches (sharded ingest) must observe every
    // row fed so far before being measured; synchronous sketches no-op.
    sketches[s]->Flush();
    Checkpoint c;
    c.row_index = row_index;
    c.ts = ts;
    c.rows_stored = sketches[s]->RowsStored();
    c.window_rows = buffer.size();
    c.best_err = best_err;
    c.zero_err = zero_err;
    const Matrix b = sketches[s]->Query();
    c.cova_err = CovarianceError(gram, frob_sq, b);
    ckpts[s] = c;
  };
  if (options.parallel_checkpoints) {
    ParallelFor(sketches.size(), eval_one, {.grain = 1, .pool = options.pool});
  } else {
    for (size_t s = 0; s < sketches.size(); ++s) eval_one(s);
  }
  for (size_t s = 0; s < sketches.size(); ++s) {
    (*results)[s].checkpoints.push_back(ckpts[s]);
  }
}

}  // namespace

std::vector<HarnessResult> RunMany(RowStream* stream,
                                   std::span<SlidingWindowSketch* const>
                                       sketches,
                                   const HarnessOptions& options) {
  SWSKETCH_CHECK_GT(sketches.size(), 0u);
  SWSKETCH_CHECK_GT(options.total_rows, 0u);
  const WindowSpec window = sketches[0]->window();
  WindowBuffer buffer(window);

  // Checkpoint row indices, evenly spaced across the stream; immature
  // windows (before the first full window) are skipped at runtime.
  std::vector<size_t> ckpt_indices;
  const size_t nc = std::max<size_t>(options.num_checkpoints, 1);
  for (size_t i = 1; i <= nc; ++i) {
    size_t idx = options.total_rows * i / (nc + 1);
    if (idx > 0) ckpt_indices.push_back(idx - 1);
  }
  ckpt_indices.erase(std::unique(ckpt_indices.begin(), ckpt_indices.end()),
                     ckpt_indices.end());

  std::vector<HarnessResult> results(sketches.size());
  std::vector<CostAccumulator> costs(sketches.size());

  double first_ts = 0.0;
  bool have_first = false;
  size_t row_index = 0;
  size_t next_ckpt = 0;
  const size_t dim = stream->dim();

  // --query_every support: fire an untimed Query() on every sketch each
  // time `query_every` rows have gone in. Queries only touch cache state,
  // so checkpoint records are identical with this on or off.
  size_t rows_until_query = options.query_every;
  const auto maybe_query = [&](size_t ingested) {
    if (options.query_every == 0) return;
    if (ingested >= rows_until_query) {
      for (SlidingWindowSketch* s : sketches) (void)s->Query();
      rows_until_query = options.query_every -
                         (ingested - rows_until_query) % options.query_every;
    } else {
      rows_until_query -= ingested;
    }
  };

  if (options.batch_rows > 1) {
    // Batched ingest: pull blocks straight from the stream via NextBatch
    // (loaders like CSV parse directly into the block) and hand each sketch
    // one UpdateBatch per block. Pulls are capped at the next checkpoint
    // index, so a checkpoint always observes exactly the rows up to it —
    // checkpoint records match the per-row path block-for-block.
    Matrix block(0, dim);
    block.ReserveRows(options.batch_rows);
    std::vector<double> block_ts;
    for (;;) {
      size_t want = options.batch_rows;
      if (next_ckpt < ckpt_indices.size()) {
        want = std::min(want, ckpt_indices[next_ckpt] - row_index + 1);
      }
      const size_t got = stream->NextBatch(want, &block, &block_ts);
      if (got == 0) break;
      if (!have_first) {
        first_ts = block_ts[0];
        have_first = true;
      }
      const auto ingest_one = [&](size_t s) {
        if (options.measure_update_time) {
          Timer t;
          sketches[s]->UpdateBatch(block, block_ts);
          costs[s].AddSpanning(t.ElapsedNanos(), static_cast<int64_t>(got));
        } else {
          sketches[s]->UpdateBatch(block, block_ts);
        }
      };
      if (options.parallel_ingest) {
        ParallelFor(sketches.size(), ingest_one,
                    {.grain = 1, .pool = options.pool});
      } else {
        for (size_t s = 0; s < sketches.size(); ++s) ingest_one(s);
      }
      for (size_t i = 0; i < got; ++i) {
        const auto row = block.Row(i);
        buffer.Add(Row(std::vector<double>(row.begin(), row.end()),
                       block_ts[i]));
      }
      for (size_t s = 0; s < sketches.size(); ++s) {
        results[s].max_rows_stored =
            std::max(results[s].max_rows_stored, sketches[s]->RowsStored());
      }
      row_index += got;
      maybe_query(got);
      const double ts = block_ts[got - 1];
      if (next_ckpt < ckpt_indices.size() &&
          row_index - 1 == ckpt_indices[next_ckpt]) {
        ++next_ckpt;
        const bool mature =
            window.type() == WindowType::kSequence
                ? buffer.size() >= static_cast<size_t>(window.extent())
                : (ts - first_ts) >= window.extent();
        if (mature && !buffer.empty()) {
          EvalCheckpoint(sketches, options, buffer, dim, row_index - 1, ts,
                         &results);
        }
      }
    }
  } else {
    while (auto row = stream->Next()) {
      if (!have_first) {
        first_ts = row->ts;
        have_first = true;
      }
      for (size_t s = 0; s < sketches.size(); ++s) {
        if (options.measure_update_time) {
          Timer t;
          sketches[s]->Update(row->view(), row->ts);
          costs[s].Add(t.ElapsedNanos());
        } else {
          sketches[s]->Update(row->view(), row->ts);
        }
      }
      buffer.Add(*row);
      maybe_query(1);

      for (size_t s = 0; s < sketches.size(); ++s) {
        results[s].max_rows_stored =
            std::max(results[s].max_rows_stored, sketches[s]->RowsStored());
      }

      const bool at_ckpt = next_ckpt < ckpt_indices.size() &&
                           row_index == ckpt_indices[next_ckpt];
      if (at_ckpt) {
        ++next_ckpt;
        // Window maturity: a full sequence window, or a full time span.
        const bool mature =
            window.type() == WindowType::kSequence
                ? buffer.size() >= static_cast<size_t>(window.extent())
                : (row->ts - first_ts) >= window.extent();
        if (mature && !buffer.empty()) {
          EvalCheckpoint(sketches, options, buffer, dim, row_index, row->ts,
                         &results);
        }
      }
      ++row_index;
    }
  }

  HarnessMetrics::Get().rows->Add(row_index);
  for (size_t s = 0; s < sketches.size(); ++s) {
    HarnessResult& r = results[s];
    r.rows_processed = row_index;
    r.avg_update_ns = costs[s].AverageNanos();
    double sum = 0.0, best_sum = 0.0, zero_sum = 0.0;
    for (const Checkpoint& c : r.checkpoints) {
      sum += c.cova_err;
      best_sum += c.best_err;
      zero_sum += c.zero_err;
      r.max_err = std::max(r.max_err, c.cova_err);
      r.max_best_err = std::max(r.max_best_err, c.best_err);
    }
    if (!r.checkpoints.empty()) {
      r.avg_err = sum / static_cast<double>(r.checkpoints.size());
      r.avg_best_err = best_sum / static_cast<double>(r.checkpoints.size());
      r.avg_zero_err = zero_sum / static_cast<double>(r.checkpoints.size());
    }
  }
  return results;
}

HarnessResult RunSketch(RowStream* stream, SlidingWindowSketch* sketch,
                        const HarnessOptions& options) {
  SlidingWindowSketch* arr[1] = {sketch};
  return RunMany(stream, std::span<SlidingWindowSketch* const>(arr, 1),
                 options)[0];
}

}  // namespace swsketch
