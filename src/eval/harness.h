// Experiment harness: drives a row stream through a sliding-window sketch,
// measuring at checkpoints the observed covariance error against the exact
// window (kept in an evaluation-only WindowBuffer), the rows stored by the
// sketch, and the average per-row update cost. This is the machinery behind
// every figure reproduction in bench/.
#ifndef SWSKETCH_EVAL_HARNESS_H_
#define SWSKETCH_EVAL_HARNESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/sliding_window_sketch.h"
#include "stream/row_stream.h"
#include "stream/window.h"
#include "util/parallel.h"

namespace swsketch {

struct HarnessOptions {
  /// Number of error checkpoints, spread evenly after warmup (one full
  /// window).
  size_t num_checkpoints = 10;
  /// Total rows the stream will produce (drives checkpoint placement).
  size_t total_rows = 0;
  /// Measure per-update wall time (adds a timer call per row).
  bool measure_update_time = true;
  /// Also evaluate the optimal best-rank-k error at each checkpoint using
  /// k = best_k (0 disables; used for the BEST reference series).
  size_t best_k = 0;
  /// Evaluate checkpoints (Query + covariance error per sketch) on the
  /// thread pool, one task per sketch. Updates always stay serial (the
  /// stream is consumed in order), and every task is self-contained, so
  /// the results are bit-identical to a serial run for deterministic
  /// sketches.
  bool parallel_checkpoints = true;
  /// Rows fed per UpdateBatch call. 1 keeps the legacy per-row Update path
  /// untouched; > 1 buffers the stream into blocks of this many rows (cut
  /// early at checkpoints so every checkpoint still sees exactly the rows
  /// up to its index) and ingests each block with one UpdateBatch per
  /// sketch. With batching, avg_update_ns is total ingest time over rows
  /// and max_rows_stored is sampled at block boundaries rather than per
  /// row (transient within-block peaks are not observed).
  size_t batch_rows = 1;
  /// Ingest each block on the thread pool, one task per sketch per block
  /// (sketches are independent; the stream stays in order). Only
  /// meaningful when batch_rows > 1. Per-sketch update timing still works:
  /// each task times its own UpdateBatch.
  bool parallel_ingest = false;
  /// Pool for checkpoint evaluation and parallel ingest; nullptr =
  /// ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Issue an (untimed, discarded) Query() on every sketch each time this
  /// many rows have been ingested (0 disables). Stresses the query-serving
  /// cache during figure runs: queries never mutate logical sketch state,
  /// so every checkpoint record is unchanged whether this is on or off —
  /// the differential tests and the fig3/fig5 error columns pin that.
  /// With batched ingest the query fires at the first block boundary at or
  /// after each multiple.
  size_t query_every = 0;
};

/// Per-checkpoint measurement.
struct Checkpoint {
  size_t row_index = 0;
  double ts = 0.0;
  double cova_err = 0.0;
  size_t rows_stored = 0;
  size_t window_rows = 0;
  double best_err = 0.0;  // Only when options.best_k > 0.
  double zero_err = 0.0;  // err(B = 0) floor; only when best_k > 0.
};

/// Aggregated run result.
struct HarnessResult {
  std::vector<Checkpoint> checkpoints;
  double avg_err = 0.0;
  double max_err = 0.0;
  double avg_best_err = 0.0;
  double max_best_err = 0.0;
  double avg_zero_err = 0.0;  // The B = 0 floor (Section 8.1 obs. (5)).
  size_t max_rows_stored = 0;
  double avg_update_ns = 0.0;
  size_t rows_processed = 0;
};

/// Runs `stream` through `sketch` (both borrowed) and measures quality at
/// checkpoints. The stream is consumed.
HarnessResult RunSketch(RowStream* stream, SlidingWindowSketch* sketch,
                        const HarnessOptions& options);

/// Single-pass variant over many sketches sharing one stream and one exact
/// window evaluation (the expensive Gram computation is done once per
/// checkpoint regardless of how many sketches are measured). All sketches
/// must share the same window spec.
std::vector<HarnessResult> RunMany(
    RowStream* stream, std::span<SlidingWindowSketch* const> sketches,
    const HarnessOptions& options);

}  // namespace swsketch

#endif  // SWSKETCH_EVAL_HARNESS_H_
