#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace swsketch {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  SWSKETCH_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (size_t p = row[c].size(); p < width[c] + 2; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace swsketch
