// Plain-text table / CSV reporting for the experiment binaries. Each bench
// prints the series the corresponding paper figure plots, one row per
// (algorithm, sweep point).
#ifndef SWSKETCH_EVAL_REPORT_H_
#define SWSKETCH_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace swsketch {

/// Column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string Num(double v);
  static std::string Int(long long v);

  /// Writes the aligned table.
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 3(a): ... ==").
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace swsketch

#endif  // SWSKETCH_EVAL_REPORT_H_
