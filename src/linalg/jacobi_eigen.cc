#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace swsketch {
namespace {

// Sum of squares of strictly-upper-triangular entries.
double OffDiagonalNormSq(const Matrix& a) {
  double s = 0.0;
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
  }
  return 2.0 * s;
}

}  // namespace

SymmetricEigen JacobiEigen(const Matrix& s, const JacobiOptions& options) {
  SymmetricEigenScratch scratch;
  JacobiEigen(s, &scratch, options);
  return std::move(scratch.result);
}

const SymmetricEigen& JacobiEigen(const Matrix& s,
                                  SymmetricEigenScratch* scratch,
                                  const JacobiOptions& options) {
  SWSKETCH_CHECK_EQ(s.rows(), s.cols());
  const size_t n = s.rows();

  // Work on the symmetrized copy.
  Matrix& a = scratch->work;
  a.ResetShape(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = 0.5 * (s(i, j) + s(j, i));
  }
  Matrix& v = scratch->accum;
  v.ResetShape(n, n);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double total_norm = std::sqrt(a.FrobeniusNormSq());
  const double stop = options.tol * std::max(total_norm, 1e-300);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalNormSq(a)) <= stop) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic symmetric Schur rotation.
        const double theta = (aqq - app) / (2.0 * apq);
        double t;
        if (std::fabs(theta) > 1e12) {
          t = 1.0 / (2.0 * theta);
        } else {
          t = 1.0 / (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
          if (theta < 0.0) t = -t;
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = t * c;

        // A <- J^T A J, applied to rows/columns p and q.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - sn * akq;
          a(k, q) = sn * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - sn * aqk;
          a(q, k) = sn * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort descending.
  std::vector<size_t>& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double>& diag = scratch->diag;
  diag.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  SymmetricEigen& out = scratch->result;
  out.eigenvalues.assign(n, 0.0);
  out.eigenvectors.ResetShape(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.eigenvalues[c] = diag[order[c]];
    for (size_t r = 0; r < n; ++r) {
      out.eigenvectors(r, c) = v(r, order[c]);
    }
  }
  return out;
}

}  // namespace swsketch
