// Cyclic Jacobi eigensolver for dense symmetric matrices. This is the
// numerical workhorse behind the SVD (via the Gram route), BEST rank-k
// references and PCA examples. Jacobi is quadratic-per-sweep but extremely
// robust and accurate for the moderate sizes this library needs
// (sketch Gram matrices are l x l with l <= a few hundred).
#ifndef SWSKETCH_LINALG_JACOBI_EIGEN_H_
#define SWSKETCH_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace swsketch {

/// Eigendecomposition of a symmetric matrix: S = V diag(lambda) V^T with
/// eigenvalues sorted in descending order and eigenvectors as columns of V.
struct SymmetricEigen {
  std::vector<double> eigenvalues;  // Descending.
  Matrix eigenvectors;              // n x n, column i pairs eigenvalues[i].
};

/// Options controlling the sweep loop.
struct JacobiOptions {
  int max_sweeps = 64;
  // Stop when the off-diagonal Frobenius norm falls below
  // tol * ||S||_F (relative convergence criterion).
  double tol = 1e-12;
};

/// Computes the full eigendecomposition of symmetric `S`. Symmetry is
/// enforced by averaging S and S^T before iterating, so tiny asymmetries
/// from accumulated floating point error are tolerated.
SymmetricEigen JacobiEigen(const Matrix& s, const JacobiOptions& options = {});

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_JACOBI_EIGEN_H_
