// Cyclic Jacobi eigensolver for dense symmetric matrices. This is the
// numerical workhorse behind the SVD (via the Gram route), BEST rank-k
// references and PCA examples. Jacobi is quadratic-per-sweep but extremely
// robust and accurate for the moderate sizes this library needs
// (sketch Gram matrices are l x l with l <= a few hundred).
#ifndef SWSKETCH_LINALG_JACOBI_EIGEN_H_
#define SWSKETCH_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace swsketch {

/// Eigendecomposition of a symmetric matrix: S = V diag(lambda) V^T with
/// eigenvalues sorted in descending order and eigenvectors as columns of V.
struct SymmetricEigen {
  std::vector<double> eigenvalues;  // Descending.
  Matrix eigenvectors;              // n x n, column i pairs eigenvalues[i].
};

/// Reusable workspace for the symmetric eigensolvers. A scratch cycled
/// through solves of the same (or smaller) size never allocates after the
/// first call: every member is reshaped in place via ResetShape / assign.
/// Not thread-safe — one scratch per concurrent solver.
struct SymmetricEigenScratch {
  Matrix work;                // Symmetrized copy, rotated in place.
  Matrix accum;               // Jacobi eigenvector accumulator V.
  std::vector<double> diag;   // Tridiagonal diagonal / Jacobi diagonal.
  std::vector<double> off;    // Tridiagonal off-diagonal.
  std::vector<double> hcol;   // Householder column staging (tridiag).
  std::vector<size_t> order;  // Descending-eigenvalue permutation.
  SymmetricEigen result;      // Output storage, reused across solves.
};

/// Options controlling the sweep loop.
struct JacobiOptions {
  int max_sweeps = 64;
  // Stop when the off-diagonal Frobenius norm falls below
  // tol * ||S||_F (relative convergence criterion).
  double tol = 1e-12;
};

/// Computes the full eigendecomposition of symmetric `S`. Symmetry is
/// enforced by averaging S and S^T before iterating, so tiny asymmetries
/// from accumulated floating point error are tolerated.
SymmetricEigen JacobiEigen(const Matrix& s, const JacobiOptions& options = {});

/// Scratch-accepting variant: solves into scratch->result and returns a
/// reference to it (valid until the scratch is reused). Allocation-free
/// once the scratch has seen a problem of size >= s.rows(). `s` must not
/// alias any scratch member.
const SymmetricEigen& JacobiEigen(const Matrix& s,
                                  SymmetricEigenScratch* scratch,
                                  const JacobiOptions& options = {});

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_JACOBI_EIGEN_H_
