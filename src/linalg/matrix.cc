#include "linalg/matrix.h"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace swsketch {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& r : rows) {
    if (cols_ == 0) cols_ = r.size();
    SWSKETCH_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  SWSKETCH_CHECK_EQ(row.size(), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Matrix::AppendRowScaled(std::span<const double> row, double scale) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  SWSKETCH_CHECK_EQ(row.size(), cols_);
  data_.reserve(data_.size() + cols_);
  for (double v : row) data_.push_back(v * scale);
  ++rows_;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::TruncateRows(size_t k) {
  SWSKETCH_CHECK_LE(k, rows_);
  rows_ = k;
  data_.resize(rows_ * cols_);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) t(j, i) = src[j];
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  SWSKETCH_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* dst = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) dst[j] += aik * b[j];
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < rows_; ++i) g.AddOuterProduct(Row(i));
  return g;
}

Matrix Matrix::GramOuter() const {
  Matrix g(rows_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    for (size_t j = i; j < rows_; ++j) {
      const double* b = RowPtr(j);
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += a[k] * b[k];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

void Matrix::AddOuterProduct(std::span<const double> v, double scale) {
  SWSKETCH_CHECK_EQ(rows_, cols_);
  SWSKETCH_CHECK_EQ(v.size(), cols_);
  // Upper triangle only, then mirror: halves the flops for the hot path of
  // exact-Gram evaluation.
  for (size_t i = 0; i < cols_; ++i) {
    const double vi = v[i] * scale;
    if (vi == 0.0) continue;
    double* row = RowPtr(i);
    for (size_t j = i; j < cols_; ++j) row[j] += vi * v[j];
  }
  for (size_t i = 1; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) (*this)(i, j) = (*this)(j, i);
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  SWSKETCH_CHECK_EQ(rows_, other.rows_);
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Matrix Matrix::Subtract(const Matrix& other) const {
  SWSKETCH_CHECK_EQ(rows_, other.rows_);
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusNormSq() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void Matrix::Apply(std::span<const double> x, std::span<double> y) const {
  SWSKETCH_CHECK_EQ(x.size(), cols_);
  SWSKETCH_CHECK_EQ(y.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] = s;
  }
}

void Matrix::ApplyTranspose(std::span<const double> x,
                            std::span<double> y) const {
  SWSKETCH_CHECK_EQ(x.size(), rows_);
  SWSKETCH_CHECK_EQ(y.size(), cols_);
  std::fill(y.begin(), y.end(), 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* a = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) y[j] += xi * a[j];
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  return MaxAbsDiff(other) <= tol;
}

Matrix Matrix::VStack(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  out.data_.insert(out.data_.end(), other.data_.begin(), other.data_.end());
  out.rows_ += other.rows_;
  return out;
}

void Matrix::Serialize(ByteWriter* writer) const {
  writer->Put<uint64_t>(rows_);
  writer->Put<uint64_t>(cols_);
  writer->PutVector(data_);
}

Result<Matrix> Matrix::Deserialize(ByteReader* reader) {
  uint64_t rows = 0, cols = 0;
  std::vector<double> data;
  if (!reader->Get(&rows) || !reader->Get(&cols) ||
      !reader->GetVector(&data) || data.size() != rows * cols) {
    return Status::InvalidArgument("corrupt Matrix payload");
  }
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

}  // namespace swsketch
