#include "linalg/matrix.h"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define SWSKETCH_FUSED_AVX2 1
#else
#define SWSKETCH_FUSED_AVX2 0
#endif

#include "util/logging.h"
#include "util/parallel.h"

namespace swsketch {

namespace {

// Blocking parameters for the dense kernels (see DESIGN.md "Performance").
// Tiles are sized so an output tile plus the active input panel stay in
// L1/L2: a kGramTileI x kGramTileJ accumulator tile is 36 KB.
constexpr size_t kGramTileI = 48;
constexpr size_t kGramTileJ = 96;
constexpr size_t kGramRowPanel = 64;
constexpr size_t kMultiplyKPanel = 128;

// Minimum multiply-add count before a kernel fans out to the thread pool;
// below this the submit/wake latency dominates.
constexpr size_t kParallelFlopThreshold = size_t{1} << 22;  // ~4M madds.

// Fused 4-row accumulation, the inner loop shared by Gram / Multiply /
// ApplyTranspose: dst[j] += v0*a0[j] + v1*a1[j] + v2*a2[j] + v3*a3[j] for
// j in [js, je).
//
// SIMD dispatch: on x86-64 the loop runs on 256-bit fmadd chains whenever
// the CPU has AVX2+FMA — selected at compile time when the build already
// targets them (bench preset / -march=native) and by a one-time cpuid
// probe otherwise, so plain -O3 builds get the fast path on capable
// hardware too. The scalar remainder of the AVX2 path uses std::fma in
// the SAME association order as the vector lanes, so every output element
// — main loop or tail — rounds identically. The fallback keeps the plain
// mul+add form (which auto-vectorizes and, with no FMA target, cannot be
// contracted, so it too is deterministic). The active per-element formula
// is exposed as Matrix::FusedKernelsUseFmaChains() and pinned by the
// kernel tests; determinism is per build *and host CPU class*, which is
// all the repo's bit-identity contracts (parallel-vs-serial, batch-vs-
// serial) require — they never compare numbers across machines.
#if SWSKETCH_FUSED_AVX2

__attribute__((target("avx2,fma"))) void FusedAccumulate4Avx2(
    double* dst, const double* a0, const double* a1, const double* a2,
    const double* a3, double v0, double v1, double v2, double v3, size_t js,
    size_t je) {
  const __m256d w0 = _mm256_set1_pd(v0);
  const __m256d w1 = _mm256_set1_pd(v1);
  const __m256d w2 = _mm256_set1_pd(v2);
  const __m256d w3 = _mm256_set1_pd(v3);
  size_t j = js;
  for (; j + 4 <= je; j += 4) {
    __m256d acc = _mm256_loadu_pd(dst + j);
    acc = _mm256_fmadd_pd(w0, _mm256_loadu_pd(a0 + j), acc);
    acc = _mm256_fmadd_pd(w1, _mm256_loadu_pd(a1 + j), acc);
    acc = _mm256_fmadd_pd(w2, _mm256_loadu_pd(a2 + j), acc);
    acc = _mm256_fmadd_pd(w3, _mm256_loadu_pd(a3 + j), acc);
    _mm256_storeu_pd(dst + j, acc);
  }
  for (; j < je; ++j) {
    dst[j] = std::fma(
        v3, a3[j], std::fma(v2, a2[j], std::fma(v1, a1[j],
                                                std::fma(v0, a0[j], dst[j]))));
  }
}

__attribute__((target("avx2,fma"))) void FusedAccumulate1Avx2(
    double* dst, const double* a, double v, size_t js, size_t je) {
  const __m256d w = _mm256_set1_pd(v);
  size_t j = js;
  for (; j + 4 <= je; j += 4) {
    __m256d acc = _mm256_loadu_pd(dst + j);
    acc = _mm256_fmadd_pd(w, _mm256_loadu_pd(a + j), acc);
    _mm256_storeu_pd(dst + j, acc);
  }
  for (; j < je; ++j) dst[j] = std::fma(v, a[j], dst[j]);
}

#if defined(__AVX2__) && defined(__FMA__)
constexpr bool kFusedAvx2 = true;  // Compiled in; no cpuid probe needed.
#else
const bool kFusedAvx2 =
    __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif

#else  // !SWSKETCH_FUSED_AVX2
constexpr bool kFusedAvx2 = false;
#endif

inline void FusedAccumulate4(double* dst, const double* a0, const double* a1,
                             const double* a2, const double* a3, double v0,
                             double v1, double v2, double v3, size_t js,
                             size_t je) {
#if SWSKETCH_FUSED_AVX2
  if (kFusedAvx2) {
    FusedAccumulate4Avx2(dst, a0, a1, a2, a3, v0, v1, v2, v3, js, je);
    return;
  }
#endif
  for (size_t j = js; j < je; ++j) {
    dst[j] += v0 * a0[j] + v1 * a1[j] + v2 * a2[j] + v3 * a3[j];
  }
}

// Single-row tail of the fused accumulation: dst[j] += v * a[j].
inline void FusedAccumulate1(double* dst, const double* a, double v, size_t js,
                             size_t je) {
#if SWSKETCH_FUSED_AVX2
  if (kFusedAvx2) {
    FusedAccumulate1Avx2(dst, a, v, js, je);
    return;
  }
#endif
  for (size_t j = js; j < je; ++j) dst[j] += v * a[j];
}

// Accumulates the upper triangle of A^T A into g for the column band
// [i_begin, i_end): g(i, j) += sum_r a(r, i) * a(r, j) for j >= i. Rows
// are consumed in panels of four with a fused inner loop, so each store
// to g amortizes four multiply-adds. The accumulation order for a given
// (i, j) is independent of the banding, which keeps parallel and serial
// results bit-identical.
void AccumulateGramUpperBand(const Matrix& a, Matrix* g, size_t i_begin,
                             size_t i_end) {
  const size_t rows = a.rows();
  const size_t d = a.cols();
  for (size_t r0 = 0; r0 < rows; r0 += kGramRowPanel) {
    const size_t r1 = std::min(r0 + kGramRowPanel, rows);
    for (size_t i0 = i_begin; i0 < i_end; i0 += kGramTileI) {
      const size_t i1 = std::min(i0 + kGramTileI, i_end);
      for (size_t j0 = i0; j0 < d; j0 += kGramTileJ) {
        const size_t j1 = std::min(j0 + kGramTileJ, d);
        for (size_t i = i0; i < i1; ++i) {
          double* grow = g->RowPtr(i);
          const size_t js = std::max(j0, i);
          size_t r = r0;
          for (; r + 3 < r1; r += 4) {
            const double* a0 = a.RowPtr(r);
            const double* a1 = a.RowPtr(r + 1);
            const double* a2 = a.RowPtr(r + 2);
            const double* a3 = a.RowPtr(r + 3);
            const double v0 = a0[i], v1 = a1[i], v2 = a2[i], v3 = a3[i];
            if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
            FusedAccumulate4(grow, a0, a1, a2, a3, v0, v1, v2, v3, js, j1);
          }
          for (; r < r1; ++r) {
            const double* ar = a.RowPtr(r);
            const double vi = ar[i];
            if (vi == 0.0) continue;
            FusedAccumulate1(grow, ar, vi, js, j1);
          }
        }
      }
    }
  }
}

}  // namespace

bool Matrix::FusedKernelsUseFmaChains() { return kFusedAvx2; }

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& r : rows) {
    if (cols_ == 0) cols_ = r.size();
    SWSKETCH_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  SWSKETCH_CHECK_EQ(row.size(), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Matrix::AppendRowScaled(std::span<const double> row, double scale) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  SWSKETCH_CHECK_EQ(row.size(), cols_);
  data_.reserve(data_.size() + cols_);
  for (double v : row) data_.push_back(v * scale);
  ++rows_;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::ResetShape(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // assign() reuses the existing allocation when capacity suffices, so a
  // scratch matrix cycled through the same (or smaller) shapes never
  // touches the heap again.
  data_.assign(rows * cols, 0.0);
}

void Matrix::TruncateRows(size_t k) {
  SWSKETCH_CHECK_LE(k, rows_);
  rows_ = k;
  data_.resize(rows_ * cols_);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) t(j, i) = src[j];
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  SWSKETCH_CHECK_EQ(cols_, other.rows_);
  return MultiplyRows(other, 0);
}

Matrix Matrix::MultiplyRows(const Matrix& other, size_t other_row_begin) const {
  Matrix out;
  MultiplyRowsInto(other, other_row_begin, &out);
  return out;
}

void Matrix::MultiplyInto(const Matrix& other, Matrix* out) const {
  SWSKETCH_CHECK_EQ(cols_, other.rows_);
  MultiplyRowsInto(other, 0, out);
}

void Matrix::MultiplyRowsInto(const Matrix& other, size_t other_row_begin,
                              Matrix* out_ptr) const {
  SWSKETCH_CHECK_LE(other_row_begin + cols_, other.rows_);
  Matrix& out = *out_ptr;
  out.ResetShape(rows_, other.cols_);
  const size_t n = other.cols_;
  // Output rows are processed in blocks of 8 with the k-group loop hoisted
  // outside the block, so each loaded 4-row group of `other` is reused for
  // 8 output rows from L1 instead of being re-streamed from L2 once per
  // output row (the dominant traffic when `other`'s panel exceeds L1 —
  // exactly the RP-batch shape, ell x count times count x d). For a fixed
  // output element the k-groups still arrive in ascending order through
  // the same fused chain, so the blocking changes no bits.
  const auto multiply_rows = [&](size_t row_begin, size_t row_end) {
    constexpr size_t kIBlock = 8;
    for (size_t ib = row_begin; ib < row_end; ib += kIBlock) {
      const size_t ie = std::min(ib + kIBlock, row_end);
      for (size_t k0 = 0; k0 < cols_; k0 += kMultiplyKPanel) {
        const size_t k1 = std::min(k0 + kMultiplyKPanel, cols_);
        size_t k = k0;
        for (; k + 3 < k1; k += 4) {
          const double* b0 = other.RowPtr(other_row_begin + k);
          const double* b1 = other.RowPtr(other_row_begin + k + 1);
          const double* b2 = other.RowPtr(other_row_begin + k + 2);
          const double* b3 = other.RowPtr(other_row_begin + k + 3);
          for (size_t i = ib; i < ie; ++i) {
            const double* a = RowPtr(i);
            const double a0 = a[k], a1 = a[k + 1], a2 = a[k + 2],
                         a3 = a[k + 3];
            if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
            FusedAccumulate4(out.RowPtr(i), b0, b1, b2, b3, a0, a1, a2, a3,
                             0, n);
          }
        }
        for (; k < k1; ++k) {
          const double* b = other.RowPtr(other_row_begin + k);
          for (size_t i = ib; i < ie; ++i) {
            const double aik = RowPtr(i)[k];
            if (aik == 0.0) continue;
            FusedAccumulate1(out.RowPtr(i), b, aik, 0, n);
          }
        }
      }
    }
  };
  if (rows_ * cols_ * n >= kParallelFlopThreshold && rows_ > 1) {
    ParallelForChunks(rows_, multiply_rows);
  } else {
    multiply_rows(0, rows_);
  }
}

Matrix Matrix::Gram() const {
  Matrix g;
  GramInto(&g);
  return g;
}

void Matrix::GramInto(Matrix* out) const {
  Matrix& g = *out;
  g.ResetShape(cols_, cols_);
  if (rows_ == 0 || cols_ == 0) return;
  // Cost of the upper triangle is rows * d * (d + 1) / 2 madds; fan column
  // bands out to the pool when it dwarfs the task overhead. Leading bands
  // cover longer upper-triangle rows, so bands shrink towards the top to
  // even the load: band k covers rows of the triangle starting where
  // roughly k/bands of the total area is below.
  const size_t triangle = rows_ * cols_ * (cols_ + 1) / 2;
  if (triangle >= kParallelFlopThreshold && cols_ >= 2 * kGramTileI) {
    const size_t bands =
        std::max<size_t>(1, std::min(ThreadPool::Shared().num_threads() * 2,
                                     cols_ / kGramTileI));
    std::vector<size_t> edges;
    edges.reserve(bands + 1);
    edges.push_back(0);
    const double total_area = static_cast<double>(cols_) * cols_;
    for (size_t b = 1; b < bands; ++b) {
      // Solve for x: area of triangle columns [0, x) == b/bands of total;
      // triangle area left of column x is x * (2d - x) / 2.
      const double frac = static_cast<double>(b) / static_cast<double>(bands);
      const double d = static_cast<double>(cols_);
      const double x = d - std::sqrt(std::max(0.0, d * d - frac * total_area));
      size_t edge = std::min<size_t>(cols_, static_cast<size_t>(x));
      edge = std::max(edge, edges.back());
      edges.push_back(edge);
    }
    edges.push_back(cols_);
    ParallelFor(edges.size() - 1, [&](size_t b) {
      if (edges[b] < edges[b + 1]) {
        AccumulateGramUpperBand(*this, &g, edges[b], edges[b + 1]);
      }
    });
  } else {
    AccumulateGramUpperBand(*this, &g, 0, cols_);
  }
  g.MirrorUpperToLower();
}

Matrix Matrix::GramOuter() const {
  Matrix g;
  GramOuterInto(&g);
  return g;
}

void Matrix::GramOuterInto(Matrix* out) const {
  Matrix& g = *out;
  g.ResetShape(rows_, rows_);
  // 4x4 register tile: sixteen independent dot-product chains share every
  // row load, hiding the FP-add latency that serializes a single chain.
  // Each entry is still one scalar sum in ascending k, so the tile shape
  // does not change any output bit. Diagonal tiles also fill a few
  // below-diagonal entries; the final mirror overwrites them with the
  // (identical) upper values.
  size_t i = 0;
  for (; i + 3 < rows_; i += 4) {
    const double* a0 = RowPtr(i);
    const double* a1 = RowPtr(i + 1);
    const double* a2 = RowPtr(i + 2);
    const double* a3 = RowPtr(i + 3);
    size_t j = i;
    for (; j + 3 < rows_; j += 4) {
      const double* b0 = RowPtr(j);
      const double* b1 = RowPtr(j + 1);
      const double* b2 = RowPtr(j + 2);
      const double* b3 = RowPtr(j + 3);
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
      double s20 = 0.0, s21 = 0.0, s22 = 0.0, s23 = 0.0;
      double s30 = 0.0, s31 = 0.0, s32 = 0.0, s33 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double x0 = a0[k], x1 = a1[k], x2 = a2[k], x3 = a3[k];
        const double y0 = b0[k], y1 = b1[k], y2 = b2[k], y3 = b3[k];
        s00 += x0 * y0;
        s01 += x0 * y1;
        s02 += x0 * y2;
        s03 += x0 * y3;
        s10 += x1 * y0;
        s11 += x1 * y1;
        s12 += x1 * y2;
        s13 += x1 * y3;
        s20 += x2 * y0;
        s21 += x2 * y1;
        s22 += x2 * y2;
        s23 += x2 * y3;
        s30 += x3 * y0;
        s31 += x3 * y1;
        s32 += x3 * y2;
        s33 += x3 * y3;
      }
      double* g0 = g.RowPtr(i) + j;
      double* g1 = g.RowPtr(i + 1) + j;
      double* g2 = g.RowPtr(i + 2) + j;
      double* g3 = g.RowPtr(i + 3) + j;
      g0[0] = s00, g0[1] = s01, g0[2] = s02, g0[3] = s03;
      g1[0] = s10, g1[1] = s11, g1[2] = s12, g1[3] = s13;
      g2[0] = s20, g2[1] = s21, g2[2] = s22, g2[3] = s23;
      g3[0] = s30, g3[1] = s31, g3[2] = s32, g3[3] = s33;
    }
    for (; j < rows_; ++j) {
      const double* b = RowPtr(j);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double bk = b[k];
        s0 += a0[k] * bk;
        s1 += a1[k] * bk;
        s2 += a2[k] * bk;
        s3 += a3[k] * bk;
      }
      g(i, j) = s0;
      g(i + 1, j) = s1;
      g(i + 2, j) = s2;
      g(i + 3, j) = s3;
    }
  }
  for (; i < rows_; ++i) {
    const double* a = RowPtr(i);
    // Remaining rows: four simultaneous dots share each a[k] load.
    size_t j = i;
    for (; j + 3 < rows_; j += 4) {
      const double* b0 = RowPtr(j);
      const double* b1 = RowPtr(j + 1);
      const double* b2 = RowPtr(j + 2);
      const double* b3 = RowPtr(j + 3);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double ak = a[k];
        s0 += ak * b0[k];
        s1 += ak * b1[k];
        s2 += ak * b2[k];
        s3 += ak * b3[k];
      }
      g(i, j) = s0;
      g(i, j + 1) = s1;
      g(i, j + 2) = s2;
      g(i, j + 3) = s3;
    }
    for (; j < rows_; ++j) {
      const double* b = RowPtr(j);
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += a[k] * b[k];
      g(i, j) = s;
    }
  }
  g.MirrorUpperToLower();
}

void Matrix::AddOuterProduct(std::span<const double> v, double scale) {
  AddOuterProductUpper(v, scale);
  MirrorUpperToLower();
}

void Matrix::AddOuterProductUpper(std::span<const double> v, double scale) {
  SWSKETCH_CHECK_EQ(rows_, cols_);
  SWSKETCH_CHECK_EQ(v.size(), cols_);
  for (size_t i = 0; i < cols_; ++i) {
    const double vi = v[i] * scale;
    if (vi == 0.0) continue;
    double* row = RowPtr(i);
    for (size_t j = i; j < cols_; ++j) row[j] += vi * v[j];
  }
}

void Matrix::MirrorUpperToLower() {
  SWSKETCH_CHECK_EQ(rows_, cols_);
  for (size_t i = 1; i < cols_; ++i) {
    double* row = RowPtr(i);
    for (size_t j = 0; j < i; ++j) row[j] = (*this)(j, i);
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  SWSKETCH_CHECK_EQ(rows_, other.rows_);
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Matrix Matrix::Subtract(const Matrix& other) const {
  SWSKETCH_CHECK_EQ(rows_, other.rows_);
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusNormSq() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void Matrix::Apply(std::span<const double> x, std::span<double> y) const {
  SWSKETCH_CHECK_EQ(x.size(), cols_);
  SWSKETCH_CHECK_EQ(y.size(), rows_);
  // Four fused dot products per pass share each x[j] load.
  size_t i = 0;
  for (; i + 3 < rows_; i += 4) {
    const double* a0 = RowPtr(i);
    const double* a1 = RowPtr(i + 1);
    const double* a2 = RowPtr(i + 2);
    const double* a3 = RowPtr(i + 3);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < cols_; ++j) {
      const double xj = x[j];
      s0 += a0[j] * xj;
      s1 += a1[j] * xj;
      s2 += a2[j] * xj;
      s3 += a3[j] * xj;
    }
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] = s;
  }
}

void Matrix::ApplyTranspose(std::span<const double> x,
                            std::span<double> y) const {
  SWSKETCH_CHECK_EQ(x.size(), rows_);
  SWSKETCH_CHECK_EQ(y.size(), cols_);
  std::fill(y.begin(), y.end(), 0.0);
  // Fused accumulation over four rows halves the traffic on y.
  size_t i = 0;
  for (; i + 3 < rows_; i += 4) {
    const double x0 = x[i], x1 = x[i + 1], x2 = x[i + 2], x3 = x[i + 3];
    if (x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0) continue;
    const double* a0 = RowPtr(i);
    const double* a1 = RowPtr(i + 1);
    const double* a2 = RowPtr(i + 2);
    const double* a3 = RowPtr(i + 3);
    FusedAccumulate4(y.data(), a0, a1, a2, a3, x0, x1, x2, x3, 0, cols_);
  }
  for (; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    FusedAccumulate1(y.data(), RowPtr(i), xi, 0, cols_);
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  return MaxAbsDiff(other) <= tol;
}

Matrix Matrix::VStack(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  SWSKETCH_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  out.data_.insert(out.data_.end(), other.data_.begin(), other.data_.end());
  out.rows_ += other.rows_;
  return out;
}

void Matrix::Serialize(ByteWriter* writer) const {
  writer->Put<uint64_t>(rows_);
  writer->Put<uint64_t>(cols_);
  writer->PutVector(data_);
}

Result<Matrix> Matrix::Deserialize(ByteReader* reader) {
  uint64_t rows = 0, cols = 0;
  std::vector<double> data;
  if (!reader->Get(&rows) || !reader->Get(&cols) ||
      !reader->GetVector(&data) || data.size() != rows * cols) {
    return Status::InvalidArgument("corrupt Matrix payload");
  }
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

}  // namespace swsketch
