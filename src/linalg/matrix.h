// Dense row-major matrix of doubles: the storage type for windows, sketches
// and approximation outputs. Deliberately minimal: the library only needs
// append-row growth, Gram products, transposed multiplies and elementwise
// combination; heavy decompositions live in their own modules.
#ifndef SWSKETCH_LINALG_MATRIX_H_
#define SWSKETCH_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Dense row-major matrix. Rows are contiguous; `Row(i)` is a cheap span.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from a nested initializer list; all inner lists must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Zero(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  std::span<double> Row(size_t i) { return {&data_[i * cols_], cols_}; }
  std::span<const double> Row(size_t i) const {
    return {&data_[i * cols_], cols_};
  }
  double* RowPtr(size_t i) { return &data_[i * cols_]; }
  const double* RowPtr(size_t i) const { return &data_[i * cols_]; }

  std::span<double> Data() { return {data_.data(), data_.size()}; }
  std::span<const double> Data() const { return {data_.data(), data_.size()}; }

  /// Appends a row; on the first append to an empty matrix the column count
  /// is adopted from the row, afterwards it must match.
  void AppendRow(std::span<const double> row);

  /// Appends `row` scaled by `scale`.
  void AppendRowScaled(std::span<const double> row, double scale);

  /// Reserves storage for `rows` rows (avoids reallocation in streaming
  /// loops).
  void ReserveRows(size_t rows) { data_.reserve(rows * cols_); }

  /// Sets every entry to zero, keeping the shape.
  void SetZero();

  /// Reshapes to rows x cols and zeroes every entry, reusing the existing
  /// allocation whenever it is large enough. The scratch-accepting kernels
  /// (GramInto / GramOuterInto / MultiplyRowsInto) call this on their
  /// output so a matrix recycled across calls never reallocates once it
  /// has seen its largest shape.
  void ResetShape(size_t rows, size_t cols);

  /// Keeps only the first k rows.
  void TruncateRows(size_t k);

  /// Returns the transposed matrix.
  Matrix Transpose() const;

  /// this * other. Register-tiled ikj loop (4-way k unroll); rows are
  /// partitioned over the shared thread pool when the product is large
  /// enough to amortize the fan-out (identical results either way).
  Matrix Multiply(const Matrix& other) const;

  /// this * other[other_row_begin : other_row_begin + cols(), :] — the same
  /// tiled kernel applied to a contiguous row slice of `other` without
  /// copying it. Batched ingest uses this to apply a sign/projection matrix
  /// to a sub-block of a larger row batch. Requires
  /// other_row_begin + cols() <= other.rows().
  Matrix MultiplyRows(const Matrix& other, size_t other_row_begin) const;

  /// Scratch-accepting Multiply: writes this * other into *out (reshaped
  /// and zeroed via ResetShape, so steady-state reuse is allocation-free).
  /// `out` must not alias this or `other`.
  void MultiplyInto(const Matrix& other, Matrix* out) const;

  /// Scratch-accepting MultiplyRows; same aliasing rule as MultiplyInto.
  void MultiplyRowsInto(const Matrix& other, size_t other_row_begin,
                        Matrix* out) const;

  /// A^T * A, a cols x cols symmetric PSD matrix. Cache-blocked over the
  /// upper triangle with 4-row accumulation, mirrored once at the end;
  /// column bands go to the shared thread pool above a flop threshold.
  /// The result is bit-identical for any worker count: every output entry
  /// is produced by exactly one task with a fixed accumulation order.
  Matrix Gram() const;

  /// Scratch-accepting Gram: writes A^T A into *out (reshaped and zeroed,
  /// allocation-free on reuse). `out` must not alias this.
  void GramInto(Matrix* out) const;

  /// A * A^T, a rows x rows symmetric PSD matrix (4-way column-unrolled
  /// dot products).
  Matrix GramOuter() const;

  /// Scratch-accepting GramOuter: writes A A^T into *out (reshaped and
  /// zeroed, allocation-free on reuse). `out` must not alias this.
  void GramOuterInto(Matrix* out) const;

  /// M += scale * v v^T for a square matrix with cols() == v.size().
  void AddOuterProduct(std::span<const double> v, double scale = 1.0);

  /// Upper-triangle-only rank-1 update: entries (i, j) with j >= i get
  /// += scale * v_i v_j; the strict lower triangle is left untouched.
  /// Callers accumulating many rank-1 terms should use this and call
  /// MirrorUpperToLower() once at the end instead of paying the mirror
  /// per update (AddOuterProduct = AddOuterProductUpper + mirror).
  void AddOuterProductUpper(std::span<const double> v, double scale = 1.0);

  /// Copies the upper triangle over the strict lower triangle, restoring
  /// symmetry after a run of AddOuterProductUpper calls.
  void MirrorUpperToLower();

  /// this += scale * other (shapes must match).
  void AddScaled(const Matrix& other, double scale);

  /// this - other.
  Matrix Subtract(const Matrix& other) const;

  /// Multiplies every entry by `s`.
  void Scale(double s);

  /// Sum of squared entries.
  double FrobeniusNormSq() const;

  /// y = A x (x has cols() entries, y gets rows() entries).
  void Apply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x (x has rows() entries, y gets cols() entries).
  void ApplyTranspose(std::span<const double> x, std::span<double> y) const;

  /// Max |a_ij - b_ij|; infinity when shapes differ.
  double MaxAbsDiff(const Matrix& other) const;

  /// True when shapes match and entries differ by at most `tol`.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Vertical stack [this; other]; column counts must match (an empty
  /// matrix acts as the identity element).
  Matrix VStack(const Matrix& other) const;

  /// True when the fused dense kernels (Gram / Multiply / ApplyTranspose)
  /// accumulate through AVX2 fmadd chains on this host — compiled in under
  /// -march=native, else enabled by a one-time cpuid probe. Selects the
  /// per-element accumulation formula the kernel tests pin; false means
  /// the plain mul+add fallback is active.
  static bool FusedKernelsUseFmaChains();

  /// Binary serialization (shape + row-major payload).
  void Serialize(ByteWriter* writer) const;
  static Result<Matrix> Deserialize(ByteReader* reader);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_MATRIX_H_
