#include "linalg/power_iteration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/jacobi_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/random.h"

namespace swsketch {

double SpectralNormSymmetric(const Matrix& m,
                             const PowerIterationOptions& options) {
  SWSKETCH_CHECK_EQ(m.rows(), m.cols());
  const size_t n = m.rows();
  if (n == 0) return 0.0;

  const size_t steps = std::min<size_t>(
      n, static_cast<size_t>(std::max(options.lanczos_steps, 2)));

  // Lanczos with full reorthogonalization. Basis vectors kept densely:
  // steps * n doubles, small at evaluation dimensions.
  std::vector<std::vector<double>> basis;
  basis.reserve(steps);
  std::vector<double> alpha, beta;  // Tridiagonal entries.

  Rng rng(options.seed);
  std::vector<double> v(n), w(n);
  for (auto& e : v) e = rng.Gaussian();
  Normalize(v);
  basis.push_back(v);

  const double scale = std::sqrt(m.FrobeniusNormSq());
  if (scale == 0.0) return 0.0;

  for (size_t j = 0; j < steps; ++j) {
    m.Apply(basis[j], w);
    const double a = Dot(w, basis[j]);
    alpha.push_back(a);
    // w -= a * v_j + beta_{j-1} * v_{j-1}; then full reorthogonalization
    // (one pass is enough with the explicit subtraction above).
    Axpy(-a, basis[j], w);
    if (j > 0) Axpy(-beta[j - 1], basis[j - 1], w);
    for (const auto& q : basis) Axpy(-Dot(w, q), q, w);
    const double b = Norm(w);
    if (j + 1 == steps || b <= 1e-14 * scale) break;  // Invariant subspace.
    beta.push_back(b);
    for (size_t i = 0; i < n; ++i) w[i] /= b;
    basis.push_back(w);
  }

  // Extreme |eigenvalue| of the tridiagonal via the Jacobi solver.
  const size_t k = alpha.size();
  Matrix t(k, k);
  for (size_t i = 0; i < k; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < k) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  const SymmetricEigen eig = JacobiEigen(t);
  double best = 0.0;
  for (double l : eig.eigenvalues) best = std::max(best, std::fabs(l));
  return best;
}

double SpectralNorm(const Matrix& a, const PowerIterationOptions& options) {
  if (a.empty()) return 0.0;
  const size_t n = a.rows();
  const size_t d = a.cols();

  Rng rng(options.seed);
  std::vector<double> x(d), ax(n), back(d);
  for (auto& v : x) v = rng.Gaussian();
  Normalize(x);

  double sigma_sq = 0.0;
  for (int it = 0; it < options.max_iters; ++it) {
    a.Apply(x, ax);
    a.ApplyTranspose(ax, back);  // back = A^T A x
    const double nb = Norm(back);
    if (nb == 0.0) return 0.0;
    const double prev = sigma_sq;
    sigma_sq = nb;  // Rayleigh-style estimate of lambda_max(A^T A).
    for (size_t j = 0; j < d; ++j) x[j] = back[j] / nb;
    if (it > 2 && std::fabs(sigma_sq - prev) <= options.rel_tol * sigma_sq) {
      break;
    }
  }
  return std::sqrt(sigma_sq);
}

}  // namespace swsketch
