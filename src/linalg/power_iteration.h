// Power iteration for the spectral norm of a symmetric (possibly
// indefinite) matrix. Used by the evaluation harness to compute the
// covariance error ||A^T A - B^T B||_2 at checkpoints: the difference is
// symmetric but indefinite, so we estimate the largest singular value
// sigma = max |lambda| via ||M x_k|| with normalized iterates (equivalent
// to power iteration on M^2, which converges regardless of sign).
#ifndef SWSKETCH_LINALG_POWER_ITERATION_H_
#define SWSKETCH_LINALG_POWER_ITERATION_H_

#include <cstdint>

#include "linalg/matrix.h"

namespace swsketch {

struct PowerIterationOptions {
  int max_iters = 600;
  double rel_tol = 1e-9;
  uint64_t seed = 0xC0FFEE;
  // Krylov steps for the Lanczos-based symmetric spectral norm. With
  // steps >= n the result is exact (up to fp); below that, extreme
  // eigenvalues converge far faster than plain power iteration.
  int lanczos_steps = 96;
};

/// Largest absolute eigenvalue (= spectral norm) of symmetric `m`.
/// Implemented with Lanczos plus full reorthogonalization: near-tied
/// +/- extremes — exactly what covariance-error differences produce —
/// converge in tens of iterations where power iteration needs thousands.
double SpectralNormSymmetric(const Matrix& m,
                             const PowerIterationOptions& options = {});

/// Spectral norm of an arbitrary matrix `a` (largest singular value),
/// computed without forming A^T A when a is wide/tall: iterates
/// x <- A^T (A x) / ||.||.
double SpectralNorm(const Matrix& a, const PowerIterationOptions& options = {});

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_POWER_ITERATION_H_
