#include "linalg/sparse_vector.h"

#include <cmath>

#include "util/logging.h"

namespace swsketch {

SparseVector::SparseVector(size_t dim, std::vector<uint32_t> indices,
                           std::vector<double> values)
    : dim_(dim), indices_(std::move(indices)), values_(std::move(values)) {
  SWSKETCH_CHECK_EQ(indices_.size(), values_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    SWSKETCH_CHECK_LT(indices_[i], dim_);
    if (i > 0) SWSKETCH_CHECK_LT(indices_[i - 1], indices_[i]);
  }
}

SparseVector SparseVector::FromDense(std::span<const double> dense,
                                     double tolerance) {
  std::vector<uint32_t> idx;
  std::vector<double> val;
  for (size_t j = 0; j < dense.size(); ++j) {
    if (std::fabs(dense[j]) > tolerance) {
      idx.push_back(static_cast<uint32_t>(j));
      val.push_back(dense[j]);
    }
  }
  return SparseVector(dense.size(), std::move(idx), std::move(val));
}

double SparseVector::NormSq() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return s;
}

double SparseVector::Dot(std::span<const double> dense) const {
  SWSKETCH_DCHECK(dense.size() == dim_);
  double s = 0.0;
  for (size_t i = 0; i < indices_.size(); ++i) {
    s += values_[i] * dense[indices_[i]];
  }
  return s;
}

void SparseVector::AxpyInto(std::span<double> dense, double scale) const {
  SWSKETCH_DCHECK(dense.size() == dim_);
  for (size_t i = 0; i < indices_.size(); ++i) {
    dense[indices_[i]] += scale * values_[i];
  }
}

std::vector<double> SparseVector::ToDense() const {
  std::vector<double> out(dim_, 0.0);
  AxpyInto(out);
  return out;
}

}  // namespace swsketch
