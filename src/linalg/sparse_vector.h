// Sparse vector: the natural representation for the paper's text and
// scheduling workloads (WIKI tf-idf rows have ~200 of 7047 entries set;
// RAIL rows ~9 of 2586). Sketch update costs drop from O(d) to O(nnz)
// per touched sketch row when the sparse fast paths are used.
#ifndef SWSKETCH_LINALG_SPARSE_VECTOR_H_
#define SWSKETCH_LINALG_SPARSE_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace swsketch {

/// Immutable-ish sparse vector with sorted unique indices.
class SparseVector {
 public:
  SparseVector() : dim_(0) {}

  /// Builds from parallel (index, value) arrays; indices must be strictly
  /// increasing and < dim. Zero values are kept as given (callers should
  /// not insert them).
  SparseVector(size_t dim, std::vector<uint32_t> indices,
               std::vector<double> values);

  /// Gathers the nonzeros of a dense span.
  static SparseVector FromDense(std::span<const double> dense,
                                double tolerance = 0.0);

  size_t dim() const { return dim_; }
  size_t nnz() const { return indices_.size(); }
  std::span<const uint32_t> indices() const { return indices_; }
  std::span<const double> values() const { return values_; }

  /// Sum of squared values.
  double NormSq() const;

  /// Dot product against a dense vector of matching dimension.
  double Dot(std::span<const double> dense) const;

  /// dense += scale * this.
  void AxpyInto(std::span<double> dense, double scale = 1.0) const;

  /// Materializes the dense vector.
  std::vector<double> ToDense() const;

 private:
  size_t dim_;
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
};

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_SPARSE_VECTOR_H_
