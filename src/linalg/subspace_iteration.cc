#include "linalg/subspace_iteration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/jacobi_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/random.h"

namespace swsketch {

void OrthonormalizeColumns(Matrix* q, uint64_t seed) {
  const size_t n = q->rows();
  const size_t k = q->cols();
  Rng rng(seed);
  std::vector<double> col(n);
  for (size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      for (size_t i = 0; i < n; ++i) col[i] = (*q)(i, c);
      // Two rounds of MGS projection for numerical robustness.
      for (int round = 0; round < 2; ++round) {
        for (size_t p = 0; p < c; ++p) {
          double dot = 0.0;
          for (size_t i = 0; i < n; ++i) dot += col[i] * (*q)(i, p);
          for (size_t i = 0; i < n; ++i) col[i] -= dot * (*q)(i, p);
        }
      }
      const double norm = Norm(col);
      if (norm > 1e-12) {
        for (size_t i = 0; i < n; ++i) (*q)(i, c) = col[i] / norm;
        break;
      }
      // Degenerate column: replace with a random direction and retry.
      for (size_t i = 0; i < n; ++i) col[i] = rng.Gaussian();
      for (size_t i = 0; i < n; ++i) (*q)(i, c) = col[i];
    }
  }
}

TopEigen TopEigenpairsPsd(const Matrix& m, size_t k,
                          const SubspaceOptions& options) {
  SWSKETCH_CHECK_EQ(m.rows(), m.cols());
  const size_t n = m.rows();
  SWSKETCH_CHECK_GT(k, 0u);
  k = std::min(k, n);
  const size_t b = std::min(n, k + options.oversample);

  Rng rng(options.seed);
  Matrix q(n, b);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < b; ++c) q(i, c) = rng.Gaussian();
  }
  OrthonormalizeColumns(&q, options.seed ^ 0x5555);

  std::vector<double> prev(k, 0.0);
  std::vector<double> x(n), y(n);
  Matrix z(n, b);
  TopEigen out;
  for (int it = 0; it < options.max_iters; ++it) {
    // Z = M Q, column by column.
    for (size_t c = 0; c < b; ++c) {
      for (size_t i = 0; i < n; ++i) x[i] = q(i, c);
      m.Apply(x, y);
      for (size_t i = 0; i < n; ++i) z(i, c) = y[i];
    }
    q = z;
    OrthonormalizeColumns(&q, options.seed + static_cast<uint64_t>(it));

    // Rayleigh-Ritz: T = Q^T M Q (b x b), eigendecompose, rotate Q.
    Matrix mq(n, b);
    for (size_t c = 0; c < b; ++c) {
      for (size_t i = 0; i < n; ++i) x[i] = q(i, c);
      m.Apply(x, y);
      for (size_t i = 0; i < n; ++i) mq(i, c) = y[i];
    }
    Matrix t(b, b);
    for (size_t a = 0; a < b; ++a) {
      for (size_t c = a; c < b; ++c) {
        double s = 0.0;
        for (size_t i = 0; i < n; ++i) s += q(i, a) * mq(i, c);
        t(a, c) = s;
        t(c, a) = s;
      }
    }
    const SymmetricEigen ritz = JacobiEigen(t);

    bool converged = true;
    for (size_t c = 0; c < k; ++c) {
      const double lam = ritz.eigenvalues[c];
      if (std::fabs(lam - prev[c]) >
          options.rel_tol * std::max(std::fabs(lam), 1e-300)) {
        converged = false;
      }
      prev[c] = lam;
    }

    if (converged || it + 1 == options.max_iters) {
      out.values.assign(prev.begin(), prev.begin() + k);
      // Rotate: vectors = Q * Ritz_vectors[:, :k].
      out.vectors = Matrix(n, k);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < k; ++c) {
          double s = 0.0;
          for (size_t a = 0; a < b; ++a) {
            s += q(i, a) * ritz.eigenvectors(a, c);
          }
          out.vectors(i, c) = s;
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace swsketch
