// Block power (subspace) iteration with Rayleigh-Ritz refinement for the
// top-k eigenpairs of a symmetric PSD matrix. Used by BEST(offline) — the
// best-rank-k reference of the paper's experiments needs sigma_{k+1}^2 of
// each window Gram matrix, for k up to ~100, which full Jacobi on d x d
// would make needlessly expensive — and by the PCA examples.
#ifndef SWSKETCH_LINALG_SUBSPACE_ITERATION_H_
#define SWSKETCH_LINALG_SUBSPACE_ITERATION_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace swsketch {

struct SubspaceOptions {
  int max_iters = 60;
  double rel_tol = 1e-9;  // On the change of the eigenvalue estimates.
  uint64_t seed = 0xABCDEF;
  // Oversampling columns beyond k: improves convergence of the trailing
  // requested eigenpair.
  size_t oversample = 4;
};

/// Top-k eigenpairs of symmetric PSD `m`, eigenvalues descending,
/// eigenvectors as columns of `vectors` (d x k, orthonormal).
struct TopEigen {
  std::vector<double> values;  // Size k.
  Matrix vectors;              // d x k.
};

TopEigen TopEigenpairsPsd(const Matrix& m, size_t k,
                          const SubspaceOptions& options = {});

/// In-place modified Gram-Schmidt on the columns of q. Near-dependent
/// columns are replaced by fresh random directions re-orthogonalized
/// against the previous ones, so the result always has orthonormal columns.
void OrthonormalizeColumns(Matrix* q, uint64_t seed);

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_SUBSPACE_ITERATION_H_
