#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/tridiag_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

SvdResult ThinSvd(const Matrix& a, const SvdOptions& options) {
  SvdResult out;
  if (a.empty()) return out;
  const size_t n = a.rows();
  const size_t d = a.cols();

  if (n <= d) {
    // Small side is the rows: eigendecompose A A^T.
    const SymmetricEigen eig = SymmetricEigenSolve(a.GramOuter());
    const double lmax = std::max(eig.eigenvalues.empty() ? 0.0
                                                         : eig.eigenvalues[0],
                                 0.0);
    const double smax = std::sqrt(std::max(lmax, 0.0));
    const double cutoff = options.rank_tol * std::max(smax, 1e-300);
    size_t r = 0;
    for (double l : eig.eigenvalues) {
      if (l > 0.0 && std::sqrt(l) > cutoff) ++r;
    }
    out.singular_values.resize(r);
    out.u = Matrix(n, r);
    out.vt = Matrix(r, d);
    for (size_t c = 0; c < r; ++c) {
      const double sigma = std::sqrt(eig.eigenvalues[c]);
      out.singular_values[c] = sigma;
      for (size_t i = 0; i < n; ++i) out.u(i, c) = eig.eigenvectors(i, c);
      // v_c^T = (u_c^T A) / sigma.
      std::vector<double> ucol(n);
      for (size_t i = 0; i < n; ++i) ucol[i] = eig.eigenvectors(i, c);
      std::vector<double> vrow(d);
      a.ApplyTranspose(ucol, vrow);
      ScaleInPlace(vrow, 1.0 / sigma);
      // Re-normalize to suppress accumulated rounding in near-degenerate
      // directions.
      Normalize(vrow);
      std::copy(vrow.begin(), vrow.end(), out.vt.RowPtr(c));
    }
    return out;
  }

  // Tall: eigendecompose A^T A.
  const SymmetricEigen eig = SymmetricEigenSolve(a.Gram());
  const double lmax =
      std::max(eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues[0], 0.0);
  const double smax = std::sqrt(std::max(lmax, 0.0));
  const double cutoff = options.rank_tol * std::max(smax, 1e-300);
  size_t r = 0;
  for (double l : eig.eigenvalues) {
    if (l > 0.0 && std::sqrt(l) > cutoff) ++r;
  }
  out.singular_values.resize(r);
  out.u = Matrix(n, r);
  out.vt = Matrix(r, d);
  for (size_t c = 0; c < r; ++c) {
    const double sigma = std::sqrt(eig.eigenvalues[c]);
    out.singular_values[c] = sigma;
    std::vector<double> vcol(d);
    for (size_t j = 0; j < d; ++j) vcol[j] = eig.eigenvectors(j, c);
    for (size_t j = 0; j < d; ++j) out.vt(c, j) = vcol[j];
    // u_c = A v_c / sigma.
    std::vector<double> ucol(n);
    a.Apply(vcol, ucol);
    ScaleInPlace(ucol, 1.0 / sigma);
    Normalize(ucol);
    for (size_t i = 0; i < n; ++i) out.u(i, c) = ucol[i];
  }
  return out;
}

std::vector<double> SingularValues(const Matrix& a) {
  const size_t m = std::min(a.rows(), a.cols());
  std::vector<double> out(m, 0.0);
  if (a.empty()) return out;
  const Matrix gram = a.rows() <= a.cols() ? a.GramOuter() : a.Gram();
  SymmetricEigen eig = SymmetricEigenSolve(gram);
  for (size_t i = 0; i < m; ++i) {
    out[i] = std::sqrt(std::max(eig.eigenvalues[i], 0.0));
  }
  return out;
}

}  // namespace swsketch
