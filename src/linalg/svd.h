// Thin singular value decomposition via the Gram route: eigendecompose the
// smaller of A A^T / A^T A with Jacobi and recover the other factor. Exact
// to floating-point accuracy for the well-conditioned, small-side shapes
// produced by sketches (l x d with l << d), and O(min(n,d)^2 * max(n,d))
// which is the right complexity for those shapes.
#ifndef SWSKETCH_LINALG_SVD_H_
#define SWSKETCH_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"

namespace swsketch {

/// Compact SVD A = U diag(sigma) Vt with rank-r factors; singular values
/// descending and strictly positive (relative to rank_tol).
struct SvdResult {
  std::vector<double> singular_values;  // Size r, descending, > 0.
  Matrix u;                             // n x r, orthonormal columns.
  Matrix vt;                            // r x d, orthonormal rows.
};

struct SvdOptions {
  // Singular values below rank_tol * sigma_max are treated as zero. The
  // Gram route squares the condition number: eigenvalues carry ~1e-12
  // relative noise, so singular values carry ~1e-6; the default cutoff
  // sits above that noise floor.
  double rank_tol = 3e-6;
};

/// Computes the compact SVD of an arbitrary dense matrix.
SvdResult ThinSvd(const Matrix& a, const SvdOptions& options = {});

/// Singular values only (descending, including zeros up to min(n, d)).
std::vector<double> SingularValues(const Matrix& a);

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_SVD_H_
