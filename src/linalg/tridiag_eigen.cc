#include "linalg/tridiag_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace swsketch {
namespace {

// Householder reduction of symmetric a (n x n, clobbered) to tridiagonal
// form: diagonal in d, sub-diagonal in e[1..n-1] (EISPACK tred2). Unlike
// classic tred2, the accumulated orthogonal transform is built in a
// separate matrix `q` stored TRANSPOSED (basis vectors as rows): the
// accumulation inner loops then run over contiguous rows of q instead of
// stride-n columns of a, which makes the O(n^3) accumulation cache-
// resident. Per element the multiplicands, expressions and accumulation
// order match the in-place column form exactly, so the result is
// bit-identical to it. `hcol` stages the current Householder column
// contiguously.
void Tred2Transposed(Matrix* a_ptr, std::vector<double>* d_ptr,
                     std::vector<double>* e_ptr, Matrix* q_ptr,
                     std::vector<double>* hcol_ptr) {
  Matrix& a = *a_ptr;
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  const size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (size_t i = n - 1; i >= 1; --i) {
    const size_t l = i - 1;
    double h = 0.0, scale = 0.0;
    if (i > 1) {
      for (size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation into q (transposed layout). Row j of q
  // is column j of the classic in-place accumulator; the border entries
  // outside the active window are the same implicit identity/zero that
  // the in-place form maintains by zeroing row/column i.
  Matrix& q = *q_ptr;
  q.ResetShape(n, n);
  std::vector<double>& hcol = *hcol_ptr;
  hcol.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t l = i;  // Active window [0, i).
    if (d[i] != 0.0) {
      // Column i of a above the diagonal holds the scaled Householder
      // vector v / h from reduction step i; stage it contiguously.
      for (size_t k = 0; k < l; ++k) hcol[k] = a(k, i);
      const double* __restrict__ ai = a.RowPtr(i);
      const double* __restrict__ hc = hcol.data();
      for (size_t j = 0; j < l; ++j) {
        double* __restrict__ qj = q.RowPtr(j);
        double g = 0.0;
        for (size_t k = 0; k < l; ++k) g += ai[k] * qj[k];
        for (size_t k = 0; k < l; ++k) qj[k] -= g * hc[k];
      }
    }
    d[i] = a(i, i);
    q(i, i) = 1.0;
  }
}

double SignLike(double a, double b) { return b >= 0.0 ? std::fabs(a) : -std::fabs(a); }

// Implicit-shift QL on the tridiagonal (d, e) — EISPACK tql2, except that
// `z` holds the accumulated transform TRANSPOSED (basis vectors as rows):
// each Givens rotation then updates two contiguous rows instead of two
// stride-n columns, which is what makes the O(n^3) rotation stream cache-
// resident and auto-vectorizable. The per-element arithmetic (expressions
// and evaluation order) is identical to the column form, so eigenvectors
// are bit-identical to the untransposed implementation. Returns false if
// an eigenvalue fails to converge.
bool Tql2Transposed(std::vector<double>* d_ptr, std::vector<double>* e_ptr,
                    Matrix* z_ptr) {
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  Matrix& z = *z_ptr;
  const size_t n = d.size();
  if (n == 0) return true;
  for (size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iterations == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + SignLike(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          double* __restrict__ zi = z.RowPtr(i);
          double* __restrict__ zi1 = z.RowPtr(i + 1);
          for (size_t k = 0; k < n; ++k) {
            f = zi1[k];
            zi1[k] = s * zi[k] + c * f;
            zi[k] = c * zi[k] - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

SymmetricEigen TridiagEigen(const Matrix& s) {
  SymmetricEigenScratch scratch;
  TridiagEigen(s, &scratch);
  return std::move(scratch.result);
}

const SymmetricEigen& TridiagEigen(const Matrix& s,
                                   SymmetricEigenScratch* scratch) {
  SWSKETCH_CHECK_EQ(s.rows(), s.cols());
  const size_t n = s.rows();
  SymmetricEigen& out = scratch->result;
  if (n == 0) {
    out.eigenvalues.clear();
    out.eigenvectors.ResetShape(0, 0);
    return out;
  }
  if (n == 1) {
    out.eigenvalues.assign(1, s(0, 0));
    out.eigenvectors.ResetShape(1, 1);
    out.eigenvectors(0, 0) = 1.0;
    return out;
  }

  // Symmetrize into the workspace.
  Matrix& a = scratch->work;
  a.ResetShape(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = 0.5 * (s(i, j) + s(j, i));
  }
  std::vector<double>& d = scratch->diag;
  std::vector<double>& e = scratch->off;
  // Both the Householder accumulation and the QL rotations work on the
  // transform in transposed (row-basis) layout for contiguous access; the
  // arithmetic is element-for-element identical to the classic column
  // form, so eigenpairs are bit-identical to it.
  Matrix& q = scratch->accum;
  Tred2Transposed(&a, &d, &e, &q, &scratch->hcol);
  if (!Tql2Transposed(&d, &e, &q)) {
    // Extremely rare non-convergence: fall back to the robust solver
    // (restarts from `s`, so overwriting the scratch is safe).
    return JacobiEigen(s, scratch);
  }

  std::vector<size_t>& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return d[x] > d[y]; });
  out.eigenvalues.assign(n, 0.0);
  out.eigenvectors.ResetShape(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.eigenvalues[c] = d[order[c]];
    // Row order[c] of the transposed accumulator is eigenvector column c.
    const double* zc = q.RowPtr(order[c]);
    for (size_t r = 0; r < n; ++r) {
      out.eigenvectors(r, c) = zc[r];
    }
  }
  return out;
}

SymmetricEigen SymmetricEigenSolve(const Matrix& s, size_t jacobi_cutoff) {
  return s.rows() <= jacobi_cutoff ? JacobiEigen(s) : TridiagEigen(s);
}

const SymmetricEigen& SymmetricEigenSolve(const Matrix& s,
                                          SymmetricEigenScratch* scratch,
                                          size_t jacobi_cutoff) {
  return s.rows() <= jacobi_cutoff ? JacobiEigen(s, scratch)
                                   : TridiagEigen(s, scratch);
}

}  // namespace swsketch
