#include "linalg/tridiag_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/logging.h"

namespace swsketch {
namespace {

// Householder reduction of symmetric a (n x n, modified in place to hold
// the accumulated orthogonal transform) to tridiagonal form: diagonal in
// d, sub-diagonal in e[1..n-1] (EISPACK tred2).
void Tred2(Matrix* a_ptr, std::vector<double>* d_ptr,
           std::vector<double>* e_ptr) {
  Matrix& a = *a_ptr;
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  const size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (size_t i = n - 1; i >= 1; --i) {
    const size_t l = i - 1;
    double h = 0.0, scale = 0.0;
    if (i > 1) {
      for (size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate transformation.
  for (size_t i = 0; i < n; ++i) {
    const size_t l = i;  // Columns [0, i).
    if (d[i] != 0.0) {
      for (size_t j = 0; j < l; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < l; ++k) g += a(i, k) * a(k, j);
        for (size_t k = 0; k < l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (size_t j = 0; j < l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

double SignLike(double a, double b) { return b >= 0.0 ? std::fabs(a) : -std::fabs(a); }

// Implicit-shift QL on the tridiagonal (d, e), rotating the columns of z
// (EISPACK tql2). Returns false if an eigenvalue fails to converge.
bool Tql2(std::vector<double>* d_ptr, std::vector<double>* e_ptr,
          Matrix* z_ptr) {
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  Matrix& z = *z_ptr;
  const size_t n = d.size();
  if (n == 0) return true;
  for (size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iterations == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + SignLike(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

SymmetricEigen TridiagEigen(const Matrix& s) {
  SWSKETCH_CHECK_EQ(s.rows(), s.cols());
  const size_t n = s.rows();
  SymmetricEigen out;
  if (n == 0) {
    out.eigenvectors = Matrix();
    return out;
  }
  if (n == 1) {
    out.eigenvalues = {s(0, 0)};
    out.eigenvectors = Matrix::Identity(1);
    return out;
  }

  // Symmetrize into the workspace.
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = 0.5 * (s(i, j) + s(j, i));
  }
  std::vector<double> d, e;
  Tred2(&a, &d, &e);
  if (!Tql2(&d, &e, &a)) {
    // Extremely rare non-convergence: fall back to the robust solver.
    return JacobiEigen(s);
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return d[x] > d[y]; });
  SymmetricEigen out2;
  out2.eigenvalues.resize(n);
  out2.eigenvectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out2.eigenvalues[c] = d[order[c]];
    for (size_t r = 0; r < n; ++r) {
      out2.eigenvectors(r, c) = a(r, order[c]);
    }
  }
  return out2;
}

SymmetricEigen SymmetricEigenSolve(const Matrix& s, size_t jacobi_cutoff) {
  return s.rows() <= jacobi_cutoff ? JacobiEigen(s) : TridiagEigen(s);
}

}  // namespace swsketch
