// Symmetric eigensolver via Householder tridiagonalization followed by the
// implicit-shift QL iteration — the classic dense-symmetric path (EISPACK
// tred2/tql2 lineage). One O(n^3) reduction plus O(n^2)-per-eigenvalue
// iteration makes it roughly an order of magnitude faster than cyclic
// Jacobi at n >= ~100, which is what keeps Frequent Directions merges
// affordable at large ell. SymmetricEigenSolve dispatches between the two.
#ifndef SWSKETCH_LINALG_TRIDIAG_EIGEN_H_
#define SWSKETCH_LINALG_TRIDIAG_EIGEN_H_

#include "linalg/jacobi_eigen.h"
#include "linalg/matrix.h"

namespace swsketch {

/// Full eigendecomposition of symmetric `s` via tridiagonalization + QL.
/// Same contract as JacobiEigen: eigenvalues descending, eigenvectors as
/// columns.
SymmetricEigen TridiagEigen(const Matrix& s);

/// Dispatching solver: Jacobi below `jacobi_cutoff` rows (more accurate on
/// tiny systems, no allocation overhead), tridiagonal QL above.
SymmetricEigen SymmetricEigenSolve(const Matrix& s, size_t jacobi_cutoff = 32);

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_TRIDIAG_EIGEN_H_
