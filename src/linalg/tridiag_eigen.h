// Symmetric eigensolver via Householder tridiagonalization followed by the
// implicit-shift QL iteration — the classic dense-symmetric path (EISPACK
// tred2/tql2 lineage). One O(n^3) reduction plus O(n^2)-per-eigenvalue
// iteration makes it roughly an order of magnitude faster than cyclic
// Jacobi at n >= ~100, which is what keeps Frequent Directions merges
// affordable at large ell. SymmetricEigenSolve dispatches between the two.
#ifndef SWSKETCH_LINALG_TRIDIAG_EIGEN_H_
#define SWSKETCH_LINALG_TRIDIAG_EIGEN_H_

#include "linalg/jacobi_eigen.h"
#include "linalg/matrix.h"

namespace swsketch {

/// Full eigendecomposition of symmetric `s` via tridiagonalization + QL.
/// Same contract as JacobiEigen: eigenvalues descending, eigenvectors as
/// columns.
SymmetricEigen TridiagEigen(const Matrix& s);

/// Scratch-accepting variant: solves into scratch->result and returns a
/// reference to it (valid until the scratch is reused). Allocation-free
/// once the scratch has seen a problem of size >= s.rows(). `s` must not
/// alias any scratch member.
const SymmetricEigen& TridiagEigen(const Matrix& s,
                                   SymmetricEigenScratch* scratch);

/// Dispatching solver: Jacobi below `jacobi_cutoff` rows (more accurate on
/// tiny systems, no allocation overhead), tridiagonal QL above.
SymmetricEigen SymmetricEigenSolve(const Matrix& s, size_t jacobi_cutoff = 32);

/// Scratch-accepting dispatching solver (see the TridiagEigen overload for
/// the reuse/aliasing contract). This is the entry point of the FD shrink
/// hot path: a recycled scratch makes the whole eigensolve heap-free.
const SymmetricEigen& SymmetricEigenSolve(const Matrix& s,
                                          SymmetricEigenScratch* scratch,
                                          size_t jacobi_cutoff = 32);

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_TRIDIAG_EIGEN_H_
