#include "linalg/vector_ops.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace swsketch {

double Dot(std::span<const double> a, std::span<const double> b) {
  SWSKETCH_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double NormSq(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return s;
}

double Norm(std::span<const double> a) { return std::sqrt(NormSq(a)); }

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SWSKETCH_DCHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void ScaleInPlace(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

double Normalize(std::span<double> x, double tiny) {
  const double n = Norm(x);
  if (n <= tiny) {
    for (double& v : x) v = 0.0;
    return 0.0;
  }
  ScaleInPlace(x, 1.0 / n);
  return n;
}

std::vector<double> GaussianVector(size_t n, unsigned long long seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& e : v) e = rng.Gaussian();
  return v;
}

}  // namespace swsketch
