// Free-function kernels on contiguous vectors (spans). Shared by the
// decomposition routines and the sketches' hot paths.
#ifndef SWSKETCH_LINALG_VECTOR_OPS_H_
#define SWSKETCH_LINALG_VECTOR_OPS_H_

#include <span>
#include <vector>

namespace swsketch {

/// Dot product <a, b>; sizes must match.
double Dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean norm.
double NormSq(std::span<const double> a);

/// Euclidean norm.
double Norm(std::span<const double> a);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void ScaleInPlace(std::span<double> x, double alpha);

/// Normalizes x to unit norm; returns the original norm. Vectors with norm
/// below `tiny` are zeroed and 0 is returned.
double Normalize(std::span<double> x, double tiny = 1e-300);

/// Fills x with i.i.d. standard Gaussians using the caller's RNG callback
/// form is avoided: see random.h users; this overload takes a raw seed for
/// convenience in tests.
std::vector<double> GaussianVector(size_t n, unsigned long long seed);

}  // namespace swsketch

#endif  // SWSKETCH_LINALG_VECTOR_OPS_H_
