#include "service/tenant_arena.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/logging.h"

namespace swsketch {

namespace {

size_t RoundUp(size_t n, size_t align) { return (n + align - 1) / align * align; }

// Compacting below this many dead bytes would churn for no real saving.
constexpr size_t kCompactFloorBytes = 64 * 1024;

}  // namespace

TenantArena::TenantArena(size_t slot_bytes, size_t slot_align,
                         size_t slots_per_chunk)
    : slot_align_(std::max(slot_align, alignof(void*))),
      slots_per_chunk_(std::max<size_t>(slots_per_chunk, 1)) {
  // A free slot stores the intrusive next pointer in its first bytes.
  slot_bytes_ = RoundUp(std::max(slot_bytes, sizeof(void*)), slot_align_);
  SWSKETCH_CHECK_GT(slot_bytes_, 0u);
}

TenantArena::~TenantArena() {
  for (std::byte* chunk : chunks_) {
    ::operator delete(chunk, std::align_val_t(slot_align_));
  }
}

void* TenantArena::AllocateSlot() {
  ++live_slots_;
  if (free_list_ != nullptr) {
    void* slot = free_list_;
    std::memcpy(&free_list_, slot, sizeof(void*));
    return slot;
  }
  if (chunks_.empty() || bump_ == slots_per_chunk_) {
    chunks_.push_back(static_cast<std::byte*>(::operator new(
        slots_per_chunk_ * slot_bytes_, std::align_val_t(slot_align_))));
    bump_ = 0;
  }
  return chunks_.back() + (bump_++) * slot_bytes_;
}

void TenantArena::ReleaseSlot(void* slot) {
  SWSKETCH_CHECK_GT(live_slots_, 0u);
  --live_slots_;
  std::memcpy(slot, &free_list_, sizeof(void*));
  free_list_ = slot;
}

uint32_t SpillRegion::Append(std::span<const uint8_t> bytes) {
  uint32_t id;
  if (!free_records_.empty()) {
    id = free_records_.back();
    free_records_.pop_back();
  } else {
    id = static_cast<uint32_t>(records_.size());
    records_.emplace_back();
  }
  Record& r = records_[id];
  r.offset = buffer_.size();
  r.size = bytes.size();
  r.live = true;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  live_bytes_ += bytes.size();
  ++live_count_;
  return id;
}

std::span<const uint8_t> SpillRegion::View(uint32_t record) const {
  SWSKETCH_CHECK_LT(record, records_.size());
  const Record& r = records_[record];
  SWSKETCH_CHECK(r.live);
  return {buffer_.data() + r.offset, r.size};
}

void SpillRegion::Free(uint32_t record) {
  SWSKETCH_CHECK_LT(record, records_.size());
  Record& r = records_[record];
  SWSKETCH_CHECK(r.live);
  r.live = false;
  live_bytes_ -= r.size;
  dead_bytes_ += r.size;
  --live_count_;
  free_records_.push_back(record);
  if (dead_bytes_ > live_bytes_ && dead_bytes_ >= kCompactFloorBytes) {
    Compact();
  }
}

void SpillRegion::Compact() {
  // Live payloads keep their append order (offsets are strictly
  // increasing among live records), so one forward pass over the ids
  // sorted by offset slides everything down in place.
  std::vector<uint32_t> live;
  live.reserve(live_count_);
  for (uint32_t id = 0; id < records_.size(); ++id) {
    if (records_[id].live) live.push_back(id);
  }
  std::sort(live.begin(), live.end(), [&](uint32_t a, uint32_t b) {
    return records_[a].offset < records_[b].offset;
  });
  size_t cursor = 0;
  for (uint32_t id : live) {
    Record& r = records_[id];
    if (r.offset != cursor) {
      std::memmove(buffer_.data() + cursor, buffer_.data() + r.offset,
                   r.size);
      r.offset = cursor;
    }
    cursor += r.size;
  }
  buffer_.resize(cursor);
  dead_bytes_ = 0;
  ++compactions_;
}

}  // namespace swsketch
