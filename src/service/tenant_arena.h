// Storage backing for the multi-tenant manager (service/tenant_manager.h):
// a pooled fixed-slot allocator for resident sketch instances and a
// compacting byte region for spilled (serialized) ones. Neither class is
// thread-safe — the owning manager serializes all access.
#ifndef SWSKETCH_SERVICE_TENANT_ARENA_H_
#define SWSKETCH_SERVICE_TENANT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace swsketch {

/// Fixed-slot-size pooled allocator. AllocateSlot() is one free-list pop
/// or one bump-pointer advance (plus one chunk malloc every
/// slots-per-chunk allocations); ReleaseSlot() pushes the slot back onto
/// an intrusive free list. Chunks are never returned to the OS while the
/// arena lives, so reserved_bytes() plateaus at the high-water mark of
/// concurrently live slots — exactly the behaviour a budget-bound tenant
/// manager wants (evicted slots are recycled, not fragmented).
class TenantArena {
 public:
  /// Slots hold `slot_bytes` bytes at `slot_align` alignment, carved from
  /// chunks of `slots_per_chunk` slots.
  TenantArena(size_t slot_bytes, size_t slot_align,
              size_t slots_per_chunk = 1024);
  ~TenantArena();

  TenantArena(const TenantArena&) = delete;
  TenantArena& operator=(const TenantArena&) = delete;

  void* AllocateSlot();

  /// Returns `slot` (previously obtained from AllocateSlot) to the free
  /// list. The memory stays reserved for reuse.
  void ReleaseSlot(void* slot);

  /// Slot stride after alignment rounding.
  size_t slot_bytes() const { return slot_bytes_; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t reserved_bytes() const {
    return chunks_.size() * slots_per_chunk_ * slot_bytes_;
  }
  size_t live_slots() const { return live_slots_; }

 private:
  size_t slot_bytes_;  // Rounded up to a multiple of slot_align_.
  size_t slot_align_;
  size_t slots_per_chunk_;
  std::vector<std::byte*> chunks_;
  size_t bump_ = 0;            // Next virgin slot index in chunks_.back().
  void* free_list_ = nullptr;  // Intrusive: a free slot stores the next.
  size_t live_slots_ = 0;
};

/// Byte store for serialized (spilled) tenants. Payloads append at the
/// end; records are addressed by stable ids (indices into a record table),
/// so compaction — which slides live payloads down over freed ones — never
/// invalidates a handle. Compaction triggers inside Free() once dead bytes
/// exceed both the live bytes and a fixed floor, keeping the buffer within
/// about 2x of the live payload.
class SpillRegion {
 public:
  static constexpr uint32_t kInvalidRecord = 0xFFFFFFFFu;

  /// Stores a copy of `bytes`; returns the record id.
  uint32_t Append(std::span<const uint8_t> bytes);

  /// Payload of a live record. Valid until the next Append/Free (either
  /// may move the buffer).
  std::span<const uint8_t> View(uint32_t record) const;

  /// Marks the record dead and recycles its id; may compact.
  void Free(uint32_t record);

  size_t live_bytes() const { return live_bytes_; }
  size_t live_records() const { return live_count_; }
  /// Current buffer footprint (live + not-yet-compacted dead bytes).
  size_t buffer_bytes() const { return buffer_.size(); }
  size_t compactions() const { return compactions_; }

 private:
  void Compact();

  struct Record {
    size_t offset = 0;
    size_t size = 0;
    bool live = false;
  };

  std::vector<uint8_t> buffer_;
  std::vector<Record> records_;
  std::vector<uint32_t> free_records_;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;
  size_t live_count_ = 0;
  size_t compactions_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SERVICE_TENANT_ARENA_H_
