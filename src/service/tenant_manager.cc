#include "service/tenant_manager.h"

#include <cstring>
#include <utility>

#include "util/logging.h"

namespace swsketch {

namespace {

// Charged-bytes model constants (see resident_bytes() doc): fixed
// per-tenant bookkeeping outside the slab (table entry, Tenant record,
// allocator headers) and per-stored-row container overhead beyond the raw
// payload (block headers, vector slack).
constexpr uint64_t kTenantFixedBytes = 160;
constexpr uint64_t kPerRowBytes = 48;

constexpr size_t kInitialTableSize = 1024;  // Power of two.

// splitmix64 finalizer: full-avalanche mix for the open-addressing probe,
// so dense/sequential tenant keys spread uniformly.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Result<std::unique_ptr<TenantManager>> TenantManager::Make(
    size_t dim, WindowSpec window, const SketchConfig& config,
    Options options) {
  auto proto = SketchPrototype::Make(dim, window, config);
  if (!proto.ok()) return proto.status();
  if (options.memory_budget_bytes > 0 && !proto.value().serializable()) {
    return Status::InvalidArgument(
        "memory_budget_bytes requires a serializable algorithm (got '" +
        config.algorithm + "'); use budget 0 for always-resident tenants");
  }
  if (options.min_resident_tenants == 0) options.min_resident_tenants = 1;
  return std::unique_ptr<TenantManager>(
      new TenantManager(dim, window, proto.take(), std::move(options)));
}

TenantManager::TenantManager(size_t dim, WindowSpec window,
                             SketchPrototype proto, Options options)
    : dim_(dim),
      window_(window),
      options_(std::move(options)),
      proto_(std::move(proto)),
      arena_(proto_.instance_size(), proto_.instance_align(),
             options_.slots_per_chunk),
      metrics_(MetricScope(options_.metrics_prefix)),
      table_(kInitialTableSize),
      table_mask_(kInitialTableSize - 1) {}

TenantManager::~TenantManager() {
  uint64_t resident = 0;
  uint64_t spilled = 0;
  for (Tenant& t : tenants_) {
    if (t.sketch != nullptr) {
      t.sketch->~SlidingWindowSketch();
      arena_.ReleaseSlot(t.slab);
      ++resident;
    } else {
      spill_.Free(t.spill_record);
      ++spilled;
    }
  }
  metrics_.resident_discarded->Add(resident);
  metrics_.spilled_discarded->Add(spilled);
  metrics_.tenants->Add(-static_cast<int64_t>(tenants_.size()));
  metrics_.resident_tenants->Add(-static_cast<int64_t>(resident));
  metrics_.spilled_tenants->Add(-static_cast<int64_t>(spilled));
  metrics_.resident_bytes->Add(-static_cast<int64_t>(resident_bytes_));
  SyncStorageGauges();  // Spill region is empty now -> settles to zero.
  // The arena only releases its chunks when it destructs (right after
  // this body), so retire our contribution to the shared gauge by hand.
  metrics_.arena_reserved_bytes->Add(-gauge_arena_bytes_);
  gauge_arena_bytes_ = 0;
}

uint32_t TenantManager::FindSlot(uint64_t key) const {
  size_t i = MixKey(key) & table_mask_;
  while (true) {
    const TableEntry& e = table_[i];
    if (e.slot_plus_1 == 0) return kNil;
    if (e.key == key) return e.slot_plus_1 - 1;
    i = (i + 1) & table_mask_;
  }
}

void TenantManager::GrowTable() {
  std::vector<TableEntry> old = std::move(table_);
  table_.assign(old.size() * 2, TableEntry{});
  table_mask_ = table_.size() - 1;
  for (const TableEntry& e : old) {
    if (e.slot_plus_1 == 0) continue;
    size_t i = MixKey(e.key) & table_mask_;
    while (table_[i].slot_plus_1 != 0) i = (i + 1) & table_mask_;
    table_[i] = e;
  }
}

uint32_t TenantManager::FindOrCreateSlot(uint64_t key) {
  size_t i = MixKey(key) & table_mask_;
  while (true) {
    TableEntry& e = table_[i];
    if (e.slot_plus_1 != 0) {
      if (e.key == key) return e.slot_plus_1 - 1;
      i = (i + 1) & table_mask_;
      continue;
    }
    // Miss: create a resident tenant in a fresh arena slot.
    const uint32_t slot = static_cast<uint32_t>(tenants_.size());
    void* slab = arena_.AllocateSlot();
    Tenant t;
    t.key = key;
    t.slab = slab;
    t.sketch = proto_.ConstructAt(slab);
    tenants_.push_back(t);
    e.key = key;
    e.slot_plus_1 = slot + 1;
    ++table_used_;
    LruPushFront(slot);
    ++resident_count_;
    metrics_.tenants_created->Add(1);
    metrics_.tenants->Add(1);
    metrics_.resident_tenants->Add(1);
    Recharge(slot);
    SyncStorageGauges();
    if (table_used_ * 10 >= table_.size() * 7) GrowTable();
    return slot;
  }
}

Status TenantManager::EnsureResident(uint32_t slot) {
  Tenant& t = tenants_[slot];
  if (t.sketch != nullptr) return Status::OK();
  void* slab = arena_.AllocateSlot();
  ByteReader reader(spill_.View(t.spill_record));
  auto loaded = proto_.DeserializeAt(slab, &reader);
  if (!loaded.ok()) {
    arena_.ReleaseSlot(slab);
    return loaded.status();
  }
  t.slab = slab;
  t.sketch = loaded.value();
  spill_.Free(t.spill_record);
  t.spill_record = SpillRegion::kInvalidRecord;
  LruPushFront(slot);
  ++resident_count_;
  metrics_.reloads->Add(1);
  metrics_.resident_tenants->Add(1);
  metrics_.spilled_tenants->Add(-1);
  Recharge(slot);  // charged_bytes was zeroed at eviction.
  SyncStorageGauges();
  return Status::OK();
}

void TenantManager::EvictSlot(uint32_t slot) {
  Tenant& t = tenants_[slot];
  SWSKETCH_CHECK(t.sketch != nullptr);
  ByteWriter writer;
  Status st = t.sketch->SerializeTo(&writer);
  // Make() rejected budgets for non-serializable algorithms, so a failure
  // here is a programming error, not an input error.
  SWSKETCH_CHECK(st.ok());
  t.spill_record = spill_.Append(writer.bytes());
  t.sketch->~SlidingWindowSketch();
  arena_.ReleaseSlot(t.slab);
  t.sketch = nullptr;
  t.slab = nullptr;
  LruRemove(slot);
  SWSKETCH_CHECK_GT(resident_count_, 0u);
  --resident_count_;
  resident_bytes_ -= t.charged_bytes;
  metrics_.resident_bytes->Add(-static_cast<int64_t>(t.charged_bytes));
  t.charged_bytes = 0;
  metrics_.spills->Add(1);
  metrics_.resident_tenants->Add(-1);
  metrics_.spilled_tenants->Add(1);
  SyncStorageGauges();
}

void TenantManager::EnforceBudget() {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes &&
         resident_count_ > options_.min_resident_tenants &&
         lru_tail_ != kNil) {
    EvictSlot(lru_tail_);
  }
}

void TenantManager::Touch(uint32_t slot) {
  if (lru_head_ == slot) return;
  LruRemove(slot);
  LruPushFront(slot);
}

void TenantManager::LruPushFront(uint32_t slot) {
  Tenant& t = tenants_[slot];
  t.lru_prev = kNil;
  t.lru_next = lru_head_;
  if (lru_head_ != kNil) tenants_[lru_head_].lru_prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void TenantManager::LruRemove(uint32_t slot) {
  Tenant& t = tenants_[slot];
  if (t.lru_prev != kNil) {
    tenants_[t.lru_prev].lru_next = t.lru_next;
  } else {
    lru_head_ = t.lru_next;
  }
  if (t.lru_next != kNil) {
    tenants_[t.lru_next].lru_prev = t.lru_prev;
  } else {
    lru_tail_ = t.lru_prev;
  }
  t.lru_prev = kNil;
  t.lru_next = kNil;
}

uint64_t TenantManager::ChargeOf(const Tenant& t) const {
  return arena_.slot_bytes() + kTenantFixedBytes +
         static_cast<uint64_t>(t.sketch->RowsStored()) *
             (dim_ * sizeof(double) + kPerRowBytes);
}

void TenantManager::Recharge(uint32_t slot) {
  Tenant& t = tenants_[slot];
  const uint64_t now = ChargeOf(t);
  const int64_t delta =
      static_cast<int64_t>(now) - static_cast<int64_t>(t.charged_bytes);
  resident_bytes_ = static_cast<size_t>(
      static_cast<int64_t>(resident_bytes_) + delta);
  metrics_.resident_bytes->Add(delta);
  t.charged_bytes = now;
}

void TenantManager::SyncStorageGauges() {
  const int64_t spill_now = static_cast<int64_t>(spill_.live_bytes());
  if (spill_now != gauge_spill_bytes_) {
    metrics_.spill_bytes->Add(spill_now - gauge_spill_bytes_);
    gauge_spill_bytes_ = spill_now;
  }
  const int64_t arena_now = static_cast<int64_t>(arena_.reserved_bytes());
  if (arena_now != gauge_arena_bytes_) {
    metrics_.arena_reserved_bytes->Add(arena_now - gauge_arena_bytes_);
    gauge_arena_bytes_ = arena_now;
  }
  const size_t compactions_now = spill_.compactions();
  if (compactions_now != counted_compactions_) {
    metrics_.spill_compactions->Add(compactions_now - counted_compactions_);
    counted_compactions_ = compactions_now;
  }
}

Status TenantManager::Update(uint64_t key, std::span<const double> row,
                             double ts) {
  if (row.size() != dim_) {
    return Status::InvalidArgument("row has " + std::to_string(row.size()) +
                                   " values, manager dim is " +
                                   std::to_string(dim_));
  }
  const uint32_t slot = FindOrCreateSlot(key);
  if (Status st = EnsureResident(slot); !st.ok()) return st;
  tenants_[slot].sketch->Update(row, ts);
  metrics_.rows_ingested->Add(1);
  Touch(slot);
  Recharge(slot);
  EnforceBudget();
  return Status::OK();
}

Status TenantManager::UpdateKeyed(std::span<const KeyedRow> rows) {
  if (rows.empty()) return Status::OK();
  metrics_.keyed_batches->Add(1);
  // Pass 1: resolve each row's tenant slot once, assigning group ids in
  // first-touch order. slot_group_epoch_ makes the slot -> group map
  // batch-local without clearing it between batches.
  ++group_epoch_;
  groups_.clear();
  row_group_.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].values.size() != dim_) {
      return Status::InvalidArgument(
          "keyed row " + std::to_string(i) + " has " +
          std::to_string(rows[i].values.size()) + " values, manager dim is " +
          std::to_string(dim_));
    }
    const uint32_t slot = FindOrCreateSlot(rows[i].key);
    if (slot >= slot_group_.size()) {
      slot_group_.resize(tenants_.size(), 0);
      slot_group_epoch_.resize(tenants_.size(), 0);
    }
    if (slot_group_epoch_[slot] != group_epoch_) {
      slot_group_epoch_[slot] = group_epoch_;
      slot_group_[slot] = static_cast<uint32_t>(groups_.size());
      groups_.push_back(Group{slot, 0, 0});
    }
    const uint32_t g = slot_group_[slot];
    ++groups_[g].count;
    row_group_[i] = g;
  }
  metrics_.keyed_groups->Add(groups_.size());
  // Prefix-sum the group offsets, then scatter row indices in ascending
  // order so each tenant sees its rows in stream order.
  uint32_t offset = 0;
  for (Group& g : groups_) {
    g.offset = offset;
    offset += g.count;
  }
  grouped_rows_.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    Group& g = groups_[row_group_[i]];
    grouped_rows_[g.offset++] = static_cast<uint32_t>(i);
  }
  // Pass 2: one UpdateBatch per tenant. g.offset now points one past the
  // group's rows (it served as the scatter cursor); the start is
  // offset - count. Budget enforcement is deferred to the end of the
  // batch so no group's tenant is evicted mid-flight.
  for (const Group& g : groups_) {
    if (Status st = EnsureResident(g.slot); !st.ok()) return st;
    const uint32_t start = g.offset - g.count;
    group_rows_.ResetShape(g.count, dim_);
    group_ts_.resize(g.count);
    for (uint32_t j = 0; j < g.count; ++j) {
      const KeyedRow& kr = rows[grouped_rows_[start + j]];
      std::memcpy(group_rows_.Row(j).data(), kr.values.data(),
                  dim_ * sizeof(double));
      group_ts_[j] = kr.ts;
    }
    tenants_[g.slot].sketch->UpdateBatch(group_rows_, group_ts_);
    metrics_.rows_ingested->Add(g.count);
    Touch(g.slot);
    Recharge(g.slot);
  }
  EnforceBudget();
  return Status::OK();
}

Status TenantManager::CreateTenant(uint64_t key) {
  FindOrCreateSlot(key);
  EnforceBudget();
  return Status::OK();
}

Status TenantManager::AdvanceTo(uint64_t key, double now) {
  const uint32_t slot = FindOrCreateSlot(key);
  if (Status st = EnsureResident(slot); !st.ok()) return st;
  tenants_[slot].sketch->AdvanceTo(now);
  Touch(slot);
  Recharge(slot);
  EnforceBudget();
  return Status::OK();
}

Result<Matrix> TenantManager::Query(uint64_t key) {
  metrics_.queries->Add(1);
  const uint32_t slot = FindSlot(key);
  if (slot == kNil) return Matrix(0, dim_);
  if (Status st = EnsureResident(slot); !st.ok()) return st;
  Matrix out = tenants_[slot].sketch->Query();
  Touch(slot);
  Recharge(slot);
  EnforceBudget();
  return out;
}

Status TenantManager::EvictTenant(uint64_t key) {
  const uint32_t slot = FindSlot(key);
  if (slot == kNil) {
    return Status::NotFound("no tenant with key " + std::to_string(key));
  }
  if (!proto_.serializable()) {
    return Status::Unimplemented("algorithm cannot serialize, so tenants "
                                 "cannot spill");
  }
  if (tenants_[slot].sketch == nullptr) return Status::OK();  // Already out.
  EvictSlot(slot);
  return Status::OK();
}

bool TenantManager::IsResident(uint64_t key) const {
  const uint32_t slot = FindSlot(key);
  return slot != kNil && tenants_[slot].sketch != nullptr;
}

}  // namespace swsketch
