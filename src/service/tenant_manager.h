// Multi-tenant sliding-window sketch manager (DESIGN.md §8 "Multi-tenant
// serving"): multiplexes a keyed row stream (tenant key -> row) across one
// SlidingWindowSketch per key, scaling the paper's per-window sketches to
// 100k+ concurrent windows.
//
// Systems layout:
//  - Key -> slot resolution is one probe of an open-addressing table
//    (power-of-two, linear probing, grown at 70% load). Tenants are never
//    deleted while the manager lives, so the table needs no tombstones.
//  - Sketch instances live in fixed-size slabs from a TenantArena pool,
//    stamped by a core/factory SketchPrototype: creating tenant #100,001
//    costs one bump-pointer hit plus a placement constructor with
//    pre-resolved metric handles, instead of a heap allocation plus a
//    dozen registry lookups. All FD-backed tenants share one shrink
//    workspace (instances are driven one at a time by the manager's
//    caller) and the process-wide ThreadPool for cold query merges.
//  - UpdateKeyed() groups a batch of keyed rows by tenant (stable, first
//    touch order, per-key stream order preserved) and forwards each group
//    through the tenant's UpdateBatch block fast path, amortizing
//    lookup + virtual dispatch + LRU/budget bookkeeping to once per group.
//    Per-tenant state is bit-identical to feeding that tenant's rows alone
//    (UpdateBatch documents its serial-equivalence per backend).
//  - Under a memory budget, the coldest tenants (LRU over every touching
//    op) serialize into a compacting SpillRegion using the existing v2
//    wire format and their slabs return to the arena pool. A spilled
//    tenant reloads lazily on next touch, bit-stably: serialization
//    round-trips the full sketch state and query caches are never
//    serialized, so a reloaded tenant answers Query() byte-identically to
//    a never-evicted twin.
//
// Not thread-safe: one manager serves one writer thread (shard a keyed
// stream across managers with distributed/sharded_sketch idioms for more).
#ifndef SWSKETCH_SERVICE_TENANT_MANAGER_H_
#define SWSKETCH_SERVICE_TENANT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/sliding_window_sketch.h"
#include "linalg/matrix.h"
#include "service/tenant_arena.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// One row of a keyed stream: tenant key, timestamp, dense values (must
/// stay valid for the duration of the UpdateKeyed call).
struct KeyedRow {
  uint64_t key = 0;
  double ts = 0.0;
  std::span<const double> values;
};

/// Owner of per-key sliding-window sketches with arena allocation and
/// budget-driven eviction/spill.
class TenantManager {
 public:
  struct Options {
    /// Aggregate resident-bytes budget, enforced against the charged-bytes
    /// model reported by resident_bytes(). 0 disables eviction. A nonzero
    /// budget requires a serializable algorithm (swr, swor, swor-all,
    /// lm-fd, lm-hash, di-fd) so cold tenants can spill.
    size_t memory_budget_bytes = 0;
    /// Eviction never shrinks the resident set below this many tenants
    /// (the budget is a target, not a hard cap, once only this many
    /// remain).
    size_t min_resident_tenants = 1;
    /// Arena chunk granularity in slots.
    size_t slots_per_chunk = 1024;
    /// Metric name prefix ("tenant_manager.tenants", ...). Managers with
    /// the same prefix share counters, so ledger laws hold per prefix.
    std::string metrics_prefix = "tenant_manager";
  };

  /// Validates the config exactly like MakeSlidingWindowSketch.
  static Result<std::unique_ptr<TenantManager>> Make(
      size_t dim, WindowSpec window, const SketchConfig& config,
      Options options);
  static Result<std::unique_ptr<TenantManager>> Make(
      size_t dim, WindowSpec window, const SketchConfig& config) {
    return Make(dim, window, config, Options());
  }

  ~TenantManager();
  TenantManager(const TenantManager&) = delete;
  TenantManager& operator=(const TenantManager&) = delete;

  /// Single-row ingest (the naive per-row path: one lookup + one virtual
  /// dispatch + bookkeeping per row). Creates the tenant on first touch.
  Status Update(uint64_t key, std::span<const double> row, double ts);

  /// Keyed batch fast path: groups `rows` by tenant and forwards each
  /// group through UpdateBatch. Timestamps must be non-decreasing per key
  /// (continuing from that tenant's previous rows). Creates tenants on
  /// first touch.
  Status UpdateKeyed(std::span<const KeyedRow> rows);

  /// Pre-provisions a tenant without feeding rows (idempotent). Exposed
  /// for warm-up flows and the creation-cost benchmark.
  Status CreateTenant(uint64_t key);

  /// Advances one tenant's window clock without an arrival.
  Status AdvanceTo(uint64_t key, double now);

  /// Approximation for the tenant's current window; an empty 0 x dim
  /// matrix for a key that was never fed. Reloads a spilled tenant.
  Result<Matrix> Query(uint64_t key);

  size_t dim() const { return dim_; }
  size_t num_tenants() const { return tenants_.size(); }
  size_t resident_tenants() const { return resident_count_; }
  size_t spilled_tenants() const { return tenants_.size() - resident_count_; }

  /// Charged-bytes model of the resident set: per tenant, its slab stride
  /// plus fixed bookkeeping plus RowsStored() * (row payload + container
  /// overhead). This is what the budget bounds; it tracks real usage to
  /// within the model constants, not an allocator census.
  size_t resident_bytes() const { return resident_bytes_; }
  size_t spill_bytes() const { return spill_.live_bytes(); }
  size_t arena_reserved_bytes() const { return arena_.reserved_bytes(); }

  /// Force-evicts one tenant (test/bench hook). OK and a no-op when the
  /// tenant is already spilled; NotFound for unknown keys; Unimplemented
  /// when the algorithm cannot serialize.
  Status EvictTenant(uint64_t key);

  bool IsResident(uint64_t key) const;

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Tenant {
    uint64_t key = 0;
    SlidingWindowSketch* sketch = nullptr;  // Null while spilled.
    void* slab = nullptr;
    uint32_t spill_record = SpillRegion::kInvalidRecord;
    uint64_t charged_bytes = 0;
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
  };

  struct TableEntry {
    uint64_t key = 0;
    uint32_t slot_plus_1 = 0;  // 0 = empty.
  };

  // Tenant ledger (per metrics_prefix, settled at destruction):
  //   tenants_created == tenants + resident_discarded + spilled_discarded
  //   tenants_created + reloads
  //     == spills + resident_discarded + resident_tenants
  //   spills == reloads + spilled_discarded + spilled_tenants
  struct MetricSet {
    explicit MetricSet(const MetricScope& scope)
        : tenants_created(scope.counter("tenants_created")),
          rows_ingested(scope.counter("rows_ingested")),
          keyed_batches(scope.counter("keyed_batches")),
          keyed_groups(scope.counter("keyed_groups")),
          queries(scope.counter("queries")),
          spills(scope.counter("spills")),
          reloads(scope.counter("reloads")),
          resident_discarded(scope.counter("resident_discarded")),
          spilled_discarded(scope.counter("spilled_discarded")),
          spill_compactions(scope.counter("spill_compactions")),
          tenants(scope.gauge("tenants")),
          resident_tenants(scope.gauge("resident_tenants")),
          spilled_tenants(scope.gauge("spilled_tenants")),
          resident_bytes(scope.gauge("resident_bytes")),
          spill_bytes(scope.gauge("spill_bytes")),
          arena_reserved_bytes(scope.gauge("arena_reserved_bytes")) {}
    Counter* tenants_created;
    Counter* rows_ingested;
    Counter* keyed_batches;
    Counter* keyed_groups;
    Counter* queries;
    Counter* spills;
    Counter* reloads;
    Counter* resident_discarded;
    Counter* spilled_discarded;
    Counter* spill_compactions;
    Gauge* tenants;
    Gauge* resident_tenants;
    Gauge* spilled_tenants;
    Gauge* resident_bytes;
    Gauge* spill_bytes;
    Gauge* arena_reserved_bytes;
  };

  TenantManager(size_t dim, WindowSpec window, SketchPrototype proto,
                Options options);

  uint32_t FindSlot(uint64_t key) const;     // kNil when absent.
  uint32_t FindOrCreateSlot(uint64_t key);   // Creates resident on miss.
  Status EnsureResident(uint32_t slot);      // Lazy bit-stable reload.
  void EvictSlot(uint32_t slot);             // Spill + release slab.
  void EnforceBudget();                      // Evict LRU tail to budget.
  void Touch(uint32_t slot);                 // LRU move-to-front.
  void LruPushFront(uint32_t slot);
  void LruRemove(uint32_t slot);
  void Recharge(uint32_t slot);              // Refresh charged bytes.
  uint64_t ChargeOf(const Tenant& t) const;
  void SyncStorageGauges();
  void GrowTable();

  size_t dim_;
  WindowSpec window_;
  Options options_;
  SketchPrototype proto_;
  TenantArena arena_;
  SpillRegion spill_;
  MetricSet metrics_;

  std::vector<Tenant> tenants_;
  std::vector<TableEntry> table_;
  size_t table_mask_ = 0;
  size_t table_used_ = 0;

  uint32_t lru_head_ = kNil;
  uint32_t lru_tail_ = kNil;
  size_t resident_count_ = 0;
  size_t resident_bytes_ = 0;

  // UpdateKeyed scratch, reused across calls (allocation-free in steady
  // state). slot_group_/slot_group_epoch_ map slot -> group id for the
  // current batch without clearing between batches.
  struct Group {
    uint32_t slot = 0;
    uint32_t count = 0;
    uint32_t offset = 0;
  };
  std::vector<uint32_t> row_group_;
  std::vector<Group> groups_;
  std::vector<uint32_t> grouped_rows_;
  std::vector<uint32_t> slot_group_;
  std::vector<uint64_t> slot_group_epoch_;
  uint64_t group_epoch_ = 0;
  Matrix group_rows_{0, 0};
  std::vector<double> group_ts_;

  // Deltas already pushed into the shared gauges, so multiple managers
  // with one prefix settle exactly at destruction.
  int64_t gauge_spill_bytes_ = 0;
  int64_t gauge_arena_bytes_ = 0;
  size_t counted_compactions_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SERVICE_TENANT_MANAGER_H_
