#include "sketch/exact_covariance.h"

#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

ExactCovariance::ExactCovariance(size_t dim)
    : dim_(dim), gram_(dim, dim) {}

void ExactCovariance::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  gram_.AddOuterProduct(row);
  frob_sq_ += NormSq(row);
}

Matrix ExactCovariance::Approximation() const {
  const SymmetricEigen eig = JacobiEigen(gram_);
  Matrix b(dim_, dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double s = std::sqrt(std::max(eig.eigenvalues[i], 0.0));
    for (size_t j = 0; j < dim_; ++j) {
      b(i, j) = s * eig.eigenvectors(j, i);
    }
  }
  return b;
}

}  // namespace swsketch
