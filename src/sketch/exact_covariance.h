// Exact covariance tracking: the O(d^2)-space streaming "sketch" that
// maintains A^T A directly (Section 1). In the unbounded model this is the
// trivially optimal solution for moderate d; over sliding windows Theorem
// 4.1 shows nothing like it can exist in sublinear space — which is what
// makes the paper's problem interesting. Included as a baseline and for the
// lower-bound demonstration bench.
#ifndef SWSKETCH_SKETCH_EXACT_COVARIANCE_H_
#define SWSKETCH_SKETCH_EXACT_COVARIANCE_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"
#include "sketch/matrix_sketch.h"

namespace swsketch {

/// Maintains G = A^T A exactly with d^2 space and d^2 update cost.
class ExactCovariance : public MatrixSketch {
 public:
  explicit ExactCovariance(size_t dim);

  void Append(std::span<const double> row, uint64_t id = 0) override;

  /// Returns B = diag(sqrt(lambda)) V^T from the eigendecomposition of G,
  /// a d x d matrix with B^T B = A^T A exactly (up to fp error).
  Matrix Approximation() const override;

  size_t RowsStored() const override { return dim_; }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "ExactCov"; }

  /// Direct access to the maintained covariance matrix.
  const Matrix& Covariance() const { return gram_; }

  double frobenius_norm_sq() const { return frob_sq_; }

 private:
  size_t dim_;
  Matrix gram_;
  double frob_sq_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_EXACT_COVARIANCE_H_
