#include "sketch/frequent_directions.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

FrequentDirections::FrequentDirections(size_t dim, Options options)
    : dim_(dim), options_(options) {
  SWSKETCH_CHECK_GE(options_.ell, 2u);
  shrink_rank_ = options_.shrink_rank == 0 ? (options_.ell + 1) / 2
                                           : options_.shrink_rank;
  SWSKETCH_CHECK_GE(shrink_rank_, 1u);
  SWSKETCH_CHECK_LE(shrink_rank_, options_.ell);
  b_ = Matrix(options_.ell, dim_);
}

void FrequentDirections::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  if (used_ == options_.ell) ShrinkWithRank(shrink_rank_);
  std::copy(row.begin(), row.end(), b_.RowPtr(used_));
  ++used_;
  input_mass_ += NormSq(row);
}

void FrequentDirections::AppendSparse(const SparseVector& row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.dim(), dim_);
  if (used_ == options_.ell) ShrinkWithRank(shrink_rank_);
  double* dst = b_.RowPtr(used_);
  std::fill(dst, dst + dim_, 0.0);
  row.AxpyInto({dst, dim_});
  ++used_;
  input_mass_ += row.NormSq();
}

void FrequentDirections::AppendMatrix(const Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) Append(m.Row(i), 0);
}

Matrix FrequentDirections::Approximation() const {
  Matrix out(0, dim_);
  out.ReserveRows(used_);
  for (size_t i = 0; i < used_; ++i) out.AppendRow(b_.Row(i));
  return out;
}

void FrequentDirections::ShrinkNow() { ShrinkWithRank(shrink_rank_); }

void FrequentDirections::ShrinkWithRank(size_t rank) {
  if (used_ == 0) return;
  Matrix occupied(0, dim_);
  occupied.ReserveRows(used_);
  for (size_t i = 0; i < used_; ++i) occupied.AppendRow(b_.Row(i));

  const SvdResult svd = ThinSvd(occupied);
  const size_t r = svd.singular_values.size();
  const double lambda =
      rank <= r ? svd.singular_values[rank - 1] * svd.singular_values[rank - 1]
                : 0.0;

  b_.SetZero();
  size_t out = 0;
  for (size_t i = 0; i < r; ++i) {
    const double s2 = svd.singular_values[i] * svd.singular_values[i] - lambda;
    if (s2 <= 0.0) break;  // Singular values are descending.
    const double s = std::sqrt(s2);
    double* dst = b_.RowPtr(out);
    const double* v = svd.vt.RowPtr(i);
    for (size_t j = 0; j < dim_; ++j) dst[j] = s * v[j];
    ++out;
  }
  used_ = out;
  if (lambda > 0.0) {
    // Every retained direction lost lambda, plus the zeroed tail; the FD
    // error analysis charges lambda once per shrink against the covariance
    // error, which is what we accumulate here.
    shed_mass_ += lambda;
  }
}

void FrequentDirections::MergeWith(const FrequentDirections& other) {
  SWSKETCH_CHECK_EQ(dim_, other.dim_);
  SWSKETCH_CHECK_EQ(options_.ell, other.options_.ell);

  // Stack occupied rows of both sketches into this buffer (temporarily
  // growing to 2*ell rows), then shrink back with sigma_{ell+1}^2 so that
  // at most ell rows survive.
  Matrix stacked(0, dim_);
  stacked.ReserveRows(used_ + other.used_);
  for (size_t i = 0; i < used_; ++i) stacked.AppendRow(b_.Row(i));
  for (size_t i = 0; i < other.used_; ++i) stacked.AppendRow(other.b_.Row(i));

  input_mass_ += other.input_mass_;
  shed_mass_ += other.shed_mass_;

  if (stacked.rows() <= options_.ell) {
    b_.SetZero();
    for (size_t i = 0; i < stacked.rows(); ++i) {
      std::copy(stacked.Row(i).begin(), stacked.Row(i).end(), b_.RowPtr(i));
    }
    used_ = stacked.rows();
    return;
  }

  const SvdResult svd = ThinSvd(stacked);
  const size_t r = svd.singular_values.size();
  const size_t ell = options_.ell;
  const double lambda =
      ell + 1 <= r
          ? svd.singular_values[ell] * svd.singular_values[ell]
          : 0.0;

  b_.SetZero();
  size_t out = 0;
  for (size_t i = 0; i < r && out < ell; ++i) {
    const double s2 = svd.singular_values[i] * svd.singular_values[i] - lambda;
    if (s2 <= 0.0) break;
    const double s = std::sqrt(s2);
    double* dst = b_.RowPtr(out);
    const double* v = svd.vt.RowPtr(i);
    for (size_t j = 0; j < dim_; ++j) dst[j] = s * v[j];
    ++out;
  }
  used_ = out;
  if (lambda > 0.0) shed_mass_ += lambda;
}

namespace {
constexpr uint32_t kFdTag = 0x46440001;  // "FD" v1 marker space.
}  // namespace

void FrequentDirections::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kFdTag, 1);
  writer->Put<uint64_t>(dim_);
  writer->Put<uint64_t>(options_.ell);
  writer->Put<uint64_t>(options_.shrink_rank);
  writer->Put<uint64_t>(shrink_rank_);
  b_.Serialize(writer);
  writer->Put<uint64_t>(used_);
  writer->Put(shed_mass_);
  writer->Put(input_mass_);
}

Result<FrequentDirections> FrequentDirections::Deserialize(
    ByteReader* reader) {
  if (!CheckHeader(reader, kFdTag, 1)) {
    return Status::InvalidArgument("bad FrequentDirections header");
  }
  uint64_t dim = 0, ell = 0, shrink_opt = 0, shrink_resolved = 0, used = 0;
  if (!reader->Get(&dim) || !reader->Get(&ell) || !reader->Get(&shrink_opt) ||
      !reader->Get(&shrink_resolved)) {
    return Status::InvalidArgument("corrupt FrequentDirections payload");
  }
  if (ell < 2 || shrink_resolved < 1 || shrink_resolved > ell) {
    return Status::InvalidArgument("invalid FrequentDirections config");
  }
  auto b = Matrix::Deserialize(reader);
  if (!b.ok()) return b.status();
  FrequentDirections fd(dim, Options{.ell = ell, .shrink_rank = shrink_opt});
  if (!reader->Get(&used) || !reader->Get(&fd.shed_mass_) ||
      !reader->Get(&fd.input_mass_) || used > ell ||
      b->rows() != ell || b->cols() != dim) {
    return Status::InvalidArgument("corrupt FrequentDirections payload");
  }
  fd.b_ = b.take();
  fd.used_ = used;
  fd.shrink_rank_ = shrink_resolved;
  return fd;
}

}  // namespace swsketch
