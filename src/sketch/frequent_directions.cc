#include "sketch/frequent_directions.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "linalg/svd.h"
#include "linalg/tridiag_eigen.h"
#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

namespace {

// Handles resolved once per process; every FD instance shares them (the
// "fd." prefix is per-backend, not per-sketch — LM/DI attribute per-sketch
// work at their own layer). Increments are single relaxed atomic adds.
struct FdMetrics {
  Counter* appends;
  Counter* shrinks;
  Counter* shrink_route_gram_wide;
  Counter* shrink_route_gram_tall;
  Counter* shrink_route_thinsvd;
  Counter* eigen_route_jacobi;
  Counter* eigen_route_tridiag;
  Counter* scratch_creates;
  Counter* scratch_shares;
  Counter* merges;
  Histogram* shrink_ns;

  static const FdMetrics& Get() {
    static const FdMetrics m = [] {
      MetricScope scope("fd");
      return FdMetrics{scope.counter("appends"),
                       scope.counter("shrinks"),
                       scope.counter("shrink_route_gram_wide"),
                       scope.counter("shrink_route_gram_tall"),
                       scope.counter("shrink_route_thinsvd"),
                       scope.counter("eigen_route_jacobi"),
                       scope.counter("eigen_route_tridiag"),
                       scope.counter("scratch_creates"),
                       scope.counter("scratch_shares"),
                       scope.counter("merges"),
                       scope.histogram("shrink_ns")};
    }();
    return m;
  }
};

}  // namespace

// Everything the Gram-eigen shrink touches between calls. Recycled across
// shrinks (and across FD instances, when shared) so the steady state does
// no heap allocation: each member is reshaped in place via ResetShape /
// assign, which reuse capacity once the largest problem size has been seen.
struct FdShrinkScratch {
  Matrix gram;                  // Small-side Gram: n x n (wide) or d x d.
  SymmetricEigenScratch eigen;  // Symmetric eigensolver workspace.
  Matrix lhs;                   // Retained eigenvectors transposed, k x n.
  Matrix product;               // W^T B staging, k x d.
  std::vector<double> row_tmp;  // Tall-route eigenvector column staging.
};

FrequentDirections::FrequentDirections(size_t dim, Options options)
    : dim_(dim), options_(options) {
  SWSKETCH_CHECK_GE(options_.ell, 2u);
  SWSKETCH_CHECK_GE(options_.buffer_factor, 1.0);
  shrink_rank_ = options_.shrink_rank == 0 ? (options_.ell + 1) / 2
                                           : options_.shrink_rank;
  SWSKETCH_CHECK_GE(shrink_rank_, 1u);
  SWSKETCH_CHECK_LE(shrink_rank_, options_.ell);
  capacity_ = std::max(
      options_.ell,
      static_cast<size_t>(options_.buffer_factor *
                          static_cast<double>(options_.ell)));
  b_ = Matrix(0, dim_);
  b_.ReserveRows(capacity_);
}

std::shared_ptr<FdShrinkScratch> FrequentDirections::MakeShrinkScratch() {
  return std::make_shared<FdShrinkScratch>();
}

void FrequentDirections::ShareShrinkScratch(
    std::shared_ptr<FdShrinkScratch> scratch) {
  FdMetrics::Get().scratch_shares->Add();
  scratch_ = std::move(scratch);
}

FdShrinkScratch* FrequentDirections::shrink_scratch() {
  if (!scratch_) {
    FdMetrics::Get().scratch_creates->Add();
    scratch_ = MakeShrinkScratch();
  }
  return scratch_.get();
}

void FrequentDirections::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  FdMetrics::Get().appends->Add();
  if (b_.rows() == capacity_) ShrinkWithRank(shrink_rank_);
  b_.AppendRow(row);
  input_mass_ += NormSq(row);
}

void FrequentDirections::AppendBatch(const Matrix& m, size_t begin, size_t end,
                                     uint64_t first_id) {
  SWSKETCH_CHECK_LE(begin, end);
  SWSKETCH_CHECK_LE(end, m.rows());
  const size_t count = end - begin;
  if (count == 0) return;
  if (count == 1 || capacity_ < dim_) {
    // Shrinking an n x d buffer costs O(min(n, d)^2 (n + d)); below d rows
    // that is cubic in n, so batching rows before the shrink makes each
    // shrink more expensive than the per-row schedule saves. Replay the
    // serial path.
    for (size_t i = begin; i < end; ++i) Append(m.Row(i), first_id + (i - begin));
    return;
  }
  // Tall regime: every shrink costs O(d^3) regardless of how many rows are
  // buffered, so append the whole block and pay one shrink instead of up to
  // `count`. The single shrink still sheds >= shrink_rank * lambda of mass,
  // so shed_mass() stays <= input_mass() / shrink_rank.
  FdMetrics::Get().appends->Add(count);
  b_.ReserveRows(b_.rows() + count);
  for (size_t i = begin; i < end; ++i) {
    const auto row = m.Row(i);
    b_.AppendRow(row);
    input_mass_ += NormSq(row);
  }
  if (b_.rows() > capacity_) ShrinkWithRank(shrink_rank_);
}

void FrequentDirections::AppendSparse(const SparseVector& row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.dim(), dim_);
  FdMetrics::Get().appends->Add();
  if (b_.rows() == capacity_) ShrinkWithRank(shrink_rank_);
  sparse_scratch_.assign(dim_, 0.0);
  row.AxpyInto(sparse_scratch_);
  b_.AppendRow(sparse_scratch_);
  input_mass_ += row.NormSq();
}

void FrequentDirections::AppendMatrix(const Matrix& m) {
  // Feed AppendBatch in capacity-sized chunks: the narrow regime replays
  // per-row appends exactly, and the tall regime pays one shrink per chunk
  // while the buffer never transiently exceeds 2 * capacity rows (an
  // unchunked batch would stage the whole matrix before its one shrink).
  const size_t chunk = std::max<size_t>(capacity_, 1);
  for (size_t b = 0; b < m.rows(); b += chunk) {
    AppendBatch(m, b, std::min(m.rows(), b + chunk), 0);
  }
}

void FrequentDirections::ShrinkNow() { ShrinkWithRank(shrink_rank_); }

void FrequentDirections::ShrinkWithRank(size_t rank) {
  if (b_.rows() == 0) return;
  Rebuild(rank, capacity_);
}

void FrequentDirections::Rebuild(size_t rank, size_t max_rows) {
  const FdMetrics& metrics = FdMetrics::Get();
  metrics.shrinks->Add();
  ScopedTimer timer(metrics.shrink_ns);
  switch (options_.shrink_backend) {
    case FdShrinkBackend::kGramEigen:
      RebuildFromGramEigen(rank, max_rows);
      return;
    case FdShrinkBackend::kThinSvd:
      RebuildFromSvd(rank, max_rows);
      return;
  }
  SWSKETCH_CHECK(false);
}

void FrequentDirections::RebuildFromSvd(size_t rank, size_t max_rows) {
  // b_ holds exactly the occupied rows, so the SVD runs on it directly —
  // no staging copy, and the survivors are written back in place.
  FdMetrics::Get().shrink_route_thinsvd->Add();
  const SvdResult svd = ThinSvd(b_);
  ++shrink_count_;
  const size_t r = svd.singular_values.size();
  const double lambda =
      rank <= r ? svd.singular_values[rank - 1] * svd.singular_values[rank - 1]
                : 0.0;

  b_.TruncateRows(0);
  for (size_t i = 0; i < r && b_.rows() < max_rows; ++i) {
    const double s2 = svd.singular_values[i] * svd.singular_values[i] - lambda;
    if (s2 <= 0.0) break;  // Singular values are descending.
    b_.AppendRowScaled(svd.vt.Row(i), std::sqrt(s2));
  }
  if (lambda > 0.0) {
    // Every retained direction lost lambda, plus the zeroed tail; the FD
    // error analysis charges lambda once per shrink against the covariance
    // error, which is what we accumulate here.
    shed_mass_ += lambda;
  }
}

void FrequentDirections::RebuildFromGramEigen(size_t rank, size_t max_rows) {
  const FdMetrics& metrics = FdMetrics::Get();
  FdShrinkScratch& s = *shrink_scratch();
  ++shrink_count_;
  const size_t n = b_.rows();
  const size_t d = dim_;
  // Mirror SymmetricEigenSolve's dispatch rule so the route counters say
  // which eigensolver actually ran on the small-side Gram.
  (std::min(n, d) <= options_.eigen_jacobi_cutoff ? metrics.eigen_route_jacobi
                                                  : metrics.eigen_route_tridiag)
      ->Add();
  (n <= d ? metrics.shrink_route_gram_wide : metrics.shrink_route_gram_tall)
      ->Add();
  // Same numerical-rank cutoff as ThinSvd, so both backends retain the
  // same directions on rank-deficient buffers.
  const double rank_tol = SvdOptions{}.rank_tol;

  if (n <= d) {
    // Wide buffer (the streaming steady state): G = B B^T is n x n with
    // n <= capacity << d. An eigenpair (lambda_i, w_i) of G gives
    // sigma_i = sqrt(lambda_i) and right-singular direction
    // v_i^T = (w_i^T B) / ||w_i^T B||, so the shrunk row is
    // sqrt(sigma_i^2 - lambda) * (w_i^T B) / ||w_i^T B|| — ThinSvd's wide
    // route without ever materializing U or V. All k products w_i^T B are
    // computed as one k x n by n x d multiply, which the shared pool
    // partitions by rows when large enough.
    b_.GramOuterInto(&s.gram);
    const SymmetricEigen& eig =
        SymmetricEigenSolve(s.gram, &s.eigen, options_.eigen_jacobi_cutoff);
    const double lmax =
        std::max(eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues[0], 0.0);
    const double cutoff = rank_tol * std::max(std::sqrt(lmax), 1e-300);
    size_t r = 0;
    for (double l : eig.eigenvalues) {
      if (l > 0.0 && std::sqrt(l) > cutoff) ++r;
    }
    double lambda = 0.0;
    if (rank <= r) {
      const double sigma = std::sqrt(eig.eigenvalues[rank - 1]);
      lambda = sigma * sigma;
    }
    // Survivor count: eigenvalues are descending, so the retained rows are
    // the prefix with sigma_i^2 > lambda, capped at max_rows.
    size_t k = 0;
    while (k < r && k < max_rows) {
      const double sigma = std::sqrt(eig.eigenvalues[k]);
      if (sigma * sigma - lambda <= 0.0) break;
      ++k;
    }
    s.lhs.ResetShape(k, n);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < n; ++j) s.lhs(i, j) = eig.eigenvectors(j, i);
    }
    s.lhs.MultiplyRowsInto(b_, 0, &s.product);  // Row i = w_i^T B.
    b_.TruncateRows(0);
    for (size_t i = 0; i < k; ++i) {
      const double sigma = std::sqrt(eig.eigenvalues[i]);
      const double s2 = sigma * sigma - lambda;
      const double norm = std::sqrt(NormSq(s.product.Row(i)));
      if (norm == 0.0) continue;  // Unreachable past the rank cutoff.
      b_.AppendRowScaled(s.product.Row(i), std::sqrt(s2) / norm);
    }
    if (lambda > 0.0) shed_mass_ += lambda;
    return;
  }

  // Tall buffer (capacity > dim, e.g. merges at small d): G = B^T B is
  // d x d and the retained rows are the eigenvectors themselves scaled by
  // sqrt(sigma_i^2 - lambda) — ThinSvd's tall route, minus U.
  b_.GramInto(&s.gram);
  const SymmetricEigen& eig =
      SymmetricEigenSolve(s.gram, &s.eigen, options_.eigen_jacobi_cutoff);
  const double lmax =
      std::max(eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues[0], 0.0);
  const double cutoff = rank_tol * std::max(std::sqrt(lmax), 1e-300);
  size_t r = 0;
  for (double l : eig.eigenvalues) {
    if (l > 0.0 && std::sqrt(l) > cutoff) ++r;
  }
  double lambda = 0.0;
  if (rank <= r) {
    const double sigma = std::sqrt(eig.eigenvalues[rank - 1]);
    lambda = sigma * sigma;
  }
  b_.TruncateRows(0);
  s.row_tmp.resize(d);
  for (size_t i = 0; i < r && b_.rows() < max_rows; ++i) {
    const double sigma = std::sqrt(eig.eigenvalues[i]);
    const double s2 = sigma * sigma - lambda;
    if (s2 <= 0.0) break;  // Eigenvalues are descending.
    for (size_t j = 0; j < d; ++j) s.row_tmp[j] = eig.eigenvectors(j, i);
    b_.AppendRowScaled(s.row_tmp, std::sqrt(s2));
  }
  if (lambda > 0.0) shed_mass_ += lambda;
}

void FrequentDirections::MergeWith(const FrequentDirections& other) {
  FdMetrics::Get().merges->Add();
  SWSKETCH_CHECK_EQ(dim_, other.dim_);
  SWSKETCH_CHECK_EQ(options_.ell, other.options_.ell);

  // Stack the other sketch's rows onto this buffer in place (the reserve
  // keeps row spans valid even when other == this), then shrink back with
  // sigma_{ell+1}^2 so that at most ell rows survive.
  const size_t other_rows = other.b_.rows();
  b_.ReserveRows(b_.rows() + other_rows);
  for (size_t i = 0; i < other_rows; ++i) b_.AppendRow(other.b_.Row(i));

  input_mass_ += other.input_mass_;
  shed_mass_ += other.shed_mass_;

  if (b_.rows() > options_.ell) Rebuild(options_.ell + 1, options_.ell);
}

namespace {
constexpr uint32_t kFdTag = 0x46440001;  // "FD" marker space.
}  // namespace

void FrequentDirections::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kFdTag, 2);
  writer->Put<uint64_t>(dim_);
  writer->Put<uint64_t>(options_.ell);
  writer->Put<uint64_t>(options_.shrink_rank);
  writer->Put(options_.buffer_factor);
  writer->Put<uint64_t>(shrink_rank_);
  writer->Put<uint64_t>(shrink_count_);
  b_.Serialize(writer);
  writer->Put(shed_mass_);
  writer->Put(input_mass_);
}

Result<FrequentDirections> FrequentDirections::Deserialize(
    ByteReader* reader) {
  uint32_t tag = 0, version = 0;
  if (!reader->Get(&tag) || !reader->Get(&version) || tag != kFdTag ||
      version != 2) {
    return Status::InvalidArgument("bad FrequentDirections header");
  }
  uint64_t dim = 0, ell = 0, shrink_opt = 0, shrink_resolved = 0, shrinks = 0;
  double buffer_factor = 1.0;
  if (!reader->Get(&dim) || !reader->Get(&ell) || !reader->Get(&shrink_opt) ||
      !reader->Get(&buffer_factor) || !reader->Get(&shrink_resolved) ||
      !reader->Get(&shrinks)) {
    return Status::InvalidArgument("corrupt FrequentDirections payload");
  }
  if (ell < 2 || shrink_resolved < 1 || shrink_resolved > ell ||
      buffer_factor < 1.0) {
    return Status::InvalidArgument("invalid FrequentDirections config");
  }
  auto b = Matrix::Deserialize(reader);
  if (!b.ok()) return b.status();
  FrequentDirections fd(dim, Options{.ell = ell, .shrink_rank = shrink_opt,
                                     .buffer_factor = buffer_factor});
  if (!reader->Get(&fd.shed_mass_) || !reader->Get(&fd.input_mass_) ||
      b->rows() > fd.capacity_ || b->cols() != dim) {
    return Status::InvalidArgument("corrupt FrequentDirections payload");
  }
  fd.b_ = b.take();
  fd.shrink_rank_ = shrink_resolved;
  fd.shrink_count_ = shrinks;
  return fd;
}

}  // namespace swsketch
