// Frequent Directions (Liberty, KDD'13): the deterministic streaming matrix
// sketch the paper builds LM-FD and DI-FD on. Maintains B with at most
// `ell` rows; when full, a shrink zeroes the smallest directions so that
// ||A^T A - B^T B|| <= shed_mass, where each shrink subtracting lambda
// removes at least shrink_rank * lambda of Frobenius mass, giving
// shed_mass <= ||A||_F^2 / shrink_rank (= 2 ||A||_F^2 / ell at the paper's
// default shrink position ell/2).
//
// The shrink never needs the singular vectors of B — only the shrunk
// spectrum re-expressed in B's row space. The default backend therefore
// eigendecomposes the small-side Gram (B B^T when B is wide, n x n with
// n <= buffer_factor * ell << d) and rebuilds B' = D W^T B directly:
// O(n^2 d) for the Gram and the product plus O(n^3) for the eigensolve,
// with no U/V recovery and, via a reusable FdShrinkScratch, no heap
// allocation in steady state.
//
// Amortized shrinking (Desai, Ghashami, Phillips, "Improved Practical
// Matrix Sketching with Guarantees"): with buffer_factor f > 1 the sketch
// buffers up to f * ell rows before shrinking, trading space for fewer SVD
// invocations. The guarantee is unchanged — each shrink still subtracts
// sigma_{shrink_rank}^2 and the trace argument only needs the buffer to
// hold at least shrink_rank rows — but shrinks happen every
// (f * ell - shrink_rank + 1) appends instead of every (ell - shrink_rank
// + 1), roughly halving per-row update cost at f = 2.
//
// Mergeable (Section 6.1): two sketches of equal ell stack and shrink back
// with sigma_{ell+1}^2 so at most ell rows survive, without exceeding the
// summed error budgets.
#ifndef SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_
#define SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "sketch/matrix_sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Which decomposition backs the FD shrink.
enum class FdShrinkBackend : uint8_t {
  /// Gram-eigen shrink (default): eigendecompose the small-side Gram of
  /// the buffer (B B^T, n x n with n <= buffer_factor * ell << d) and
  /// rebuild B' = D W^T B directly, where D = diag(sqrt(max(sigma^2 -
  /// lambda, 0)) / sigma). Never recovers U or V and never touches a d x d
  /// system; with a recycled scratch the whole shrink is heap-free.
  kGramEigen = 0,
  /// Legacy full ThinSvd(B) shrink, kept as the ablation reference
  /// (bench/ablate_fd_shrink). Same shrunk spectrum, materializes U and V.
  kThinSvd = 1,
};

/// Reusable workspace of the Gram-eigen shrink (Gram buffer, eigensolver
/// scratch, W^T B staging). Opaque: defined in frequent_directions.cc.
/// One scratch may be shared by every FD instance driven from a single
/// thread of execution — LM-FD and DI-FD share one across their per-block
/// sketches — but must never be used from two threads at once.
struct FdShrinkScratch;

/// Deterministic Frequent Directions sketch.
class FrequentDirections : public MatrixSketch {
 public:
  struct Options {
    /// Maximum rows kept by the sketch (l in the paper). Must be >= 2.
    size_t ell = 16;
    /// 1-indexed singular value whose square is subtracted on shrink.
    /// 0 means the paper's default ceil(ell / 2) ("FD with ell/2 empty rows
    /// after each shrink"). Must be <= ell.
    size_t shrink_rank = 0;
    /// Amortization: buffer up to buffer_factor * ell rows before
    /// shrinking (>= 1; 1 disables buffering). Approximation() and
    /// RowsStored() then transiently report up to that many rows.
    double buffer_factor = 1.0;
    /// Shrink decomposition. Not serialized: a deserialized sketch uses
    /// the default backend (the buffer contents are backend-agnostic).
    FdShrinkBackend shrink_backend = FdShrinkBackend::kGramEigen;
    /// Gram-eigen route selection: symmetric eigensolves on systems with
    /// fewer rows than this use cyclic Jacobi, larger ones tridiag QL
    /// (SymmetricEigenSolve's default cutoff). Runtime tuning only — like
    /// shrink_backend it is not serialized; bench/ablate_fd_shrink sweeps
    /// it to place the cutoff (0 forces tridiag, SIZE_MAX forces Jacobi).
    size_t eigen_jacobi_cutoff = 32;
  };

  FrequentDirections(size_t dim, Options options);
  FrequentDirections(size_t dim, size_t ell)
      : FrequentDirections(dim, Options{.ell = ell}) {}

  void Append(std::span<const double> row, uint64_t id = 0) override;

  /// Batched append. When the buffer is at least d rows tall
  /// (capacity >= dim, where ThinSvd cost is governed by d, not the row
  /// count) the whole block is appended first and a single deferred shrink
  /// restores the capacity bound — same guarantee (the one shrink sheds
  /// >= shrink_rank * lambda), measured ~9x fewer SVD milliseconds per row
  /// at ell = d = 64. When capacity < dim the SVD cost is cubic in the row
  /// count, so deferral would *lose*; the batch then replays the serial
  /// per-row schedule and is bit-identical to repeated Append.
  void AppendBatch(const Matrix& m, size_t begin, size_t end,
                   uint64_t first_id = 0) override;

  /// Sparse fast path: O(nnz) scatter instead of an O(d) copy (the shrink
  /// cost is unchanged).
  void AppendSparse(const SparseVector& row, uint64_t id = 0);

  /// Appends every row of `m`, routed through AppendBatch in
  /// buffer-capacity-sized chunks so transient memory stays O(capacity)
  /// while the tall regime still gets its deferred-shrink schedule.
  void AppendMatrix(const Matrix& m);

  Matrix Approximation() const override { return b_; }
  size_t RowsStored() const override { return b_.rows(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "FD"; }

  size_t ell() const { return options_.ell; }
  size_t shrink_rank() const { return shrink_rank_; }

  /// Maximum rows the buffer holds before a shrink is forced.
  size_t buffer_capacity() const { return capacity_; }

  /// Number of SVD-based shrinks performed so far (amortization metric).
  size_t shrink_count() const { return shrink_count_; }

  /// Total spectral mass subtracted by shrinks so far. The FD guarantee is
  /// ||A^T A - B^T B|| <= shed_mass() <= ||A||_F^2 / shrink_rank.
  double shed_mass() const { return shed_mass_; }

  /// Sum of squared norms of everything appended (= ||A||_F^2).
  double input_mass() const { return input_mass_; }

  /// Merges `other` into this sketch (Section 6.1): stack, SVD, shrink with
  /// sigma_{ell+1}^2 so the merged size is at most ell. Requires matching
  /// dim and ell. Works in place on this sketch's buffer.
  void MergeWith(const FrequentDirections& other);

  /// Forces a shrink now (exposed for tests).
  void ShrinkNow();

  /// Builds a fresh shrink workspace. Intended for composite sketches
  /// (LM-FD, DI-FD) that drive many FD instances from one thread and want
  /// them to share a single arena via ShareShrinkScratch.
  static std::shared_ptr<FdShrinkScratch> MakeShrinkScratch();

  /// Replaces this sketch's shrink workspace with `scratch` (shared, not
  /// copied). The sketch otherwise creates its own lazily on first shrink.
  /// Sharing is safe only while all sharers run on one thread at a time.
  void ShareShrinkScratch(std::shared_ptr<FdShrinkScratch> scratch);

  /// Checkpoint/resume: full sketch state (format version 2; version-1
  /// payloads from before amortized buffering are not readable). The shrink
  /// backend and scratch are runtime configuration and are not serialized.
  void Serialize(ByteWriter* writer) const;
  static Result<FrequentDirections> Deserialize(ByteReader* reader);

 private:
  // Shrinks the current buffer with lambda = sigma_{rank}^2 (1-indexed;
  // values beyond the actual rank mean lambda = 0), rewriting b_ in place.
  void ShrinkWithRank(size_t rank);

  // Rebuilds b_ in place from the shrunk spectrum, keeping at most max_rows
  // rows. Dispatches on options_.shrink_backend.
  void Rebuild(size_t rank, size_t max_rows);

  // Legacy backend: full ThinSvd of b_, rebuild from sigma/V.
  void RebuildFromSvd(size_t rank, size_t max_rows);

  // Default backend: small-side Gram eigendecomposition, B' = D W^T B.
  // Numerically matches RebuildFromSvd to ~ulp on the wide (rows <= dim)
  // route: ThinSvd takes the same Gram-eigen path internally there.
  void RebuildFromGramEigen(size_t rank, size_t max_rows);

  // Lazily creates scratch_ and returns it.
  FdShrinkScratch* shrink_scratch();

  size_t dim_;
  Options options_;
  size_t shrink_rank_;  // Resolved (options_.shrink_rank or ell/2).
  size_t capacity_;     // Resolved buffer rows: max(ell, buffer_factor*ell).
  Matrix b_;            // Exactly the occupied rows (<= capacity_) x dim.
  std::vector<double> sparse_scratch_;  // Dense staging for AppendSparse.
  std::shared_ptr<FdShrinkScratch> scratch_;  // Lazy; shareable across FDs.
  size_t shrink_count_ = 0;
  double shed_mass_ = 0.0;
  double input_mass_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_
