// Frequent Directions (Liberty, KDD'13): the deterministic streaming matrix
// sketch the paper builds LM-FD and DI-FD on. Maintains B with at most
// `ell` rows; when full, an SVD-based shrink zeroes the smallest directions
// so that ||A^T A - B^T B|| <= shed_mass, where each shrink subtracting
// lambda removes at least shrink_rank * lambda of Frobenius mass, giving
// shed_mass <= ||A||_F^2 / shrink_rank (= 2 ||A||_F^2 / ell at the paper's
// default shrink position ell/2).
//
// Mergeable (Section 6.1): two sketches of equal ell stack to 2*ell rows and
// shrink back to ell without exceeding the summed error budgets.
#ifndef SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_
#define SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "sketch/matrix_sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// Deterministic Frequent Directions sketch.
class FrequentDirections : public MatrixSketch {
 public:
  struct Options {
    /// Maximum rows kept by the sketch (l in the paper). Must be >= 2.
    size_t ell = 16;
    /// 1-indexed singular value whose square is subtracted on shrink.
    /// 0 means the paper's default ceil(ell / 2) ("FD with ell/2 empty rows
    /// after each shrink"). Must be <= ell.
    size_t shrink_rank = 0;
  };

  FrequentDirections(size_t dim, Options options);
  FrequentDirections(size_t dim, size_t ell)
      : FrequentDirections(dim, Options{.ell = ell, .shrink_rank = 0}) {}

  void Append(std::span<const double> row, uint64_t id = 0) override;

  /// Sparse fast path: O(nnz) scatter instead of an O(d) copy (the shrink
  /// cost is unchanged).
  void AppendSparse(const SparseVector& row, uint64_t id = 0);

  /// Appends every row of `m`.
  void AppendMatrix(const Matrix& m);

  Matrix Approximation() const override;
  size_t RowsStored() const override { return used_; }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "FD"; }

  size_t ell() const { return options_.ell; }
  size_t shrink_rank() const { return shrink_rank_; }

  /// Total spectral mass subtracted by shrinks so far. The FD guarantee is
  /// ||A^T A - B^T B|| <= shed_mass() <= ||A||_F^2 / shrink_rank.
  double shed_mass() const { return shed_mass_; }

  /// Sum of squared norms of everything appended (= ||A||_F^2).
  double input_mass() const { return input_mass_; }

  /// Merges `other` into this sketch (Section 6.1): stack, SVD, shrink with
  /// sigma_{ell+1}^2 so the merged size is at most ell. Requires matching
  /// dim and ell.
  void MergeWith(const FrequentDirections& other);

  /// Forces a shrink now (exposed for tests).
  void ShrinkNow();

  /// Checkpoint/resume: full sketch state.
  void Serialize(ByteWriter* writer) const;
  static Result<FrequentDirections> Deserialize(ByteReader* reader);

 private:
  // Shrinks the current buffer with lambda = sigma_{rank}^2 (1-indexed;
  // values beyond the actual rank mean lambda = 0) and re-materializes b_.
  void ShrinkWithRank(size_t rank);

  size_t dim_;
  Options options_;
  size_t shrink_rank_;  // Resolved (options_.shrink_rank or ell/2).
  Matrix b_;            // ell x dim; rows [0, used_) are occupied.
  size_t used_ = 0;
  double shed_mass_ = 0.0;
  double input_mass_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_FREQUENT_DIRECTIONS_H_
