#include "sketch/hash_sketch.h"

#include "util/logging.h"
#include "util/random.h"

namespace swsketch {

HashFamily::HashFamily(uint64_t seed) {
  Rng rng(seed);
  a1_ = rng.Next() | 1;  // Odd multipliers.
  a2_ = rng.Next() | 1;
  b_ = rng.Next();
  sign_a1_ = rng.Next() | 1;
  sign_a2_ = rng.Next() | 1;
  sign_b_ = rng.Next();
}

uint64_t HashFamily::Mix(uint64_t key) const {
  // Strongly-universal-ish mixing: two rounds of multiply-xorshift.
  uint64_t h = key * a1_ + b_;
  h ^= h >> 32;
  h *= a2_;
  h ^= h >> 29;
  return h;
}

size_t HashFamily::Bucket(uint64_t key, size_t buckets) const {
  // Fast range reduction via 128-bit multiply (unbiased enough for
  // sketching; the hash itself dominates the randomness).
  return static_cast<size_t>(
      (static_cast<unsigned __int128>(Mix(key)) * buckets) >> 64);
}

double HashFamily::Sign(uint64_t key) const {
  uint64_t h = key * sign_a1_ + sign_b_;
  h ^= h >> 31;
  h *= sign_a2_;
  h ^= h >> 33;
  return (h & 1) ? 1.0 : -1.0;
}

HashSketch::HashSketch(size_t dim, size_t ell, uint64_t seed)
    : dim_(dim), seed_(seed), hash_(seed), b_(ell, dim) {
  SWSKETCH_CHECK_GT(ell, 0u);
}

void HashSketch::Append(std::span<const double> row, uint64_t id) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  const size_t bucket = hash_.Bucket(id, b_.rows());
  const double sign = hash_.Sign(id);
  double* dst = b_.RowPtr(bucket);
  for (size_t j = 0; j < dim_; ++j) dst[j] += sign * row[j];
}

void HashSketch::AppendBatch(const Matrix& m, size_t begin, size_t end,
                             uint64_t first_id) {
  SWSKETCH_CHECK_LE(begin, end);
  SWSKETCH_CHECK_LE(end, m.rows());
  if (begin < end) SWSKETCH_CHECK_EQ(m.cols(), dim_);
  const size_t ell = b_.rows();
  for (size_t i = begin; i < end; ++i) {
    const uint64_t id = first_id + (i - begin);
    const double sign = hash_.Sign(id);
    const double* src = m.RowPtr(i);
    double* dst = b_.RowPtr(hash_.Bucket(id, ell));
    for (size_t j = 0; j < dim_; ++j) dst[j] += sign * src[j];
  }
}

void HashSketch::AppendSparse(const SparseVector& row, uint64_t id) {
  SWSKETCH_CHECK_EQ(row.dim(), dim_);
  const size_t bucket = hash_.Bucket(id, b_.rows());
  row.AxpyInto({b_.RowPtr(bucket), dim_}, hash_.Sign(id));
}

void HashSketch::MergeWith(const HashSketch& other) {
  SWSKETCH_CHECK_EQ(dim_, other.dim_);
  SWSKETCH_CHECK_EQ(b_.rows(), other.b_.rows());
  SWSKETCH_CHECK_EQ(seed_, other.seed_);
  b_.AddScaled(other.b_, 1.0);
}

namespace {
constexpr uint32_t kHashTag = 0x48530001;
}  // namespace

void HashSketch::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kHashTag, 1);
  writer->Put<uint64_t>(dim_);
  writer->Put<uint64_t>(seed_);
  b_.Serialize(writer);
}

Result<HashSketch> HashSketch::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, kHashTag, 1)) {
    return Status::InvalidArgument("bad HashSketch header");
  }
  uint64_t dim = 0, seed = 0;
  if (!reader->Get(&dim) || !reader->Get(&seed)) {
    return Status::InvalidArgument("corrupt HashSketch payload");
  }
  auto b = Matrix::Deserialize(reader);
  if (!b.ok()) return b.status();
  if (b->cols() != dim || b->rows() == 0) {
    return Status::InvalidArgument("corrupt HashSketch payload");
  }
  HashSketch hs(dim, b->rows(), seed);
  hs.b_ = b.take();
  return hs;
}

}  // namespace swsketch
