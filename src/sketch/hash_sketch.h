// Feature-hashing ("hashing trick" / Clarkson-Woodruff) sketch, Appendix A:
// B = S A with S an ell x n sparse sign matrix: S[h(i), i] = g(i), zero
// elsewhere. On row a_i, add g(i) * a_i into bucket row h(i).
//
// Mergeability (Appendix A) requires the two sketches to share (h, g) and
// to see globally distinct row ids, which is why Append takes the arrival
// index: the LM/DI frameworks feed every block sketch the stream-global id.
#ifndef SWSKETCH_SKETCH_HASH_SKETCH_H_
#define SWSKETCH_SKETCH_HASH_SKETCH_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "sketch/matrix_sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// 2-universal hash family over 64-bit keys (multiply-shift style, seeded).
class HashFamily {
 public:
  explicit HashFamily(uint64_t seed);

  /// Bucket in [0, buckets).
  size_t Bucket(uint64_t key, size_t buckets) const;

  /// Sign in {-1, +1}.
  double Sign(uint64_t key) const;

 private:
  uint64_t Mix(uint64_t key) const;

  uint64_t a1_, a2_, b_;
  uint64_t sign_a1_, sign_a2_, sign_b_;
};

/// Sparse-sign (CountSketch-style) matrix sketch.
class HashSketch : public MatrixSketch {
 public:
  /// Sketches with equal `seed` (and ell) share hash functions and are
  /// mergeable by addition.
  HashSketch(size_t dim, size_t ell, uint64_t seed = 1);

  void Append(std::span<const double> row, uint64_t id) override;

  /// Batched append: row i scatters with id first_id + (i - begin). The
  /// scatter order matches the serial loop exactly, so the result is
  /// bit-identical; the win is one virtual dispatch (and hash/bucket
  /// pointer setup kept hot) per block instead of per row.
  void AppendBatch(const Matrix& m, size_t begin, size_t end,
                   uint64_t first_id) override;

  /// Sparse fast path: O(nnz) signed scatter into the bucket row.
  void AppendSparse(const SparseVector& row, uint64_t id);

  Matrix Approximation() const override { return b_; }
  size_t RowsStored() const override { return b_.rows(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "HASH"; }

  size_t ell() const { return b_.rows(); }
  uint64_t seed() const { return seed_; }

  /// this += other. Requires matching dim, ell and seed.
  void MergeWith(const HashSketch& other);

  /// Checkpoint/resume: the hash family is rebuilt from the seed.
  void Serialize(ByteWriter* writer) const;
  static Result<HashSketch> Deserialize(ByteReader* reader);

 private:
  size_t dim_;
  uint64_t seed_;
  HashFamily hash_;
  Matrix b_;  // ell x dim.
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_HASH_SKETCH_H_
