#include "sketch/incremental_svd.h"

#include <algorithm>

#include "linalg/svd.h"
#include "util/logging.h"

namespace swsketch {

IncrementalSvd::IncrementalSvd(size_t dim, size_t ell)
    : dim_(dim), ell_(ell), buffer_(2 * ell, dim) {
  SWSKETCH_CHECK_GE(ell, 1u);
}

void IncrementalSvd::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  if (used_ == buffer_.rows()) TruncateNow();
  std::copy(row.begin(), row.end(), buffer_.RowPtr(used_));
  ++used_;
}

void IncrementalSvd::TruncateNow() {
  if (used_ <= ell_) return;
  Matrix occupied(0, dim_);
  occupied.ReserveRows(used_);
  for (size_t i = 0; i < used_; ++i) occupied.AppendRow(buffer_.Row(i));
  const SvdResult svd = ThinSvd(occupied);
  buffer_.SetZero();
  size_t out = 0;
  for (size_t i = 0; i < svd.singular_values.size() && out < ell_; ++i) {
    double* dst = buffer_.RowPtr(out);
    const double* v = svd.vt.RowPtr(i);
    for (size_t j = 0; j < dim_; ++j) dst[j] = svd.singular_values[i] * v[j];
    ++out;
  }
  used_ = out;
}

Matrix IncrementalSvd::Approximation() const {
  Matrix out(0, dim_);
  out.ReserveRows(std::min(used_, ell_));
  // Report at most ell rows (truncating lazily if the buffer is mid-fill).
  if (used_ <= ell_) {
    for (size_t i = 0; i < used_; ++i) out.AppendRow(buffer_.Row(i));
    return out;
  }
  IncrementalSvd tmp = *this;
  tmp.TruncateNow();
  for (size_t i = 0; i < tmp.used_; ++i) out.AppendRow(tmp.buffer_.Row(i));
  return out;
}

}  // namespace swsketch
