// Incremental SVD ("iSVD" in Ghashami-Desai-Phillips [19], the paper's
// reference for streaming sketch comparisons): maintain the best rank-ell
// approximation of everything seen, by buffering rows and truncating back
// to ell via SVD — Frequent Directions WITHOUT the sigma^2 subtraction.
// Practically accurate on benign streams but carries no worst-case
// guarantee (adversarial streams break it, as [19] shows); included as the
// classic baseline the FD line of work improves on.
#ifndef SWSKETCH_SKETCH_INCREMENTAL_SVD_H_
#define SWSKETCH_SKETCH_INCREMENTAL_SVD_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"
#include "sketch/matrix_sketch.h"

namespace swsketch {

/// Truncation-based incremental SVD sketch.
class IncrementalSvd : public MatrixSketch {
 public:
  /// `ell`: rank kept after each truncation. The buffer holds up to
  /// 2 * ell rows so the SVD cost amortizes like FD's.
  IncrementalSvd(size_t dim, size_t ell);

  void Append(std::span<const double> row, uint64_t id = 0) override;
  Matrix Approximation() const override;
  size_t RowsStored() const override { return used_; }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "iSVD"; }

  size_t ell() const { return ell_; }

  /// Forces a truncation now (exposed for tests).
  void TruncateNow();

 private:
  size_t dim_;
  size_t ell_;
  Matrix buffer_;  // 2 * ell x dim; rows [0, used_) occupied.
  size_t used_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_INCREMENTAL_SVD_H_
