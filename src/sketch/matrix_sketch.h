// Interface for streaming (unbounded) matrix sketches, Section 3 of the
// paper. A sketch consumes rows and can produce an approximation matrix B
// with few rows such that B^T B ~ A^T A.
//
// The sliding-window frameworks (LM, DI) are class templates over concrete
// sketch types rather than this interface — mergeability is a typed
// operation — but the interface gives examples/benches a uniform handle.
#ifndef SWSKETCH_SKETCH_MATRIX_SKETCH_H_
#define SWSKETCH_SKETCH_MATRIX_SKETCH_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"

namespace swsketch {

/// Streaming matrix sketch over an unbounded row stream.
class MatrixSketch {
 public:
  virtual ~MatrixSketch() = default;

  /// Consumes one row. `id` is the global arrival index; hashing-based
  /// sketches need it for cross-sketch consistency, others ignore it.
  virtual void Append(std::span<const double> row, uint64_t id) = 0;

  /// Consumes rows m[begin:end) as one block; row i gets id
  /// first_id + (i - begin). Backends override the default row loop with
  /// block fast paths (deferred shrinks, tiled multiplies); overrides
  /// document whether the result is bit-identical to the serial loop.
  virtual void AppendBatch(const Matrix& m, size_t begin, size_t end,
                           uint64_t first_id) {
    for (size_t i = begin; i < end; ++i) Append(m.Row(i), first_id + (i - begin));
  }

  /// Current approximation matrix B.
  virtual Matrix Approximation() const = 0;

  /// Number of materialized rows held by the sketch (the paper's sketch
  /// size measure).
  virtual size_t RowsStored() const = 0;

  /// Row dimensionality d.
  virtual size_t dim() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_MATRIX_SKETCH_H_
