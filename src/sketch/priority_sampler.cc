#include "sketch/priority_sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace swsketch {

double LogPriority(Rng* rng, double norm_sq) {
  SWSKETCH_DCHECK(norm_sq > 0.0);
  return std::log(rng->UniformOpen01()) / norm_sq;
}

StreamingSwrSampler::StreamingSwrSampler(size_t dim, size_t ell, uint64_t seed)
    : dim_(dim), chains_(ell), rng_(seed) {
  SWSKETCH_CHECK_GT(ell, 0u);
  for (auto& c : chains_) {
    c.best_log_priority = -std::numeric_limits<double>::infinity();
  }
}

void StreamingSwrSampler::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  const double w = NormSq(row);
  if (w <= 0.0) return;  // All-zero rows carry no sampling weight.
  frob_sq_ += w;
  for (auto& c : chains_) {
    const double lp = LogPriority(&rng_, w);
    if (lp > c.best_log_priority) {
      c.best_log_priority = lp;
      c.row.assign(row.begin(), row.end());
      c.norm_sq = w;
      c.has_sample = true;
    }
  }
}

Matrix StreamingSwrSampler::Approximation() const {
  Matrix b(0, dim_);
  const double ell = static_cast<double>(chains_.size());
  const double frob = std::sqrt(frob_sq_);
  for (const auto& c : chains_) {
    if (!c.has_sample) continue;
    b.AppendRowScaled(c.row, frob / (std::sqrt(ell * c.norm_sq)));
  }
  return b;
}

size_t StreamingSwrSampler::RowsStored() const {
  size_t n = 0;
  for (const auto& c : chains_) n += c.has_sample ? 1 : 0;
  return n;
}

std::vector<std::vector<double>> StreamingSwrSampler::Samples() const {
  std::vector<std::vector<double>> out;
  for (const auto& c : chains_) {
    if (c.has_sample) out.push_back(c.row);
  }
  return out;
}

StreamingSworSampler::StreamingSworSampler(size_t dim, size_t ell,
                                           uint64_t seed)
    : dim_(dim), ell_(ell), rng_(seed) {
  SWSKETCH_CHECK_GT(ell, 0u);
  reservoir_.reserve(ell);
}

void StreamingSworSampler::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  const double w = NormSq(row);
  if (w <= 0.0) return;
  frob_sq_ += w;
  const double lp = LogPriority(&rng_, w);

  auto heap_cmp = [](const Entry& a, const Entry& b) {
    return a.log_priority > b.log_priority;  // Min-heap.
  };
  if (reservoir_.size() < ell_) {
    reservoir_.push_back(
        Entry{lp, std::vector<double>(row.begin(), row.end()), w});
    std::push_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
    return;
  }
  if (lp > reservoir_.front().log_priority) {
    std::pop_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
    reservoir_.back() =
        Entry{lp, std::vector<double>(row.begin(), row.end()), w};
    std::push_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
  }
}

Matrix StreamingSworSampler::Approximation() const {
  // Per-row rescaling by ||A||_F / (sqrt(ell) ||a_j||), the scheme the
  // paper's Section 5.1 query uses (and the source of the Figure 6
  // skew pathology). Note sum_j ||b_j||^2 = ||A||_F^2 exactly.
  Matrix b(0, dim_);
  if (reservoir_.empty() || frob_sq_ <= 0.0) return b;
  const double ell = static_cast<double>(reservoir_.size());
  const double frob = std::sqrt(frob_sq_);
  for (const auto& e : reservoir_) {
    b.AppendRowScaled(e.row, frob / std::sqrt(ell * e.norm_sq));
  }
  return b;
}

std::vector<std::vector<double>> StreamingSworSampler::Samples() const {
  std::vector<std::vector<double>> out;
  out.reserve(reservoir_.size());
  for (const auto& e : reservoir_) out.push_back(e.row);
  return out;
}

Matrix SampleRowsOffline(const Matrix& a, size_t ell, bool with_replacement,
                         Rng* rng) {
  const size_t n = a.rows();
  SWSKETCH_CHECK_GT(n, 0u);
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = NormSq(a.Row(i));
    total += weights[i];
  }
  SWSKETCH_CHECK_GT(total, 0.0);
  const double frob = std::sqrt(total);

  Matrix b(0, a.cols());
  if (with_replacement) {
    // ell independent draws, each proportional to w_i; rescale by
    // ||A||_F / (sqrt(ell) ||a_i||).
    for (size_t s = 0; s < ell; ++s) {
      double target = rng->Uniform01() * total;
      size_t pick = n - 1;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += weights[i];
        if (target < acc) {
          pick = i;
          break;
        }
      }
      b.AppendRowScaled(
          a.Row(pick),
          frob / std::sqrt(static_cast<double>(ell) * weights[pick]));
    }
    return b;
  }

  // Without replacement via priorities: take the top-ell log-priorities.
  // Per-row rescaling (Section 5.1); under heavy norm skew this is what
  // makes SWOR's error GROW with ell (Figure 6).
  std::vector<std::pair<double, size_t>> pri(n);
  for (size_t i = 0; i < n; ++i) {
    pri[i] = {LogPriority(rng, weights[i]), i};
  }
  const size_t k = std::min(ell, n);
  std::partial_sort(pri.begin(), pri.begin() + k, pri.end(),
                    [](const auto& x, const auto& y) { return x.first > y.first; });
  for (size_t s = 0; s < k; ++s) {
    const size_t pick = pri[s].second;
    b.AppendRowScaled(a.Row(pick),
                      frob / std::sqrt(static_cast<double>(k) * weights[pick]));
  }
  return b;
}

}  // namespace swsketch
