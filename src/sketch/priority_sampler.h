// Norm-proportional row sampling on an unbounded stream (Section 3 of the
// paper; Efraimidis-Spirakis priorities). Two schemes:
//   * with replacement (SWR flavor): ell independent single-sample chains;
//   * without replacement (SWOR flavor): reservoir of the top-ell
//     priorities.
// Priorities rho_i = u_i^{1/w_i} are handled in log space
// (log rho = log(u)/w) — for the huge w spread of real data (R ~ 1e5) the
// direct form collapses to 1.0 in double precision.
//
// These samplers are both the paper's streaming baseline and the offline
// reference used by Figure 6.
#ifndef SWSKETCH_SKETCH_PRIORITY_SAMPLER_H_
#define SWSKETCH_SKETCH_PRIORITY_SAMPLER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "sketch/matrix_sketch.h"
#include "util/random.h"

namespace swsketch {

/// Log-domain priority for a row of squared norm w: log(u) / w,
/// u ~ Uniform(0,1). Larger is higher priority.
double LogPriority(Rng* rng, double norm_sq);

/// Streaming row sampling WITH replacement: ell independent samples, each
/// the arg-max priority row seen so far. Query rescales sample i by
/// ||A||_F / (sqrt(ell) * ||a_i||).
class StreamingSwrSampler : public MatrixSketch {
 public:
  StreamingSwrSampler(size_t dim, size_t ell, uint64_t seed = 1);

  void Append(std::span<const double> row, uint64_t id = 0) override;
  Matrix Approximation() const override;
  size_t RowsStored() const override;
  size_t dim() const override { return dim_; }
  std::string name() const override { return "SWR-stream"; }

  /// The raw (unscaled) sampled rows; duplicates possible by design.
  std::vector<std::vector<double>> Samples() const;

 private:
  struct Chain {
    double best_log_priority;
    std::vector<double> row;
    double norm_sq = 0.0;
    bool has_sample = false;
  };

  size_t dim_;
  std::vector<Chain> chains_;
  Rng rng_;
  double frob_sq_ = 0.0;
};

/// Streaming row sampling WITHOUT replacement: reservoir of the rows with
/// the top-ell priorities. Query rescales every sampled row by the common
/// factor ||A||_F / sqrt(sum of sampled squared norms).
class StreamingSworSampler : public MatrixSketch {
 public:
  StreamingSworSampler(size_t dim, size_t ell, uint64_t seed = 1);

  void Append(std::span<const double> row, uint64_t id = 0) override;
  Matrix Approximation() const override;
  size_t RowsStored() const override { return reservoir_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "SWOR-stream"; }

  std::vector<std::vector<double>> Samples() const;

 private:
  struct Entry {
    double log_priority;
    std::vector<double> row;
    double norm_sq;
  };

  size_t dim_;
  size_t ell_;
  std::vector<Entry> reservoir_;  // Min-heap on log_priority.
  Rng rng_;
  double frob_sq_ = 0.0;
};

/// Offline norm-proportional sampling of the rows of `a` (used by the
/// Figure 6 reproduction): returns the approximation B built from `ell`
/// samples drawn with or without replacement.
Matrix SampleRowsOffline(const Matrix& a, size_t ell, bool with_replacement,
                         Rng* rng);

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_PRIORITY_SAMPLER_H_
