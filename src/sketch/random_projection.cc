#include "sketch/random_projection.h"

#include <cmath>

#include "util/logging.h"

namespace swsketch {

RandomProjection::RandomProjection(size_t dim, size_t ell, uint64_t seed)
    : dim_(dim), b_(ell, dim), rng_(seed), scale_(1.0 / std::sqrt(
                                               static_cast<double>(ell))) {
  SWSKETCH_CHECK_GT(ell, 0u);
}

void RandomProjection::Append(std::span<const double> row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  const size_t ell = b_.rows();
  // Draw the sign column in 64-bit batches.
  uint64_t bits = 0;
  int available = 0;
  for (size_t i = 0; i < ell; ++i) {
    if (available == 0) {
      bits = rng_.Next();
      available = 64;
    }
    const double r = (bits & 1) ? scale_ : -scale_;
    bits >>= 1;
    --available;
    double* dst = b_.RowPtr(i);
    for (size_t j = 0; j < dim_; ++j) dst[j] += r * row[j];
  }
}

void RandomProjection::AppendBatch(const Matrix& m, size_t begin, size_t end,
                                   uint64_t /*first_id*/) {
  SWSKETCH_CHECK_LE(begin, end);
  SWSKETCH_CHECK_LE(end, m.rows());
  const size_t count = end - begin;
  if (count == 0) return;
  if (count == 1) {
    Append(m.Row(begin));
    return;
  }
  SWSKETCH_CHECK_EQ(m.cols(), dim_);
  const size_t ell = b_.rows();
  // One sign column per input row, drawn exactly as Append draws it (a
  // fresh 64-bit word batch per row, bits consumed LSB-first), laid out as
  // the columns of an ell x count block so the tiled kernel can apply all
  // rank-1 updates at once.
  Matrix s(ell, count);
  for (size_t c = 0; c < count; ++c) {
    uint64_t bits = 0;
    int available = 0;
    for (size_t i = 0; i < ell; ++i) {
      if (available == 0) {
        bits = rng_.Next();
        available = 64;
      }
      s(i, c) = (bits & 1) ? scale_ : -scale_;
      bits >>= 1;
      --available;
    }
  }
  b_.AddScaled(s.MultiplyRows(m, begin), 1.0);
}

void RandomProjection::AppendSparse(const SparseVector& row, uint64_t) {
  SWSKETCH_CHECK_EQ(row.dim(), dim_);
  const size_t ell = b_.rows();
  uint64_t bits = 0;
  int available = 0;
  for (size_t i = 0; i < ell; ++i) {
    if (available == 0) {
      bits = rng_.Next();
      available = 64;
    }
    const double r = (bits & 1) ? scale_ : -scale_;
    bits >>= 1;
    --available;
    row.AxpyInto({b_.RowPtr(i), dim_}, r);
  }
}

void RandomProjection::MergeWith(const RandomProjection& other) {
  SWSKETCH_CHECK_EQ(dim_, other.dim_);
  SWSKETCH_CHECK_EQ(b_.rows(), other.b_.rows());
  b_.AddScaled(other.b_, 1.0);
}

namespace {
constexpr uint32_t kRpTag = 0x52500001;
}  // namespace

void RandomProjection::Serialize(ByteWriter* writer) const {
  WriteHeader(writer, kRpTag, 1);
  writer->Put<uint64_t>(dim_);
  rng_.Serialize(writer);
  b_.Serialize(writer);
}

Result<RandomProjection> RandomProjection::Deserialize(ByteReader* reader) {
  if (!CheckHeader(reader, kRpTag, 1)) {
    return Status::InvalidArgument("bad RandomProjection header");
  }
  uint64_t dim = 0;
  if (!reader->Get(&dim)) {
    return Status::InvalidArgument("corrupt RandomProjection payload");
  }
  Rng rng(0);
  if (!rng.Deserialize(reader)) {
    return Status::InvalidArgument("corrupt RandomProjection payload");
  }
  auto b = Matrix::Deserialize(reader);
  if (!b.ok()) return b.status();
  if (b->cols() != dim || b->rows() == 0) {
    return Status::InvalidArgument("corrupt RandomProjection payload");
  }
  RandomProjection rp(dim, b->rows(), 0);
  rp.rng_ = rng;
  rp.b_ = b.take();
  return rp;
}

}  // namespace swsketch
