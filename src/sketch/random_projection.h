// Random projection sketch (Appendix A): B = R A where R is ell x n with
// i.i.d. +/- 1/sqrt(ell) entries. Processed in streaming fashion: on row
// a_i, draw a fresh sign column r and add r * a_i to B. Additive merging of
// two sketches of equal ell is again a random projection of the stacked
// input, so the sketch is mergeable under addition.
#ifndef SWSKETCH_SKETCH_RANDOM_PROJECTION_H_
#define SWSKETCH_SKETCH_RANDOM_PROJECTION_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "sketch/matrix_sketch.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/random.h"

namespace swsketch {

/// +/- 1/sqrt(ell) dense random projection.
class RandomProjection : public MatrixSketch {
 public:
  RandomProjection(size_t dim, size_t ell, uint64_t seed = 1);

  void Append(std::span<const double> row, uint64_t id = 0) override;

  /// Batched append: materializes the ell x count sign block — drawing the
  /// exact same signs, in the same order, as `count` serial Appends — and
  /// applies it with the tiled MultiplyRows kernel. The projection is
  /// therefore identical as a linear map; only the floating-point
  /// accumulation order of the += differs from the serial path.
  void AppendBatch(const Matrix& m, size_t begin, size_t end,
                   uint64_t first_id = 0) override;

  /// Sparse fast path: O(ell * nnz) instead of O(ell * d). Draws the same
  /// sign column as the dense path, so results match bit-for-bit.
  void AppendSparse(const SparseVector& row, uint64_t id = 0);

  Matrix Approximation() const override { return b_; }
  size_t RowsStored() const override { return b_.rows(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "RP"; }

  size_t ell() const { return b_.rows(); }

  /// Adds the other's projection into this one; shapes must match.
  void MergeWith(const RandomProjection& other);

  /// Checkpoint/resume: includes the sign-generator state so the resumed
  /// sketch continues the exact same projection.
  void Serialize(ByteWriter* writer) const;
  static Result<RandomProjection> Deserialize(ByteReader* reader);

 private:
  size_t dim_;
  Matrix b_;  // ell x dim.
  Rng rng_;
  double scale_;  // 1/sqrt(ell).
};

}  // namespace swsketch

#endif  // SWSKETCH_SKETCH_RANDOM_PROJECTION_H_
