#include "stream/incremental_gram.h"

#include <vector>

#include "util/logging.h"

namespace swsketch {

IncrementalWindowGram::IncrementalWindowGram(size_t dim, WindowSpec window)
    : dim_(dim), window_(window), gram_(dim, dim) {
  SWSKETCH_CHECK_GT(dim, 0u);
}

void IncrementalWindowGram::Add(std::span<const double> row, double ts) {
  SWSKETCH_CHECK_EQ(row.size(), dim_);
  SWSKETCH_CHECK_GE(ts, now_);
  now_ = ts;
  gram_.AddOuterProduct(row);
  frob_sq_ += NormSq(row);
  rows_.emplace_back(std::vector<double>(row.begin(), row.end()), ts);
  ++ops_since_refresh_;
  Expire(ts);
}

void IncrementalWindowGram::AdvanceTo(double now) {
  SWSKETCH_CHECK_GE(now, now_);
  now_ = now;
  Expire(now);
}

void IncrementalWindowGram::Expire(double now) {
  const double start = window_.Start(now);
  while (!rows_.empty() && rows_.front().ts < start) {
    gram_.AddOuterProduct(rows_.front().view(), -1.0);
    frob_sq_ -= rows_.front().NormSq();
    rows_.pop_front();
    ++ops_since_refresh_;
  }
  if (rows_.empty()) {
    // Exactly zero, not fp residue.
    gram_.SetZero();
    frob_sq_ = 0.0;
    ops_since_refresh_ = 0;
  } else if (ops_since_refresh_ >= refresh_interval_) {
    Refresh();
  }
}

void IncrementalWindowGram::Refresh() {
  gram_.SetZero();
  frob_sq_ = 0.0;
  for (const Row& r : rows_) {
    gram_.AddOuterProduct(r.view());
    frob_sq_ += r.NormSq();
  }
  ops_since_refresh_ = 0;
}

}  // namespace swsketch
