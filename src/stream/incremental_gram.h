// Incrementally-maintained window covariance: A^T A updated by rank-1
// addition on arrival and rank-1 subtraction on expiry — the paper's
// Section 1 "naive O(d^2) streaming solution" carried over to sliding
// windows. Theorem 4.1 says the raw rows must be kept anyway (they are
// needed to subtract on expiry), so this is a *linear-space* exact
// tracker; its value is turning exact-covariance queries from
// O(window * d^2) recomputation into O(1) reads, e.g. for reference
// windows in change detection or for evaluation at small d.
#ifndef SWSKETCH_STREAM_INCREMENTAL_GRAM_H_
#define SWSKETCH_STREAM_INCREMENTAL_GRAM_H_

#include <cstdint>
#include <deque>

#include "linalg/matrix.h"
#include "stream/row.h"
#include "stream/window.h"

namespace swsketch {

/// Exact A_W^T A_W maintained with O(d^2) work per arrival/expiry.
class IncrementalWindowGram {
 public:
  IncrementalWindowGram(size_t dim, WindowSpec window);

  /// Adds a row at time `ts` and expires rows that left the window.
  void Add(std::span<const double> row, double ts);

  /// Slides the window forward without an arrival.
  void AdvanceTo(double now);

  /// The exact covariance of the current window (O(1): a reference).
  const Matrix& Covariance() const { return gram_; }

  /// Exact ||A_W||_F^2.
  double FrobeniusNormSq() const { return frob_sq_; }

  size_t WindowRows() const { return rows_.size(); }
  size_t dim() const { return dim_; }

  /// Rebuilds the Gram matrix from the stored rows, refreshing the
  /// accumulated floating-point drift of long add/subtract chains. Call
  /// occasionally on very long streams (the class tracks the number of
  /// rank-1 updates and refreshes itself every `refresh_interval`
  /// operations automatically).
  void Refresh();

  /// Rank-1 operations between automatic refreshes (default 1 << 20).
  void set_refresh_interval(uint64_t ops) { refresh_interval_ = ops; }

 private:
  void Expire(double now);

  size_t dim_;
  WindowSpec window_;
  Matrix gram_;
  double frob_sq_ = 0.0;
  std::deque<Row> rows_;
  double now_ = 0.0;
  uint64_t ops_since_refresh_ = 0;
  uint64_t refresh_interval_ = 1ULL << 20;
};

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_INCREMENTAL_GRAM_H_
