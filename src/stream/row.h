// The unit of streaming input: a d-dimensional row with a timestamp.
#ifndef SWSKETCH_STREAM_ROW_H_
#define SWSKETCH_STREAM_ROW_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "linalg/vector_ops.h"

namespace swsketch {

/// One stream element. For sequence-based windows the timestamp is the
/// 0-based arrival index; for time-based windows it is the (real-valued)
/// arrival time. Timestamps are non-decreasing.
struct Row {
  std::vector<double> values;
  double ts = 0.0;

  Row() = default;
  Row(std::vector<double> v, double t) : values(std::move(v)), ts(t) {}

  size_t dim() const { return values.size(); }
  std::span<const double> view() const { return values; }

  /// Squared Euclidean norm — the row's "weight" throughout the paper.
  double NormSq() const { return swsketch::NormSq(values); }
};

/// Shared immutable row. The sliding-window samplers keep many live
/// references to the same row (one per independent sampler); sharing makes
/// appending a candidate O(1) instead of O(d).
using SharedRow = std::shared_ptr<const Row>;

inline SharedRow MakeSharedRow(std::vector<double> values, double ts) {
  return std::make_shared<const Row>(std::move(values), ts);
}

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_ROW_H_
