// Pull-based row stream abstraction. Dataset generators implement this so
// experiments never materialize full datasets in memory.
#ifndef SWSKETCH_STREAM_ROW_STREAM_H_
#define SWSKETCH_STREAM_ROW_STREAM_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_vector.h"
#include "stream/row.h"

namespace swsketch {

/// Producer of a (finite or unbounded) sequence of rows with non-decreasing
/// timestamps.
class RowStream {
 public:
  virtual ~RowStream() = default;

  /// Returns the next row, or nullopt when the stream is exhausted.
  virtual std::optional<Row> Next() = 0;

  /// Sparse-native variant: (row, timestamp). The default densifies via
  /// Next(); sparse generators (WIKI, RAIL) override it to avoid the O(d)
  /// materialization entirely.
  virtual std::optional<std::pair<SparseVector, double>> NextSparse() {
    auto row = Next();
    if (!row.has_value()) return std::nullopt;
    return std::make_pair(SparseVector::FromDense(row->values), row->ts);
  }

  /// Pulls up to `max_rows` rows into `rows` (reshaped to count x dim,
  /// reusing its allocation) and their timestamps into `ts`. Returns the
  /// number of rows pulled; 0 means the stream is exhausted. This is the
  /// entry point of the batched ingest path: loaders that can parse
  /// straight into the block (e.g. CSV) override it so real datasets get
  /// the same batching benefits as synthetic generators. The default
  /// drains Next().
  virtual size_t NextBatch(size_t max_rows, Matrix* rows,
                           std::vector<double>* ts) {
    rows->ResetShape(0, dim());
    rows->ReserveRows(max_rows);
    ts->clear();
    while (ts->size() < max_rows) {
      auto row = Next();
      if (!row.has_value()) break;
      rows->AppendRow(row->view());
      ts->push_back(row->ts);
    }
    return ts->size();
  }

  /// Row dimensionality d.
  virtual size_t dim() const = 0;

  /// Human-readable name used in reports.
  virtual std::string name() const = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_ROW_STREAM_H_
