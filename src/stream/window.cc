#include "stream/window.h"

#include <sstream>

#include "util/logging.h"

namespace swsketch {

WindowSpec WindowSpec::Sequence(uint64_t n) {
  SWSKETCH_CHECK_GT(n, 0u);
  return WindowSpec(WindowType::kSequence, static_cast<double>(n));
}

WindowSpec WindowSpec::Time(double delta) {
  SWSKETCH_CHECK_GT(delta, 0.0);
  return WindowSpec(WindowType::kTime, delta);
}

double WindowSpec::Start(double now) const {
  if (type_ == WindowType::kSequence) {
    // Index timestamps: the window holds indices now - N + 1 .. now.
    return now - extent_ + 1.0;
  }
  // Time window (t - delta, t]: strictly-older-than-delta rows expire. We
  // treat the boundary as inclusive of now - delta + 0; using half-open
  // semantics here matches "remove t_j < t - delta" in Algorithms 5.1/5.2.
  return now - extent_;
}

std::string WindowSpec::ToString() const {
  std::ostringstream os;
  if (type_ == WindowType::kSequence) {
    os << "sequence(N=" << static_cast<uint64_t>(extent_) << ")";
  } else {
    os << "time(delta=" << extent_ << ")";
  }
  return os.str();
}

void WindowSpec::Serialize(ByteWriter* writer) const {
  writer->Put<uint8_t>(type_ == WindowType::kSequence ? 0 : 1);
  writer->Put(extent_);
}

Result<WindowSpec> WindowSpec::Deserialize(ByteReader* reader) {
  uint8_t type = 0;
  double extent = 0.0;
  if (!reader->Get(&type) || !reader->Get(&extent) || type > 1 ||
      extent <= 0.0) {
    return Status::InvalidArgument("corrupt WindowSpec payload");
  }
  return type == 0 ? WindowSpec::Sequence(static_cast<uint64_t>(extent))
                   : WindowSpec::Time(extent);
}

}  // namespace swsketch
