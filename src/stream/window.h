// Sliding-window definitions shared by all sketches.
#ifndef SWSKETCH_STREAM_WINDOW_H_
#define SWSKETCH_STREAM_WINDOW_H_

#include <cstdint>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace swsketch {

/// The paper's two window models (Section 1).
enum class WindowType {
  kSequence,  // Last N rows.
  kTime,      // Rows with timestamp in (t - delta, t].
};

/// Immutable description of a sliding window.
class WindowSpec {
 public:
  /// Sequence-based window over the most recent `n` rows. Internally a
  /// sequence window is a time window over arrival indices, so sketches
  /// handle both uniformly.
  static WindowSpec Sequence(uint64_t n);

  /// Time-based window of span `delta`.
  static WindowSpec Time(double delta);

  WindowType type() const { return type_; }

  /// Window extent: N for sequence windows, delta for time windows, in the
  /// shared timestamp coordinate.
  double extent() const { return extent_; }

  /// Start of the window (inclusive) for current time `now`: rows with
  /// ts > now - extent are live; equivalently ts >= Start(now).
  /// For a sequence window with 0-based index timestamps and current index
  /// `now`, live rows are indices in [now - N + 1, now].
  double Start(double now) const;

  /// True if a row with timestamp `ts` is inside the window at time `now`.
  bool Contains(double ts, double now) const { return ts >= Start(now); }

  std::string ToString() const;

  void Serialize(ByteWriter* writer) const;
  static Result<WindowSpec> Deserialize(ByteReader* reader);

 private:
  WindowSpec(WindowType type, double extent) : type_(type), extent_(extent) {}

  WindowType type_;
  double extent_;
};

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_WINDOW_H_
