#include "stream/window_buffer.h"

#include <utility>

namespace swsketch {

void WindowBuffer::Add(Row row) {
  now_ = row.ts;
  rows_.push_back(std::move(row));
  AdvanceTo(now_);
}

void WindowBuffer::AdvanceTo(double now) {
  now_ = now;
  const double start = spec_.Start(now);
  while (!rows_.empty() && rows_.front().ts < start) rows_.pop_front();
}

Matrix WindowBuffer::ToMatrix() const {
  if (rows_.empty()) return Matrix();
  Matrix a(0, rows_.front().dim());
  a.ReserveRows(rows_.size());
  for (const auto& r : rows_) a.AppendRow(r.view());
  return a;
}

Matrix WindowBuffer::GramMatrix(size_t dim) const {
  Matrix g(dim, dim);
  for (const auto& r : rows_) g.AddOuterProduct(r.view());
  return g;
}

double WindowBuffer::FrobeniusNormSq() const {
  double s = 0.0;
  for (const auto& r : rows_) s += r.NormSq();
  return s;
}

}  // namespace swsketch
