#include "stream/window_buffer.h"

#include <utility>

#include "util/logging.h"

namespace swsketch {

void WindowBuffer::Add(Row row) {
  now_ = row.ts;
  rows_.push_back(std::move(row));
  AdvanceTo(now_);
}

void WindowBuffer::AdvanceTo(double now) {
  now_ = now;
  const double start = spec_.Start(now);
  while (!rows_.empty() && rows_.front().ts < start) rows_.pop_front();
}

Matrix WindowBuffer::ToMatrix() const {
  if (rows_.empty()) return Matrix();
  Matrix a(0, rows_.front().dim());
  a.ReserveRows(rows_.size());
  for (const auto& r : rows_) a.AppendRow(r.view());
  return a;
}

Matrix WindowBuffer::GramMatrix(size_t dim) const {
  if (rows_.empty()) return Matrix(dim, dim);
  // Materialize the window contiguously and use the blocked (and, for
  // large windows, parallel) Gram kernel: the copy is O(n d) against the
  // O(n d^2) product, and the blocked kernel is several times faster than
  // a rank-1 update per row.
  const Matrix a = ToMatrix();
  SWSKETCH_CHECK_EQ(a.cols(), dim);
  return a.Gram();
}

double WindowBuffer::FrobeniusNormSq() const {
  double s = 0.0;
  for (const auto& r : rows_) s += r.NormSq();
  return s;
}

}  // namespace swsketch
