#include "stream/window_buffer.h"

#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/metrics.h"

namespace swsketch {

namespace {

// Handles under the fixed "window_buffer." prefix. The gauges report the
// most recently mutated buffer (last-write-wins): the harness runs one
// exact window per figure, which is the footprint worth watching.
struct WindowBufferMetrics {
  Counter* gram_dense;
  Counter* gram_sparse;
  Gauge* rows;
  Gauge* resident_bytes;

  static const WindowBufferMetrics& Get() {
    static const WindowBufferMetrics m = [] {
      MetricScope scope("window_buffer");
      return WindowBufferMetrics{scope.counter("gram_dense"),
                                 scope.counter("gram_sparse"),
                                 scope.gauge("rows"),
                                 scope.gauge("resident_bytes")};
    }();
    return m;
  }
};

}  // namespace

void WindowBuffer::Add(Row row) {
  now_ = row.ts;
  rows_.push_back(std::move(row));
  AdvanceTo(now_);
}

void WindowBuffer::AdvanceTo(double now) {
  now_ = now;
  const double start = spec_.Start(now);
  while (!rows_.empty() && rows_.front().ts < start) rows_.pop_front();
  const WindowBufferMetrics& metrics = WindowBufferMetrics::Get();
  const size_t dim = rows_.empty() ? 0 : rows_.front().dim();
  metrics.rows->Set(static_cast<int64_t>(rows_.size()));
  metrics.resident_bytes->Set(
      static_cast<int64_t>(rows_.size() * dim * sizeof(double)));
}

Matrix WindowBuffer::ToMatrix() const {
  if (rows_.empty()) return Matrix();
  Matrix a(0, rows_.front().dim());
  a.ReserveRows(rows_.size());
  for (const auto& r : rows_) a.AppendRow(r.view());
  return a;
}

Matrix WindowBuffer::GramMatrix(size_t dim) const {
  if (rows_.empty()) return Matrix(dim, dim);
  SWSKETCH_CHECK_EQ(rows_.front().dim(), dim);
  // The O(n d) density probe is negligible against either Gram path and
  // lets sparse (WIKI-style) windows skip the O(n d^2) dense product.
  const size_t nnz = NonzeroCount();
  const double density =
      static_cast<double>(nnz) /
      (static_cast<double>(rows_.size()) * static_cast<double>(dim));
  if (density <= kSparseGramDensityThreshold) {
    WindowBufferMetrics::Get().gram_sparse->Add();
    return SparseGramMatrix(dim);
  }
  WindowBufferMetrics::Get().gram_dense->Add();
  // Materialize the window contiguously and use the blocked (and, for
  // large windows, parallel) Gram kernel: the copy is O(n d) against the
  // O(n d^2) product, and the blocked kernel is several times faster than
  // a rank-1 update per row.
  const Matrix a = ToMatrix();
  return a.Gram();
}

Matrix WindowBuffer::SparseGramMatrix(size_t dim) const {
  Matrix g(dim, dim);
  std::vector<size_t> idx;
  std::vector<double> val;
  for (const auto& r : rows_) {
    const auto row = r.view();
    idx.clear();
    val.clear();
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) {
        idx.push_back(j);
        val.push_back(row[j]);
      }
    }
    // Scatter the row's rank-1 contribution: indices are gathered in
    // ascending order, so (p, q) with q >= p always lands in the upper
    // triangle.
    for (size_t p = 0; p < idx.size(); ++p) {
      double* grow = g.RowPtr(idx[p]);
      const double vp = val[p];
      for (size_t q = p; q < idx.size(); ++q) grow[idx[q]] += vp * val[q];
    }
  }
  g.MirrorUpperToLower();
  return g;
}

size_t WindowBuffer::NonzeroCount() const {
  size_t nnz = 0;
  for (const auto& r : rows_) {
    for (const double v : r.view()) nnz += v != 0.0;
  }
  return nnz;
}

double WindowBuffer::FrobeniusNormSq() const {
  double s = 0.0;
  for (const auto& r : rows_) s += r.NormSq();
  return s;
}

}  // namespace swsketch
