// Evaluation-only container holding the raw rows of the current window.
// This is what the lower bound (Theorem 4.1) says any exact method must pay
// for; sketches never use it. The harness uses it to compute exact window
// Gram matrices at checkpoints.
#ifndef SWSKETCH_STREAM_WINDOW_BUFFER_H_
#define SWSKETCH_STREAM_WINDOW_BUFFER_H_

#include <deque>

#include "linalg/matrix.h"
#include "stream/row.h"
#include "stream/window.h"

namespace swsketch {

/// Keeps exactly the rows inside the sliding window.
class WindowBuffer {
 public:
  explicit WindowBuffer(WindowSpec spec) : spec_(spec) {}

  /// Adds a row and expires rows that left the window as of `row.ts`.
  void Add(Row row);

  /// Expires rows for a window ending at `now` without adding anything
  /// (time-based windows can slide without arrivals).
  void AdvanceTo(double now);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::deque<Row>& rows() const { return rows_; }

  /// Exact window matrix A (copies rows; evaluation-time only).
  Matrix ToMatrix() const;

  /// Exact Gram matrix A^T A of the window. Probes the window's density
  /// first: sparse windows (nnz fraction <= kSparseGramDensityThreshold)
  /// take the CSR-style scatter path, dense windows the blocked dense
  /// kernel.
  Matrix GramMatrix(size_t dim) const;

  /// CSR-style Gram: gathers each row's nonzeros and scatters the
  /// O(nnz_r^2) index pairs into the upper triangle, mirroring once at the
  /// end — O(sum nnz_r^2) instead of the dense kernel's O(n d^2), so
  /// WIKI-style checkpoints stop paying for zeros. Exposed for tests and
  /// benches; GramMatrix() dispatches here automatically.
  Matrix SparseGramMatrix(size_t dim) const;

  /// Number of nonzero entries currently in the window (O(n d) scan).
  size_t NonzeroCount() const;

  /// Density at or below which GramMatrix() prefers the sparse path: the
  /// scatter does ~(density * d)^2 work per row against the dense kernel's
  /// d^2/2, so the crossover sits near sqrt(1/2); 0.1 leaves margin for
  /// the gather overhead and the dense kernel's better locality.
  static constexpr double kSparseGramDensityThreshold = 0.1;

  /// Exact squared Frobenius norm of the window matrix.
  double FrobeniusNormSq() const;

  const WindowSpec& spec() const { return spec_; }

 private:
  WindowSpec spec_;
  std::deque<Row> rows_;
  double now_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_WINDOW_BUFFER_H_
