// Evaluation-only container holding the raw rows of the current window.
// This is what the lower bound (Theorem 4.1) says any exact method must pay
// for; sketches never use it. The harness uses it to compute exact window
// Gram matrices at checkpoints.
#ifndef SWSKETCH_STREAM_WINDOW_BUFFER_H_
#define SWSKETCH_STREAM_WINDOW_BUFFER_H_

#include <deque>

#include "linalg/matrix.h"
#include "stream/row.h"
#include "stream/window.h"

namespace swsketch {

/// Keeps exactly the rows inside the sliding window.
class WindowBuffer {
 public:
  explicit WindowBuffer(WindowSpec spec) : spec_(spec) {}

  /// Adds a row and expires rows that left the window as of `row.ts`.
  void Add(Row row);

  /// Expires rows for a window ending at `now` without adding anything
  /// (time-based windows can slide without arrivals).
  void AdvanceTo(double now);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::deque<Row>& rows() const { return rows_; }

  /// Exact window matrix A (copies rows; evaluation-time only).
  Matrix ToMatrix() const;

  /// Exact Gram matrix A^T A of the window.
  Matrix GramMatrix(size_t dim) const;

  /// Exact squared Frobenius norm of the window matrix.
  double FrobeniusNormSq() const;

  const WindowSpec& spec() const { return spec_; }

 private:
  WindowSpec spec_;
  std::deque<Row> rows_;
  double now_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_STREAM_WINDOW_BUFFER_H_
