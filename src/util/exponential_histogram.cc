#include "util/exponential_histogram.h"

#include <limits>
#include <vector>

#include "util/logging.h"

namespace swsketch {

ExponentialHistogram::ExponentialHistogram(double eps)
    : eps_(eps), last_ts_(-std::numeric_limits<double>::infinity()) {
  SWSKETCH_CHECK_GT(eps, 0.0);
  SWSKETCH_CHECK_LT(eps, 1.0);
}

void ExponentialHistogram::Add(double value, double ts) {
  SWSKETCH_CHECK_GT(value, 0.0);
  SWSKETCH_CHECK_GE(ts, last_ts_);
  last_ts_ = ts;
  Boundary nb;
  nb.start_ts = ts;
  nb.suffix_sum = value;
  nb.adjacent_to_next = false;
  if (!boundaries_.empty()) boundaries_.back().adjacent_to_next = true;
  boundaries_.push_back(nb);
  Compact(value);
}

void ExponentialHistogram::Compact(double added) {
  // Greedy pass from the oldest boundary: starting at i, find the youngest
  // j > i + 1 with s_j >= (1 - eps) * s_i and delete everything strictly
  // between them. Runs of arrival-adjacent boundaries collapse too, since
  // adjacency only protects a boundary from deletion when it is needed to
  // certify exactness; after deleting the middle, the survivors i and j
  // still satisfy the smooth-histogram invariant via the ratio test.
  //
  // This runs on EVERY add (the tracker sits on sketch ingest hot paths),
  // so it is one fused in-place pass: `added` is the value of the
  // just-appended arrival, folded into each older boundary's suffix sum as
  // the pass visits it, and survivors slide toward the front with the tail
  // erased. The youngest boundary above the threshold is found by a
  // forward walk (suffix sums are strictly decreasing, and the walk
  // telescopes with the outer loop, keeping the pass linear). Suffix-sum
  // arithmetic (one `+ added` rounding per boundary) and deletion
  // decisions are exactly those of the textbook
  // increment-all-then-rebuild formulation, so the boundary evolution —
  // and with it the serialized bytes — is unchanged; only the constant
  // factor is (one sequential pass, zero allocations).
  const size_t n = boundaries_.size();
  // updated(j): boundary j's suffix sum with the new arrival folded in.
  // The just-appended boundary (j == n - 1) already carries exactly the
  // new value.
  const auto updated = [&](size_t j) {
    return j + 1 == n ? boundaries_[j].suffix_sum
                      : boundaries_[j].suffix_sum + added;
  };
  size_t i = 0;
  size_t w = 0;  // Next write slot; survivors so far live in [0, w).
  while (i < n) {
    const double si = updated(i);
    if (w != i) boundaries_[w] = boundaries_[i];
    boundaries_[w].suffix_sum = si;
    if (i + 1 >= n) {
      ++w;
      break;
    }
    const double threshold = (1.0 - eps_) * si;
    size_t j = i + 1;
    while (j + 1 < n && updated(j + 1) >= threshold) ++j;
    // Record whether the next kept boundary is the immediate next arrival.
    boundaries_[w].adjacent_to_next =
        (j == i + 1) && boundaries_[w].adjacent_to_next;
    ++w;
    i = j;
  }
  boundaries_.erase(boundaries_.begin() + static_cast<ptrdiff_t>(w),
                    boundaries_.end());
}

double ExponentialHistogram::Estimate(double window_start) const {
  for (const auto& b : boundaries_) {
    if (b.start_ts >= window_start) return b.suffix_sum;
  }
  return 0.0;
}

void ExponentialHistogram::EvictBefore(double window_start) {
  while (!boundaries_.empty() && boundaries_.front().start_ts < window_start) {
    boundaries_.pop_front();
  }
}

double ExponentialHistogram::OldestSuffixSum() const {
  return boundaries_.empty() ? 0.0 : boundaries_.front().suffix_sum;
}

void ExponentialHistogram::Serialize(ByteWriter* writer) const {
  writer->Put(eps_);
  writer->Put(last_ts_);
  // Field by field, never the raw struct: Boundary has padding after the
  // bool, and memcpy'ing it would leak uninitialized bytes into the
  // payload (caught by the golden-fixture byte-stability tests).
  writer->Put<uint64_t>(boundaries_.size());
  for (const Boundary& b : boundaries_) {
    writer->Put(b.start_ts);
    writer->Put(b.suffix_sum);
    writer->Put<uint8_t>(b.adjacent_to_next ? 1 : 0);
  }
}

bool ExponentialHistogram::Deserialize(ByteReader* reader) {
  uint64_t n = 0;
  if (!reader->Get(&eps_) || !reader->Get(&last_ts_) || !reader->Get(&n)) {
    return false;
  }
  boundaries_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    Boundary b;
    uint8_t adjacent = 0;
    if (!reader->Get(&b.start_ts) || !reader->Get(&b.suffix_sum) ||
        !reader->Get(&adjacent)) {
      return false;
    }
    b.adjacent_to_next = adjacent != 0;
    boundaries_.push_back(b);
  }
  return true;
}

}  // namespace swsketch
