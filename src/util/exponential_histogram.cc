#include "util/exponential_histogram.h"

#include <limits>
#include <vector>

#include "util/logging.h"

namespace swsketch {

ExponentialHistogram::ExponentialHistogram(double eps)
    : eps_(eps), last_ts_(-std::numeric_limits<double>::infinity()) {
  SWSKETCH_CHECK_GT(eps, 0.0);
  SWSKETCH_CHECK_LT(eps, 1.0);
}

void ExponentialHistogram::Add(double value, double ts) {
  SWSKETCH_CHECK_GT(value, 0.0);
  SWSKETCH_CHECK_GE(ts, last_ts_);
  last_ts_ = ts;
  for (auto& b : boundaries_) b.suffix_sum += value;
  Boundary nb;
  nb.start_ts = ts;
  nb.suffix_sum = value;
  nb.adjacent_to_next = false;
  if (!boundaries_.empty()) boundaries_.back().adjacent_to_next = true;
  boundaries_.push_back(nb);
  Compact();
}

void ExponentialHistogram::Compact() {
  if (boundaries_.size() < 3) return;
  // Greedy pass from the oldest boundary: starting at i, find the youngest
  // j > i + 1 with s_j >= (1 - eps) * s_i and delete everything strictly
  // between them. Runs of arrival-adjacent boundaries collapse too, since
  // adjacency only protects a boundary from deletion when it is needed to
  // certify exactness; after deleting the middle, the survivors i and j
  // still satisfy the smooth-histogram invariant via the ratio test.
  std::deque<Boundary> kept;
  size_t i = 0;
  const size_t n = boundaries_.size();
  while (i < n) {
    kept.push_back(boundaries_[i]);
    if (i + 1 >= n) break;
    const double threshold = (1.0 - eps_) * boundaries_[i].suffix_sum;
    // Suffix sums are strictly decreasing (values are positive), so the
    // youngest boundary still above the threshold is found by binary search.
    size_t lo = i + 1, hi = n - 1, j = i + 1;
    while (lo <= hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (boundaries_[mid].suffix_sum >= threshold) {
        j = mid;
        lo = mid + 1;
      } else {
        if (mid == 0) break;
        hi = mid - 1;
      }
    }
    // Record whether the next kept boundary is the immediate next arrival.
    kept.back().adjacent_to_next = (j == i + 1) && boundaries_[i].adjacent_to_next;
    i = j;
  }
  boundaries_.swap(kept);
}

double ExponentialHistogram::Estimate(double window_start) const {
  for (const auto& b : boundaries_) {
    if (b.start_ts >= window_start) return b.suffix_sum;
  }
  return 0.0;
}

void ExponentialHistogram::EvictBefore(double window_start) {
  while (!boundaries_.empty() && boundaries_.front().start_ts < window_start) {
    boundaries_.pop_front();
  }
}

double ExponentialHistogram::OldestSuffixSum() const {
  return boundaries_.empty() ? 0.0 : boundaries_.front().suffix_sum;
}

void ExponentialHistogram::Serialize(ByteWriter* writer) const {
  writer->Put(eps_);
  writer->Put(last_ts_);
  // Field by field, never the raw struct: Boundary has padding after the
  // bool, and memcpy'ing it would leak uninitialized bytes into the
  // payload (caught by the golden-fixture byte-stability tests).
  writer->Put<uint64_t>(boundaries_.size());
  for (const Boundary& b : boundaries_) {
    writer->Put(b.start_ts);
    writer->Put(b.suffix_sum);
    writer->Put<uint8_t>(b.adjacent_to_next ? 1 : 0);
  }
}

bool ExponentialHistogram::Deserialize(ByteReader* reader) {
  uint64_t n = 0;
  if (!reader->Get(&eps_) || !reader->Get(&last_ts_) || !reader->Get(&n)) {
    return false;
  }
  boundaries_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    Boundary b;
    uint8_t adjacent = 0;
    if (!reader->Get(&b.start_ts) || !reader->Get(&b.suffix_sum) ||
        !reader->Get(&adjacent)) {
      return false;
    }
    b.adjacent_to_next = adjacent != 0;
    boundaries_.push_back(b);
  }
  return true;
}

}  // namespace swsketch
