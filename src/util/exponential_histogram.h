// Approximate sum over a sliding window.
//
// The paper (Section 5) tracks ||A||_F^2 = sum of squared row norms over the
// window with the Exponential Histogram of Datar et al. [11]. We implement
// the functionally equivalent smooth-histogram formulation (Braverman &
// Ostrovsky) specialized to sums, which gives the same (1 +/- eps)
// multiplicative guarantee and O((1/eps) log (N R)) stored boundaries for
// values in [1, R], while supporting both sequence-based (integer index
// timestamps) and time-based (real timestamps) windows uniformly.
//
// Structure: a list of suffix boundaries x_1 < x_2 < ... (by start
// timestamp), where boundary i carries s_i = sum of all values arriving at
// or after x_i. Invariant: for consecutive kept boundaries, either
// s_{i+1} >= (1 - eps) * s_i or they are adjacent arrivals. A window query
// [w, now] returns the sum of the youngest boundary starting at or after w,
// which under-estimates the true window sum by at most a (1 - eps) factor.
#ifndef SWSKETCH_UTIL_EXPONENTIAL_HISTOGRAM_H_
#define SWSKETCH_UTIL_EXPONENTIAL_HISTOGRAM_H_

#include <cstddef>
#include <deque>

#include "util/serialize.h"

namespace swsketch {

/// eps-approximate sliding-window sum of positive values.
class ExponentialHistogram {
 public:
  /// @param eps relative error bound, in (0, 1).
  explicit ExponentialHistogram(double eps);

  /// Adds a value arriving at `ts`. Timestamps must be non-decreasing.
  /// Values must be positive.
  void Add(double value, double ts);

  /// Estimated sum of values with timestamp >= window_start. Returns the
  /// sum of the youngest suffix boundary that starts inside the window:
  /// estimate <= true sum and estimate >= (1 - eps) * true sum.
  double Estimate(double window_start) const;

  /// Drops state that can never be needed for windows starting at or after
  /// `window_start` (call with the oldest window start still queried).
  void EvictBefore(double window_start);

  /// Number of stored suffix boundaries (the sketch's space usage).
  size_t NumBuckets() const { return boundaries_.size(); }

  /// Total sum of everything ever added after the last eviction horizon
  /// (the oldest retained suffix).
  double OldestSuffixSum() const;

  double eps() const { return eps_; }

  /// Checkpoint/resume support.
  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

 private:
  struct Boundary {
    double start_ts;   // Arrival time of the first element of this suffix.
    double suffix_sum; // Sum of all values from start_ts to now.
    bool adjacent_to_next;  // True if the next boundary is the very next
                            // arrival (cannot be compacted away).
  };

  void Compact(double added);

  double eps_;
  double last_ts_;
  // Oldest suffix at the front (largest suffix_sum), newest at the back.
  std::deque<Boundary> boundaries_;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_EXPONENTIAL_HISTOGRAM_H_
