#include "util/flags.h"

#include <cstdlib>

namespace swsketch {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" form, unless the next token is another flag; then the
    // flag is a boolean switch.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace swsketch
