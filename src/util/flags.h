// Minimal command-line flag parsing for bench and example binaries.
// Supports --name=value and --name value forms plus boolean switches.
#ifndef SWSKETCH_UTIL_FLAGS_H_
#define SWSKETCH_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace swsketch {

/// Parsed view of argv. Unrecognized non-flag arguments are collected in
/// positional(). Parsing never fails; lookups provide typed defaults.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if --name was present at all (with or without a value).
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_FLAGS_H_
