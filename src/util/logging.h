// CHECK-style invariant macros. Internal invariant violations abort with a
// message; recoverable errors use Status (see status.h).
#ifndef SWSKETCH_UTIL_LOGGING_H_
#define SWSKETCH_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace swsketch {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               extra.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatPair(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace internal
}  // namespace swsketch

#define SWSKETCH_CHECK(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::swsketch::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                      \
  } while (0)

#define SWSKETCH_CHECK_OP(op, a, b)                                        \
  do {                                                                     \
    auto _swa = (a);                                                       \
    auto _swb = (b);                                                       \
    if (!(_swa op _swb)) {                                                 \
      ::swsketch::internal::CheckFailed(                                   \
          __FILE__, __LINE__, #a " " #op " " #b,                           \
          ::swsketch::internal::FormatPair(_swa, _swb));                   \
    }                                                                      \
  } while (0)

#define SWSKETCH_CHECK_EQ(a, b) SWSKETCH_CHECK_OP(==, a, b)
#define SWSKETCH_CHECK_NE(a, b) SWSKETCH_CHECK_OP(!=, a, b)
#define SWSKETCH_CHECK_LT(a, b) SWSKETCH_CHECK_OP(<, a, b)
#define SWSKETCH_CHECK_LE(a, b) SWSKETCH_CHECK_OP(<=, a, b)
#define SWSKETCH_CHECK_GT(a, b) SWSKETCH_CHECK_OP(>, a, b)
#define SWSKETCH_CHECK_GE(a, b) SWSKETCH_CHECK_OP(>=, a, b)

// Debug-only check: compiled out in NDEBUG builds (hot loops).
#ifdef NDEBUG
#define SWSKETCH_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define SWSKETCH_DCHECK(cond) SWSKETCH_CHECK(cond)
#endif

#endif  // SWSKETCH_UTIL_LOGGING_H_
