#include "util/metrics.h"

#include <cctype>
#include <sstream>

namespace swsketch {

size_t Counter::ShardIndex() noexcept {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented objects may record from detached
  // threads during process teardown.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(name));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.sum = histogram->Sum();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t c = histogram->BucketCount(i);
      if (c != 0) data.buckets.emplace_back(i, c);
      data.count += c;
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

namespace {

void AppendJsonString(const std::string& s, std::ostringstream* out) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

std::string ExportJson(const MetricsSnapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(h.name, &out);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"buckets\": {";
    bool first_bucket = true;
    for (const auto& [index, count] : h.buckets) {
      if (!first_bucket) out << ", ";
      first_bucket = false;
      // Keyed by the bucket's lower bound — stable, human-readable, and
      // recoverable into [lower, upper) with the fixed log2 layout.
      out << '"' << Histogram::BucketLower(index) << "\": " << count;
    }
    out << "}}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string prom = PromName(h.name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [index, count] : h.buckets) {
      cumulative += count;
      out << prom << "_bucket{le=\"" << Histogram::BucketUpper(index)
          << "\"} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << prom << "_sum " << h.sum << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

}  // namespace

std::string MetricsRegistry::Export(ExportFormat format) const {
  const MetricsSnapshot snap = Snapshot();
  return format == ExportFormat::kJson ? ExportJson(snap)
                                       : ExportPrometheus(snap);
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
}

std::string MetricScope::Slug(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool pending_sep = false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out.push_back('_');
      pending_sep = false;
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_sep = true;
    }
  }
  return out;
}

}  // namespace swsketch
