// Process-wide deterministic metrics: named counters, gauges and
// fixed-log-bucket latency histograms, aggregated by a global
// MetricsRegistry and exportable as JSON or Prometheus text.
//
// Design constraints (DESIGN.md section 8 "Observability"):
//  - Hot-path cost is one relaxed atomic add on a cached handle. Counters
//    shard across cache-line-padded slots indexed by a per-thread id, so
//    concurrent writers never contend on one line; Snapshot() sums the
//    shards, and the sum is exact (adds are never dropped or double
//    counted, only the aggregation is deferred).
//  - Bucket layout is deterministic: histogram bucket i holds values in
//    [2^(i-1), 2^i) (bucket 0 holds zero), computed from the value's bit
//    width alone — no wall clock, no floating point, no configuration in
//    the bucket math. Recording the same multiset of values yields the
//    same buckets under any SWSKETCH_THREADS.
//  - Handles are registered once by name and never invalidated; sketches
//    cache Counter* / Gauge* / Histogram* pointers at construction and
//    the registry outlives every sketch (static storage duration).
//
// Metric names are dot-separated: a per-sketch MetricScope prefix
// ("lm_fd", "di_rp", "swor_all", ...) derived from the sketch name plus a
// short suffix ("queries", "blocks_closed"). Prometheus export rewrites
// dots to underscores.
#ifndef SWSKETCH_UTIL_METRICS_H_
#define SWSKETCH_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace swsketch {

/// Monotonic event counter with thread-local shard selection. Adds are
/// relaxed atomics into one of kShards padded slots; Value() sums them.
class Counter {
 public:
  static constexpr size_t kShards = 16;  // Power of two (shard mask).

  void Add(uint64_t delta = 1) noexcept {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Exact total across shards (the sum of every Add ever issued).
  uint64_t Value() const noexcept {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  // Stable per-thread shard: threads get round-robin ids at first use, so
  // a fixed thread population spreads across shards without hashing.
  static size_t ShardIndex() noexcept;

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
  std::string name_;

  void ResetForTest() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
};

/// Instantaneous signed value (resident bytes, live blocks). Set and Add
/// are single relaxed atomics; unlike counters, gauges are expected to go
/// down (expiry, destruction), so deltas must be balanced by the caller.
class Gauge {
 public:
  void Set(int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<int64_t> value_{0};
  std::string name_;

  void ResetForTest() noexcept { value_.store(0, std::memory_order_relaxed); }
};

/// Fixed-layout base-2 log histogram: bucket 0 counts zeros, bucket i >= 1
/// counts values in [2^(i-1), 2^i). The layout is a pure function of the
/// value's bit width — identical on every host, run and thread count.
/// Intended for latencies in nanoseconds (64 buckets cover > 500 years)
/// but any uint64 works.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// Bucket index of `value`: 0 for 0, otherwise min(kBuckets - 1,
  /// bit_width(value)). Deterministic; no clocks, no floats.
  static size_t BucketIndex(uint64_t value) noexcept {
    if (value == 0) return 0;
    size_t width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive-exclusive range [lower, upper) covered by bucket i (upper
  /// is saturated to UINT64_MAX for the last bucket).
  static uint64_t BucketLower(size_t i) noexcept {
    return i == 0 ? 0 : (i == 1 ? 1 : uint64_t{1} << (i - 1));
  }
  static uint64_t BucketUpper(size_t i) noexcept {
    return i == 0 ? 1
                  : (i >= kBuckets - 1 ? ~uint64_t{0} : uint64_t{1} << i);
  }

  void Record(uint64_t value) noexcept {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t BucketCount(size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const noexcept {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::string name_;

  void ResetForTest() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
};

/// Records the wall-clock nanoseconds of its scope into a histogram on
/// destruction. A null histogram makes it a no-op (disabled metric).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram),
        start_(histogram ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    histogram_->Record(ns < 0 ? 0 : static_cast<uint64_t>(ns));
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time aggregate of every registered metric, sorted by name
/// (registration storage is an ordered map, so export order is stable).
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (bucket index, count) for every nonzero bucket, ascending index.
    std::vector<std::pair<size_t, uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;
};

/// Owner of every metric. Handles are created on first lookup and live
/// for the process lifetime; lookups take a mutex (do them once, at sketch
/// construction), increments never do.
class MetricsRegistry {
 public:
  /// The process-wide registry every sketch reports into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  enum class ExportFormat { kJson, kPrometheus };

  /// Serializes a snapshot: a single JSON object keyed by metric kind, or
  /// Prometheus text exposition (dots become underscores, histograms emit
  /// cumulative `_bucket{le=...}` series plus `_sum` / `_count`).
  std::string Export(ExportFormat format) const;

  /// Zeroes every value while keeping all handles valid. Tests only —
  /// callers caching handles are unaffected, but concurrent writers will
  /// interleave with the reset.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prefix helper: MetricScope("lm_fd").counter("queries") registers (or
/// finds) "lm_fd.queries" in the global registry. Slug() derives a prefix
/// from a sketch name: "LM-FD" -> "lm_fd", "SWOR-ALL" -> "swor_all".
class MetricScope {
 public:
  explicit MetricScope(std::string prefix) : prefix_(std::move(prefix)) {}

  Counter* counter(const std::string& suffix) const {
    return MetricsRegistry::Global().GetCounter(prefix_ + "." + suffix);
  }
  Gauge* gauge(const std::string& suffix) const {
    return MetricsRegistry::Global().GetGauge(prefix_ + "." + suffix);
  }
  Histogram* histogram(const std::string& suffix) const {
    return MetricsRegistry::Global().GetHistogram(prefix_ + "." + suffix);
  }

  const std::string& prefix() const { return prefix_; }

  /// Lower-cases and maps every non-alphanumeric run to one underscore.
  static std::string Slug(const std::string& name);

 private:
  std::string prefix_;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_METRICS_H_
