#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace swsketch {

namespace {

size_t g_default_threads = 0;  // 0 = not overridden.

// Set while a pool worker executes a task: nested ParallelFor calls run
// inline instead of re-entering the pool (re-entering could block every
// worker in a wait and deadlock the queue).
thread_local bool t_inside_pool_worker = false;

}  // namespace

size_t ThreadPool::DefaultThreadCount() {
  if (g_default_threads > 0) return g_default_threads;
  if (const char* env = std::getenv("SWSKETCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::SetDefaultThreadCount(size_t threads) {
  g_default_threads = threads;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();  // Leaked: lives for the
                                               // process, avoids shutdown
                                               // ordering issues.
  return *pool;
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = threads > 0 ? threads : DefaultThreadCount();
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SWSKETCH_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

// Per-invocation completion tracking, so concurrent / nested ParallelFor
// calls sharing one pool wait only on their own chunks.
struct ForState {
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = 0;
  std::exception_ptr first_error;
};

}  // namespace

void ParallelForChunks(size_t n,
                       const std::function<void(size_t, size_t)>& body,
                       const ParallelForOptions& options) {
  if (n == 0) return;
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::Shared();
  size_t grain = options.grain;
  if (grain == 0) {
    grain = std::max<size_t>(1,
                             (n + pool.num_threads() - 1) / pool.num_threads());
  }
  if (grain >= n || pool.num_threads() <= 1 || t_inside_pool_worker) {
    body(0, n);  // Inline: nothing to parallelize (or nested call).
    return;
  }

  ForState state;
  state.remaining = (n + grain - 1) / grain;
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(begin + grain, n);
    pool.Submit([&state, &body, begin, end] {
      std::exception_ptr err;
      try {
        body(begin, end);
      } catch (...) {
        err = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(state.mu);
      if (err && !state.first_error) state.first_error = err;
      if (--state.remaining == 0) state.done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 const ParallelForOptions& options) {
  ParallelForChunks(
      n,
      [&body](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) body(i);
      },
      options);
}

}  // namespace swsketch
