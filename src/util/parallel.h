// Fixed-size thread pool and deterministic parallel-for, the concurrency
// substrate for checkpoint evaluation, sweep fan-out and the partitioned
// linalg kernels.
//
// Determinism contract: ParallelFor splits [0, n) into the same chunks for
// a given (n, grain) regardless of how many workers execute them, each
// index is processed by exactly one task, and tasks never share mutable
// state unless the caller introduces it. A caller that writes result[i]
// from iteration i (and seeds any RNG from i, not from the thread id)
// therefore produces bit-identical output whether the pool has 1 or 64
// workers.
#ifndef SWSKETCH_UTIL_PARALLEL_H_
#define SWSKETCH_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace swsketch {

/// Fixed worker pool over a FIFO task queue. Threads are started in the
/// constructor and joined (after draining) in the destructor; Submit after
/// shutdown is a CHECK failure.
class ThreadPool {
 public:
  /// `threads` = 0 means DefaultThreadCount().
  explicit ThreadPool(size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (by submission-completion order) on the
  /// calling thread; the pool stays usable afterwards.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide shared pool, sized by DefaultThreadCount() at first use.
  static ThreadPool& Shared();

  /// Worker count for new default-sized pools: the SWSKETCH_THREADS
  /// environment variable when set (clamped to >= 1), otherwise
  /// std::thread::hardware_concurrency(). Overridable for tests/flags via
  /// SetDefaultThreadCount *before* Shared() is first used.
  static size_t DefaultThreadCount();
  static void SetDefaultThreadCount(size_t threads);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: task or shutdown.
  std::condition_variable idle_cv_;   // Signals Wait(): everything done.
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

struct ParallelForOptions {
  /// Minimum iterations per task; [0, n) is split into ceil(n / grain)
  /// contiguous chunks. 0 means "one chunk per worker" (still
  /// deterministic: the chunking depends on the pool *size*, which is
  /// fixed per pool, not on scheduling).
  size_t grain = 0;
  /// Pool to run on; nullptr means ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// Runs body(i) for every i in [0, n). Chunks run concurrently on the
/// pool; iterations inside a chunk run in increasing order. Runs inline
/// (no pool touched) when n fits a single chunk or the pool has one
/// worker — so single-threaded configurations pay zero overhead and
/// produce identical results by construction. Exceptions from any chunk
/// are rethrown on the caller.
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 const ParallelForOptions& options = {});

/// Chunked variant: body(begin, end) per contiguous chunk. This is the
/// primitive the blocked kernels use (a chunk maps to a tile row band).
void ParallelForChunks(size_t n,
                       const std::function<void(size_t, size_t)>& body,
                       const ParallelForOptions& options = {});

/// Bounded single-producer single-consumer hand-off queue. One coordinator
/// thread pushes, one writer thread pops; the bound applies back-pressure
/// to the producer instead of letting the queue grow without limit.
///
/// Blocking mutex + two condvars rather than a lock-free ring: items are
/// whole row blocks, so the per-item cost is hundreds of row copies and the
/// lock is amortized to noise, while blocked producers/consumers park in
/// the kernel instead of spinning. The simple protocol is also trivially
/// clean under TSan, which the sharded ingest tests require.
///
/// Shutdown: Close() wakes both sides; Pop drains remaining items and then
/// returns false, Push after Close is a CHECK failure (producer owns the
/// close, so a well-formed coordinator never races it).
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Blocks while the queue is full.
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
    SWSKETCH_CHECK(!closed_);
    items_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  /// Consumer side. Blocks until an item arrives or the queue is closed;
  /// returns false only when closed *and* fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Producer side: no further Push calls will be made. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Instantaneous item count (monitoring only; stale by the time the
  /// caller reads it).
  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_PARALLEL_H_
