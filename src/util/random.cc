#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace swsketch {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformOpen01() {
  double u;
  do {
    u = Uniform01();
  } while (u == 0.0);
  return u;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  SWSKETCH_CHECK_GT(n, 0u);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller.
  const double u1 = UniformOpen01();
  const double u2 = Uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  SWSKETCH_CHECK_GT(lambda, 0.0);
  return -std::log(UniformOpen01()) / lambda;
}

uint64_t Rng::Poisson(double mean) {
  SWSKETCH_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for stream
  // arrival simulation at large rates.
  const double g = Gaussian(mean, std::sqrt(mean));
  return g <= 0.0 ? 0 : static_cast<uint64_t>(g + 0.5);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SWSKETCH_CHECK_LE(k, n);
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::vector<size_t> picked;
  picked.reserve(k);
  std::vector<bool> in(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(j + 1));
    if (in[t]) t = j;
    in[t] = true;
    picked.push_back(t);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void Rng::Serialize(ByteWriter* writer) const {
  for (uint64_t s : s_) writer->Put(s);
  writer->Put<uint8_t>(have_cached_gaussian_ ? 1 : 0);
  writer->Put(cached_gaussian_);
}

bool Rng::Deserialize(ByteReader* reader) {
  for (auto& s : s_) {
    if (!reader->Get(&s)) return false;
  }
  uint8_t cached = 0;
  if (!reader->Get(&cached) || !reader->Get(&cached_gaussian_)) return false;
  have_cached_gaussian_ = cached != 0;
  return true;
}

}  // namespace swsketch
