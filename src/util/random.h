// Deterministic, seedable pseudo-random number generation used throughout
// the library. We ship our own xoshiro256** implementation so results are
// reproducible across standard libraries (std::mt19937 distributions are
// not portable across implementations).
#ifndef SWSKETCH_UTIL_RANDOM_H_
#define SWSKETCH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serialize.h"

namespace swsketch {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed via splitmix64.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in the open interval (0, 1); never returns 0.
  double UniformOpen01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Gaussian with the given mean / standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// k distinct indices sampled uniformly from [0, n), in sorted order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Full generator state, for checkpoint/resume of randomized sketches.
  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_RANDOM_H_
