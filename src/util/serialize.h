// Minimal binary serialization: little-endian, versioned per type by the
// caller. Sketches implement Serialize(ByteWriter*) plus a static
// Deserialize(ByteReader*) so deployments can checkpoint sliding-window
// state and resume after restarts.
#ifndef SWSKETCH_UTIL_SERIALIZE_H_
#define SWSKETCH_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace swsketch {

/// Append-only byte sink.
class ByteWriter {
 public:
  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<uint64_t>(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<uint64_t>(v.size());
    if (v.empty()) return;  // data() may be null; don't form a null range.
    const auto* p = reinterpret_cast<const uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential byte source with bounds checking. After any failed read,
/// ok() is false and all further reads fail.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok_ || pos_ + sizeof(T) > bytes_.size()) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* out) {
    uint64_t n = 0;
    if (!Get(&n) || pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool GetVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!Get(&n) || pos_ + n * sizeof(T) > bytes_.size()) {
      ok_ = false;
      return false;
    }
    out->resize(n);
    if (n != 0) {  // memcpy with a null destination is UB even for size 0.
      std::memcpy(out->data(), bytes_.data() + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return true;
  }

  /// Reads T without consuming it (dispatch-by-tag).
  template <typename T>
  bool Peek(T* out) {
    const size_t saved = pos_;
    const bool r = Get(out);
    pos_ = saved;
    return r;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }
  size_t position() const { return pos_; }

  Status StatusOrCorrupt(const std::string& what) const {
    return ok_ ? Status::OK()
               : Status::InvalidArgument("corrupt " + what + " payload");
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Reads and checks a (tag, version) header; returns false on mismatch.
inline bool CheckHeader(ByteReader* reader, uint32_t expected_tag,
                        uint32_t max_version) {
  uint32_t tag = 0, version = 0;
  if (!reader->Get(&tag) || !reader->Get(&version)) return false;
  return tag == expected_tag && version >= 1 && version <= max_version;
}

inline void WriteHeader(ByteWriter* writer, uint32_t tag, uint32_t version) {
  writer->Put(tag);
  writer->Put(version);
}

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_SERIALIZE_H_
