// Lightweight Status / Result<T> for fallible APIs. The library is built
// without exceptions on hot paths; constructors that can fail are replaced
// by factory functions returning Result<T>.
#ifndef SWSKETCH_UTIL_STATUS_H_
#define SWSKETCH_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace swsketch {

/// Error categories; kept deliberately small (RocksDB-style subset).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kNotFound,
  kUnimplemented,
};

/// Value-semantics status object. `Status::OK()` is cheap (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kFailedPrecondition: name = "FailedPrecondition"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kUnimplemented: name = "Unimplemented"; break;
    }
    return name + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Mirrors absl::StatusOr semantics at a
/// fraction of the surface area.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T&& take() { return std::move(*value_); }

  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("result not initialized");
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_STATUS_H_
