// Simple wall-clock timer used by the experiment harness to measure
// per-update processing cost.
#ifndef SWSKETCH_UTIL_TIMER_H_
#define SWSKETCH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace swsketch {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction / last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time across many timed sections plus a count, for
/// average-cost reporting.
class CostAccumulator {
 public:
  void Add(int64_t nanos) {
    total_nanos_ += nanos;
    ++count_;
  }

  /// Records one timed section covering `events` events (a batched update
  /// covering many rows); AverageNanos() stays per-event.
  void AddSpanning(int64_t nanos, int64_t events) {
    total_nanos_ += nanos;
    count_ += events;
  }

  int64_t total_nanos() const { return total_nanos_; }
  int64_t count() const { return count_; }

  /// Average nanoseconds per recorded event (0 when empty).
  double AverageNanos() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_nanos_) /
                             static_cast<double>(count_);
  }

 private:
  int64_t total_nanos_ = 0;
  int64_t count_ = 0;
};

}  // namespace swsketch

#endif  // SWSKETCH_UTIL_TIMER_H_
