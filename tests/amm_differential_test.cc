// Randomized differential testing of the AMM workload: random operation
// sequences (paired updates, paired batches, silent advances, product
// queries, mid-stream checkpoint/restore) drive every AMM backend in
// lockstep against the exact dual-buffer reference (AmmExact), asserting
//  - shape and empty-window conventions of QueryProduct(),
//  - the co-sketch error bound of arXiv 2502.17940 with a constant-factor
//    margin for the sliding-window relaxation (eval/amm_err.h),
//  - a restored twin stays in BYTE lockstep with the original under
//    continued ingest (estimates compared bitwise),
//  - the whole estimator is bitwise deterministic: replaying the same op
//    sequence from scratch reproduces the final estimate exactly.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "amm/amm_exact.h"
#include "amm/amm_sketch.h"
#include "core/factory.h"
#include "eval/amm_err.h"
#include "linalg/matrix.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

// Constant-factor slack over the one-shot co-sketch bound granted to the
// sliding-window backends (DS-FD boundary leak, LM level merges, DI cover
// union all relax the one-shot constant; see eval/amm_err.h). DS-FD gets
// a different envelope shape entirely: its snapshot ladder can leak one
// truncation quantum of a PAST window's mass across the boundary, so when
// the live window's mass collapses after a heavy burst expires, error
// RELATIVE to the live norms is unbounded (the norm-ratio R dependence
// the source paper states explicitly; EXPERIMENTS.md documents the same
// blow-up on PAMAP). The fuzz therefore pins DS-FD's ABSOLUTE spectral
// error against slack * (live_mass / ell + peak_mass / ladder_k).
constexpr double kWindowSlack = 4.0;
constexpr double kDsWindowSlack = 4.0;

struct FuzzResult {
  Matrix final_estimate;
  size_t products_checked = 0;
};

// One full randomized run. Deterministic given (algo, seed): every random
// draw comes from one Rng seeded at `seed`, so two invocations replay the
// identical op sequence — the determinism test compares their outputs
// bitwise.
FuzzResult RunAmmFuzz(const std::string& algo, uint64_t seed) {
  Rng rng(seed);
  FuzzResult result;

  const size_t da = 2 + rng.UniformInt(3);  // 2..4.
  const size_t db = 2 + rng.UniformInt(4);  // 2..5.
  const size_t d = da + db;
  const bool time_window = algo != "amm-di-fd" && rng.Bernoulli(0.4);
  const double extent =
      time_window ? 20.0 + rng.Uniform01() * 60.0
                  : static_cast<double>(32 + rng.UniformInt(128));
  const WindowSpec window =
      time_window ? WindowSpec::Time(extent)
                  : WindowSpec::Sequence(static_cast<uint64_t>(extent));

  SketchConfig config;
  config.algorithm = algo;
  config.ell = 8 + rng.UniformInt(8);
  config.levels = 3 + rng.UniformInt(3);
  config.max_norm_sq = 16.0 * static_cast<double>(d);
  config.amm_dim_a = da;
  config.seed = seed;
  auto made = MakeSlidingWindowSketch(d, window, config);
  EXPECT_TRUE(made.ok()) << algo << ": " << made.status().ToString();
  if (!made.ok()) return result;
  auto* sketch = dynamic_cast<AmmSketch*>(made->get());
  EXPECT_NE(sketch, nullptr) << algo << " did not build an AmmSketch";
  if (sketch == nullptr) return result;

  AmmExact reference(da, db, window);
  std::unique_ptr<SlidingWindowSketch> twin_owner;
  AmmSketch* twin = nullptr;

  const auto random_pair = [&](std::vector<double>* a,
                               std::vector<double>* b) {
    const double scale = rng.Bernoulli(0.05) ? 8.0 : 1.0;
    a->resize(da);
    b->resize(db);
    for (auto& v : *a) v = scale * rng.Gaussian();
    for (auto& v : *b) v = scale * rng.Gaussian();
  };

  double t = 0.0;
  std::vector<double> row_a, row_b;
  // Largest stacked-window Frobenius mass seen at any point in the run;
  // feeds the DS-FD leak envelope (a leaked snapshot quantum is sized by
  // the mass of the window it was dumped from, not the live one).
  double peak_stacked_mass = 0.0;
  const auto note_window_mass = [&] {
    peak_stacked_mass = std::max(peak_stacked_mass,
                                 reference.buffer_a().FrobeniusNormSq() +
                                     reference.buffer_b().FrobeniusNormSq());
  };
  const size_t ops = 400;
  for (size_t op = 0; op < ops; ++op) {
    const double dice = rng.Uniform01();
    if (dice < 0.45) {
      random_pair(&row_a, &row_b);
      t += time_window ? rng.Exponential(2.0) : 1.0;
      sketch->UpdatePair(row_a, row_b, t);
      reference.UpdatePair(row_a, row_b, t);
      if (twin) twin->UpdatePair(row_a, row_b, t);
      note_window_mass();
    } else if (dice < 0.65) {
      // Paired batch through the backend's UpdateBatch fast path.
      const size_t burst = 1 + rng.UniformInt(24);
      Matrix block_a(burst, da), block_b(burst, db);
      std::vector<double> ts(burst);
      for (size_t i = 0; i < burst; ++i) {
        random_pair(&row_a, &row_b);
        for (size_t j = 0; j < da; ++j) block_a(i, j) = row_a[j];
        for (size_t j = 0; j < db; ++j) block_b(i, j) = row_b[j];
        t += time_window ? rng.Exponential(2.0) : 1.0;
        ts[i] = t;
      }
      sketch->UpdatePairBatch(block_a, block_b, ts);
      reference.UpdatePairBatch(block_a, block_b, ts);
      if (twin) twin->UpdatePairBatch(block_a, block_b, ts);
      note_window_mass();
    } else if (dice < 0.75 && time_window) {
      // Silent advance, sometimes past the whole window.
      t += rng.Bernoulli(0.2) ? extent * 1.5 : rng.Uniform01() * extent;
      sketch->AdvanceTo(t);
      reference.AdvanceTo(t);
      if (twin) twin->AdvanceTo(t);
    } else if (dice < 0.92) {
      // Product query: shape, error bound, twin lockstep.
      const Matrix est = sketch->QueryProduct();
      EXPECT_EQ(est.rows(), da) << algo;
      EXPECT_EQ(est.cols(), db) << algo;
      const double fa_sq = reference.buffer_a().FrobeniusNormSq();
      const double fb_sq = reference.buffer_b().FrobeniusNormSq();
      if (fa_sq > 0.0 && fb_sq > 0.0) {
        const Matrix exact = reference.QueryProduct();
        const double err = AmmError(exact, fa_sq, fb_sq, est);
        if (algo == "amm-co-fd") {
          // Absolute-spectral envelope: live co-sketch term plus one
          // leaked snapshot quantum of the heaviest window seen so far
          // (see the comment at kDsWindowSlack).
          const size_t ladder_k = std::max<size_t>(8, 3 * config.ell / 8);
          const double abs_err = err * std::sqrt(fa_sq * fb_sq);
          const double abs_bound =
              kDsWindowSlack *
              ((fa_sq + fb_sq) / static_cast<double>(config.ell) +
               peak_stacked_mass / static_cast<double>(ladder_k));
          EXPECT_LE(abs_err, abs_bound)
              << algo << " seed=" << seed << " op=" << op << " ell="
              << config.ell << " peak=" << peak_stacked_mass;
        } else {
          const double bound =
              AmmErrorBound(config.ell, fa_sq, fb_sq, kWindowSlack);
          EXPECT_LE(err, bound)
              << algo << " seed=" << seed << " op=" << op << " ell="
              << config.ell;
        }
        ++result.products_checked;
      } else {
        // Empty window: the estimate must be exactly zero.
        EXPECT_EQ(est.FrobeniusNormSq(), 0.0) << algo << " op=" << op;
      }
      if (twin) {
        const Matrix te = twin->QueryProduct();
        EXPECT_EQ(te.rows(), est.rows()) << algo;
        EXPECT_EQ(te.MaxAbsDiff(est), 0.0)
            << algo << " twin diverged at op " << op;
      }
    } else if (!twin) {
      // Checkpoint: spawn the restored twin mid-stream.
      ByteWriter w;
      if (sketch->SerializeTo(&w).ok()) {
        ByteReader r(w.bytes());
        auto loaded = DeserializeSlidingWindowSketch(&r);
        EXPECT_TRUE(loaded.ok()) << algo;
        if (loaded.ok()) {
          twin_owner = std::move(*loaded);
          twin = dynamic_cast<AmmSketch*>(twin_owner.get());
          EXPECT_NE(twin, nullptr)
              << algo << " reloaded as a non-AMM sketch";
        }
      }
    }
  }
  result.final_estimate = sketch->QueryProduct();
  return result;
}

class AmmDifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(AmmDifferentialFuzz, LockstepAgainstExactReference) {
  const auto [algo, seed] = GetParam();
  const FuzzResult run = RunAmmFuzz(algo, seed);
  // The op mix must actually have exercised the bound (not all-empty
  // windows), otherwise the test silently checks nothing.
  EXPECT_GT(run.products_checked, 0u) << algo << " seed=" << seed;
}

TEST_P(AmmDifferentialFuzz, RerunIsBitwiseDeterministic) {
  const auto [algo, seed] = GetParam();
  const FuzzResult a = RunAmmFuzz(algo, seed);
  const FuzzResult b = RunAmmFuzz(algo, seed);
  ASSERT_EQ(a.final_estimate.rows(), b.final_estimate.rows());
  ASSERT_EQ(a.final_estimate.cols(), b.final_estimate.cols());
  EXPECT_EQ(a.final_estimate.MaxAbsDiff(b.final_estimate), 0.0)
      << algo << " estimator is not deterministic across reruns";
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, AmmDifferentialFuzz,
    ::testing::Combine(::testing::Values("amm-exact", "amm-co-fd",
                                         "amm-lm-fd", "amm-di-fd"),
                       ::testing::Values(11u, 22u, 33u)));

// The exact backend against the brute-force definition: QueryProduct()
// must equal A_W^T B_W computed straight off the live window, bitwise
// (both accumulate pair-by-pair in arrival order).
TEST(AmmExactTest, ProductMatchesBruteForce) {
  Rng rng(7);
  const size_t da = 3, db = 4;
  AmmExact amm(da, db, WindowSpec::Sequence(24));
  std::vector<std::vector<double>> live_a, live_b;
  std::vector<double> ra(da), rb(db);
  for (size_t i = 0; i < 80; ++i) {
    for (auto& v : ra) v = rng.Gaussian();
    for (auto& v : rb) v = rng.Gaussian();
    amm.UpdatePair(ra, rb, static_cast<double>(i + 1));
    live_a.push_back(ra);
    live_b.push_back(rb);
    if (live_a.size() > 24) {
      live_a.erase(live_a.begin());
      live_b.erase(live_b.begin());
    }
    if (i % 10 != 9) continue;
    Matrix want(da, db);
    for (size_t r = 0; r < live_a.size(); ++r) {
      for (size_t x = 0; x < da; ++x) {
        for (size_t y = 0; y < db; ++y) {
          want(x, y) += live_a[r][x] * live_b[r][y];
        }
      }
    }
    const Matrix got = amm.QueryProduct();
    EXPECT_LE(got.MaxAbsDiff(want), 1e-12) << "row " << i;
  }
}

}  // namespace
}  // namespace swsketch
