// Algebraic laws of the AMM workload:
//  - Gram consistency: feeding the same stream as both operands makes
//    QueryProduct() an estimate of A_W^T A_W, which must agree with the
//    covariance path (exactly for amm-exact, within the co-sketch bound
//    for the FD-backed wrappers at matched parameters).
//  - Transpose symmetry: swapping the operands transposes the estimate.
//    Bitwise for amm-exact with arbitrary data (the accumulation keeps
//    the stacked row index outermost, so the swap only renames i/j of
//    each product term); bitwise for FD wrappers while the stacked state
//    is pre-shrink (raw rows, a pure column-block swap).
//  - Sharded identity: an S=1 ShardedSketch over the stacked FD route is
//    byte-equal to the plain sketch (FD-merge reduce at the stacked
//    dimension is the identity on one shard).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amm/amm_exact.h"
#include "amm/amm_sketch.h"
#include "core/factory.h"
#include "distributed/sharded_sketch.h"
#include "eval/amm_err.h"
#include "eval/cov_err.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace swsketch {
namespace {

AmmSketch* AsAmm(const std::unique_ptr<SlidingWindowSketch>& s) {
  auto* amm = dynamic_cast<AmmSketch*>(s.get());
  EXPECT_NE(amm, nullptr);
  return amm;
}

std::unique_ptr<SlidingWindowSketch> BuildAmm(const std::string& algo,
                                              size_t da, size_t db,
                                              WindowSpec window, size_t ell,
                                              uint64_t seed = 5) {
  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  config.amm_dim_a = da;
  config.max_norm_sq = 16.0 * static_cast<double>(da + db);
  config.seed = seed;
  auto made = MakeSlidingWindowSketch(da + db, window, config);
  EXPECT_TRUE(made.ok()) << algo << ": " << made.status().ToString();
  return made.ok() ? made.take() : nullptr;
}

// ---------------------------------------------------------------------
// Gram consistency: Query(A, A) estimates the window Gram.

TEST(AmmPropertyTest, ExactSelfProductIsTheWindowGram) {
  Rng rng(31);
  const size_t d = 4;
  const WindowSpec window = WindowSpec::Sequence(40);
  auto sketch = BuildAmm("amm-exact", d, d, window, 8);
  ASSERT_NE(sketch, nullptr);
  auto* amm = AsAmm(sketch);

  Matrix a(120, d);
  std::vector<double> ts(120);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < d; ++j) a(i, j) = rng.Gaussian();
    ts[i] = static_cast<double>(i + 1);
  }
  amm->UpdatePairBatch(a, a, ts);

  // The last 40 rows are the window; their Gram is the exact self-product.
  Matrix live(40, d);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < d; ++j) live(i, j) = a(80 + i, j);
  }
  const Matrix gram = live.Gram();
  const Matrix got = amm->QueryProduct();
  ASSERT_EQ(got.rows(), d);
  ASSERT_EQ(got.cols(), d);
  EXPECT_LE(got.MaxAbsDiff(gram), 1e-9);
}

TEST(AmmPropertyTest, FdSelfProductMatchesCovariancePathWithinBound) {
  // At matched parameters the self-product estimate must track the window
  // Gram as well as the covariance guarantee promises: the stacked [A|A]
  // stream has Frobenius mass 2 ||A||_F^2, and the product block inherits
  // the stacked covariance bound (eval/amm_err.h).
  Rng rng(37);
  const size_t d = 4;
  const size_t ell = 16;
  const WindowSpec window = WindowSpec::Sequence(64);
  for (const std::string algo : {"amm-co-fd", "amm-lm-fd", "amm-di-fd"}) {
    SCOPED_TRACE(algo);
    auto sketch = BuildAmm(algo, d, d, window, ell);
    ASSERT_NE(sketch, nullptr);
    auto* amm = AsAmm(sketch);

    Matrix a(300, d);
    std::vector<double> ts(300);
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < d; ++j) a(i, j) = rng.Gaussian();
      ts[i] = static_cast<double>(i + 1);
    }
    amm->UpdatePairBatch(a, a, ts);

    Matrix live(64, d);
    for (size_t i = 0; i < 64; ++i) {
      for (size_t j = 0; j < d; ++j) live(i, j) = a(236 + i, j);
    }
    const Matrix gram = live.Gram();
    const double frob_sq = live.FrobeniusNormSq();
    const Matrix got = amm->QueryProduct();
    const double err = AmmError(gram, frob_sq, frob_sq, got);
    const double bound = AmmErrorBound(ell, frob_sq, frob_sq, 4.0);
    EXPECT_LE(err, bound);
    // Self-product of the co-sketch is PSD-adjacent: its diagonal must be
    // non-negative (each entry is a sum of squares of sketch columns).
    for (size_t j = 0; j < d; ++j) EXPECT_GE(got(j, j), 0.0);
  }
}

// ---------------------------------------------------------------------
// Transpose symmetry.

TEST(AmmPropertyTest, ExactTransposeSymmetryIsBitwise) {
  Rng rng(41);
  const size_t da = 3, db = 5;
  const WindowSpec window = WindowSpec::Time(30.0);
  AmmExact fwd(da, db, window);
  AmmExact rev(db, da, window);
  std::vector<double> ra(da), rb(db);
  double t = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    for (auto& v : ra) v = 3.0 * rng.Gaussian();
    for (auto& v : rb) v = rng.Gaussian();
    t += rng.Exponential(1.0);
    fwd.UpdatePair(ra, rb, t);
    rev.UpdatePair(rb, ra, t);
    if (i % 25 != 24) continue;
    const Matrix p = fwd.QueryProduct();
    const Matrix q = rev.QueryProduct();
    ASSERT_EQ(p.rows(), q.cols());
    ASSERT_EQ(p.cols(), q.rows());
    for (size_t x = 0; x < p.rows(); ++x) {
      for (size_t y = 0; y < p.cols(); ++y) {
        EXPECT_EQ(p(x, y), q(y, x)) << "row " << i;
      }
    }
  }
}

TEST(AmmPropertyTest, FdTransposeSymmetryIsBitwisePreShrink) {
  // While the window holds fewer rows than the FD budget the stacked
  // state is the raw rows, so the swapped sketch's state is an exact
  // column-block swap and the products are bitwise transposes for the
  // LM / DI wrappers (their pre-shrink query path never contracts over
  // the stacked dimension). DS-FD is the exception: its signed-stack PSD
  // projection takes dot products ACROSS the stacked columns (Gram of
  // the projected basis), and a column-block swap reorders those
  // summations — mathematically equivariant, bitwise only to rounding,
  // so amm-co-fd is pinned at a tight tolerance instead.
  Rng rng(43);
  const size_t da = 2, db = 3;
  const size_t ell = 16;  // > rows ingested: no shrink fires.
  const WindowSpec window = WindowSpec::Sequence(32);
  for (const std::string algo : {"amm-co-fd", "amm-lm-fd", "amm-di-fd"}) {
    SCOPED_TRACE(algo);
    auto fwd_s = BuildAmm(algo, da, db, window, ell);
    auto rev_s = BuildAmm(algo, db, da, window, ell);
    ASSERT_NE(fwd_s, nullptr);
    ASSERT_NE(rev_s, nullptr);
    auto* fwd = AsAmm(fwd_s);
    auto* rev = AsAmm(rev_s);
    std::vector<double> ra(da), rb(db);
    // 7 rows: below every backend's shrink trigger at these parameters
    // (DS-FD's frame capacity resolves to 8 here), so the stacked state
    // stays raw rows end-to-end.
    for (size_t i = 0; i < 7; ++i) {
      for (auto& v : ra) v = rng.Gaussian();
      for (auto& v : rb) v = rng.Gaussian();
      const double t = static_cast<double>(i + 1);
      fwd->UpdatePair(ra, rb, t);
      rev->UpdatePair(rb, ra, t);
    }
    const Matrix p = fwd->QueryProduct();
    const Matrix q = rev->QueryProduct();
    ASSERT_EQ(p.rows(), da);
    ASSERT_EQ(q.rows(), db);
    const bool bitwise = algo != "amm-co-fd";
    for (size_t x = 0; x < da; ++x) {
      for (size_t y = 0; y < db; ++y) {
        if (bitwise) {
          EXPECT_EQ(p(x, y), q(y, x)) << algo;
        } else {
          EXPECT_NEAR(p(x, y), q(y, x), 1e-10) << algo;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// S=1 sharded identity on the stacked FD route.

TEST(AmmPropertyTest, SingleShardStackedFdIsByteEqualToPlain) {
  Rng rng(47);
  // Stacked dim 9 keeps DS-FD's frame capacity (8) below dim, where
  // FrequentDirections::AppendBatch replays the serial per-row schedule
  // bit-identically — the precondition of the sharded == plain byte
  // contract (the sharded pipeline ingests via staged blocks).
  const size_t da = 4, db = 5, d = da + db;
  const WindowSpec window = WindowSpec::Sequence(80);
  for (const std::string algo : {"amm-co-fd", "amm-lm-fd"}) {
    SCOPED_TRACE(algo);
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    config.amm_dim_a = da;
    config.seed = 9;

    ShardedSketch::Options options;
    options.shards = 1;
    options.block_rows = 16;
    auto sharded = ShardedSketch::Make(d, window, config, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    auto plain = MakeSlidingWindowSketch(d, window, config);
    ASSERT_TRUE(plain.ok());
    auto* plain_amm = AsAmm(*plain);

    std::vector<double> row(d);
    for (size_t i = 0; i < 240; ++i) {
      for (auto& v : row) v = rng.Gaussian();
      const double t = static_cast<double>(i + 1);
      (*sharded)->Update(row, t);
      (*plain)->Update(row, t);
      if (i % 60 != 59) continue;
      const Matrix qs = (*sharded)->Query();
      const Matrix qp = (*plain)->Query();
      ASSERT_EQ(qs.rows(), qp.rows()) << "row " << i;
      EXPECT_EQ(qs.MaxAbsDiff(qp), 0.0) << "row " << i;
      // The product read off the sharded stacked approximation is
      // bit-identical to the plain wrapper's QueryProduct().
      const Matrix ps = AmmSketch::ProductFromStacked(qs, da);
      const Matrix pp = plain_amm->QueryProduct();
      EXPECT_EQ(ps.MaxAbsDiff(pp), 0.0) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace swsketch
