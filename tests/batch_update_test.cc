// Batch-vs-serial equivalence for the batched ingest pipeline: UpdateBatch
// must be indistinguishable from feeding rows one at a time — bit-identical
// where the backend is deterministic (exact, LM-FD, DI-FD, hashing, the
// samplers, FD in its schedule-preserving regime), within covariance-error
// tolerance where only the floating-point accumulation order may differ
// (RP block multiply, FD deferred shrink) — plus CSR-vs-dense window Gram
// equality and harness batch-path checkpoint identity.
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "eval/cov_err.h"
#include "eval/harness.h"
#include "data/synthetic.h"
#include "linalg/matrix.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

// Gaussian rows with ts = i + 1; every 17th row zero to exercise the
// zero-row (skip / run-split) paths.
struct TestStream {
  Matrix rows;
  std::vector<double> ts;
};

TestStream MakeStream(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  TestStream s;
  s.rows = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    if (i % 17 != 13) {
      for (size_t j = 0; j < d; ++j) s.rows(i, j) = rng.Gaussian();
    }
    s.ts.push_back(static_cast<double>(i + 1));
  }
  return s;
}

std::unique_ptr<SlidingWindowSketch> MakeSketch(const std::string& algorithm,
                                                size_t dim, WindowSpec window) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.ell = 16;
  config.levels = 4;
  config.seed = 7;
  auto r = MakeSlidingWindowSketch(dim, window, config);
  EXPECT_TRUE(r.ok()) << algorithm;
  return r.take();
}

// Feeds the same stream serially and in ragged blocks (sizes 1, 2, 3, 5,
// 8, 13, ... cycling) and returns both Query outputs.
struct BatchSerialPair {
  Matrix serial;
  Matrix batched;
  size_t serial_rows_stored;
  size_t batched_rows_stored;
};

BatchSerialPair RunBoth(const std::string& algorithm, const TestStream& s,
                        WindowSpec window) {
  const size_t d = s.rows.cols();
  auto serial = MakeSketch(algorithm, d, window);
  auto batched = MakeSketch(algorithm, d, window);

  for (size_t i = 0; i < s.rows.rows(); ++i) {
    serial->Update(s.rows.Row(i), s.ts[i]);
  }

  const size_t sizes[] = {1, 2, 3, 5, 8, 13, 21, 64};
  size_t b = 0, k = 0;
  while (b < s.rows.rows()) {
    const size_t e = std::min(s.rows.rows(), b + sizes[k % 8]);
    Matrix block(0, d);
    std::vector<double> ts;
    for (size_t i = b; i < e; ++i) {
      block.AppendRow(s.rows.Row(i));
      ts.push_back(s.ts[i]);
    }
    batched->UpdateBatch(block, ts);
    b = e;
    ++k;
  }

  BatchSerialPair out;
  out.serial_rows_stored = serial->RowsStored();
  out.batched_rows_stored = batched->RowsStored();
  out.serial = serial->Query();
  out.batched = batched->Query();
  return out;
}

TEST(BatchUpdateTest, DeterministicBackendsBitIdentical) {
  const TestStream s = MakeStream(700, 24, 3);
  const WindowSpec window = WindowSpec::Sequence(200);
  for (const char* algorithm :
       {"exact", "lm-fd", "di-fd", "lm-hash", "di-hash", "swr", "swor",
        "swor-all"}) {
    const BatchSerialPair p = RunBoth(algorithm, s, window);
    EXPECT_EQ(p.serial_rows_stored, p.batched_rows_stored) << algorithm;
    ASSERT_EQ(p.serial.rows(), p.batched.rows()) << algorithm;
    EXPECT_EQ(p.serial.MaxAbsDiff(p.batched), 0.0) << algorithm;
  }
}

TEST(BatchUpdateTest, RandomizedBackendsWithinTolerance) {
  // RP applies the same projection as a linear map but accumulates the +=
  // in tiled order, so outputs agree to rounding, not bitwise.
  const TestStream s = MakeStream(700, 24, 4);
  const WindowSpec window = WindowSpec::Sequence(200);
  for (const char* algorithm : {"lm-rp", "di-rp"}) {
    const BatchSerialPair p = RunBoth(algorithm, s, window);
    EXPECT_EQ(p.serial_rows_stored, p.batched_rows_stored) << algorithm;
    ASSERT_EQ(p.serial.rows(), p.batched.rows()) << algorithm;
    EXPECT_LE(p.serial.MaxAbsDiff(p.batched), 1e-8) << algorithm;
  }
}

TEST(BatchUpdateTest, TimeWindowSamplersBitIdentical) {
  // Time windows slide between arrivals, exercising the deferred-expiry
  // argument with multi-row evictions inside one block.
  TestStream s = MakeStream(500, 12, 5);
  Rng rng(6);
  double t = 0.0;
  for (auto& ts : s.ts) {
    t += rng.Uniform(0.1, 2.0);
    ts = t;
  }
  const WindowSpec window = WindowSpec::Time(50.0);
  for (const char* algorithm : {"swr", "swor", "lm-fd"}) {
    const BatchSerialPair p = RunBoth(algorithm, s, window);
    EXPECT_EQ(p.serial_rows_stored, p.batched_rows_stored) << algorithm;
    ASSERT_EQ(p.serial.rows(), p.batched.rows()) << algorithm;
    EXPECT_EQ(p.serial.MaxAbsDiff(p.batched), 0.0) << algorithm;
  }
}

TEST(BatchUpdateTest, DefaultRowLoopMatchesSerial) {
  // A sketch without an override takes the base-class row loop; sanity
  // check it through a type that has one but calling the default directly.
  const TestStream s = MakeStream(100, 8, 8);
  auto a = MakeSketch("exact", 8, WindowSpec::Sequence(40));
  auto b = MakeSketch("exact", 8, WindowSpec::Sequence(40));
  for (size_t i = 0; i < s.rows.rows(); ++i) a->Update(s.rows.Row(i), s.ts[i]);
  b->SlidingWindowSketch::UpdateBatch(s.rows, s.ts);
  EXPECT_EQ(a->Query().MaxAbsDiff(b->Query()), 0.0);
}

TEST(BatchUpdateTest, FdNarrowRegimeBitIdentical) {
  // capacity < dim: AppendBatch must replay the serial shrink schedule.
  const size_t d = 48, ell = 16;
  const Matrix rows = MakeStream(300, d, 9).rows;
  FrequentDirections serial(d, ell);
  FrequentDirections batched(d, ell);
  for (size_t i = 0; i < rows.rows(); ++i) serial.Append(rows.Row(i));
  for (size_t b = 0; b < rows.rows(); b += 37) {
    batched.AppendBatch(rows, b, std::min(rows.rows(), b + 37));
  }
  EXPECT_EQ(serial.shrink_count(), batched.shrink_count());
  EXPECT_EQ(serial.Approximation().MaxAbsDiff(batched.Approximation()), 0.0);
  EXPECT_EQ(serial.shed_mass(), batched.shed_mass());
}

TEST(BatchUpdateTest, FdTallRegimeKeepsGuarantee) {
  // capacity >= dim: one deferred shrink per block. The schedule differs
  // from serial by design; the FD invariants and error guarantee must not.
  const size_t d = 16, ell = 24;
  const Matrix rows = MakeStream(400, d, 10).rows;
  FrequentDirections fd(d, ell);
  for (size_t b = 0; b < rows.rows(); b += 100) {
    fd.AppendBatch(rows, b, std::min(rows.rows(), b + 100));
  }
  EXPECT_LE(fd.RowsStored(), fd.buffer_capacity() + 0u);
  EXPECT_GT(fd.shrink_count(), 0u);
  // shed_mass <= ||A||_F^2 / shrink_rank (the FD trace argument).
  EXPECT_LE(fd.shed_mass(),
            fd.input_mass() / static_cast<double>(fd.shrink_rank()) + 1e-9);
  // ||A^T A - B^T B||_2 <= shed_mass.
  const double frob_sq = fd.input_mass();
  const double err = CovarianceError(rows.Gram(), frob_sq, fd.Approximation());
  EXPECT_LE(err * frob_sq, fd.shed_mass() * (1.0 + 1e-9));
}

TEST(BatchUpdateTest, RpBatchDrawsSameSigns) {
  const size_t d = 32, ell = 16;
  const Matrix rows = MakeStream(200, d, 11).rows;
  RandomProjection serial(d, ell, 42);
  RandomProjection batched(d, ell, 42);
  for (size_t i = 0; i < rows.rows(); ++i) serial.Append(rows.Row(i));
  for (size_t b = 0; b < rows.rows(); b += 33) {
    batched.AppendBatch(rows, b, std::min(rows.rows(), b + 33));
  }
  // Same signs, different accumulation order: equal to rounding.
  EXPECT_TRUE(serial.Approximation().ApproxEquals(batched.Approximation(),
                                                  1e-8));
}

TEST(BatchUpdateTest, HashBatchBitIdentical) {
  const size_t d = 32, ell = 16;
  const Matrix rows = MakeStream(200, d, 12).rows;
  HashSketch serial(d, ell, 42);
  HashSketch batched(d, ell, 42);
  for (size_t i = 0; i < rows.rows(); ++i) serial.Append(rows.Row(i), i);
  for (size_t b = 0; b < rows.rows(); b += 41) {
    batched.AppendBatch(rows, b, std::min(rows.rows(), b + 41), b);
  }
  EXPECT_EQ(serial.Approximation().MaxAbsDiff(batched.Approximation()), 0.0);
}

// ---- CSR-aware window Gram.

// Powers of two make every product and partial sum exactly representable,
// so the sparse-scatter and dense-blocked paths must agree bitwise.
WindowBuffer MakeSparseWindow(size_t n, size_t d, size_t nnz, uint64_t seed) {
  WindowBuffer buffer(WindowSpec::Sequence(n));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v(d, 0.0);
    for (size_t k = 0; k < nnz; ++k) {
      const double mag = std::ldexp(1.0, static_cast<int>(rng.Next() % 5) - 2);
      v[rng.Next() % d] = (rng.Next() & 1) ? mag : -mag;
    }
    buffer.Add(Row(std::move(v), static_cast<double>(i + 1)));
  }
  return buffer;
}

TEST(SparseGramTest, MatchesDenseOnSparseWindow) {
  const size_t d = 60;
  const WindowBuffer buffer = MakeSparseWindow(150, d, 3, 13);
  const double density = static_cast<double>(buffer.NonzeroCount()) /
                         (static_cast<double>(buffer.size()) * d);
  ASSERT_LE(density, WindowBuffer::kSparseGramDensityThreshold);
  const Matrix dense = buffer.ToMatrix().Gram();
  EXPECT_EQ(buffer.SparseGramMatrix(d).MaxAbsDiff(dense), 0.0);
  // GramMatrix() dispatches to the sparse path below the threshold.
  EXPECT_EQ(buffer.GramMatrix(d).MaxAbsDiff(dense), 0.0);
}

TEST(SparseGramTest, DenseWindowTakesDensePath) {
  const size_t d = 12;
  WindowBuffer buffer(WindowSpec::Sequence(50));
  Rng rng(14);
  for (size_t i = 0; i < 40; ++i) {
    std::vector<double> v(d);
    for (auto& x : v) x = std::ldexp(1.0, static_cast<int>(rng.Next() % 4));
    buffer.Add(Row(std::move(v), static_cast<double>(i + 1)));
  }
  const Matrix dense = buffer.ToMatrix().Gram();
  EXPECT_EQ(buffer.GramMatrix(d).MaxAbsDiff(dense), 0.0);
  // The sparse path agrees even when not chosen (powers of two again).
  EXPECT_EQ(buffer.SparseGramMatrix(d).MaxAbsDiff(dense), 0.0);
}

TEST(SparseGramTest, EmptyWindow) {
  WindowBuffer buffer(WindowSpec::Sequence(10));
  const Matrix g = buffer.GramMatrix(5);
  EXPECT_EQ(g.rows(), 5u);
  EXPECT_EQ(g.cols(), 5u);
  EXPECT_EQ(g.FrobeniusNormSq(), 0.0);
}

// ---- Harness batch path.

TEST(HarnessBatchTest, BatchedCheckpointsMatchSerial) {
  const auto run = [](size_t batch_rows) {
    SyntheticStream stream(SyntheticStream::Options{
        .rows = 1200, .dim = 10, .signal_dim = 4, .window = 250});
    SketchConfig c1, c2;
    c1.algorithm = "lm-fd";
    c1.ell = 16;
    c2.algorithm = "exact";
    auto s1 = MakeSlidingWindowSketch(10, WindowSpec::Sequence(250), c1);
    auto s2 = MakeSlidingWindowSketch(10, WindowSpec::Sequence(250), c2);
    EXPECT_TRUE(s1.ok() && s2.ok());
    std::vector<SlidingWindowSketch*> sketches{s1->get(), s2->get()};
    HarnessOptions options;
    options.num_checkpoints = 5;
    options.total_rows = 1200;
    options.measure_update_time = false;
    options.batch_rows = batch_rows;
    return RunMany(&stream, sketches, options);
  };
  const auto serial = run(1);
  const auto batched = run(64);
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].checkpoints.size(), batched[s].checkpoints.size());
    EXPECT_EQ(serial[s].rows_processed, batched[s].rows_processed);
    for (size_t c = 0; c < serial[s].checkpoints.size(); ++c) {
      const Checkpoint& a = serial[s].checkpoints[c];
      const Checkpoint& b = batched[s].checkpoints[c];
      EXPECT_EQ(a.row_index, b.row_index);
      EXPECT_EQ(a.window_rows, b.window_rows);
      EXPECT_EQ(a.rows_stored, b.rows_stored);
      EXPECT_EQ(a.cova_err, b.cova_err);
    }
  }
}

TEST(HarnessBatchTest, ParallelIngestMatchesSerialIngest) {
  const auto run = [](bool parallel) {
    SyntheticStream stream(SyntheticStream::Options{
        .rows = 800, .dim = 8, .signal_dim = 3, .window = 150});
    SketchConfig c1, c2;
    c1.algorithm = "lm-fd";
    c1.ell = 8;
    c2.algorithm = "swr";
    c2.ell = 16;
    auto s1 = MakeSlidingWindowSketch(8, WindowSpec::Sequence(150), c1);
    auto s2 = MakeSlidingWindowSketch(8, WindowSpec::Sequence(150), c2);
    EXPECT_TRUE(s1.ok() && s2.ok());
    std::vector<SlidingWindowSketch*> sketches{s1->get(), s2->get()};
    HarnessOptions options;
    options.num_checkpoints = 4;
    options.total_rows = 800;
    options.measure_update_time = false;
    options.batch_rows = 32;
    options.parallel_ingest = parallel;
    return RunMany(&stream, sketches, options);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].checkpoints.size(), parallel[s].checkpoints.size());
    for (size_t c = 0; c < serial[s].checkpoints.size(); ++c) {
      EXPECT_EQ(serial[s].checkpoints[c].cova_err,
                parallel[s].checkpoints[c].cova_err);
    }
  }
}

}  // namespace
}  // namespace swsketch
