// Concurrent query-serving stress test (DESIGN.md §8): one ingest thread
// streams a fig3-sized workload through a ConcurrentSketch in snapshot
// mode while four reader threads spin on Snapshot()/Query()/RowsStored().
// Readers record a bounded sample of distinct snapshots; afterwards each
// sampled snapshot must be byte-identical to a single-threaded replay of
// exactly snapshot->update_count rows. Run under the `tsan` preset
// (cmake --preset tsan) to check the publication protocol is race-free.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_sketch.h"
#include "core/logarithmic_method.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace swsketch {
namespace {

constexpr size_t kRows = 10000;   // fig3 smoke scale.
constexpr size_t kDim = 32;
constexpr uint64_t kWindow = 2000;
constexpr size_t kReaders = 4;
constexpr size_t kSamplesPerReader = 4;

Matrix MakeRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows(i, j) = rng.Gaussian();
  }
  return rows;
}

LmFd MakeInnerValue(size_t d) {
  LmFd::Options opt;
  opt.ell = 16;
  opt.block_capacity = 16.0 * static_cast<double>(d);
  return LmFd(d, WindowSpec::Sequence(kWindow), opt);
}

std::unique_ptr<SlidingWindowSketch> MakeInner(size_t d) {
  return std::make_unique<LmFd>(MakeInnerValue(d));
}

TEST(ConcurrentQueryTest, SnapshotsMatchSerialReplay) {
  const Matrix rows = MakeRows(kRows, kDim, 21);
  ConcurrentSketch sketch(MakeInner(kDim), ConcurrentSketch::Mode::kSnapshot);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_queries{0};

  // Each reader keeps the first snapshot it sees past each of its evenly
  // spaced update-count thresholds; staggering the thresholds per reader
  // spreads the samples across the whole stream.
  struct Sample {
    uint64_t update_count = 0;
    size_t rows_stored = 0;
    Matrix approximation{0, 0};
  };
  std::vector<std::vector<Sample>> samples(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto& mine = samples[r];
      uint64_t local_queries = 0;
      size_t next = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = sketch.Snapshot();
        ASSERT_NE(snap, nullptr);
        const uint64_t threshold =
            (next + 1) * (kRows / (kSamplesPerReader + 1)) + r * 131;
        if (next < kSamplesPerReader && snap->update_count >= threshold) {
          mine.push_back(Sample{snap->update_count, snap->rows_stored,
                                snap->approximation});
          ++next;
        }
        // Exercise the snapshot read paths alongside raw Snapshot().
        Matrix q = sketch.Query();
        ASSERT_EQ(q.cols(), kDim);
        (void)sketch.RowsStored();
        ++local_queries;
        // Spinning readers starve the writer on few-core CI machines;
        // yielding keeps ingest moving without changing what's exercised.
        std::this_thread::yield();
      }
      total_queries.fetch_add(local_queries);
    });
  }

  for (size_t i = 0; i < kRows; ++i) {
    sketch.Update(rows.Row(i), static_cast<double>(i));
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_GT(total_queries.load(), 0u);

  // Verify every sampled snapshot against a fresh serial replay of the
  // same prefix. update_count == k means rows [0, k) were ingested.
  size_t verified = 0;
  for (const auto& reader_samples : samples) {
    for (const Sample& s : reader_samples) {
      ASSERT_LE(s.update_count, kRows);
      LmFd replay = MakeInnerValue(kDim);
      for (uint64_t i = 0; i < s.update_count; ++i) {
        replay.Update(rows.Row(i), static_cast<double>(i));
      }
      EXPECT_EQ(replay.RowsStored(), s.rows_stored)
          << "update_count " << s.update_count;
      const Matrix expect = replay.Query();
      ASSERT_EQ(expect.rows(), s.approximation.rows())
          << "update_count " << s.update_count;
      EXPECT_EQ(expect.MaxAbsDiff(s.approximation), 0.0)
          << "update_count " << s.update_count;
      ++verified;
    }
  }
  // Every reader should have crossed all of its thresholds well before
  // ingest finished; require most of the planned samples.
  EXPECT_GE(verified, kReaders * kSamplesPerReader / 2);

  // The final published snapshot covers the entire stream.
  auto final_snap = sketch.Snapshot();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->update_count, kRows);
  LmFd full = MakeInnerValue(kDim);
  for (size_t i = 0; i < kRows; ++i) {
    full.Update(rows.Row(i), static_cast<double>(i));
  }
  EXPECT_EQ(full.Query().MaxAbsDiff(final_snap->approximation), 0.0);
}

TEST(ConcurrentQueryTest, MutexModeStressStaysConsistent) {
  // Smaller stream: mutex-mode readers recompute under the writer's lock,
  // so each query is orders of magnitude slower than a snapshot read.
  const size_t n = 2000;
  const Matrix rows = MakeRows(n, kDim, 22);
  ConcurrentSketch sketch(MakeInner(kDim), ConcurrentSketch::Mode::kMutex);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_queries{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        Matrix q = sketch.Query();
        ASSERT_EQ(q.cols(), kDim);
        ASSERT_LE(sketch.RowsStored(), n);
        ++local;
        std::this_thread::yield();
      }
      total_queries.fetch_add(local);
    });
  }
  for (size_t i = 0; i < n; ++i) {
    sketch.Update(rows.Row(i), static_cast<double>(i));
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_GT(total_queries.load(), 0u);

  LmFd full = MakeInnerValue(kDim);
  for (size_t i = 0; i < n; ++i) {
    full.Update(rows.Row(i), static_cast<double>(i));
  }
  EXPECT_EQ(full.Query().MaxAbsDiff(sketch.Query()), 0.0);
}

}  // namespace
}  // namespace swsketch
