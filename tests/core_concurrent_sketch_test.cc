// Tests for the thread-safe sketch wrapper: one ingest thread, several
// query threads, no crashes / data races (run under TSAN in CI setups),
// and results identical to a single-threaded run.
#include "core/concurrent_sketch.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::unique_ptr<SlidingWindowSketch> MakeInner() {
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = 12;
  auto r = MakeSlidingWindowSketch(8, WindowSpec::Sequence(200), config);
  EXPECT_TRUE(r.ok());
  return r.take();
}

TEST(ConcurrentSketchTest, DelegatesAndDecoratesName) {
  ConcurrentSketch snap(MakeInner());
  EXPECT_EQ(snap.dim(), 8u);
  EXPECT_EQ(snap.name(), "LM-FD+snap");
  EXPECT_EQ(snap.window().type(), WindowType::kSequence);
  EXPECT_EQ(snap.mode(), ConcurrentSketch::Mode::kSnapshot);

  ConcurrentSketch locked(MakeInner(), ConcurrentSketch::Mode::kMutex);
  EXPECT_EQ(locked.name(), "LM-FD+lock");
  EXPECT_EQ(locked.mode(), ConcurrentSketch::Mode::kMutex);
}

TEST(ConcurrentSketchTest, MatchesUnwrappedBehaviour) {
  for (auto mode : {ConcurrentSketch::Mode::kSnapshot,
                    ConcurrentSketch::Mode::kMutex}) {
    ConcurrentSketch wrapped(MakeInner(), mode);
    auto plain = MakeInner();
    Rng rng(1);
    for (int i = 0; i < 800; ++i) {
      std::vector<double> row(8);
      for (auto& v : row) v = rng.Gaussian();
      wrapped.Update(row, i);
      plain->Update(row, i);
    }
    EXPECT_TRUE(wrapped.Query().ApproxEquals(plain->Query(), 0.0));
    EXPECT_EQ(wrapped.RowsStored(), plain->RowsStored());
  }
}

TEST(ConcurrentSketchTest, SnapshotCarriesMetadata) {
  ConcurrentSketch sketch(MakeInner());
  auto empty = sketch.Snapshot();
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->update_count, 0u);
  EXPECT_EQ(empty->approximation.rows(), 0u);

  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row(8);
    for (auto& v : row) v = rng.Gaussian();
    sketch.Update(row, i);
  }
  auto snap = sketch.Snapshot();
  EXPECT_EQ(snap->update_count, 50u);
  EXPECT_EQ(snap->last_ts, 49.0);
  EXPECT_EQ(snap->rows_stored, sketch.RowsStored());
  EXPECT_TRUE(snap->approximation.ApproxEquals(sketch.Query(), 0.0));
}

TEST(ConcurrentSketchTest, ConcurrentReadersWithWriter) {
  ConcurrentSketch sketch(MakeInner());
  std::atomic<bool> done{false};
  std::atomic<size_t> queries{0};

  std::thread writer([&] {
    Rng rng(2);
    for (int i = 0; i < 3000; ++i) {
      std::vector<double> row(8);
      for (auto& v : row) v = rng.Gaussian();
      sketch.Update(row, i);
    }
    done = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      // do-while: at least one query even if the writer already finished
      // (the writer is fast; under machine load readers may start late).
      do {
        Matrix b = sketch.Query();
        EXPECT_LE(b.cols(), 8u);
        (void)sketch.RowsStored();
        ++queries;
      } while (!done);
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_GT(sketch.Query().rows(), 0u);
}

TEST(ConcurrentSketchTest, SparseUpdatesForwarded) {
  ConcurrentSketch sketch(MakeInner());
  SparseVector v(8, {2}, {3.0});
  sketch.UpdateSparse(v, 0.0);
  EXPECT_GT(sketch.RowsStored(), 0u);
}

TEST(ConcurrentSketchTest, NullInnerDies) {
  // Earlier tests in this binary spawn threads; fork-style death tests are
  // flaky in that situation, so use the threadsafe style here.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ConcurrentSketch sketch(nullptr), "");
}

}  // namespace
}  // namespace swsketch
