// Tests for the DS-FD dump-snapshot sliding-window sketch.
#include "core/dump_snapshot.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d, double scale = 1.0) {
  std::vector<double> r(d);
  for (auto& v : r) v = scale * rng->Gaussian();
  return r;
}

double WindowErr(SlidingWindowSketch* sketch, const WindowBuffer& buffer,
                 size_t d) {
  return CovarianceError(buffer.GramMatrix(d), buffer.FrobeniusNormSq(),
                         sketch->Query());
}

TEST(DsFdTest, ErrorSmallOnStationaryStream) {
  const size_t d = 10, w = 500;
  DsFd sketch(d, WindowSpec::Sequence(w), DsFd::Options{.ell = 24});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.30);
}

TEST(DsFdTest, ErrorDecreasesWithBudget) {
  const size_t d = 8, w = 400;
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2500; ++i) rows.push_back(RandomRow(&rng, d));

  auto run = [&](size_t ell, size_t k) {
    DsFd sketch(d, WindowSpec::Sequence(w),
                DsFd::Options{.ell = ell, .snapshots_per_window = k});
    WindowBuffer buffer(WindowSpec::Sequence(w));
    for (size_t i = 0; i < rows.size(); ++i) {
      sketch.Update(rows[i], static_cast<double>(i));
      buffer.Add(Row(rows[i], static_cast<double>(i)));
    }
    return WindowErr(&sketch, buffer, d);
  };
  const double coarse = run(4, 2);
  const double fine = run(32, 16);
  EXPECT_LT(fine, coarse);
}

TEST(DsFdTest, SpaceStaysBoundedWithoutLogFactor) {
  const size_t d = 6, w = 4000, ell = 16, k = 8;
  DsFd sketch(d, WindowSpec::Sequence(w),
              DsFd::Options{.ell = ell, .snapshots_per_window = k});
  Rng rng(3);
  size_t max_rows = 0;
  for (int i = 0; i < 12000; ++i) {
    sketch.Update(RandomRow(&rng, d), i);
    max_rows = std::max(max_rows, sketch.RowsStored());
    ASSERT_LE(sketch.num_frames(), 3u) << "frames must tile, not accumulate";
  }
  // ~3 frame FD buffers (at the 2x internal frame ell) plus a truncated
  // snapshot ladder: O(ell + k) rows, far below both the window and an
  // LM-style ell * log(w) budget.
  EXPECT_LT(max_rows, 6 * ell + 12 * k);
}

TEST(DsFdTest, TimeWindowWithGaps) {
  const size_t d = 4;
  DsFd sketch(d, WindowSpec::Time(50.0), DsFd::Options{.ell = 12});
  WindowBuffer buffer(WindowSpec::Time(50.0));
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.Exponential(2.0);
    auto row = RandomRow(&rng, d);
    sketch.Update(row, t);
    buffer.Add(Row(row, t));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.35);
  // Long silence: window empties.
  sketch.AdvanceTo(t + 1000.0);
  EXPECT_EQ(sketch.Query().rows(), 0u);
  EXPECT_EQ(sketch.num_frames(), 0u);
  EXPECT_EQ(sketch.num_snapshots(), 0u);
}

TEST(DsFdTest, UpdateBatchMatchesSerialInNarrowRegime) {
  // capacity = frame ell * buffer_factor < d forces AppendBatch to replay
  // the serial schedule, so batched ingest must be bit-identical to
  // per-row (frame_ell_factor pinned to 1 to keep the frame FD narrow).
  const size_t d = 9, w = 250;
  const DsFd::Options opts{
      .ell = 8, .frame_ell_factor = 1.0, .fd_buffer_factor = 1.0};
  DsFd serial(d, WindowSpec::Sequence(w), opts);
  DsFd batched(d, WindowSpec::Sequence(w), opts);
  Rng rng(6);
  Matrix block(64, d);
  std::vector<double> ts(64);
  double t = 0.0;
  for (int round = 0; round < 12; ++round) {
    for (size_t i = 0; i < block.rows(); ++i) {
      auto row = RandomRow(&rng, d);
      std::copy(row.begin(), row.end(), block.Row(i).begin());
      ts[i] = t++;
      serial.Update(row, ts[i]);
    }
    batched.UpdateBatch(block, ts);
    ASSERT_EQ(serial.num_frames(), batched.num_frames());
    ASSERT_EQ(serial.num_snapshots(), batched.num_snapshots());
  }
  ByteWriter wa, wb;
  serial.Serialize(&wa);
  batched.Serialize(&wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(DsFdTest, SerializeRoundTripIsByteStable) {
  const size_t d = 7;
  DsFd sketch(d, WindowSpec::Sequence(300),
              DsFd::Options{.ell = 10, .snapshots_per_window = 6});
  Rng rng(7);
  for (int i = 0; i < 1200; ++i) sketch.Update(RandomRow(&rng, d), i);

  ByteWriter w1;
  sketch.Serialize(&w1);
  ByteReader r1(w1.bytes());
  auto loaded = DsFd::Deserialize(&r1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  ByteWriter w2;
  loaded->Serialize(&w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
  EXPECT_EQ(loaded->num_frames(), sketch.num_frames());
  EXPECT_EQ(loaded->num_snapshots(), sketch.num_snapshots());
  EXPECT_EQ(loaded->RowsStored(), sketch.RowsStored());

  // Queries agree bit-for-bit, and the reload keeps ingesting correctly.
  Matrix qa = sketch.Query();
  Matrix qb = loaded->Query();
  ASSERT_EQ(qa.rows(), qb.rows());
  EXPECT_EQ(std::vector<double>(qa.Data().begin(), qa.Data().end()),
            std::vector<double>(qb.Data().begin(), qb.Data().end()));
  for (int i = 1200; i < 1500; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    loaded->Update(row, i);
  }
  ByteWriter w3, w4;
  sketch.Serialize(&w3);
  loaded->Serialize(&w4);
  EXPECT_EQ(w3.bytes(), w4.bytes());
}

TEST(DsFdTest, QueryCacheInvalidatesOnMutation) {
  const size_t d = 5;
  DsFd sketch(d, WindowSpec::Sequence(100), DsFd::Options{.ell = 8});
  Rng rng(8);
  for (int i = 0; i < 300; ++i) sketch.Update(RandomRow(&rng, d), i);
  const uint64_t v1 = sketch.StateVersion();
  Matrix q1 = sketch.Query();
  Matrix q2 = sketch.Query();  // Cache hit: identical object contents.
  EXPECT_EQ(sketch.StateVersion(), v1);
  EXPECT_EQ(std::vector<double>(q1.Data().begin(), q1.Data().end()),
            std::vector<double>(q2.Data().begin(), q2.Data().end()));
  sketch.Update(RandomRow(&rng, d), 300);
  EXPECT_GT(sketch.StateVersion(), v1);
}

TEST(DsFdTest, SnapshotTruncationKeepsLadderSmall) {
  // With truncation off, every snapshot holds up to ell rows; with the
  // default 0.25 quantum cutoff the ladder is much lighter and the error
  // stays comparable.
  const size_t d = 12, w = 800, ell = 16;
  Rng rng(9);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 4000; ++i) rows.push_back(RandomRow(&rng, d));

  auto run = [&](double trunc, size_t* max_rows) {
    DsFd sketch(d, WindowSpec::Sequence(w),
                DsFd::Options{.ell = ell, .snapshots_per_window = 8,
                              .snapshot_trunc = trunc});
    WindowBuffer buffer(WindowSpec::Sequence(w));
    *max_rows = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      sketch.Update(rows[i], static_cast<double>(i));
      buffer.Add(Row(rows[i], static_cast<double>(i)));
      *max_rows = std::max(*max_rows, sketch.RowsStored());
    }
    return WindowErr(&sketch, buffer, d);
  };
  size_t rows_full = 0, rows_trunc = 0;
  const double err_full = run(0.0, &rows_full);
  const double err_trunc = run(0.25, &rows_trunc);
  EXPECT_LT(rows_trunc, rows_full);
  EXPECT_LT(err_trunc, err_full + 0.10);
}

TEST(DsFdTest, NameWindowAndEmptyQuery) {
  DsFd sketch(4, WindowSpec::Time(9.0), DsFd::Options{});
  EXPECT_EQ(sketch.name(), "DS-FD");
  EXPECT_EQ(sketch.window().type(), WindowType::kTime);
  EXPECT_EQ(sketch.dim(), 4u);
  EXPECT_EQ(sketch.Query().rows(), 0u);
  EXPECT_EQ(sketch.RowsStored(), 0u);
}

}  // namespace
}  // namespace swsketch
