// Tests for the Dyadic Interval framework and DI-FD / DI-RP / DI-HASH
// (Section 7).
#include "core/dyadic_interval.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> UnitishRow(Rng* rng, size_t d) {
  // Rows with squared norm in [1, ~2]: the R ~ 1 regime DI-FD targets.
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  const double n = Norm(r);
  for (auto& v : r) v = v / n * (1.0 + 0.4 * rng->Uniform01());
  return r;
}

double WindowErr(SlidingWindowSketch* sketch, const WindowBuffer& buffer,
                 size_t d) {
  return CovarianceError(buffer.GramMatrix(d), buffer.FrobeniusNormSq(),
                         sketch->Query());
}

TEST(DiFdTest, ErrorSmallOnNormalizedStream) {
  const size_t d = 10;
  const uint64_t w = 512;
  DiFd sketch(d, DiFd::Options{.levels = 5,
                               .window_size = w,
                               .max_norm_sq = 2.0,
                               .ell_top = 24});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    auto row = UnitishRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.3);
}

TEST(DiFdTest, DyadicInvariantsHold) {
  DiFd sketch(4, DiFd::Options{.levels = 4,
                               .window_size = 256,
                               .max_norm_sq = 2.0,
                               .ell_top = 8});
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(UnitishRow(&rng, 4), i);
    if (i % 127 == 0) sketch.CheckInvariants();
  }
  sketch.CheckInvariants();
}

TEST(DiFdTest, QueryRowsNearTwiceEllTop) {
  // Section 8 setup: the top level has ~ell/2 rows so the query output has
  // roughly ell rows. With our parameterization (<= 2 blocks per level,
  // sizes halving) the output is O(ell_top) with a small constant.
  const size_t ell_top = 16;
  DiFd sketch(6, DiFd::Options{.levels = 5,
                               .window_size = 512,
                               .max_norm_sq = 2.0,
                               .ell_top = ell_top});
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) sketch.Update(UnitishRow(&rng, 6), i);
  const size_t rows = sketch.Query().rows();
  EXPECT_GT(rows, 0u);
  EXPECT_LE(rows, 8 * ell_top);
}

TEST(DiFdTest, SpaceIsSublinearInWindow) {
  const uint64_t w = 4096;
  DiFd sketch(5, DiFd::Options{.levels = 6,
                               .window_size = w,
                               .max_norm_sq = 2.0,
                               .ell_top = 16});
  Rng rng(4);
  size_t max_rows = 0;
  for (int i = 0; i < 12000; ++i) {
    sketch.Update(UnitishRow(&rng, 5), i);
    max_rows = std::max(max_rows, sketch.RowsStored());
  }
  EXPECT_LT(max_rows, w / 2);
}

TEST(DiFdTest, ErrorDecreasesWithEllTop) {
  const size_t d = 8;
  const uint64_t w = 512;
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 3000; ++i) rows.push_back(UnitishRow(&rng, d));
  auto run = [&](size_t ell_top) {
    DiFd sketch(d, DiFd::Options{.levels = 5,
                                 .window_size = w,
                                 .max_norm_sq = 2.0,
                                 .ell_top = ell_top});
    WindowBuffer buffer(WindowSpec::Sequence(w));
    for (size_t i = 0; i < rows.size(); ++i) {
      sketch.Update(rows[i], static_cast<double>(i));
      buffer.Add(Row(rows[i], static_cast<double>(i)));
    }
    return WindowErr(&sketch, buffer, d);
  };
  EXPECT_LT(run(32), run(4) + 1e-12);
}

TEST(DiFdTest, EarlyQueriesBeforeFirstBlockClose) {
  // Before any level-1 block closes, the query is served entirely by the
  // level-1 active sketch and must still be accurate (raw FD error).
  const size_t d = 4;
  DiFd sketch(d, DiFd::Options{.levels = 4,
                               .window_size = 1024,
                               .max_norm_sq = 2.0,
                               .ell_top = 16});
  WindowBuffer buffer(WindowSpec::Sequence(1024));
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    auto row = UnitishRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.5);
}

TEST(DiRpTest, ErrorReasonable) {
  const size_t d = 6;
  const uint64_t w = 512;
  DiRp sketch(d, DiRp::Options{.levels = 4,
                               .window_size = w,
                               .max_norm_sq = 2.0,
                               .ell_top = 128,
                               .seed = 7});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(8);
  for (int i = 0; i < 2500; ++i) {
    auto row = UnitishRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.6);
  EXPECT_EQ(sketch.name(), "DI-RP");
}

TEST(DiHashTest, ErrorReasonable) {
  const size_t d = 6;
  const uint64_t w = 512;
  DiHash sketch(d, DiHash::Options{.levels = 4,
                                   .window_size = w,
                                   .max_norm_sq = 2.0,
                                   .ell_top = 256,
                                   .seed = 9});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(10);
  for (int i = 0; i < 2500; ++i) {
    auto row = UnitishRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.6);
  EXPECT_EQ(sketch.name(), "DI-HASH");
}

TEST(DyadicIntervalTest, BlocksExpire) {
  DiFd sketch(3, DiFd::Options{.levels = 4,
                               .window_size = 128,
                               .max_norm_sq = 2.0,
                               .ell_top = 8});
  Rng rng(11);
  for (int i = 0; i < 600; ++i) sketch.Update(UnitishRow(&rng, 3), i);
  const size_t mid = sketch.NumBlocks();
  for (int i = 600; i < 1200; ++i) sketch.Update(UnitishRow(&rng, 3), i);
  EXPECT_LT(sketch.NumBlocks(), mid + 16);  // Bounded, not linear growth.
}

TEST(DyadicIntervalTest, SequenceWindowOnlyByConstruction) {
  DiFd sketch(3, DiFd::Options{.levels = 3, .window_size = 64});
  EXPECT_EQ(sketch.window().type(), WindowType::kSequence);
}

}  // namespace
}  // namespace swsketch
