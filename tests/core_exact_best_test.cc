// Tests for the exact window tracker and the BEST(offline) reference.
#include <cmath>

#include <gtest/gtest.h>

#include "core/best_rank_k.h"
#include "core/exact_window.h"
#include "eval/cov_err.h"
#include "linalg/jacobi_eigen.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d) {
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  return r;
}

TEST(ExactWindowTest, ZeroErrorAlways) {
  const size_t d = 5, w = 50;
  ExactWindow sketch(d, WindowSpec::Sequence(w));
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const double err = CovarianceError(buffer.GramMatrix(d),
                                     buffer.FrobeniusNormSq(), sketch.Query());
  EXPECT_NEAR(err, 0.0, 1e-10);
}

TEST(ExactWindowTest, StorageIsLinearInWindow) {
  // The operational content of Theorem 4.1: exactness costs Theta(N) rows.
  ExactWindow sketch(3, WindowSpec::Sequence(200));
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) sketch.Update(RandomRow(&rng, 3), i);
  EXPECT_EQ(sketch.RowsStored(), 200u);
}

TEST(ExactWindowTest, CovarianceMatchesBuffer) {
  ExactWindow sketch(4, WindowSpec::Sequence(30));
  Rng rng(3);
  Matrix manual(0, 4);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    auto row = RandomRow(&rng, 4);
    rows.push_back(row);
    sketch.Update(row, i);
  }
  for (int i = 70; i < 100; ++i) manual.AppendRow(rows[i]);
  EXPECT_TRUE(sketch.Covariance().ApproxEquals(manual.Gram(), 1e-10));
}

TEST(BestRankKTest, ErrorIsLambdaKPlusOne) {
  const size_t d = 8, w = 60;
  BestRankK best(d, WindowSpec::Sequence(w), 3);
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    auto row = RandomRow(&rng, d);
    best.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const Matrix gram = buffer.GramMatrix(d);
  const double frob_sq = buffer.FrobeniusNormSq();
  const double err = CovarianceError(gram, frob_sq, best.Query());
  // Optimal error = lambda_4 / frob^2 (full Jacobi reference).
  const SymmetricEigen eig = JacobiEigen(gram);
  EXPECT_NEAR(err, eig.eigenvalues[3] / frob_sq, 1e-6);
}

TEST(BestRankKTest, BestErrorHelperMatchesJacobi) {
  Rng rng(5);
  Matrix a(50, 6);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 6; ++j) a(i, j) = rng.Gaussian();
  }
  const Matrix gram = a.Gram();
  const double frob_sq = a.FrobeniusNormSq();
  const SymmetricEigen eig = JacobiEigen(gram);
  for (size_t k : {1u, 2u, 4u}) {
    EXPECT_NEAR(BestRankKError(gram, k, frob_sq),
                eig.eigenvalues[k] / frob_sq, 1e-7)
        << "k=" << k;
  }
}

TEST(BestRankKTest, KAboveRankGivesZeroError) {
  Matrix gram(4, 4);
  gram(0, 0) = 5.0;  // Rank 1.
  EXPECT_NEAR(BestRankKError(gram, 3, 5.0), 0.0, 1e-9);
  EXPECT_EQ(BestRankKError(gram, 4, 5.0), 0.0);
}

TEST(BestRankKTest, BeatsAnyKRowSketchOnSpikedData) {
  // Optimality: on data with a clear top-k subspace, BEST's error at k is
  // no larger than a same-size FD approximation's.
  const size_t d = 10, w = 100, k = 4;
  BestRankK best(d, WindowSpec::Sequence(w), k);
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    auto row = RandomRow(&rng, d);
    for (size_t j = 0; j < k; ++j) row[j] *= 6.0;  // Spiked directions.
    best.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const Matrix gram = buffer.GramMatrix(d);
  const double frob_sq = buffer.FrobeniusNormSq();
  const double best_err = CovarianceError(gram, frob_sq, best.Query());
  EXPECT_LT(best_err, 0.1);
}

}  // namespace
}  // namespace swsketch
