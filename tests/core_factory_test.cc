// Tests for the name-based sketch factory.
#include "core/factory.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

TEST(FactoryTest, BuildsEveryKnownAlgorithmOnSequenceWindows) {
  for (const std::string& algo : KnownAlgorithms()) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    auto r = MakeSlidingWindowSketch(6, WindowSpec::Sequence(100), config);
    ASSERT_TRUE(r.ok()) << algo << ": " << r.status().ToString();
    EXPECT_EQ((*r)->dim(), 6u) << algo;
  }
}

TEST(FactoryTest, DiRequiresSequenceWindow) {
  for (const char* algo : {"di-fd", "di-rp", "di-hash"}) {
    SketchConfig config;
    config.algorithm = algo;
    auto r = MakeSlidingWindowSketch(4, WindowSpec::Time(5.0), config);
    EXPECT_FALSE(r.ok()) << algo;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FactoryTest, TimeWindowAlgorithmsBuild) {
  for (const char* algo :
       {"swr", "swor", "swor-all", "lm-fd", "ds-fd", "lm-hash", "exact",
        "best"}) {
    SketchConfig config;
    config.algorithm = algo;
    auto r = MakeSlidingWindowSketch(4, WindowSpec::Time(5.0), config);
    ASSERT_TRUE(r.ok()) << algo;
  }
}

TEST(FactoryTest, UnknownAlgorithmRejected) {
  SketchConfig config;
  config.algorithm = "magic";
  auto r = MakeSlidingWindowSketch(4, WindowSpec::Sequence(10), config);
  EXPECT_FALSE(r.ok());
}

TEST(FactoryTest, InvalidDimOrEllRejected) {
  SketchConfig config;
  auto r0 = MakeSlidingWindowSketch(0, WindowSpec::Sequence(10), config);
  EXPECT_FALSE(r0.ok());
  config.ell = 0;
  auto r1 = MakeSlidingWindowSketch(4, WindowSpec::Sequence(10), config);
  EXPECT_FALSE(r1.ok());
}

TEST(FactoryTest, BuiltSketchesAreFunctional) {
  Rng rng(1);
  for (const std::string& algo : KnownAlgorithms()) {
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    config.max_norm_sq = 16.0;
    auto r = MakeSlidingWindowSketch(5, WindowSpec::Sequence(64), config);
    ASSERT_TRUE(r.ok()) << algo;
    auto& sketch = *r;
    for (int i = 0; i < 300; ++i) {
      std::vector<double> row(5);
      for (auto& v : row) v = rng.Gaussian();
      sketch->Update(row, i);
    }
    Matrix b = sketch->Query();
    EXPECT_EQ(b.cols(), 5u) << algo;
    EXPECT_GT(sketch->RowsStored(), 0u) << algo;
    EXPECT_FALSE(sketch->name().empty()) << algo;
  }
}

TEST(FactoryTest, SworAllNameDistinct) {
  SketchConfig config;
  config.algorithm = "swor-all";
  auto r = MakeSlidingWindowSketch(3, WindowSpec::Sequence(10), config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name(), "SWOR-ALL");
}

}  // namespace
}  // namespace swsketch
