// Tests for the sliding-window ||A||_F^2 tracker used by the samplers.
#include "core/frobenius_tracker.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

TEST(FrobeniusTrackerTest, ExactModeIsExact) {
  FrobeniusTracker t(FrobeniusTracker::Mode::kExact, 0.1);
  for (int i = 0; i < 100; ++i) t.Add(2.0, static_cast<double>(i));
  // Window [40, 99]: 60 entries of 2.0.
  EXPECT_DOUBLE_EQ(t.Estimate(40.0), 120.0);
  t.EvictBefore(40.0);
  EXPECT_DOUBLE_EQ(t.Estimate(40.0), 120.0);
  EXPECT_EQ(t.AuxiliarySize(), 60u);
}

TEST(FrobeniusTrackerTest, ExactModeAfterEvictOlderQueriesAreGone) {
  FrobeniusTracker t(FrobeniusTracker::Mode::kExact, 0.1);
  for (int i = 0; i < 10; ++i) t.Add(1.0, static_cast<double>(i));
  t.EvictBefore(5.0);
  EXPECT_DOUBLE_EQ(t.Estimate(5.0), 5.0);
  EXPECT_DOUBLE_EQ(t.Estimate(8.0), 2.0);
}

TEST(FrobeniusTrackerTest, EhModeWithinEps) {
  const double eps = 0.1;
  FrobeniusTracker t(FrobeniusTracker::Mode::kExponentialHistogram, eps);
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    const double v = 1.0 + 9.0 * rng.Uniform01();
    t.Add(v, static_cast<double>(i));
    values.push_back(v);
  }
  for (int start = 0; start < 3000; start += 311) {
    double exact = 0.0;
    for (int i = start; i < 3000; ++i) exact += values[i];
    const double est = t.Estimate(start);
    EXPECT_LE(est, exact * (1 + 1e-9));
    EXPECT_GE(est, exact * (1 - eps) - 1e-9);
  }
}

TEST(FrobeniusTrackerTest, EhModeUsesFarLessSpaceThanExact) {
  FrobeniusTracker eh(FrobeniusTracker::Mode::kExponentialHistogram, 0.1);
  FrobeniusTracker exact(FrobeniusTracker::Mode::kExact, 0.1);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const double v = 1.0 + rng.Uniform01();
    eh.Add(v, static_cast<double>(i));
    exact.Add(v, static_cast<double>(i));
  }
  EXPECT_LT(eh.AuxiliarySize() * 20, exact.AuxiliarySize());
}

TEST(FrobeniusTrackerTest, EmptyEstimateZero) {
  FrobeniusTracker t(FrobeniusTracker::Mode::kExponentialHistogram, 0.1);
  EXPECT_EQ(t.Estimate(0.0), 0.0);
  FrobeniusTracker e(FrobeniusTracker::Mode::kExact, 0.1);
  EXPECT_EQ(e.Estimate(0.0), 0.0);
}

}  // namespace
}  // namespace swsketch
