// Tests for the Logarithmic Method framework and LM-FD / LM-HASH
// (Section 6).
#include "core/logarithmic_method.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d, double scale = 1.0) {
  std::vector<double> r(d);
  for (auto& v : r) v = scale * rng->Gaussian();
  return r;
}

double WindowErr(SlidingWindowSketch* sketch, const WindowBuffer& buffer,
                 size_t d) {
  return CovarianceError(buffer.GramMatrix(d), buffer.FrobeniusNormSq(),
                         sketch->Query());
}

TEST(LmFdTest, ErrorSmallOnStationaryStream) {
  const size_t d = 10, w = 500;
  LmFd sketch(d, WindowSpec::Sequence(w),
              LmFd::Options{.ell = 24, .blocks_per_level = 8});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.30);
}

TEST(LmFdTest, ErrorDecreasesWithBudget) {
  const size_t d = 8, w = 400;
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2500; ++i) rows.push_back(RandomRow(&rng, d));

  auto run = [&](size_t ell, size_t b) {
    LmFd sketch(d, WindowSpec::Sequence(w),
                LmFd::Options{.ell = ell, .blocks_per_level = b});
    WindowBuffer buffer(WindowSpec::Sequence(w));
    for (size_t i = 0; i < rows.size(); ++i) {
      sketch.Update(rows[i], static_cast<double>(i));
      buffer.Add(Row(rows[i], static_cast<double>(i)));
    }
    return WindowErr(&sketch, buffer, d);
  };
  const double coarse = run(8, 4);
  const double fine = run(48, 16);
  EXPECT_LT(fine, coarse);
}

TEST(LmFdTest, SpaceIsSublinearInWindow) {
  const size_t d = 6, w = 4000;
  LmFd sketch(d, WindowSpec::Sequence(w),
              LmFd::Options{.ell = 16, .blocks_per_level = 6});
  Rng rng(3);
  size_t max_rows = 0;
  for (int i = 0; i < 12000; ++i) {
    sketch.Update(RandomRow(&rng, d), i);
    max_rows = std::max(max_rows, sketch.RowsStored());
  }
  // LM-FD space ~ ell * b * L << window size.
  EXPECT_LT(max_rows, w / 2);
  EXPECT_GT(sketch.NumLevels(), 1u);
}

TEST(LmFdTest, InvariantsHoldThroughout) {
  const size_t d = 5;
  LmFd sketch(d, WindowSpec::Sequence(600),
              LmFd::Options{.ell = 12, .blocks_per_level = 4});
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    sketch.Update(RandomRow(&rng, d), i);
    if (i % 97 == 0) sketch.CheckInvariants();
  }
  sketch.CheckInvariants();
}

TEST(LmFdTest, TimeWindowWithGaps) {
  const size_t d = 4;
  LmFd sketch(d, WindowSpec::Time(50.0),
              LmFd::Options{.ell = 12, .blocks_per_level = 4});
  WindowBuffer buffer(WindowSpec::Time(50.0));
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.Exponential(2.0);
    auto row = RandomRow(&rng, d);
    sketch.Update(row, t);
    buffer.Add(Row(row, t));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.35);
  // Long silence: window empties.
  sketch.AdvanceTo(t + 1000.0);
  EXPECT_EQ(sketch.Query().rows(), 0u);
}

TEST(LmFdTest, OversizedRowHandled) {
  // A row with squared norm far above the block capacity must flow through
  // the unmergeable-block path without breaking invariants or accuracy.
  const size_t d = 4, w = 200;
  LmFd sketch(d, WindowSpec::Sequence(w),
              LmFd::Options{.ell = 8, .blocks_per_level = 4});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(6);
  for (int i = 0; i < 1500; ++i) {
    std::vector<double> row = (i % 301 == 0)
                                  ? std::vector<double>{100.0, 0, 0, 0}
                                  : RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
    if (i % 211 == 0) sketch.CheckInvariants();
  }
  sketch.CheckInvariants();
  // The huge rows dominate the spectrum; the sketch must capture them.
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.30);
}

TEST(LmFdTest, ActiveBlockFastPathStoresRawRows) {
  // Fewer rows than one block: stored rows == arrived rows (raw), and the
  // query must be exact.
  const size_t d = 5;
  LmFd sketch(d, WindowSpec::Sequence(100),
              LmFd::Options{.ell = 32, .blocks_per_level = 4});
  WindowBuffer buffer(WindowSpec::Sequence(100));
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_EQ(sketch.RowsStored(), 5u);
  EXPECT_NEAR(WindowErr(&sketch, buffer, d), 0.0, 1e-9);
}

TEST(LmHashTest, ErrorReasonable) {
  const size_t d = 6, w = 500;
  LmHash sketch(d, WindowSpec::Sequence(w),
                LmHash::Options{.ell = 256, .blocks_per_level = 8, .seed = 5});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(8);
  for (int i = 0; i < 2500; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_LT(WindowErr(&sketch, buffer, d), 0.4);
}

TEST(LmHashTest, NameAndWindow) {
  LmHash sketch(4, WindowSpec::Time(9.0), LmHash::Options{});
  EXPECT_EQ(sketch.name(), "LM-HASH");
  EXPECT_EQ(sketch.window().type(), WindowType::kTime);
}

TEST(LogarithmicMethodTest, ExpiredBlocksAreDropped) {
  const size_t d = 3;
  LmFd sketch(d, WindowSpec::Sequence(100),
              LmFd::Options{.ell = 8, .blocks_per_level = 4});
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) sketch.Update(RandomRow(&rng, d), i);
  const size_t blocks_mid = sketch.NumBlocks();
  for (int i = 1000; i < 2000; ++i) sketch.Update(RandomRow(&rng, d), i);
  // Steady state: block count stays bounded rather than growing linearly.
  EXPECT_LT(sketch.NumBlocks(), blocks_mid + 20);
}

}  // namespace
}  // namespace swsketch
