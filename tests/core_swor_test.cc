// Tests for the SWOR sliding-window sampler (Algorithm 5.2) and SWOR-ALL.
#include "core/swor.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d, double scale = 1.0) {
  std::vector<double> r(d);
  for (auto& v : r) v = scale * rng->Gaussian();
  return r;
}

TEST(SworSketchTest, QueryReturnsAtMostEll) {
  const size_t ell = 12;
  SworSketch sketch(3, WindowSpec::Sequence(200),
                    SworSketch::Options{.ell = ell, .seed = 1});
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) sketch.Update(RandomRow(&rng, 3), i);
  EXPECT_EQ(sketch.Query().rows(), ell);
}

TEST(SworSketchTest, NoDuplicateSamples) {
  SworSketch sketch(3, WindowSpec::Sequence(100),
                    SworSketch::Options{.ell = 10, .seed = 3});
  Rng rng(4);
  for (int i = 0; i < 500; ++i) sketch.Update(RandomRow(&rng, 3), i);
  Matrix b = sketch.Query();
  std::set<std::vector<double>> uniq;
  for (size_t i = 0; i < b.rows(); ++i) {
    uniq.insert(std::vector<double>(b.Row(i).begin(), b.Row(i).end()));
  }
  EXPECT_EQ(uniq.size(), b.rows());
}

TEST(SworSketchTest, CandidateCountNearLemmaBound) {
  // Lemma 5.2: O(ell log NR) candidates.
  const size_t ell = 8;
  SworSketch sketch(3, WindowSpec::Sequence(1000),
                    SworSketch::Options{.ell = ell, .seed = 5});
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) sketch.Update(RandomRow(&rng, 3), i);
  EXPECT_LT(sketch.RowsStored(), ell * 40u);
  EXPECT_GE(sketch.RowsStored(), ell);
}

TEST(SworSketchTest, RanksAreConsistent) {
  // Every stored candidate must be top-ell in the suffix starting at its
  // own timestamp — in particular there are at most ell candidates newer
  // than any given candidate with higher priority. Indirect check: with a
  // tiny window equal to ell the query returns the full window.
  const size_t ell = 5;
  SworSketch sketch(2, WindowSpec::Sequence(ell),
                    SworSketch::Options{.ell = ell, .seed = 7});
  Rng rng(8);
  for (int i = 0; i < 100; ++i) sketch.Update(RandomRow(&rng, 2), i);
  // All 5 window rows are candidates (each is top-5 in its suffix).
  EXPECT_EQ(sketch.Query().rows(), ell);
}

TEST(SworSketchTest, SworAllUsesAllCandidates) {
  SworSketch all(3, WindowSpec::Sequence(300),
                 SworSketch::Options{.ell = 8,
                                     .query_mode = SworSketch::QueryMode::kAll,
                                     .seed = 9});
  Rng rng(10);
  for (int i = 0; i < 1500; ++i) all.Update(RandomRow(&rng, 3), i);
  EXPECT_EQ(all.Query().rows(), all.RowsStored());
  EXPECT_GT(all.RowsStored(), 8u);
  EXPECT_EQ(all.name(), "SWOR-ALL");
}

TEST(SworSketchTest, FrobeniusPreservedWithExactTracking) {
  SworSketch sketch(4, WindowSpec::Sequence(250),
                    SworSketch::Options{.ell = 12,
                                        .exact_frobenius = true,
                                        .seed = 11});
  WindowBuffer buffer(WindowSpec::Sequence(250));
  Rng rng(12);
  for (int i = 0; i < 1200; ++i) {
    auto row = RandomRow(&rng, 4);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_NEAR(sketch.Query().FrobeniusNormSq(), buffer.FrobeniusNormSq(),
              1e-9 * buffer.FrobeniusNormSq());
}

TEST(SworSketchTest, TimeWindowExpiry) {
  SworSketch sketch(2, WindowSpec::Time(5.0),
                    SworSketch::Options{.ell = 4, .seed = 13});
  std::vector<double> r{1.0, 0.0};
  sketch.Update(r, 0.0);
  sketch.Update(r, 3.0);
  sketch.Update(r, 6.0);  // ts=0 expires (window [1, 6]).
  EXPECT_EQ(sketch.RowsStored(), 2u);
  sketch.AdvanceTo(20.0);
  EXPECT_EQ(sketch.RowsStored(), 0u);
  EXPECT_EQ(sketch.Query().rows(), 0u);
}

TEST(SworSketchTest, CovarianceErrorReasonable) {
  const size_t d = 8, w = 400;
  SworSketch sketch(d, WindowSpec::Sequence(w),
                    SworSketch::Options{.ell = 256, .seed = 14});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(15);
  for (int i = 0; i < 2000; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const double err = CovarianceError(buffer.GramMatrix(d),
                                     buffer.FrobeniusNormSq(), sketch.Query());
  EXPECT_LT(err, 0.35);
}

TEST(SworSketchTest, HeavyRowIsKept) {
  // A row with overwhelming norm is (almost surely) in the top-ell sample.
  SworSketch sketch(2, WindowSpec::Sequence(100),
                    SworSketch::Options{.ell = 4, .seed = 16});
  Rng rng(17);
  for (int i = 0; i < 50; ++i) sketch.Update(RandomRow(&rng, 2, 0.01), i);
  std::vector<double> heavy{1000.0, 0.0};
  sketch.Update(heavy, 50);
  for (int i = 51; i < 100; ++i) sketch.Update(RandomRow(&rng, 2, 0.01), i);
  Matrix b = sketch.Query();
  bool found = false;
  for (size_t i = 0; i < b.rows(); ++i) {
    if (std::fabs(b(i, 0)) > 1.0 && std::fabs(b(i, 1)) < 1e-9) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace swsketch
