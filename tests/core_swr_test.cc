// Tests for the SWR sliding-window sampler (Algorithm 5.1).
#include "core/swr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d, double scale = 1.0) {
  std::vector<double> r(d);
  for (auto& v : r) v = scale * rng->Gaussian();
  return r;
}

TEST(SwrSketchTest, SamplesComeFromWindow) {
  // After many updates the sampled rows must all lie inside the window:
  // every returned row (unscaled) equals some window row direction.
  const size_t d = 4, n = 2000, w = 100;
  SwrSketch sketch(d, WindowSpec::Sequence(w),
                   SwrSketch::Options{.ell = 8, .seed = 1});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, static_cast<double>(i));
    buffer.Add(Row(row, static_cast<double>(i)));
  }
  Matrix b = sketch.Query();
  ASSERT_GT(b.rows(), 0u);
  for (size_t i = 0; i < b.rows(); ++i) {
    // Each sample is a window row times a positive scalar: check that the
    // normalized sample matches some normalized window row.
    std::vector<double> sample(b.Row(i).begin(), b.Row(i).end());
    Normalize(sample);
    bool found = false;
    for (const auto& r : buffer.rows()) {
      std::vector<double> cand = r.values;
      Normalize(cand);
      double diff = 0.0;
      for (size_t j = 0; j < d; ++j) {
        diff = std::max(diff, std::fabs(cand[j] - sample[j]));
      }
      if (diff < 1e-9) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "sample " << i << " not a window row";
  }
}

TEST(SwrSketchTest, ReturnsEllSamplesWhenWindowNonEmpty) {
  const size_t ell = 16;
  SwrSketch sketch(3, WindowSpec::Sequence(50),
                   SwrSketch::Options{.ell = ell, .seed = 3});
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    sketch.Update(RandomRow(&rng, 3), i);
  }
  EXPECT_EQ(sketch.Query().rows(), ell);
}

TEST(SwrSketchTest, CandidateCountLogarithmic) {
  // Lemma 5.1: expected candidates per chain O(log NR); with N=1000 and
  // unit-ish norms a chain should hold ~log(1000) ~ 10 candidates, far
  // below N.
  SwrSketch sketch(3, WindowSpec::Sequence(1000),
                   SwrSketch::Options{.ell = 4, .seed = 5});
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) sketch.Update(RandomRow(&rng, 3), i);
  EXPECT_LT(sketch.RowsStored(), 4 * 40u);
  EXPECT_GT(sketch.RowsStored(), 4u);
}

TEST(SwrSketchTest, SharedRowsSaveSpace) {
  SwrSketch sketch(3, WindowSpec::Sequence(500),
                   SwrSketch::Options{.ell = 32, .seed = 7});
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) sketch.Update(RandomRow(&rng, 3), i);
  // Unique rows <= total candidate entries.
  EXPECT_LE(sketch.UniqueRowsStored(), sketch.RowsStored());
}

TEST(SwrSketchTest, ExpiryOnTimeWindow) {
  SwrSketch sketch(2, WindowSpec::Time(10.0),
                   SwrSketch::Options{.ell = 4, .seed = 9});
  std::vector<double> r{1.0, 1.0};
  sketch.Update(r, 0.0);
  sketch.Update(r, 5.0);
  EXPECT_GT(sketch.Query().rows(), 0u);
  sketch.AdvanceTo(100.0);  // Everything expires.
  EXPECT_EQ(sketch.Query().rows(), 0u);
  EXPECT_EQ(sketch.RowsStored(), 0u);
}

TEST(SwrSketchTest, FrobeniusRescalingApproximatelyPreserved) {
  // sum of ||b_i||^2 over samples = ell * (||A||_F_est^2 / ell) =
  // approximately ||A||_F^2 with EH error.
  const double eh_eps = 0.05;
  SwrSketch sketch(4, WindowSpec::Sequence(300),
                   SwrSketch::Options{.ell = 10,
                                      .frobenius_eps = eh_eps,
                                      .seed = 10});
  WindowBuffer buffer(WindowSpec::Sequence(300));
  Rng rng(11);
  for (int i = 0; i < 1500; ++i) {
    auto row = RandomRow(&rng, 4);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const double exact = buffer.FrobeniusNormSq();
  const double got = sketch.Query().FrobeniusNormSq();
  EXPECT_NEAR(got, exact, 3 * eh_eps * exact);
}

TEST(SwrSketchTest, ExactFrobeniusModeIsExact) {
  SwrSketch sketch(4, WindowSpec::Sequence(200),
                   SwrSketch::Options{.ell = 10,
                                      .exact_frobenius = true,
                                      .seed = 12});
  WindowBuffer buffer(WindowSpec::Sequence(200));
  Rng rng(13);
  for (int i = 0; i < 900; ++i) {
    auto row = RandomRow(&rng, 4);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  EXPECT_NEAR(sketch.Query().FrobeniusNormSq(), buffer.FrobeniusNormSq(),
              1e-9 * buffer.FrobeniusNormSq());
}

TEST(SwrSketchTest, CovarianceErrorReasonable) {
  const size_t d = 8, w = 400;
  SwrSketch sketch(d, WindowSpec::Sequence(w),
                   SwrSketch::Options{.ell = 256, .seed = 14});
  WindowBuffer buffer(WindowSpec::Sequence(w));
  Rng rng(15);
  for (int i = 0; i < 2000; ++i) {
    auto row = RandomRow(&rng, d);
    sketch.Update(row, i);
    buffer.Add(Row(row, i));
  }
  const double err = CovarianceError(buffer.GramMatrix(d),
                                     buffer.FrobeniusNormSq(), sketch.Query());
  EXPECT_LT(err, 0.35);
}

TEST(SwrSketchTest, SkipsZeroRows) {
  SwrSketch sketch(2, WindowSpec::Sequence(10),
                   SwrSketch::Options{.ell = 2, .seed = 16});
  std::vector<double> zero{0.0, 0.0};
  sketch.Update(zero, 0.0);
  EXPECT_EQ(sketch.RowsStored(), 0u);
  EXPECT_EQ(sketch.Query().rows(), 0u);
}

TEST(SwrSketchTest, RejectsOutOfOrderTimestamps) {
  SwrSketch sketch(2, WindowSpec::Sequence(10),
                   SwrSketch::Options{.ell = 2, .seed = 17});
  std::vector<double> r{1.0, 0.0};
  sketch.Update(r, 5.0);
  EXPECT_DEATH(sketch.Update(r, 4.0), "");
}

}  // namespace
}  // namespace swsketch
