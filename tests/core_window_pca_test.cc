// Tests for sliding-window PCA and the PCA change detector (the paper's
// Section 1 application).
#include "core/window_pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/exact_window.h"
#include "core/factory.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::unique_ptr<SlidingWindowSketch> MakeLmFd(size_t d, uint64_t w,
                                              size_t ell) {
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = ell;
  auto r = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
  EXPECT_TRUE(r.ok());
  return r.take();
}

// Rows concentrated on a k-dim axis-aligned subspace plus noise.
std::vector<double> SubspaceRow(Rng* rng, size_t d, size_t first_axis,
                                size_t k) {
  std::vector<double> row(d);
  for (auto& v : row) v = 0.05 * rng->Gaussian();
  for (size_t c = 0; c < k; ++c) row[(first_axis + c) % d] += 3.0 * rng->Gaussian();
  return row;
}

TEST(WindowPcaTest, RecoversDominantSubspace) {
  const size_t d = 20, k = 3;
  WindowPca pca(MakeLmFd(d, 500, 24));
  Rng rng(1);
  for (int i = 0; i < 1500; ++i) pca.Update(SubspaceRow(&rng, d, 0, k), i);
  PcaResult r = pca.Principal(k);
  ASSERT_EQ(r.components.rows(), k);
  EXPECT_EQ(r.components.cols(), d);
  // The recovered basis captures rows from the true subspace.
  double energy = 0.0;
  for (int t = 0; t < 50; ++t) {
    energy += WindowPca::CapturedEnergy(r.components,
                                        SubspaceRow(&rng, d, 0, k));
  }
  EXPECT_GT(energy / 50.0, 0.9);
  // Eigenvalues descending, positive for the signal directions.
  EXPECT_GE(r.eigenvalues[0], r.eigenvalues[k - 1]);
  EXPECT_GT(r.eigenvalues[k - 1], 0.0);
}

TEST(WindowPcaTest, MatchesExactWindowPca) {
  // With an ExactWindow backend the PCA is the true window PCA.
  const size_t d = 10;
  auto exact = std::make_unique<ExactWindow>(d, WindowSpec::Sequence(100));
  WindowPca pca(std::move(exact));
  Rng rng(2);
  for (int i = 0; i < 400; ++i) pca.Update(SubspaceRow(&rng, d, 2, 2), i);
  PcaResult r = pca.Principal(2);
  // Dominant directions are axes 2 and 3.
  for (size_t c = 0; c < 2; ++c) {
    double on_axes = r.components(c, 2) * r.components(c, 2) +
                     r.components(c, 3) * r.components(c, 3);
    EXPECT_GT(on_axes, 0.95);
  }
}

TEST(WindowPcaTest, KClampedToDim) {
  WindowPca pca(MakeLmFd(6, 50, 8));
  std::vector<double> row(6, 1.0);
  pca.Update(row, 0);
  PcaResult r = pca.Principal(100);
  EXPECT_EQ(r.components.rows(), 6u);
}

TEST(WindowPcaTest, SubspaceAffinityBounds) {
  Matrix id2{{1, 0, 0, 0}, {0, 1, 0, 0}};
  Matrix other{{0, 0, 1, 0}, {0, 0, 0, 1}};
  EXPECT_NEAR(WindowPca::SubspaceAffinity(id2, id2), 1.0, 1e-12);
  EXPECT_NEAR(WindowPca::SubspaceAffinity(id2, other), 0.0, 1e-12);
}

TEST(WindowPcaTest, CapturedEnergyEdgeCases) {
  Matrix basis{{1, 0, 0}};
  std::vector<double> zero(3, 0.0), aligned{2, 0, 0}, orth{0, 3, 0};
  EXPECT_EQ(WindowPca::CapturedEnergy(basis, zero), 0.0);
  EXPECT_NEAR(WindowPca::CapturedEnergy(basis, aligned), 1.0, 1e-12);
  EXPECT_NEAR(WindowPca::CapturedEnergy(basis, orth), 0.0, 1e-12);
}

TEST(PcaChangeDetectorTest, FiresOnSubspaceRotation) {
  const size_t d = 24, window = 400;
  PcaChangeDetector detector(MakeLmFd(d, window, 16),
                             PcaChangeDetector::Options{.k = 3,
                                                        .threshold = 0.5});
  Rng rng(3);
  // Phase 1: subspace at axes 0..2.
  for (int i = 0; i < 800; ++i) detector.Update(SubspaceRow(&rng, d, 0, 3), i);
  detector.FreezeReference();
  ASSERT_TRUE(detector.has_reference());
  EXPECT_GT(detector.Score(), 0.9);
  EXPECT_FALSE(detector.Alarm());
  // Phase 2: rotated subspace at axes 12..14, for > one full window.
  for (int i = 800; i < 800 + 2 * static_cast<int>(window); ++i) {
    detector.Update(SubspaceRow(&rng, d, 12, 3), i);
  }
  EXPECT_LT(detector.Score(), 0.2);
  EXPECT_TRUE(detector.Alarm());
}

TEST(PcaChangeDetectorTest, StableUnderStationaryStream) {
  const size_t d = 16;
  PcaChangeDetector detector(MakeLmFd(d, 300, 16),
                             PcaChangeDetector::Options{.k = 2,
                                                        .threshold = 0.5});
  Rng rng(4);
  for (int i = 0; i < 600; ++i) detector.Update(SubspaceRow(&rng, d, 4, 2), i);
  detector.FreezeReference();
  for (int i = 600; i < 1500; ++i) {
    detector.Update(SubspaceRow(&rng, d, 4, 2), i);
  }
  EXPECT_FALSE(detector.Alarm());
}

TEST(PcaChangeDetectorTest, ScoreWithoutReferenceDies) {
  PcaChangeDetector detector(MakeLmFd(4, 10, 4),
                             PcaChangeDetector::Options{});
  std::vector<double> row(4, 1.0);
  detector.Update(row, 0);
  EXPECT_DEATH(detector.Score(), "");
}

}  // namespace
}  // namespace swsketch
