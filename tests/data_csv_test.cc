// Tests for CSV row streams and matrix CSV output.
#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace swsketch {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string WriteTempFile(const std::string& contents) {
    const std::string path = ::testing::TempDir() + "/swsketch_csv_" +
                             std::to_string(counter_++) + ".csv";
    std::ofstream f(path);
    f << contents;
    f.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
  int counter_ = 0;
};

TEST_F(CsvTest, ReadsRowsWithIndexTimestamps) {
  auto path = WriteTempFile("1,2,3\n4,5,6\n7,8,9\n");
  auto stream = CsvRowStream::Open(path);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ((*stream)->dim(), 3u);
  auto r0 = (*stream)->Next();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->values, (std::vector<double>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(r0->ts, 0.0);
  auto r1 = (*stream)->Next();
  EXPECT_DOUBLE_EQ(r1->ts, 1.0);
  auto r2 = (*stream)->Next();
  EXPECT_DOUBLE_EQ(r2->values[2], 9.0);
  EXPECT_FALSE((*stream)->Next().has_value());
}

TEST_F(CsvTest, TimestampColumnMode) {
  auto path = WriteTempFile("0.5,1,2\n1.5,3,4\n");
  CsvRowStream::Options options;
  options.first_column_is_timestamp = true;
  auto stream = CsvRowStream::Open(path, options);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->dim(), 2u);
  auto r0 = (*stream)->Next();
  EXPECT_DOUBLE_EQ(r0->ts, 0.5);
  EXPECT_EQ(r0->values, (std::vector<double>{1, 2}));
}

TEST_F(CsvTest, HeaderSkipped) {
  auto path = WriteTempFile("colA,colB\n1,2\n3,4\n");
  CsvRowStream::Options options;
  options.skip_header = true;
  auto stream = CsvRowStream::Open(path, options);
  ASSERT_TRUE(stream.ok());
  auto r0 = (*stream)->Next();
  EXPECT_EQ(r0->values, (std::vector<double>{1, 2}));
}

TEST_F(CsvTest, MissingFileReported) {
  auto stream = CsvRowStream::Open("/nonexistent/file.csv");
  EXPECT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, EmptyFileReported) {
  auto path = WriteTempFile("");
  auto stream = CsvRowStream::Open(path);
  EXPECT_FALSE(stream.ok());
}

TEST_F(CsvTest, MalformedFirstLineReported) {
  auto path = WriteTempFile("not,numbers,here\n");
  auto stream = CsvRowStream::Open(path);
  EXPECT_FALSE(stream.ok());
}

TEST_F(CsvTest, MalformedLaterLineEndsStream) {
  auto path = WriteTempFile("1,2\n3,4\nbroken,line\n5,6\n");
  auto stream = CsvRowStream::Open(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Next().has_value());
  EXPECT_TRUE((*stream)->Next().has_value());
  EXPECT_FALSE((*stream)->Next().has_value());
}

TEST_F(CsvTest, DimensionMismatchEndsStream) {
  auto path = WriteTempFile("1,2\n3,4,5\n");
  auto stream = CsvRowStream::Open(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Next().has_value());
  EXPECT_FALSE((*stream)->Next().has_value());
}

TEST_F(CsvTest, OutOfOrderTimestampsEndStream) {
  auto path = WriteTempFile("2.0,1\n1.0,2\n");
  CsvRowStream::Options options;
  options.first_column_is_timestamp = true;
  auto stream = CsvRowStream::Open(path, options);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Next().has_value());
  EXPECT_FALSE((*stream)->Next().has_value());
}

TEST_F(CsvTest, WriteAndReadBackMatrix) {
  Matrix m{{1.5, -2.25}, {0.0, 4.0}};
  const std::string path = ::testing::TempDir() + "/swsketch_out.csv";
  ASSERT_TRUE(WriteMatrixCsv(m, path).ok());
  auto stream = CsvRowStream::Open(path);
  ASSERT_TRUE(stream.ok());
  auto r0 = (*stream)->Next();
  EXPECT_EQ(r0->values, (std::vector<double>{1.5, -2.25}));
  auto r1 = (*stream)->Next();
  EXPECT_EQ(r1->values, (std::vector<double>{0.0, 4.0}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swsketch
