// Tests for the dataset generators (Tables 2 / 3 workloads).
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/bibd.h"
#include "data/pamap.h"
#include "data/rail.h"
#include "data/synthetic.h"
#include "data/wiki.h"

namespace swsketch {
namespace {

TEST(SyntheticStreamTest, ShapeAndCount) {
  SyntheticStream s(SyntheticStream::Options{.rows = 100, .dim = 20,
                                             .signal_dim = 5});
  size_t count = 0;
  while (auto row = s.Next()) {
    EXPECT_EQ(row->dim(), 20u);
    EXPECT_DOUBLE_EQ(row->ts, static_cast<double>(count));
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(SyntheticStreamTest, Deterministic) {
  SyntheticStream a(SyntheticStream::Options{.rows = 10, .dim = 8,
                                             .signal_dim = 3, .seed = 5});
  SyntheticStream b(SyntheticStream::Options{.rows = 10, .dim = 8,
                                             .signal_dim = 3, .seed = 5});
  while (auto ra = a.Next()) {
    auto rb = b.Next();
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra->values, rb->values);
  }
}

TEST(SyntheticStreamTest, SignalDominatesNoise) {
  // With zeta = 10 the signal component carries most of the energy:
  // average squared norm should be near signal_dim / 3 + d / zeta^2.
  SyntheticStream s(SyntheticStream::Options{
      .rows = 2000, .dim = 50, .signal_dim = 12, .zeta = 10.0});
  double sum = 0.0;
  size_t n = 0;
  while (auto row = s.Next()) {
    sum += row->NormSq();
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  const double expected = 12.0 / 3.0 + 50.0 / 100.0;
  EXPECT_NEAR(mean, expected, expected * 0.2);
}

TEST(SyntheticStreamTest, ModerateNormRatio) {
  SyntheticStream s(SyntheticStream::Options{.rows = 5000, .dim = 40,
                                             .signal_dim = 10});
  double lo = 1e300, hi = 0.0;
  while (auto row = s.Next()) {
    const double w = row->NormSq();
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_LT(hi / lo, 500.0);  // Table 2: R ~ 8 (we allow sampling slack).
}

TEST(BibdStreamTest, ConstantRowWeight) {
  BibdStream s(BibdStream::Options{.rows = 200, .dim = 50, .row_weight = 7});
  while (auto row = s.Next()) {
    size_t ones = 0;
    for (double v : row->values) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      ones += v == 1.0;
    }
    EXPECT_EQ(ones, 7u);
    EXPECT_DOUBLE_EQ(row->NormSq(), 7.0);  // R = 1 regime.
  }
}

TEST(BibdStreamTest, InfoMatchesBibd228) {
  BibdStream s(BibdStream::Options{});
  DatasetInfo info = s.info();
  EXPECT_EQ(info.dim, 231u);
  EXPECT_DOUBLE_EQ(info.norm_ratio_hint, 1.0);
  EXPECT_DOUBLE_EQ(info.max_norm_sq, 28.0);
}

TEST(PamapStreamTest, HeavySkewInNorms) {
  PamapStream s(PamapStream::Options{.rows = 60000, .window = 5000});
  double lo = 1e300, hi = 0.0;
  while (auto row = s.Next()) {
    const double w = row->NormSq();
    EXPECT_GE(w, 1.0 - 1e-9);  // Lower bound enforced.
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GT(hi / lo, 1e3);  // Table 2: R ~ 9e4; require heavy skew.
}

TEST(PamapStreamTest, SkewedWindowHasFewHugeRows) {
  PamapStream s(PamapStream::Options{.rows = 40000, .window = 4000});
  const size_t begin = s.skewed_window_begin();
  ASSERT_GT(begin, 0u);
  size_t idx = 0, huge = 0, tiny = 0;
  while (auto row = s.Next()) {
    if (idx >= begin && idx < begin + 4000) {
      const double w = row->NormSq();
      if (w > 1e4) {
        ++huge;
      } else if (w < 100.0) {
        ++tiny;
      }
    }
    ++idx;
  }
  EXPECT_GT(huge, 5u);
  EXPECT_LT(huge, 200u);
  EXPECT_GT(tiny, 3000u);
}

TEST(WikiStreamTest, AcceleratingArrivals) {
  WikiStream s(WikiStream::Options{.rows = 10000, .dim = 100, .nnz_min = 10,
                                   .nnz_max = 40, .span = 1000.0});
  std::vector<double> ts;
  while (auto row = s.Next()) ts.push_back(row->ts);
  ASSERT_EQ(ts.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  // Rows in the first half of TIME << rows in the second half.
  const double mid = 500.0;
  const size_t early = std::count_if(ts.begin(), ts.end(),
                                     [&](double t) { return t < mid; });
  EXPECT_LT(early, ts.size() / 4);
}

TEST(WikiStreamTest, SparseNonNegativeRows) {
  WikiStream s(WikiStream::Options{.rows = 50, .dim = 200, .nnz_min = 10,
                                   .nnz_max = 30});
  while (auto row = s.Next()) {
    size_t nnz = 0;
    for (double v : row->values) {
      EXPECT_GE(v, 0.0);
      nnz += v != 0.0;
    }
    EXPECT_GE(nnz, 10u);
    EXPECT_LE(nnz, 30u);
  }
}

TEST(RailStreamTest, PoissonArrivalsAndIntegerCosts) {
  RailStream s(RailStream::Options{.rows = 5000, .dim = 100,
                                   .mean_interarrival = 0.5});
  double prev = 0.0, total_gap = 0.0;
  size_t n = 0;
  while (auto row = s.Next()) {
    EXPECT_GT(row->ts, prev);
    total_gap += row->ts - prev;
    prev = row->ts;
    for (double v : row->values) {
      EXPECT_TRUE(v == 0.0 || v == std::floor(v));
      EXPECT_GE(v, 0.0);
    }
    ++n;
  }
  EXPECT_NEAR(total_gap / static_cast<double>(n), 0.5, 0.05);
}

TEST(RailStreamTest, ModestNormRatio) {
  RailStream s(RailStream::Options{.rows = 20000, .dim = 100});
  double lo = 1e300, hi = 0.0;
  while (auto row = s.Next()) {
    const double w = row->NormSq();
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_LT(hi / lo, 60.0);  // Table 3: R ~ 12.
  EXPECT_GE(lo, 1.0);
}

TEST(AllStreams, InfoIsConsistent) {
  SyntheticStream syn(SyntheticStream::Options{.rows = 10, .dim = 20,
                                               .signal_dim = 4});
  BibdStream bibd(BibdStream::Options{.rows = 10});
  PamapStream pamap(PamapStream::Options{.rows = 10});
  WikiStream wiki(WikiStream::Options{.rows = 10});
  RailStream rail(RailStream::Options{.rows = 10});
  for (DatasetStream* s : std::vector<DatasetStream*>{
           &syn, &bibd, &pamap, &wiki, &rail}) {
    DatasetInfo info = s->info();
    EXPECT_EQ(info.dim, s->dim());
    EXPECT_EQ(info.name, s->name());
    EXPECT_GT(info.max_norm_sq, 0.0);
  }
  // Window types match Tables 2 / 3.
  EXPECT_EQ(syn.info().window.type(), WindowType::kSequence);
  EXPECT_EQ(wiki.info().window.type(), WindowType::kTime);
  EXPECT_EQ(rail.info().window.type(), WindowType::kTime);
}

}  // namespace
}  // namespace swsketch
