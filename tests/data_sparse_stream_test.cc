// Tests for the sparse-native generator paths: NextSparse must produce
// the same stream as Next (same RNG consumption), and the base-class
// fallback must densify correctly.
#include <gtest/gtest.h>

#include "data/rail.h"
#include "data/synthetic.h"
#include "data/wiki.h"

namespace swsketch {
namespace {

TEST(SparseStreamTest, WikiSparseMatchesDense) {
  WikiStream dense(WikiStream::Options{.rows = 300, .dim = 120, .nnz_min = 10,
                                       .nnz_max = 30, .seed = 3});
  WikiStream sparse(WikiStream::Options{.rows = 300, .dim = 120, .nnz_min = 10,
                                        .nnz_max = 30, .seed = 3});
  while (true) {
    auto d = dense.Next();
    auto s = sparse.NextSparse();
    ASSERT_EQ(d.has_value(), s.has_value());
    if (!d.has_value()) break;
    EXPECT_EQ(d->values, s->first.ToDense());
    EXPECT_DOUBLE_EQ(d->ts, s->second);
  }
}

TEST(SparseStreamTest, RailSparseMatchesDense) {
  RailStream dense(RailStream::Options{.rows = 300, .dim = 90, .seed = 4});
  RailStream sparse(RailStream::Options{.rows = 300, .dim = 90, .seed = 4});
  while (true) {
    auto d = dense.Next();
    auto s = sparse.NextSparse();
    ASSERT_EQ(d.has_value(), s.has_value());
    if (!d.has_value()) break;
    EXPECT_EQ(d->values, s->first.ToDense());
    EXPECT_DOUBLE_EQ(d->ts, s->second);
  }
}

TEST(SparseStreamTest, RailSparseNnzInRange) {
  RailStream s(RailStream::Options{.rows = 200, .dim = 80, .nnz_min = 4,
                                   .nnz_max = 14});
  while (auto row = s.NextSparse()) {
    EXPECT_GE(row->first.nnz(), 4u);
    EXPECT_LE(row->first.nnz(), 14u);
    EXPECT_EQ(row->first.dim(), 80u);
  }
}

TEST(SparseStreamTest, DefaultFallbackDensifies) {
  // SyntheticStream does not override NextSparse: the base-class fallback
  // must gather nonzeros from Next().
  SyntheticStream a(SyntheticStream::Options{.rows = 5, .dim = 12,
                                             .signal_dim = 3, .seed = 7});
  SyntheticStream b(SyntheticStream::Options{.rows = 5, .dim = 12,
                                             .signal_dim = 3, .seed = 7});
  while (true) {
    auto d = a.Next();
    auto s = b.NextSparse();
    ASSERT_EQ(d.has_value(), s.has_value());
    if (!d.has_value()) break;
    const auto roundtrip = s->first.ToDense();
    for (size_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(d->values[j], roundtrip[j]);
    }
  }
}

}  // namespace
}  // namespace swsketch
