// Tests for the distributed sketching extension (Section 9 future work):
// mergeable FD across workers, stacked window queries, and max-stable
// distributed SWR.
#include "distributed/distributed.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "eval/cov_err.h"
#include "stream/window_buffer.h"
#include "util/random.h"

namespace swsketch {
namespace {

std::vector<double> RandomRow(Rng* rng, size_t d) {
  std::vector<double> r(d);
  for (auto& v : r) v = rng->Gaussian();
  return r;
}

TEST(DistributedFdTest, MergedSketchCoversUnion) {
  const size_t d = 14, ell = 12, workers = 4;
  Rng rng(1);
  std::vector<FrequentDirections> fds;
  for (size_t w = 0; w < workers; ++w) fds.emplace_back(d, ell);
  Matrix all(0, d);
  for (int i = 0; i < 600; ++i) {
    auto row = RandomRow(&rng, d);
    fds[i % workers].Append(row, i);
    all.AppendRow(row);
  }
  std::vector<const FrequentDirections*> ptrs;
  for (auto& f : fds) ptrs.push_back(&f);
  FrequentDirections merged = MergeFrequentDirections(ptrs);
  EXPECT_LE(merged.RowsStored(), ell);
  // Error within the merged certificate and the paper-style bound.
  const double err = CovarianceErrorDense(all, merged.Approximation());
  EXPECT_LE(err * all.FrobeniusNormSq(), merged.shed_mass() * (1 + 1e-9));
  EXPECT_LE(err, 4.0 / static_cast<double>(ell) + 1e-9);
}

TEST(DistributedFdTest, SingleWorkerIsIdentity) {
  Rng rng(2);
  FrequentDirections fd(8, 6);
  for (int i = 0; i < 100; ++i) fd.Append(RandomRow(&rng, 8), i);
  const FrequentDirections* ptr = &fd;
  FrequentDirections merged =
      MergeFrequentDirections(std::span<const FrequentDirections* const>(
          &ptr, 1));
  EXPECT_TRUE(merged.Approximation().ApproxEquals(fd.Approximation(), 1e-12));
}

TEST(MergeWindowQueriesTest, StackedQueriesApproximateUnionWindow) {
  // Two workers, each with an LM-FD over its sub-stream; stacking their B's
  // approximates the union window by decomposability.
  const size_t d = 10;
  const uint64_t w = 300;
  SketchConfig config;
  config.algorithm = "lm-fd";
  config.ell = 16;
  auto s1 = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
  auto s2 = MakeSlidingWindowSketch(d, WindowSpec::Sequence(w), config);
  ASSERT_TRUE(s1.ok() && s2.ok());
  WindowBuffer union_buffer(WindowSpec::Sequence(2 * w));
  Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    auto row = RandomRow(&rng, d);
    ((i % 2) ? *s1 : *s2)->Update(row, static_cast<double>(i / 2));
    union_buffer.Add(Row(row, i));
  }
  std::vector<SlidingWindowSketch*> ptrs{s1->get(), s2->get()};
  const Matrix b = MergeWindowQueries(ptrs);
  const double err = CovarianceError(union_buffer.GramMatrix(d),
                                     union_buffer.FrobeniusNormSq(), b);
  EXPECT_LT(err, 0.4);
}

TEST(DistributedSwrTest, QueryMatchesStructure) {
  const size_t d = 6, ell = 8, workers = 3;
  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < workers; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Sequence(200),
        SwrSketch::Options{.ell = ell, .exact_frobenius = true,
                           .seed = 100 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);
  Rng rng(4);
  for (int i = 0; i < 900; ++i) {
    coordinator.Update(i % workers, RandomRow(&rng, d), i / workers);
  }
  Matrix b = coordinator.Query();
  EXPECT_EQ(b.rows(), ell);  // One union sample per slot.
  EXPECT_GT(coordinator.RowsStored(), ell);
  EXPECT_EQ(coordinator.num_workers(), workers);
}

TEST(DistributedSwrTest, FrobeniusOfUnionPreserved) {
  // With exact trackers, sum over sampled ||b_i||^2 = union ||A||_F^2.
  const size_t d = 5, ell = 10;
  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < 2; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Sequence(100),
        SwrSketch::Options{.ell = ell, .exact_frobenius = true,
                           .seed = 7 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);
  WindowBuffer b1(WindowSpec::Sequence(100)), b2(WindowSpec::Sequence(100));
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    auto row = RandomRow(&rng, d);
    coordinator.Update(i % 2, row, i / 2);
    ((i % 2) ? b2 : b1).Add(Row(row, i / 2));
  }
  const double union_frob = b1.FrobeniusNormSq() + b2.FrobeniusNormSq();
  EXPECT_NEAR(coordinator.Query().FrobeniusNormSq(), union_frob,
              1e-9 * union_frob);
}

TEST(DistributedSwrTest, HeavyWorkerDominatesSampling) {
  // One worker's sub-stream carries almost all mass: union samples should
  // almost always come from it (coordinate signature check).
  const size_t d = 4, ell = 16;
  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < 2; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Sequence(100),
        SwrSketch::Options{.ell = ell, .exact_frobenius = true,
                           .seed = 20 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> light{0.01 * rng.Gaussian(), 0, 0, 0};
    std::vector<double> heavy{0, 0, 0, 10.0 + rng.Gaussian()};
    if (NormSq(light) == 0.0) light[0] = 0.01;
    coordinator.Update(0, light, i);
    coordinator.Update(1, heavy, i);
  }
  Matrix b = coordinator.Query();
  size_t from_heavy = 0;
  for (size_t i = 0; i < b.rows(); ++i) {
    if (b(i, 3) != 0.0) ++from_heavy;
  }
  EXPECT_GE(from_heavy, b.rows() - 1);
}

TEST(DistributedSwrTest, UpdateRejectsOutOfRangeWorkerIndex) {
  // Routing indices are caller data, not a trusted invariant; an
  // out-of-range worker must trip the bounds check, not scribble memory.
  SwrSketch a(4, WindowSpec::Sequence(10), SwrSketch::Options{.ell = 4});
  std::vector<SwrSketch*> ptrs{&a};
  DistributedSwr coordinator(ptrs);
  std::vector<double> row{1.0, 0.0, 0.0, 0.0};
  EXPECT_DEATH(coordinator.Update(1, row, 0.0), "");
}

TEST(DistributedSwrTest, TimestampFoldingServesCurrentWindow) {
  // Update folds every ts into now_, so Query() serves the *current*
  // union window without an explicit AdvanceTo heartbeat: rows a stale
  // worker contributed before the window slid past them must be expired
  // at query time even though that worker saw no further updates.
  const size_t d = 4, ell = 8;
  std::vector<std::unique_ptr<SwrSketch>> owned;
  std::vector<SwrSketch*> ptrs;
  for (size_t w = 0; w < 2; ++w) {
    owned.push_back(std::make_unique<SwrSketch>(
        d, WindowSpec::Time(10.0),
        SwrSketch::Options{.ell = ell, .exact_frobenius = true,
                           .seed = 40 + w}));
    ptrs.push_back(owned.back().get());
  }
  DistributedSwr coordinator(ptrs);
  // Worker 0: coordinate-0 rows at early timestamps only.
  for (int i = 0; i < 20; ++i) {
    coordinator.Update(0, std::vector<double>{1.0, 0, 0, 0}, 0.1 * i);
  }
  // Worker 1: coordinate-3 rows far past worker 0's window.
  for (int i = 0; i < 20; ++i) {
    coordinator.Update(1, std::vector<double>{0, 0, 0, 1.0}, 100.0 + 0.1 * i);
  }
  const Matrix b = coordinator.Query();
  ASSERT_GT(b.rows(), 0u);
  for (size_t i = 0; i < b.rows(); ++i) {
    EXPECT_EQ(b(i, 0), 0.0);  // No expired worker-0 row survives.
    EXPECT_NE(b(i, 3), 0.0);
  }
}

TEST(DistributedSwrTest, MismatchedWorkersRejected) {
  SwrSketch a(4, WindowSpec::Sequence(10), SwrSketch::Options{.ell = 4});
  SwrSketch b(4, WindowSpec::Sequence(10), SwrSketch::Options{.ell = 8});
  std::vector<SwrSketch*> ptrs{&a, &b};
  EXPECT_DEATH(DistributedSwr coordinator(ptrs), "");
}

}  // namespace
}  // namespace swsketch
