// DS-FD's documented weak spot, pinned at the test layer (EXPERIMENTS.md,
// fig5 PAMAP): with row-norm ratio R ~ 1e5 a single heavy row rivals the
// snapshot-ladder quantum Theta = F_hat / k, so the boundary leak
// dominates and DS-FD's error can run a small multiple of LM-FD's (which
// carries an R-free bound). This file pins
//  - the error ENVELOPE on a synthetic heavy-tail stream: DS-FD stays
//    within a fixed multiple of LM-FD at matched ell and within an
//    absolute relative-error cap (so the leak can get no worse than the
//    documented regime without failing here), and
//  - the detector: ds_fd.heavy_tail_warnings fires exactly once per
//    instance when the observed squared-norm ratio crosses
//    DsFd::kHeavyTailNormSqRatio, and never on benign streams.
#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dump_snapshot.h"
#include "core/factory.h"
#include "eval/cov_err.h"
#include "linalg/matrix.h"
#include "stream/window_buffer.h"
#include "util/metrics.h"
#include "util/random.h"

namespace swsketch {
namespace {

uint64_t Warnings() {
  return MetricsRegistry::Global()
      .GetCounter("ds_fd.heavy_tail_warnings")
      ->Value();
}

// Heavy-tailed row: unit-scale Gaussian baseline with rare rows scaled to
// norm ratio R ~ 1e5 (squared ratio ~1e10, past the 1e8 threshold).
void FillRow(Rng* rng, std::span<double> row, bool heavy) {
  const double scale = heavy ? 1e5 : 1.0;
  for (auto& v : row) v = scale * rng->Gaussian();
}

TEST(DsFdHeavyTailTest, WarningFiresOncePerInstanceOnHeavyStream) {
  const size_t d = 6;
  DsFd ds(d, WindowSpec::Sequence(50), DsFd::Options{.ell = 8});
  Rng rng(11);
  std::vector<double> row(d);
  const uint64_t w0 = Warnings();
  for (size_t i = 0; i < 40; ++i) {
    FillRow(&rng, row, /*heavy=*/false);
    ds.Update(row, static_cast<double>(i + 1));
  }
  EXPECT_EQ(Warnings(), w0) << "benign prefix must not warn";
  FillRow(&rng, row, /*heavy=*/true);
  ds.Update(row, 41.0);
  EXPECT_EQ(Warnings(), w0 + 1) << "first heavy row must warn";
  // More rows — heavy or not — never re-fire the per-instance latch.
  for (size_t i = 0; i < 40; ++i) {
    FillRow(&rng, row, /*heavy=*/i % 7 == 0);
    ds.Update(row, static_cast<double>(42 + i));
  }
  EXPECT_EQ(Warnings(), w0 + 1);

  // A second instance has its own latch (the ratio is per-lifetime).
  DsFd ds2(d, WindowSpec::Sequence(50), DsFd::Options{.ell = 8});
  Rng rng2(12);
  FillRow(&rng2, row, false);
  ds2.Update(row, 1.0);
  FillRow(&rng2, row, true);
  ds2.Update(row, 2.0);
  EXPECT_EQ(Warnings(), w0 + 2);
}

TEST(DsFdHeavyTailTest, WarningFiresThroughBatchIngest) {
  const size_t d = 5;
  DsFd ds(d, WindowSpec::Sequence(64), DsFd::Options{.ell = 8});
  Rng rng(13);
  const uint64_t w0 = Warnings();
  Matrix block(30, d);
  std::vector<double> ts(30);
  for (size_t i = 0; i < 30; ++i) {
    FillRow(&rng, block.Row(i), /*heavy=*/i == 20);
    ts[i] = static_cast<double>(i + 1);
  }
  ds.UpdateBatch(block, ts);
  EXPECT_EQ(Warnings(), w0 + 1);
}

TEST(DsFdHeavyTailTest, BenignStreamNeverWarns) {
  const size_t d = 6;
  DsFd ds(d, WindowSpec::Sequence(100), DsFd::Options{.ell = 8});
  Rng rng(17);
  std::vector<double> row(d);
  const uint64_t w0 = Warnings();
  for (size_t i = 0; i < 400; ++i) {
    // Moderate spread (scales 0.1x..30x, squared ratio <= ~1e5): well
    // under the 1e8 squared-norm threshold.
    const double scale =
        rng.Bernoulli(0.05) ? 30.0 : (rng.Bernoulli(0.1) ? 0.1 : 1.0);
    for (auto& v : row) v = scale * rng.Gaussian();
    ds.Update(row, static_cast<double>(i + 1));
  }
  EXPECT_EQ(Warnings(), w0);
}

TEST(DsFdHeavyTailTest, BoundaryLeakStaysInsideDocumentedEnvelope) {
  // Synthetic PAMAP-shaped stream: R ~ 1e5 heavy rows every ~40 arrivals.
  // Checkpoints land while heavy rows are mid-window AND just after one
  // expired (the boundary-leak moment). The envelope pins the documented
  // regime — DS-FD within a fixed multiple of LM-FD's error at matched
  // ell, and within an absolute cap — so a future ladder regression that
  // widens the leak fails here, not in a nightly bench.
  const size_t d = 8;
  const size_t window_len = 64;
  const size_t ell = 16;
  const WindowSpec window = WindowSpec::Sequence(window_len);

  SketchConfig ds_config;
  ds_config.algorithm = "ds-fd";
  ds_config.ell = ell;
  SketchConfig lm_config;
  lm_config.algorithm = "lm-fd";
  lm_config.ell = ell;
  // Heavy rows make aggregate mass huge; size LM level-1 blocks by the
  // baseline scale so its structure stays healthy (factory.h's guidance).
  lm_config.lm_block_capacity = static_cast<double>(ell * d);

  auto ds = MakeSlidingWindowSketch(d, window, ds_config);
  auto lm = MakeSlidingWindowSketch(d, window, lm_config);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(lm.ok());
  WindowBuffer buffer(window);

  Rng rng(19);
  std::vector<double> row(d);
  double max_ds_err = 0.0, max_lm_err = 0.0;
  for (size_t i = 0; i < 600; ++i) {
    FillRow(&rng, row, /*heavy=*/i % 40 == 17);
    const double t = static_cast<double>(i + 1);
    (*ds)->Update(row, t);
    (*lm)->Update(row, t);
    buffer.Add(Row(row, t));
    if (i < 2 * window_len || i % 13 != 0) continue;
    const Matrix gram = buffer.GramMatrix(d);
    const double frob_sq = buffer.FrobeniusNormSq();
    const double ds_err = CovarianceError(gram, frob_sq, (*ds)->Query());
    const double lm_err = CovarianceError(gram, frob_sq, (*lm)->Query());
    max_ds_err = std::max(max_ds_err, ds_err);
    max_lm_err = std::max(max_lm_err, lm_err);
  }
  // Documented regime (EXPERIMENTS.md fig5): DS-FD errs 2-17x LM on
  // heavy tails. Envelope at 25x + an absolute cap: crossing either means
  // the boundary leak got qualitatively worse than documented.
  EXPECT_GT(max_lm_err, 0.0);
  EXPECT_LE(max_ds_err, 25.0 * max_lm_err);
  EXPECT_LE(max_ds_err, 1.0);
}

}  // namespace
}  // namespace swsketch
