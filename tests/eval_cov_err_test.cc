// Tests for the covariance error metric.
#include "eval/cov_err.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(CovErrTest, IdenticalMatricesZeroError) {
  Matrix a = RandomMatrix(30, 6, 1);
  EXPECT_NEAR(CovarianceErrorDense(a, a), 0.0, 1e-12);
}

TEST(CovErrTest, EmptyApproximationGivesSpectralOverFrobenius) {
  // B = 0 => error = ||A^T A|| / ||A||_F^2 = sigma_1^2 / sum sigma_i^2.
  Matrix a(2, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  const double err = CovarianceErrorDense(a, Matrix());
  EXPECT_NEAR(err, 16.0 / 25.0, 1e-10);
}

TEST(CovErrTest, RowPermutationInvariant) {
  Matrix a = RandomMatrix(20, 5, 2);
  Matrix shuffled(0, 5);
  for (size_t i = a.rows(); i-- > 0;) shuffled.AppendRow(a.Row(i));
  EXPECT_NEAR(CovarianceErrorDense(a, shuffled), 0.0, 1e-12);
}

TEST(CovErrTest, ScalingBMatters) {
  Matrix a = RandomMatrix(20, 5, 3);
  Matrix b = a;
  b.Scale(1.1);  // B^T B = 1.21 A^T A.
  const double err = CovarianceErrorDense(a, b);
  // ||0.21 A^T A|| / ||A||_F^2 = 0.21 sigma1^2/frob^2 > 0.
  EXPECT_GT(err, 0.0);
}

TEST(CovErrTest, MatchesHandComputedExample) {
  // A = I_2, B = [sqrt(2), 0]: A^T A - B^T B = diag(-1, 1), norm 1,
  // frob(A)^2 = 2 => err = 0.5.
  Matrix a = Matrix::Identity(2);
  Matrix b(1, 2);
  b(0, 0) = std::sqrt(2.0);
  EXPECT_NEAR(CovarianceErrorDense(a, b), 0.5, 1e-10);
}

TEST(CovErrTest, GramFormMatchesDenseForm) {
  Matrix a = RandomMatrix(40, 7, 4);
  Matrix b = RandomMatrix(10, 7, 5);
  const double dense = CovarianceErrorDense(a, b);
  const double gram = CovarianceError(a.Gram(), a.FrobeniusNormSq(), b);
  EXPECT_NEAR(dense, gram, 1e-9 * std::max(1.0, dense));
}

TEST(CovErrTest, RejectsNonPositiveFrobenius) {
  EXPECT_DEATH(CovarianceError(Matrix(2, 2), 0.0, Matrix()), "");
}

}  // namespace
}  // namespace swsketch
