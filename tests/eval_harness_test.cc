// Tests for the experiment harness.
#include "eval/harness.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/exact_window.h"
#include "core/factory.h"
#include "data/synthetic.h"

namespace swsketch {
namespace {

TEST(HarnessTest, ExactSketchGetsZeroError) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 2000, .dim = 12, .signal_dim = 4, .window = 300});
  ExactWindow sketch(12, WindowSpec::Sequence(300));
  HarnessOptions options;
  options.num_checkpoints = 5;
  options.total_rows = 2000;
  HarnessResult r = RunSketch(&stream, &sketch, options);
  EXPECT_GT(r.checkpoints.size(), 0u);
  EXPECT_NEAR(r.avg_err, 0.0, 1e-9);
  EXPECT_NEAR(r.max_err, 0.0, 1e-9);
  EXPECT_EQ(r.rows_processed, 2000u);
  EXPECT_EQ(r.max_rows_stored, 300u);
}

TEST(HarnessTest, ImmatureCheckpointsSkipped) {
  // Window as large as the stream: no checkpoint ever matures except the
  // trailing ones once the buffer fills... here it never fills, so zero
  // checkpoints are recorded but the run still completes.
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 500, .dim = 6, .signal_dim = 3, .window = 10000});
  ExactWindow sketch(6, WindowSpec::Sequence(10000));
  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = 500;
  HarnessResult r = RunSketch(&stream, &sketch, options);
  EXPECT_EQ(r.checkpoints.size(), 0u);
  EXPECT_EQ(r.rows_processed, 500u);
}

TEST(HarnessTest, RunManySharesWindowEvaluation) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 1500, .dim = 10, .signal_dim = 4, .window = 250});
  SketchConfig c1, c2;
  c1.algorithm = "lm-fd";
  c1.ell = 16;
  c2.algorithm = "swr";
  c2.ell = 32;
  auto s1 = MakeSlidingWindowSketch(10, WindowSpec::Sequence(250), c1);
  auto s2 = MakeSlidingWindowSketch(10, WindowSpec::Sequence(250), c2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  std::vector<SlidingWindowSketch*> sketches{s1->get(), s2->get()};
  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = 1500;
  auto results = RunMany(&stream, sketches, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].checkpoints.size(), results[1].checkpoints.size());
  for (const auto& r : results) {
    EXPECT_GT(r.checkpoints.size(), 0u);
    EXPECT_LT(r.avg_err, 1.0);
    EXPECT_GT(r.max_rows_stored, 0u);
  }
}

TEST(HarnessTest, BestReferenceComputedWhenRequested) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 1200, .dim = 10, .signal_dim = 3, .window = 200});
  ExactWindow sketch(10, WindowSpec::Sequence(200));
  HarnessOptions options;
  options.num_checkpoints = 3;
  options.total_rows = 1200;
  options.best_k = 3;
  HarnessResult r = RunSketch(&stream, &sketch, options);
  ASSERT_GT(r.checkpoints.size(), 0u);
  for (const auto& c : r.checkpoints) {
    EXPECT_GT(c.best_err, 0.0);
    EXPECT_LT(c.best_err, 1.0);
  }
  EXPECT_GT(r.avg_best_err, 0.0);
  EXPECT_GE(r.max_best_err, r.avg_best_err);
}

TEST(HarnessTest, UpdateTimeMeasured) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 800, .dim = 8, .signal_dim = 3, .window = 100});
  ExactWindow sketch(8, WindowSpec::Sequence(100));
  HarnessOptions options;
  options.num_checkpoints = 2;
  options.total_rows = 800;
  options.measure_update_time = true;
  HarnessResult r = RunSketch(&stream, &sketch, options);
  EXPECT_GT(r.avg_update_ns, 0.0);
}

TEST(HarnessTest, ParallelCheckpointsBitIdenticalToSerial) {
  // The deterministic (sampling-free) sketches — LM-FD, DI-FD, ExactWindow
  // — must produce bit-identical checkpoints whether checkpoint evaluation
  // runs on the pool or inline: every task reads only its own sketch and
  // the Lanczos evaluation is seeded, not time- or thread-dependent.
  const auto run = [](bool parallel) {
    SyntheticStream stream(SyntheticStream::Options{
        .rows = 1600, .dim = 12, .signal_dim = 4, .window = 250});
    SketchConfig lm, di, exact;
    lm.algorithm = "lm-fd";
    lm.ell = 12;
    di.algorithm = "di-fd";
    di.ell = 12;
    exact.algorithm = "exact";
    auto s1 = MakeSlidingWindowSketch(12, WindowSpec::Sequence(250), lm);
    auto s2 = MakeSlidingWindowSketch(12, WindowSpec::Sequence(250), di);
    auto s3 = MakeSlidingWindowSketch(12, WindowSpec::Sequence(250), exact);
    EXPECT_TRUE(s1.ok() && s2.ok() && s3.ok());
    std::vector<SlidingWindowSketch*> sketches{s1->get(), s2->get(),
                                               s3->get()};
    HarnessOptions options;
    options.num_checkpoints = 5;
    options.total_rows = 1600;
    options.measure_update_time = false;
    options.best_k = 4;
    options.parallel_checkpoints = parallel;
    return RunMany(&stream, sketches, options);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].checkpoints.size(), parallel[s].checkpoints.size());
    for (size_t c = 0; c < serial[s].checkpoints.size(); ++c) {
      // Bit-exact comparisons on purpose: parallelism must not perturb a
      // single ulp.
      EXPECT_EQ(serial[s].checkpoints[c].cova_err,
                parallel[s].checkpoints[c].cova_err);
      EXPECT_EQ(serial[s].checkpoints[c].best_err,
                parallel[s].checkpoints[c].best_err);
      EXPECT_EQ(serial[s].checkpoints[c].rows_stored,
                parallel[s].checkpoints[c].rows_stored);
    }
    EXPECT_EQ(serial[s].avg_err, parallel[s].avg_err);
    EXPECT_EQ(serial[s].max_err, parallel[s].max_err);
  }
}

TEST(HarnessTest, CheckpointMetadataPopulated) {
  SyntheticStream stream(SyntheticStream::Options{
      .rows = 1000, .dim = 6, .signal_dim = 2, .window = 150});
  ExactWindow sketch(6, WindowSpec::Sequence(150));
  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = 1000;
  HarnessResult r = RunSketch(&stream, &sketch, options);
  for (const auto& c : r.checkpoints) {
    EXPECT_EQ(c.window_rows, 150u);
    EXPECT_EQ(c.rows_stored, 150u);
    EXPECT_GT(c.row_index, 0u);
  }
}

}  // namespace
}  // namespace swsketch
