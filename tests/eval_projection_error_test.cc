// Tests for the projection-error metric (relative error of the FD
// follow-up literature; the paper's Section 9 "different error metrics").
#include <cmath>

#include <gtest/gtest.h>

#include "core/exact_window.h"
#include "eval/cov_err.h"
#include "sketch/frequent_directions.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed, double decay = 0.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      m(i, j) = rng.Gaussian() / (1.0 + decay * static_cast<double>(j));
    }
  }
  return m;
}

TEST(ProjectionErrorTest, SelfProjectionIsOptimal) {
  Matrix a = RandomMatrix(40, 10, 1, 0.3);
  // B = A: its top-k subspace IS A's top-k subspace.
  EXPECT_NEAR(ProjectionError(a, a, 3), 1.0, 1e-6);
}

TEST(ProjectionErrorTest, AlwaysAtLeastOne) {
  Matrix a = RandomMatrix(50, 12, 2, 0.2);
  Matrix b = RandomMatrix(6, 12, 3);  // Unrelated subspace.
  EXPECT_GE(ProjectionError(a, b, 4), 1.0 - 1e-9);
}

TEST(ProjectionErrorTest, EmptyApproximationResidualIsFullMass) {
  // B empty: residual = ||A||_F^2, so proj-err = frob / best_residual.
  Matrix a = RandomMatrix(30, 8, 4, 0.5);
  const double err = ProjectionError(a, Matrix(), 2);
  EXPECT_GT(err, 1.0);
}

TEST(ProjectionErrorTest, OrthogonalSubspaceIsBad) {
  // A lives on axes 0..2; B on axes 5..7: projecting A onto B's space
  // captures nothing.
  Matrix a(20, 10);
  Matrix b(3, 10);
  Rng rng(5);
  // Two strong axes => the optimal rank-2 residual is only the tiny
  // ambient noise, so missing the subspace blows the ratio up.
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 2; ++j) a(i, j) = rng.Gaussian();
  }
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 2; j < 10; ++j) a(i, j) = 1e-3 * rng.Gaussian();
  }
  for (size_t i = 0; i < 3; ++i) b(i, 5 + i) = 1.0;
  const double err = ProjectionError(a, b, 2);
  EXPECT_GT(err, 100.0);
}

TEST(ProjectionErrorTest, FdIsNearOptimalUnderProjection) {
  // The FD literature's headline: FD's top-k subspace is near-optimal in
  // projection error even with modest ell.
  const size_t d = 20, k = 3;
  Matrix a(0, d);
  FrequentDirections fd(d, 16);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(d);
    for (size_t j = 0; j < d; ++j) {
      row[j] = (j < k ? 4.0 : 0.3) * rng.Gaussian();
    }
    a.AppendRow(row);
    fd.Append(row, i);
  }
  const double err = ProjectionError(a, fd.Approximation(), k);
  EXPECT_LT(err, 1.1);
}

TEST(ProjectionErrorTest, ExactRankKInputHandled) {
  // A exactly rank 2, k = 2: optimal residual 0 => metric is 1 when B
  // captures the space, +inf otherwise.
  Matrix basis = RandomMatrix(2, 8, 7);
  Matrix a(0, 8);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> row(8, 0.0);
    const double c0 = rng.Gaussian(), c1 = rng.Gaussian();
    for (size_t j = 0; j < 8; ++j) {
      row[j] = c0 * basis(0, j) + c1 * basis(1, j);
    }
    a.AppendRow(row);
  }
  EXPECT_NEAR(ProjectionError(a, a, 2), 1.0, 1e-9);
  Matrix wrong(1, 8);
  // A direction orthogonal to a rank-2 space almost surely: use axis
  // combination then check the metric explodes or is huge.
  wrong(0, 0) = 1.0;
  const double err = ProjectionError(a, wrong, 2);
  EXPECT_GT(err, 10.0);
}

TEST(ProjectionErrorTest, PreconditionsDie) {
  Matrix a = RandomMatrix(5, 4, 9);
  EXPECT_DEATH(ProjectionError(a, Matrix(), 0), "");   // k = 0.
  EXPECT_DEATH(ProjectionError(Matrix(), Matrix(), 1), "");  // Empty A.
}

}  // namespace
}  // namespace swsketch
