// Tests for the table / CSV reporter.
#include "eval/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace swsketch {
namespace {

TEST(TableTest, AlignedOutputContainsAllCells) {
  Table t({"algo", "err"});
  t.AddRow({"lm-fd", "0.05"});
  t.AddRow({"swr", "0.12"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("algo"), std::string::npos);
  EXPECT_NE(s.find("lm-fd"), std::string::npos);
  EXPECT_NE(s.find("0.12"), std::string::npos);
  // Separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, ColumnsAlignWithLongValues) {
  Table t({"x", "y"});
  t.AddRow({"averyverylongvalue", "1"});
  std::ostringstream os;
  t.Print(os);
  // Header row padded at least as wide as the longest cell.
  const std::string s = os.str();
  const size_t header_end = s.find('\n');
  const size_t row_start = s.rfind("averyverylongvalue");
  ASSERT_NE(row_start, std::string::npos);
  EXPECT_GT(header_end, std::string("x  y").size());
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(0.5), "0.5");
  EXPECT_EQ(Table::Num(1234567.0), "1.23457e+06");
  EXPECT_EQ(Table::Int(42), "42");
  EXPECT_EQ(Table::Int(-7), "-7");
}

TEST(TableTest, MismatchedRowDies) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "");
}

TEST(BannerTest, ContainsTitle) {
  std::ostringstream os;
  PrintBanner(os, "Figure 3");
  EXPECT_NE(os.str().find("== Figure 3 =="), std::string::npos);
}

}  // namespace
}  // namespace swsketch
