// Factory-level serialization contract, driven off KnownAlgorithms() so a
// newly registered backend is covered the day it lands: every algorithm
// whose SketchPrototype says `serializable()` must (a) SerializeTo
// successfully, (b) reload through the tag-dispatched
// DeserializeSlidingWindowSketch, (c) re-serialize to the EXACT same
// bytes, (d) answer the same Query() bit-for-bit, and (e) stay in byte
// lockstep under continued ingest. Algorithms the prototype marks
// non-serializable must say so through SerializeTo's status — the two
// signals may never disagree, because TenantManager spills through one
// and trusts the other.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "linalg/matrix.h"
#include "util/random.h"
#include "util/serialize.h"

namespace swsketch {
namespace {

void IngestRows(SlidingWindowSketch* sketch, size_t n, size_t d,
                uint64_t seed, double* t) {
  Rng rng(seed);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.Gaussian();
    *t += 1.0;
    sketch->Update(row, *t);
  }
}

TEST(FactoryRoundTripTest, EveryKnownAlgorithmRoundTripsOrDeclines) {
  const size_t d = 7;
  const WindowSpec window = WindowSpec::Sequence(64);
  size_t serializable_count = 0;
  for (const std::string& algo : KnownAlgorithms()) {
    SCOPED_TRACE(algo);
    SketchConfig config;
    config.algorithm = algo;
    config.ell = 8;
    config.max_norm_sq = 16.0 * static_cast<double>(d);
    config.seed = 7;
    auto proto = SketchPrototype::Make(d, window, config);
    ASSERT_TRUE(proto.ok()) << proto.status().ToString();
    auto made = MakeSlidingWindowSketch(d, window, config);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    auto& sketch = *made;

    double t = 0.0;
    IngestRows(sketch.get(), 300, d, 13, &t);

    ByteWriter w1;
    const Status st = sketch->SerializeTo(&w1);
    ASSERT_EQ(st.ok(), proto->serializable())
        << "SketchPrototype::serializable() and SerializeTo() disagree";
    if (!st.ok()) continue;
    ++serializable_count;

    ByteReader r(w1.bytes());
    auto loaded = DeserializeSlidingWindowSketch(&r);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(r.AtEnd()) << "trailing bytes after deserialize";

    // Re-serialize: the reloaded state must emit the original bytes.
    ByteWriter w2;
    ASSERT_TRUE((*loaded)->SerializeTo(&w2).ok());
    ASSERT_EQ(w1.bytes().size(), w2.bytes().size());
    EXPECT_EQ(std::memcmp(w1.bytes().data(), w2.bytes().data(),
                          w1.bytes().size()),
              0)
        << "serialize -> deserialize -> serialize changed bytes";

    // Identical answers, bit-for-bit.
    const Matrix qa = sketch->Query();
    const Matrix qb = (*loaded)->Query();
    ASSERT_EQ(qa.rows(), qb.rows());
    EXPECT_EQ(qa.MaxAbsDiff(qb), 0.0);

    // Continued ingest stays in lockstep (same rows, same timestamps).
    double t2 = t;
    IngestRows(sketch.get(), 80, d, 29, &t);
    IngestRows(loaded->get(), 80, d, 29, &t2);
    const Matrix ca = sketch->Query();
    const Matrix cb = (*loaded)->Query();
    ASSERT_EQ(ca.rows(), cb.rows());
    EXPECT_EQ(ca.MaxAbsDiff(cb), 0.0) << "post-reload ingest diverged";
  }
  // The serializable set (swr, swor, swor-all, lm-fd, lm-hash, di-fd,
  // ds-fd, amm-exact, amm-co-fd, amm-lm-fd, amm-di-fd today) may only
  // grow.
  EXPECT_GE(serializable_count, 11u);
}

}  // namespace
}  // namespace swsketch
