// Asserts the tentpole property of the Gram-eigen shrink: once warm, the
// FD steady state (Append loop including shrinks) performs zero heap
// allocations. The test binary replaces global operator new/delete with
// counting versions; counting is switched on only around the measured
// window so gtest's own bookkeeping stays invisible.
//
// Each tests/*.cc is its own gtest binary (see tests/CMakeLists.txt), so
// the global override is confined to this process.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sketch/frequent_directions.h"
#include "util/random.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

// noinline: at -O1+ GCC inlines these malloc/free bodies into callers and
// then flags new/free pairs as -Wmismatched-new-delete; the replacement
// allocator is matched by construction, so keep the bodies opaque.
#if defined(__GNUC__)
#define SWSKETCH_NOINLINE __attribute__((noinline))
#else
#define SWSKETCH_NOINLINE
#endif

SWSKETCH_NOINLINE void* operator new(std::size_t size) {
  return CountedAlloc(size);
}
SWSKETCH_NOINLINE void* operator new[](std::size_t size) {
  return CountedAlloc(size);
}
SWSKETCH_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
SWSKETCH_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
SWSKETCH_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
SWSKETCH_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

// Drives `fd` with pre-generated rows until it has performed `shrinks`
// more shrinks, returning the number of heap allocations observed.
size_t AllocationsOverShrinks(FrequentDirections* fd, const Matrix& rows,
                              size_t shrinks, size_t* cursor) {
  const size_t target = fd->shrink_count() + shrinks;
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  while (fd->shrink_count() < target) {
    fd->Append(rows.Row(*cursor % rows.rows()), *cursor);
    ++*cursor;
  }
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

// Note on shapes: both configs keep the W^T B product under the thread
// pool's parallel-dispatch flop threshold, so the shrink runs inline on
// the caller thread (pool task posting would allocate by design).

TEST(FdShrinkAllocTest, SteadyStateShrinkIsAllocationFreeTridiagRoute) {
  // ell = 40 > the Jacobi cutoff (32): exercises the tridiagonal QL
  // eigensolver path with its Householder scratch.
  const size_t d = 64, ell = 40;
  FrequentDirections fd(d, FrequentDirections::Options{.ell = ell});
  const Matrix rows = RandomMatrix(4 * ell, d, 5);
  size_t cursor = 0;
  // Warm-up: two shrinks size every scratch buffer to its steady shape.
  while (fd.shrink_count() < 2) {
    fd.Append(rows.Row(cursor % rows.rows()), cursor);
    ++cursor;
  }
  EXPECT_EQ(AllocationsOverShrinks(&fd, rows, 3, &cursor), 0u);
}

TEST(FdShrinkAllocTest, SteadyStateShrinkIsAllocationFreeJacobiRoute) {
  // ell = 16 <= the Jacobi cutoff: exercises the cyclic-Jacobi path.
  const size_t d = 64, ell = 16;
  FrequentDirections fd(d, FrequentDirections::Options{.ell = ell});
  const Matrix rows = RandomMatrix(4 * ell, d, 7);
  size_t cursor = 0;
  while (fd.shrink_count() < 2) {
    fd.Append(rows.Row(cursor % rows.rows()), cursor);
    ++cursor;
  }
  EXPECT_EQ(AllocationsOverShrinks(&fd, rows, 3, &cursor), 0u);
}

TEST(FdShrinkAllocTest, BufferedSteadyStateShrinkIsAllocationFree) {
  // buffer_factor > 1: the buffer oscillates between ~ell/2 and 2*ell
  // rows; the matrix storage was reserved at capacity up front, so the
  // grow-shrink cycle must still not touch the heap.
  const size_t d = 64, ell = 16;
  FrequentDirections fd(
      d, FrequentDirections::Options{.ell = ell, .buffer_factor = 2.0});
  const Matrix rows = RandomMatrix(8 * ell, d, 9);
  size_t cursor = 0;
  while (fd.shrink_count() < 2) {
    fd.Append(rows.Row(cursor % rows.rows()), cursor);
    ++cursor;
  }
  EXPECT_EQ(AllocationsOverShrinks(&fd, rows, 3, &cursor), 0u);
}

TEST(FdShrinkAllocTest, SharedScratchStaysWarmAcrossInstances) {
  // LM/DI sharing pattern: a second sketch adopting an already-warm arena
  // must be allocation-free from its very first steady-state shrink
  // (after its own buffer warm-up appends).
  const size_t d = 64, ell = 16;
  auto scratch = FrequentDirections::MakeShrinkScratch();
  const Matrix rows = RandomMatrix(4 * ell, d, 11);

  FrequentDirections warm(d, FrequentDirections::Options{.ell = ell});
  warm.ShareShrinkScratch(scratch);
  size_t cursor = 0;
  while (warm.shrink_count() < 2) {
    warm.Append(rows.Row(cursor % rows.rows()), cursor);
    ++cursor;
  }

  FrequentDirections fresh(d, FrequentDirections::Options{.ell = ell});
  fresh.ShareShrinkScratch(scratch);
  // Fill the fresh buffer to one row short of its first shrink, then
  // measure that shrink: the shared arena is already sized.
  size_t cursor2 = 0;
  while (fresh.RowsStored() < fresh.buffer_capacity()) {
    fresh.Append(rows.Row(cursor2 % rows.rows()), cursor2);
    ++cursor2;
  }
  EXPECT_EQ(AllocationsOverShrinks(&fresh, rows, 1, &cursor2), 0u);
}

}  // namespace
}  // namespace swsketch
