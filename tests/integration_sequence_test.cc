// End-to-end integration: every algorithm on a sequence-window stream from
// the dataset generators, checking error quality, space sublinearity, and
// the paper's qualitative orderings.
#include <memory>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/bibd.h"
#include "data/synthetic.h"
#include "eval/harness.h"

namespace swsketch {
namespace {

std::unique_ptr<SlidingWindowSketch> Make(const std::string& algo, size_t dim,
                                          uint64_t window, size_t ell,
                                          double max_norm_sq) {
  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  config.levels = 5;
  config.max_norm_sq = max_norm_sq;
  auto r = MakeSlidingWindowSketch(dim, WindowSpec::Sequence(window), config);
  EXPECT_TRUE(r.ok()) << algo;
  return r.take();
}

TEST(IntegrationSequenceTest, AllAlgorithmsOnSynthetic) {
  const size_t dim = 30, window = 1500, rows = 7500;
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = dim, .signal_dim = 8, .window = window});
  const double r_bound = stream.info().max_norm_sq;

  std::vector<std::unique_ptr<SlidingWindowSketch>> sketches;
  for (const char* algo :
       {"swr", "swor", "swor-all", "lm-fd", "lm-hash", "di-fd", "exact"}) {
    sketches.push_back(Make(algo, dim, window,
                            std::string(algo) == "lm-hash" ? 48 : 24,
                            r_bound));
  }
  std::vector<SlidingWindowSketch*> ptrs;
  for (auto& s : sketches) ptrs.push_back(s.get());

  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = rows;
  auto results = RunMany(&stream, ptrs, options);

  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(ptrs[i]->name());
    ASSERT_GT(results[i].checkpoints.size(), 0u);
    EXPECT_LT(results[i].avg_err, 0.8);
  }
  // Exact tracker: zero error, linear space.
  EXPECT_NEAR(results.back().avg_err, 0.0, 1e-9);
  EXPECT_EQ(results.back().max_rows_stored, window);
  // Sketches: sublinear space. LM-HASH gets slack — feature hashing needs
  // Theta(d^2 / eps^2) buckets per block (Corollary A.1), so at this small
  // scale its footprint is only weakly below the window.
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    const size_t cap =
        ptrs[i]->name() == "LM-HASH" ? 2 * window : window;
    EXPECT_LT(results[i].max_rows_stored, cap)
        << ptrs[i]->name() << " space out of range";
  }
}

TEST(IntegrationSequenceTest, DiFdShinesOnBibd) {
  // BIBD has R = 1: the paper's observation (4) says DI-FD achieves a
  // better error-space tradeoff than samplers there. We check DI-FD beats
  // the samplers at comparable (or smaller) space.
  const size_t window = 512, rows = 4000;
  BibdStream stream(BibdStream::Options{
      .rows = rows, .dim = 64, .row_weight = 8, .window = window});

  auto di = Make("di-fd", 64, window, 24, /*max_norm_sq=*/8.0);
  auto swr = Make("swr", 64, window, 48, 8.0);
  std::vector<SlidingWindowSketch*> ptrs{di.get(), swr.get()};
  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = rows;
  auto results = RunMany(&stream, ptrs, options);
  ASSERT_GT(results[0].checkpoints.size(), 0u);
  EXPECT_LT(results[0].avg_err, results[1].avg_err * 1.5);
}

TEST(IntegrationSequenceTest, LmFdBeatsSamplersOnSynthetic) {
  // Section 8 conclusion: LM-FD gives the best error/space tradeoff on
  // general data.
  const size_t dim = 24, window = 400, rows = 2500;
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = dim, .signal_dim = 6, .window = window});
  auto lm = Make("lm-fd", dim, window, 24, 100.0);
  auto swr = Make("swr", dim, window, 24, 100.0);
  auto swor = Make("swor", dim, window, 24, 100.0);
  std::vector<SlidingWindowSketch*> ptrs{lm.get(), swr.get(), swor.get()};
  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = rows;
  auto results = RunMany(&stream, ptrs, options);
  EXPECT_LT(results[0].avg_err, results[1].avg_err);
  EXPECT_LT(results[0].avg_err, results[2].avg_err);
}

TEST(IntegrationSequenceTest, BestIsLowerBoundForFdFamilies) {
  const size_t dim = 20, window = 300, rows = 1800;
  SyntheticStream stream(SyntheticStream::Options{
      .rows = rows, .dim = dim, .signal_dim = 5, .window = window});
  auto lm = Make("lm-fd", dim, window, 16, 100.0);
  std::vector<SlidingWindowSketch*> ptrs{lm.get()};
  HarnessOptions options;
  options.num_checkpoints = 3;
  options.total_rows = rows;
  options.best_k = 16;
  auto results = RunMany(&stream, ptrs, options);
  for (const auto& c : results[0].checkpoints) {
    EXPECT_LE(c.best_err, c.cova_err + 1e-9)
        << "BEST must lower-bound any 16-row sketch";
  }
}

}  // namespace
}  // namespace swsketch
