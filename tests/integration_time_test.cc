// End-to-end integration on time-based windows (WIKI / RAIL style
// workloads, Section 8.2).
#include <memory>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/rail.h"
#include "data/wiki.h"
#include "eval/harness.h"

namespace swsketch {
namespace {

std::unique_ptr<SlidingWindowSketch> Make(const std::string& algo, size_t dim,
                                          double delta, size_t ell) {
  SketchConfig config;
  config.algorithm = algo;
  config.ell = ell;
  auto r = MakeSlidingWindowSketch(dim, WindowSpec::Time(delta), config);
  EXPECT_TRUE(r.ok()) << algo << ": " << r.status().ToString();
  return r.take();
}

TEST(IntegrationTimeTest, RailPoissonArrivals) {
  const size_t dim = 60, rows = 6000;
  const double delta = 500.0;  // ~1000 rows per window at rate 2.
  RailStream stream(RailStream::Options{
      .rows = rows, .dim = dim, .mean_interarrival = 0.5, .window = delta});

  std::vector<std::unique_ptr<SlidingWindowSketch>> sketches;
  for (const char* algo : {"swr", "swor", "lm-fd"}) {
    sketches.push_back(
        Make(algo, dim, delta, std::string(algo) == "lm-fd" ? 24 : 48));
  }
  std::vector<SlidingWindowSketch*> ptrs;
  for (auto& s : sketches) ptrs.push_back(s.get());

  HarnessOptions options;
  options.num_checkpoints = 4;
  options.total_rows = rows;
  auto results = RunMany(&stream, ptrs, options);
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(ptrs[i]->name());
    ASSERT_GT(results[i].checkpoints.size(), 0u);
    EXPECT_LT(results[i].avg_err, 0.8);
    // Sublinear in the ~1000-row window.
    EXPECT_LT(results[i].max_rows_stored, 800u);
  }
  // Paper (Figures 7-8): LM-FD achieves the best error-space tradeoff on
  // time-based windows.
  EXPECT_LT(results[2].avg_err, results[0].avg_err);
  EXPECT_LT(results[2].avg_err, results[1].avg_err);
}

TEST(IntegrationTimeTest, WikiAcceleratingArrivals) {
  const size_t dim = 80, rows = 6000;
  const double delta = 300.0;
  WikiStream stream(WikiStream::Options{
      .rows = rows, .dim = dim, .nnz_min = 10, .nnz_max = 40,
      .span = 1500.0, .window = delta});

  auto lm = Make("lm-fd", dim, delta, 24);
  auto swr = Make("swr", dim, delta, 32);
  std::vector<SlidingWindowSketch*> ptrs{lm.get(), swr.get()};
  HarnessOptions options;
  options.num_checkpoints = 5;
  options.total_rows = rows;
  auto results = RunMany(&stream, ptrs, options);
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(ptrs[i]->name());
    ASSERT_GT(results[i].checkpoints.size(), 0u);
    EXPECT_LT(results[i].avg_err, 0.8);
  }
  // Window row counts must grow across checkpoints (accelerating rate).
  const auto& ckpts = results[0].checkpoints;
  EXPECT_GT(ckpts.back().window_rows, ckpts.front().window_rows);
}

TEST(IntegrationTimeTest, WindowSlidesThroughQuietPeriods) {
  // After a long gap, time-window queries must reflect only recent data.
  const size_t dim = 10;
  auto lm = Make("lm-fd", dim, 10.0, 8);
  std::vector<double> row(dim, 1.0);
  for (int i = 0; i < 100; ++i) lm->Update(row, 0.1 * i);
  EXPECT_GT(lm->Query().rows(), 0u);
  lm->AdvanceTo(1000.0);
  EXPECT_EQ(lm->Query().rows(), 0u);
  // Stream resumes.
  lm->Update(row, 1001.0);
  EXPECT_GT(lm->Query().rows(), 0u);
}

}  // namespace
}  // namespace swsketch
