// Tests for the Jacobi symmetric eigensolver.
#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix Reconstruct(const SymmetricEigen& eig) {
  const size_t n = eig.eigenvalues.size();
  Matrix m(n, n);
  for (size_t c = 0; c < n; ++c) {
    std::vector<double> v(n);
    for (size_t r = 0; r < n; ++r) v[r] = eig.eigenvectors(r, c);
    m.AddOuterProduct(v, eig.eigenvalues[c]);
  }
  return m;
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix m{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  SymmetricEigen eig = JacobiEigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m{{2, 1}, {1, 2}};
  SymmetricEigen eig = JacobiEigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.eigenvectors(0, 0)), std::sqrt(0.5), 1e-10);
}

TEST(JacobiEigenTest, EigenvaluesSortedDescending) {
  SymmetricEigen eig = JacobiEigen(RandomSymmetric(20, 1));
  EXPECT_TRUE(std::is_sorted(eig.eigenvalues.rbegin(),
                             eig.eigenvalues.rend()));
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  Matrix m = RandomSymmetric(15, 2);
  SymmetricEigen eig = JacobiEigen(m);
  EXPECT_TRUE(Reconstruct(eig).ApproxEquals(m, 1e-9));
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  SymmetricEigen eig = JacobiEigen(RandomSymmetric(12, 3));
  const Matrix& v = eig.eigenvectors;
  for (size_t a = 0; a < 12; ++a) {
    for (size_t b = 0; b < 12; ++b) {
      double dot = 0.0;
      for (size_t r = 0; r < 12; ++r) dot += v(r, a) * v(r, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(JacobiEigenTest, TraceIsPreserved) {
  Matrix m = RandomSymmetric(25, 4);
  double trace = 0.0;
  for (size_t i = 0; i < 25; ++i) trace += m(i, i);
  SymmetricEigen eig = JacobiEigen(m);
  double sum = 0.0;
  for (double l : eig.eigenvalues) sum += l;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(JacobiEigenTest, PsdGramHasNonnegativeEigenvalues) {
  Rng rng(5);
  Matrix a(30, 8);
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 8; ++j) a(i, j) = rng.Gaussian();
  }
  SymmetricEigen eig = JacobiEigen(a.Gram());
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-9);
}

TEST(JacobiEigenTest, ToleratesSlightAsymmetry) {
  Matrix m = RandomSymmetric(6, 6);
  m(0, 1) += 1e-13;  // Tiny asymmetry, as from accumulated fp error.
  SymmetricEigen eig = JacobiEigen(m);
  EXPECT_EQ(eig.eigenvalues.size(), 6u);
}

TEST(JacobiEigenTest, OneByOne) {
  Matrix m{{7}};
  SymmetricEigen eig = JacobiEigen(m);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 7.0);
  EXPECT_DOUBLE_EQ(eig.eigenvectors(0, 0), 1.0);
}

TEST(JacobiEigenTest, RepeatedEigenvalues) {
  // 2*I has eigenvalue 2 thrice; reconstruction must still hold.
  Matrix m = Matrix::Identity(3);
  m.Scale(2.0);
  SymmetricEigen eig = JacobiEigen(m);
  for (double l : eig.eigenvalues) EXPECT_NEAR(l, 2.0, 1e-12);
  EXPECT_TRUE(Reconstruct(eig).ApproxEquals(m, 1e-10));
}

}  // namespace
}  // namespace swsketch
