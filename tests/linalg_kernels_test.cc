// Differential tests for the cache-blocked dense kernels: Gram, GramOuter,
// Multiply, Apply/ApplyTranspose and the upper-triangle rank-1 update are
// checked entry-by-entry against straightforward triple-loop references on
// random, sparse-ish and degenerate shapes. Blocking changes summation
// order, so comparisons are relative-tolerance, not bit-exact; what IS
// exact is parallel-vs-serial for a fixed kernel (asserted via pool sizes).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed, double density = 1.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (density >= 1.0 || rng.Uniform01() < density) m(i, j) = rng.Gaussian();
    }
  }
  return m;
}

Matrix NaiveGram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (size_t r = 0; r < a.cols(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < a.rows(); ++i) sum += a(i, r) * a(i, c);
      g(r, c) = sum;
    }
  }
  return g;
}

Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      c(i, j) = sum;
    }
  }
  return c;
}

// Largest |x - y| scaled by the magnitude of the reference.
void ExpectMatrixNear(const Matrix& got, const Matrix& want, double rel_tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  double scale = 1.0;
  for (double v : want.Data()) scale = std::max(scale, std::abs(v));
  EXPECT_LE(got.MaxAbsDiff(want), rel_tol * scale);
}

TEST(BlockedKernelsTest, GramMatchesNaiveDense) {
  // d spans below / at / above the tile sizes (48 and 96).
  for (size_t d : {3u, 17u, 48u, 97u, 160u}) {
    const Matrix a = RandomMatrix(3 * d + 7, d, d);
    ExpectMatrixNear(a.Gram(), NaiveGram(a), 1e-12);
  }
}

TEST(BlockedKernelsTest, GramMatchesNaiveSparse) {
  // Mostly-zero input exercises the zero-quad skip in the inner loop.
  const Matrix a = RandomMatrix(400, 120, 1, 0.05);
  ExpectMatrixNear(a.Gram(), NaiveGram(a), 1e-12);
}

TEST(BlockedKernelsTest, GramDegenerateShapes) {
  // 0 rows: Gram is the all-zero d x d matrix.
  const Matrix empty_rows(0, 7);
  const Matrix g0 = empty_rows.Gram();
  EXPECT_EQ(g0.rows(), 7u);
  EXPECT_EQ(g0.MaxAbsDiff(Matrix(7, 7)), 0.0);
  // 1 column: Gram is the 1x1 squared norm.
  const Matrix one_col = RandomMatrix(23, 1, 2);
  ExpectMatrixNear(one_col.Gram(), NaiveGram(one_col), 1e-12);
  // 1 row: rank-1 outer product.
  const Matrix one_row = RandomMatrix(1, 60, 3);
  ExpectMatrixNear(one_row.Gram(), NaiveGram(one_row), 1e-12);
  // 0 x 0.
  EXPECT_TRUE(Matrix().Gram().empty());
}

TEST(BlockedKernelsTest, GramIsExactlySymmetric) {
  // The mirror copies the upper triangle, so symmetry is bit-exact — an
  // invariant Jacobi/Lanczos downstream rely on.
  const Matrix g = RandomMatrix(300, 130, 4).Gram();
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = i + 1; j < g.cols(); ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(BlockedKernelsTest, GramOuterMatchesNaive) {
  const Matrix a = RandomMatrix(57, 90, 5);
  ExpectMatrixNear(a.GramOuter(), NaiveMultiply(a, a.Transpose()), 1e-12);
}

TEST(BlockedKernelsTest, MultiplyMatchesNaive) {
  struct Shape { size_t n, k, m; };
  for (const auto& s : {Shape{1, 1, 1}, Shape{5, 130, 3}, Shape{64, 64, 64},
                        Shape{33, 257, 19}}) {
    const Matrix a = RandomMatrix(s.n, s.k, s.n + s.k);
    const Matrix b = RandomMatrix(s.k, s.m, s.k + s.m + 1);
    ExpectMatrixNear(a.Multiply(b), NaiveMultiply(a, b), 1e-12);
  }
}

TEST(BlockedKernelsTest, MultiplyDegenerateShapes) {
  const Matrix a(0, 5);
  const Matrix b = RandomMatrix(5, 4, 6);
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(BlockedKernelsTest, AddOuterProductUpperPlusMirrorEqualsFull) {
  const size_t d = 75;
  Rng rng(7);
  std::vector<double> v(d);
  for (auto& x : v) x = rng.Gaussian();

  Matrix full = RandomMatrix(10, d, 8).Gram();
  Matrix split = full;
  full.AddOuterProduct(v, -2.5);
  split.AddOuterProductUpper(v, -2.5);
  split.MirrorUpperToLower();
  EXPECT_EQ(full.MaxAbsDiff(split), 0.0);
}

TEST(BlockedKernelsTest, ManyUpperUpdatesThenOneMirror) {
  // The CovarianceError pattern: accumulate rank-1 terms upper-only, mirror
  // once, and land exactly where per-update mirroring would.
  const Matrix b = RandomMatrix(40, 66, 9);
  Matrix per_update(66, 66);
  Matrix amortized(66, 66);
  for (size_t i = 0; i < b.rows(); ++i) {
    per_update.AddOuterProduct(b.Row(i), -1.0);
    amortized.AddOuterProductUpper(b.Row(i), -1.0);
  }
  amortized.MirrorUpperToLower();
  EXPECT_EQ(per_update.MaxAbsDiff(amortized), 0.0);
}

TEST(BlockedKernelsTest, ApplyMatchesNaive) {
  const Matrix a = RandomMatrix(37, 118, 10);
  Rng rng(11);
  std::vector<double> x(a.cols()), y(a.rows()), want(a.rows());
  for (auto& v : x) v = rng.Gaussian();
  a.Apply(x, y);
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    want[i] = sum;
  }
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], want[i], 1e-10);
}

TEST(BlockedKernelsTest, ApplyTransposeMatchesNaive) {
  const Matrix a = RandomMatrix(118, 37, 12);
  Rng rng(13);
  std::vector<double> x(a.rows()), y(a.cols()), want(a.cols(), 0.0);
  for (auto& v : x) v = rng.Gaussian();
  a.ApplyTranspose(x, y);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) want[j] += a(i, j) * x[i];
  }
  for (size_t j = 0; j < y.size(); ++j) EXPECT_NEAR(y[j], want[j], 1e-10);
}

TEST(BlockedKernelsTest, LargeGramDeterministicAcrossRepeats) {
  // A shape big enough to cross the parallel flop threshold must give the
  // same bits every run (band partitioning is fixed, accumulation order
  // per entry is band-independent).
  const Matrix a = RandomMatrix(2000, 160, 14);
  const Matrix g1 = a.Gram();
  const Matrix g2 = a.Gram();
  EXPECT_EQ(g1.MaxAbsDiff(g2), 0.0);
  ExpectMatrixNear(g1, NaiveGram(a), 1e-12);
}

}  // namespace
}  // namespace swsketch
