// Differential tests for the cache-blocked dense kernels: Gram, GramOuter,
// Multiply, Apply/ApplyTranspose and the upper-triangle rank-1 update are
// checked entry-by-entry against straightforward triple-loop references on
// random, sparse-ish and degenerate shapes. Blocking changes summation
// order, so comparisons are relative-tolerance, not bit-exact; what IS
// exact is parallel-vs-serial for a fixed kernel (asserted via pool sizes).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed, double density = 1.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (density >= 1.0 || rng.Uniform01() < density) m(i, j) = rng.Gaussian();
    }
  }
  return m;
}

Matrix NaiveGram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (size_t r = 0; r < a.cols(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < a.rows(); ++i) sum += a(i, r) * a(i, c);
      g(r, c) = sum;
    }
  }
  return g;
}

Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      c(i, j) = sum;
    }
  }
  return c;
}

// Largest |x - y| scaled by the magnitude of the reference.
void ExpectMatrixNear(const Matrix& got, const Matrix& want, double rel_tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  double scale = 1.0;
  for (double v : want.Data()) scale = std::max(scale, std::abs(v));
  EXPECT_LE(got.MaxAbsDiff(want), rel_tol * scale);
}

TEST(BlockedKernelsTest, GramMatchesNaiveDense) {
  // d spans below / at / above the tile sizes (48 and 96).
  for (size_t d : {3u, 17u, 48u, 97u, 160u}) {
    const Matrix a = RandomMatrix(3 * d + 7, d, d);
    ExpectMatrixNear(a.Gram(), NaiveGram(a), 1e-12);
  }
}

TEST(BlockedKernelsTest, GramMatchesNaiveSparse) {
  // Mostly-zero input exercises the zero-quad skip in the inner loop.
  const Matrix a = RandomMatrix(400, 120, 1, 0.05);
  ExpectMatrixNear(a.Gram(), NaiveGram(a), 1e-12);
}

TEST(BlockedKernelsTest, GramDegenerateShapes) {
  // 0 rows: Gram is the all-zero d x d matrix.
  const Matrix empty_rows(0, 7);
  const Matrix g0 = empty_rows.Gram();
  EXPECT_EQ(g0.rows(), 7u);
  EXPECT_EQ(g0.MaxAbsDiff(Matrix(7, 7)), 0.0);
  // 1 column: Gram is the 1x1 squared norm.
  const Matrix one_col = RandomMatrix(23, 1, 2);
  ExpectMatrixNear(one_col.Gram(), NaiveGram(one_col), 1e-12);
  // 1 row: rank-1 outer product.
  const Matrix one_row = RandomMatrix(1, 60, 3);
  ExpectMatrixNear(one_row.Gram(), NaiveGram(one_row), 1e-12);
  // 0 x 0.
  EXPECT_TRUE(Matrix().Gram().empty());
}

TEST(BlockedKernelsTest, GramIsExactlySymmetric) {
  // The mirror copies the upper triangle, so symmetry is bit-exact — an
  // invariant Jacobi/Lanczos downstream rely on.
  const Matrix g = RandomMatrix(300, 130, 4).Gram();
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = i + 1; j < g.cols(); ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(BlockedKernelsTest, GramOuterMatchesNaive) {
  const Matrix a = RandomMatrix(57, 90, 5);
  ExpectMatrixNear(a.GramOuter(), NaiveMultiply(a, a.Transpose()), 1e-12);
}

TEST(BlockedKernelsTest, MultiplyMatchesNaive) {
  struct Shape { size_t n, k, m; };
  for (const auto& s : {Shape{1, 1, 1}, Shape{5, 130, 3}, Shape{64, 64, 64},
                        Shape{33, 257, 19}}) {
    const Matrix a = RandomMatrix(s.n, s.k, s.n + s.k);
    const Matrix b = RandomMatrix(s.k, s.m, s.k + s.m + 1);
    ExpectMatrixNear(a.Multiply(b), NaiveMultiply(a, b), 1e-12);
  }
}

TEST(BlockedKernelsTest, MultiplyDegenerateShapes) {
  const Matrix a(0, 5);
  const Matrix b = RandomMatrix(5, 4, 6);
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(BlockedKernelsTest, AddOuterProductUpperPlusMirrorEqualsFull) {
  const size_t d = 75;
  Rng rng(7);
  std::vector<double> v(d);
  for (auto& x : v) x = rng.Gaussian();

  Matrix full = RandomMatrix(10, d, 8).Gram();
  Matrix split = full;
  full.AddOuterProduct(v, -2.5);
  split.AddOuterProductUpper(v, -2.5);
  split.MirrorUpperToLower();
  EXPECT_EQ(full.MaxAbsDiff(split), 0.0);
}

TEST(BlockedKernelsTest, ManyUpperUpdatesThenOneMirror) {
  // The CovarianceError pattern: accumulate rank-1 terms upper-only, mirror
  // once, and land exactly where per-update mirroring would.
  const Matrix b = RandomMatrix(40, 66, 9);
  Matrix per_update(66, 66);
  Matrix amortized(66, 66);
  for (size_t i = 0; i < b.rows(); ++i) {
    per_update.AddOuterProduct(b.Row(i), -1.0);
    amortized.AddOuterProductUpper(b.Row(i), -1.0);
  }
  amortized.MirrorUpperToLower();
  EXPECT_EQ(per_update.MaxAbsDiff(amortized), 0.0);
}

TEST(BlockedKernelsTest, ApplyMatchesNaive) {
  const Matrix a = RandomMatrix(37, 118, 10);
  Rng rng(11);
  std::vector<double> x(a.cols()), y(a.rows()), want(a.rows());
  for (auto& v : x) v = rng.Gaussian();
  a.Apply(x, y);
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    want[i] = sum;
  }
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], want[i], 1e-10);
}

TEST(BlockedKernelsTest, ApplyTransposeMatchesNaive) {
  const Matrix a = RandomMatrix(118, 37, 12);
  Rng rng(13);
  std::vector<double> x(a.rows()), y(a.cols()), want(a.cols(), 0.0);
  for (auto& v : x) v = rng.Gaussian();
  a.ApplyTranspose(x, y);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) want[j] += a(i, j) * x[i];
  }
  for (size_t j = 0; j < y.size(); ++j) EXPECT_NEAR(y[j], want[j], 1e-10);
}

// ---- Bit-compatibility of the fused inner loop across dispatch paths.
//
// The kernels promise a pinned per-element accumulation formula per build
// and host CPU class: when Matrix::FusedKernelsUseFmaChains() — compiled-in
// AVX2+FMA or the runtime cpuid dispatch — each 4-row group contributes
// via a nested fma chain (vector lanes and scalar tail associate
// identically); otherwise plain mul+add. These references replay the
// active formula element-by-element (std::fma is exact in any build), so
// the comparison is EXPECT_EQ — any drift between the SIMD main loop, its
// tail, and the documented contract is a bit-level failure, in both the
// release and the bench (-march=native) build.

// dst[j] accumulated with one 4-row group, matching FusedAccumulate4.
double RefFused4(double dst, double a0, double a1, double a2, double a3,
                 double v0, double v1, double v2, double v3) {
  if (Matrix::FusedKernelsUseFmaChains()) {
    return std::fma(v3, a3, std::fma(v2, a2, std::fma(v1, a1,
                                                      std::fma(v0, a0, dst))));
  }
  return dst + (v0 * a0 + v1 * a1 + v2 * a2 + v3 * a3);
}

// dst[j] accumulated with one remaining row, matching FusedAccumulate1.
double RefFused1(double dst, double a, double v) {
  if (Matrix::FusedKernelsUseFmaChains()) return std::fma(v, a, dst);
  return dst + v * a;
}

TEST(FusedKernelBitCompatTest, ApplyTransposeMatchesReferenceChainExactly) {
  // rows = 11 exercises two 4-row groups plus a 3-row tail; cols = 10
  // covers both the 256-bit lanes (j < 8) and the scalar tail (j = 8, 9),
  // which must associate identically.
  const Matrix a = RandomMatrix(11, 10, 21);
  Rng rng(22);
  std::vector<double> x(a.rows());
  for (auto& v : x) v = rng.Gaussian();

  std::vector<double> want(a.cols(), 0.0);
  size_t i = 0;
  for (; i + 3 < a.rows(); i += 4) {
    for (size_t j = 0; j < a.cols(); ++j) {
      want[j] = RefFused4(want[j], a(i, j), a(i + 1, j), a(i + 2, j),
                          a(i + 3, j), x[i], x[i + 1], x[i + 2], x[i + 3]);
    }
  }
  for (; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      want[j] = RefFused1(want[j], a(i, j), x[i]);
    }
  }

  std::vector<double> y(a.cols());
  a.ApplyTranspose(x, y);
  for (size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(y[j], want[j]) << j;
}

TEST(FusedKernelBitCompatTest, GramMatchesReferenceChainExactly) {
  // Small enough for a single row panel (<= 64) and a single (i, j) tile
  // (d <= 48), so the blocked loop reduces to: per column i, 4-row fused
  // groups then remainder rows, j running over the upper triangle.
  const Matrix a = RandomMatrix(11, 10, 23);
  const size_t d = a.cols();
  Matrix want(d, d);
  for (size_t i = 0; i < d; ++i) {
    size_t r = 0;
    for (; r + 3 < a.rows(); r += 4) {
      const double v0 = a(r, i), v1 = a(r + 1, i), v2 = a(r + 2, i),
                   v3 = a(r + 3, i);
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      for (size_t j = i; j < d; ++j) {
        want(i, j) = RefFused4(want(i, j), a(r, j), a(r + 1, j), a(r + 2, j),
                               a(r + 3, j), v0, v1, v2, v3);
      }
    }
    for (; r < a.rows(); ++r) {
      const double vi = a(r, i);
      if (vi == 0.0) continue;
      for (size_t j = i; j < d; ++j) {
        want(i, j) = RefFused1(want(i, j), a(r, j), vi);
      }
    }
  }
  want.MirrorUpperToLower();
  EXPECT_EQ(a.Gram().MaxAbsDiff(want), 0.0);
}

TEST(FusedKernelBitCompatTest, MultiplyMatchesReferenceChainExactly) {
  // k = 11 (< the 128 panel) reduces Multiply to 4-deep fused k-groups plus
  // a remainder per output row; m = 10 covers lanes and tail.
  const Matrix a = RandomMatrix(3, 11, 24);
  const Matrix b = RandomMatrix(11, 10, 25);
  Matrix want(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    size_t k = 0;
    for (; k + 3 < a.cols(); k += 4) {
      for (size_t j = 0; j < b.cols(); ++j) {
        want(i, j) = RefFused4(want(i, j), b(k, j), b(k + 1, j), b(k + 2, j),
                               b(k + 3, j), a(i, k), a(i, k + 1), a(i, k + 2),
                               a(i, k + 3));
      }
    }
    for (; k < a.cols(); ++k) {
      for (size_t j = 0; j < b.cols(); ++j) {
        want(i, j) = RefFused1(want(i, j), b(k, j), a(i, k));
      }
    }
  }
  EXPECT_EQ(a.Multiply(b).MaxAbsDiff(want), 0.0);
}

TEST(FusedKernelBitCompatTest, MultiplyRowsMatchesMultiplyOnSlice) {
  // MultiplyRows(b, begin) must produce bit-for-bit what Multiply gives on
  // a materialized copy of the row slice — same kernel, shifted base row.
  const Matrix a = RandomMatrix(16, 33, 26);
  const Matrix b = RandomMatrix(80, 29, 27);
  const size_t begin = 17;
  Matrix slice(0, b.cols());
  for (size_t i = 0; i < a.cols(); ++i) slice.AppendRow(b.Row(begin + i));
  EXPECT_EQ(a.MultiplyRows(b, begin).MaxAbsDiff(a.Multiply(slice)), 0.0);
}

TEST(BlockedKernelsTest, LargeGramDeterministicAcrossRepeats) {
  // A shape big enough to cross the parallel flop threshold must give the
  // same bits every run (band partitioning is fixed, accumulation order
  // per entry is band-independent).
  const Matrix a = RandomMatrix(2000, 160, 14);
  const Matrix g1 = a.Gram();
  const Matrix g2 = a.Gram();
  EXPECT_EQ(g1.MaxAbsDiff(g2), 0.0);
  ExpectMatrixNear(g1, NaiveGram(a), 1e-12);
}

}  // namespace
}  // namespace swsketch
