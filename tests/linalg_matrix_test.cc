// Tests for the dense Matrix type.
#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace swsketch {
namespace {

TEST(MatrixTest, ZeroConstruction) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AppendRowAdoptsColumnCount) {
  Matrix m;
  std::vector<double> r{1, 2, 3};
  m.AppendRow(r);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  m.AppendRowScaled(r, 2.0);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, AppendRowMismatchedDies) {
  Matrix m{{1, 2}};
  std::vector<double> bad{1, 2, 3};
  EXPECT_DEATH(m.AppendRow(bad), "");
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.Transpose().ApproxEquals(m, 0.0));
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a.Multiply(b);
  Matrix expected{{19, 22}, {43, 50}};
  EXPECT_TRUE(c.ApproxEquals(expected, 1e-12));
}

TEST(MatrixTest, MultiplyIdentity) {
  Rng rng(1);
  Matrix a(4, 6);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) a(i, j) = rng.Gaussian();
  }
  EXPECT_TRUE(Matrix::Identity(4).Multiply(a).ApproxEquals(a, 1e-12));
  EXPECT_TRUE(a.Multiply(Matrix::Identity(6)).ApproxEquals(a, 1e-12));
}

TEST(MatrixTest, GramMatchesExplicitProduct) {
  Rng rng(2);
  Matrix a(7, 5);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 5; ++j) a(i, j) = rng.Gaussian();
  }
  Matrix gram = a.Gram();
  Matrix expected = a.Transpose().Multiply(a);
  EXPECT_TRUE(gram.ApproxEquals(expected, 1e-10));
}

TEST(MatrixTest, GramOuterMatchesExplicitProduct) {
  Rng rng(3);
  Matrix a(4, 9);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 9; ++j) a(i, j) = rng.Gaussian();
  }
  EXPECT_TRUE(a.GramOuter().ApproxEquals(a.Multiply(a.Transpose()), 1e-10));
}

TEST(MatrixTest, AddOuterProduct) {
  Matrix m(3, 3);
  std::vector<double> v{1, 2, 3};
  m.AddOuterProduct(v, 2.0);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 2.0 * v[i] * v[j]);
    }
  }
  // Symmetry.
  m.AddOuterProduct(v, -0.5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < i; ++j) EXPECT_EQ(m(i, j), m(j, i));
  }
}

TEST(MatrixTest, SubtractAndAddScaled) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0.5, 0.5}, {1, 1}};
  Matrix d = a.Subtract(b);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, FrobeniusNormSq) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSq(), 25.0);
}

TEST(MatrixTest, ApplyAndApplyTranspose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  std::vector<double> x{1, 1, 1}, y(2);
  a.Apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  std::vector<double> u{1, 2}, z(3);
  a.ApplyTranspose(u, z);
  EXPECT_DOUBLE_EQ(z[0], 9.0);
  EXPECT_DOUBLE_EQ(z[1], 12.0);
  EXPECT_DOUBLE_EQ(z[2], 15.0);
}

TEST(MatrixTest, VStack) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}, {5, 6}};
  Matrix c = a.VStack(b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_DOUBLE_EQ(c(2, 1), 6.0);
  // Empty acts as identity.
  Matrix e;
  EXPECT_TRUE(e.VStack(a).ApproxEquals(a, 0.0));
  EXPECT_TRUE(a.VStack(e).ApproxEquals(a, 0.0));
}

TEST(MatrixTest, TruncateRows) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  m.TruncateRows(1);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(MatrixTest, MaxAbsDiffShapeMismatchIsInfinite) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_TRUE(std::isinf(a.MaxAbsDiff(b)));
}

TEST(MatrixTest, SetZeroKeepsShape) {
  Matrix m{{1, 2}, {3, 4}};
  m.SetZero();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.FrobeniusNormSq(), 0.0);
}

}  // namespace
}  // namespace swsketch
