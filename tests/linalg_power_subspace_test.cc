// Tests for power iteration (spectral norms) and subspace iteration
// (top-k eigenpairs).
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/power_iteration.h"
#include "linalg/subspace_iteration.h"
#include "util/random.h"

namespace swsketch {
namespace {

Matrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix RandomPsd(size_t n, size_t inner, uint64_t seed) {
  Rng rng(seed);
  Matrix a(inner, n);
  for (size_t i = 0; i < inner; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
  }
  return a.Gram();
}

TEST(PowerIterationTest, DiagonalSpectralNorm) {
  Matrix m{{5, 0}, {0, -9}};  // Indefinite: largest |lambda| = 9.
  EXPECT_NEAR(SpectralNormSymmetric(m), 9.0, 1e-6);
}

TEST(PowerIterationTest, MatchesJacobiOnRandomSymmetric) {
  Matrix m = RandomSymmetric(30, 1);
  SymmetricEigen eig = JacobiEigen(m);
  double expected = 0.0;
  for (double l : eig.eigenvalues) expected = std::max(expected, std::fabs(l));
  EXPECT_NEAR(SpectralNormSymmetric(m), expected, 1e-5 * expected);
}

TEST(PowerIterationTest, ZeroMatrix) {
  EXPECT_EQ(SpectralNormSymmetric(Matrix(5, 5)), 0.0);
  EXPECT_EQ(SpectralNormSymmetric(Matrix()), 0.0);
}

TEST(PowerIterationTest, GeneralMatrixLargestSingularValue) {
  Rng rng(2);
  Matrix a(12, 20);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 20; ++j) a(i, j) = rng.Gaussian();
  }
  // Reference: sqrt of largest eigenvalue of A A^T via Jacobi.
  SymmetricEigen eig = JacobiEigen(a.GramOuter());
  const double expected = std::sqrt(eig.eigenvalues[0]);
  EXPECT_NEAR(SpectralNorm(a), expected, 1e-5 * expected);
}

TEST(PowerIterationTest, NearTieStillConverges) {
  // Eigenvalues +1 and -1 + small gap: the ||Mx|| estimate (power
  // iteration on M^2) converges despite the sign tie.
  Matrix m{{1.0, 0.0}, {0.0, -0.999}};
  EXPECT_NEAR(SpectralNormSymmetric(m), 1.0, 1e-3);
}

TEST(SubspaceIterationTest, TopEigenvaluesMatchJacobi) {
  Matrix m = RandomPsd(40, 50, 3);
  SymmetricEigen full = JacobiEigen(m);
  TopEigen top = TopEigenpairsPsd(m, 5);
  ASSERT_EQ(top.values.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(top.values[i], full.eigenvalues[i],
                1e-6 * std::max(1.0, full.eigenvalues[i]))
        << "eigenvalue " << i;
  }
}

TEST(SubspaceIterationTest, VectorsAreEigenvectors) {
  Matrix m = RandomPsd(25, 30, 4);
  TopEigen top = TopEigenpairsPsd(m, 3);
  std::vector<double> v(25), mv(25);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < 25; ++i) v[i] = top.vectors(i, c);
    m.Apply(v, mv);
    // M v ~ lambda v.
    for (size_t i = 0; i < 25; ++i) {
      EXPECT_NEAR(mv[i], top.values[c] * v[i], 1e-5 * std::fabs(top.values[c]) + 1e-7);
    }
  }
}

TEST(SubspaceIterationTest, OrthonormalVectors) {
  Matrix m = RandomPsd(20, 22, 5);
  TopEigen top = TopEigenpairsPsd(m, 4);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < 20; ++i) {
        dot += top.vectors(i, a) * top.vectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-7);
    }
  }
}

TEST(SubspaceIterationTest, KClampedToDimension) {
  Matrix m = RandomPsd(6, 10, 6);
  TopEigen top = TopEigenpairsPsd(m, 50);
  EXPECT_EQ(top.values.size(), 6u);
}

TEST(SubspaceIterationTest, LowRankMatrixTrailingZeros) {
  Matrix m = RandomPsd(15, 3, 7);  // Rank 3 PSD.
  TopEigen top = TopEigenpairsPsd(m, 6);
  for (size_t i = 3; i < 6; ++i) {
    EXPECT_NEAR(top.values[i], 0.0, 1e-6 * top.values[0]);
  }
}

TEST(OrthonormalizeColumnsTest, ProducesOrthonormalBasis) {
  Rng rng(8);
  Matrix q(10, 4);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 4; ++j) q(i, j) = rng.Gaussian();
  }
  OrthonormalizeColumns(&q, 1);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < 10; ++i) dot += q(i, a) * q(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(OrthonormalizeColumnsTest, RepairsDependentColumns) {
  Matrix q(8, 3);
  for (size_t i = 0; i < 8; ++i) {
    q(i, 0) = 1.0;
    q(i, 1) = 2.0;  // Parallel to column 0.
    q(i, 2) = static_cast<double>(i);
  }
  OrthonormalizeColumns(&q, 2);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < 8; ++i) dot += q(i, a) * q(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace swsketch
