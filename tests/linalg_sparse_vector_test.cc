// Tests for SparseVector and the sketches' sparse fast paths.
#include "linalg/sparse_vector.h"

#include <gtest/gtest.h>

#include "core/dyadic_interval.h"
#include "sketch/frequent_directions.h"
#include "sketch/hash_sketch.h"
#include "sketch/random_projection.h"
#include "util/random.h"

namespace swsketch {
namespace {

SparseVector MakeSparse(size_t dim, std::vector<std::pair<uint32_t, double>>
                                        entries) {
  std::vector<uint32_t> idx;
  std::vector<double> val;
  for (auto& [i, v] : entries) {
    idx.push_back(i);
    val.push_back(v);
  }
  return SparseVector(dim, std::move(idx), std::move(val));
}

TEST(SparseVectorTest, BasicAccessors) {
  SparseVector v = MakeSparse(10, {{1, 2.0}, {7, -3.0}});
  EXPECT_EQ(v.dim(), 10u);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.NormSq(), 13.0);
}

TEST(SparseVectorTest, FromDenseRoundTrip) {
  std::vector<double> dense{0.0, 1.5, 0.0, 0.0, -2.0, 0.0};
  SparseVector v = SparseVector::FromDense(dense);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.ToDense(), dense);
}

TEST(SparseVectorTest, FromDenseWithTolerance) {
  std::vector<double> dense{1e-12, 1.0, -1e-12};
  SparseVector v = SparseVector::FromDense(dense, 1e-9);
  EXPECT_EQ(v.nnz(), 1u);
}

TEST(SparseVectorTest, DotAgainstDense) {
  SparseVector v = MakeSparse(4, {{0, 2.0}, {3, 3.0}});
  std::vector<double> dense{1.0, 10.0, 10.0, -1.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 - 3.0);
}

TEST(SparseVectorTest, AxpyInto) {
  SparseVector v = MakeSparse(3, {{1, 4.0}});
  std::vector<double> dense{1.0, 1.0, 1.0};
  v.AxpyInto(dense, 0.5);
  EXPECT_DOUBLE_EQ(dense[1], 3.0);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
}

TEST(SparseVectorTest, RejectsBadIndices) {
  EXPECT_DEATH(SparseVector(4, {5}, {1.0}), "");         // Out of range.
  EXPECT_DEATH(SparseVector(4, {2, 1}, {1.0, 1.0}), "");  // Not increasing.
  EXPECT_DEATH(SparseVector(4, {1}, {1.0, 2.0}), "");     // Length mismatch.
}

// --- Sparse fast paths must match the dense paths ---

std::vector<double> RandomSparseDense(Rng* rng, size_t d, size_t nnz) {
  std::vector<double> dense(d, 0.0);
  for (size_t idx : rng->SampleWithoutReplacement(d, nnz)) {
    dense[idx] = rng->Gaussian();
  }
  return dense;
}

TEST(SparseFastPathTest, FrequentDirectionsMatchesDense) {
  const size_t d = 40;
  Rng rng(1);
  FrequentDirections dense_fd(d, 12), sparse_fd(d, 12);
  for (int i = 0; i < 200; ++i) {
    auto dense = RandomSparseDense(&rng, d, 6);
    dense_fd.Append(dense, i);
    sparse_fd.AppendSparse(SparseVector::FromDense(dense), i);
  }
  EXPECT_TRUE(dense_fd.Approximation().ApproxEquals(
      sparse_fd.Approximation(), 1e-9));
  EXPECT_NEAR(dense_fd.input_mass(), sparse_fd.input_mass(), 1e-9);
}

TEST(SparseFastPathTest, HashMatchesDenseExactly) {
  const size_t d = 30;
  Rng rng(2);
  HashSketch dense_h(d, 16, 5), sparse_h(d, 16, 5);
  for (int i = 0; i < 100; ++i) {
    auto dense = RandomSparseDense(&rng, d, 5);
    dense_h.Append(dense, i);
    sparse_h.AppendSparse(SparseVector::FromDense(dense), i);
  }
  EXPECT_TRUE(dense_h.Approximation().ApproxEquals(
      sparse_h.Approximation(), 1e-12));
}

TEST(SparseFastPathTest, RandomProjectionMatchesDenseExactly) {
  // Same seed => same sign stream => identical results.
  const size_t d = 25;
  Rng rng(3);
  RandomProjection dense_rp(d, 32, 9), sparse_rp(d, 32, 9);
  for (int i = 0; i < 100; ++i) {
    auto dense = RandomSparseDense(&rng, d, 4);
    dense_rp.Append(dense, i);
    sparse_rp.AppendSparse(SparseVector::FromDense(dense), i);
  }
  EXPECT_TRUE(dense_rp.Approximation().ApproxEquals(
      sparse_rp.Approximation(), 1e-12));
}

TEST(SparseFastPathTest, DyadicIntervalUpdateSparseMatchesDense) {
  const size_t d = 20;
  const uint64_t w = 128;
  DiFd dense_di(d, DiFd::Options{.levels = 4, .window_size = w,
                                 .max_norm_sq = 8.0, .ell_top = 16});
  DiFd sparse_di(d, DiFd::Options{.levels = 4, .window_size = w,
                                  .max_norm_sq = 8.0, .ell_top = 16});
  Rng rng(4);
  for (int i = 0; i < 600; ++i) {
    auto dense = RandomSparseDense(&rng, d, 5);
    dense_di.Update(dense, i);
    sparse_di.UpdateSparse(SparseVector::FromDense(dense), i);
  }
  EXPECT_TRUE(dense_di.Query().ApproxEquals(sparse_di.Query(), 1e-9));
  EXPECT_EQ(dense_di.RowsStored(), sparse_di.RowsStored());
}

TEST(SparseFastPathTest, DefaultUpdateSparseDensifies) {
  // Samplers use the base-class fallback; behaviour must match dense
  // updates given the same RNG stream is consumed identically.
  const size_t d = 10;
  DiFd sk(d, DiFd::Options{.levels = 3, .window_size = 64,
                           .max_norm_sq = 4.0, .ell_top = 8});
  SparseVector v = MakeSparse(d, {{2, 1.5}});
  sk.UpdateSparse(v, 0.0);
  EXPECT_GT(sk.RowsStored(), 0u);
}

}  // namespace
}  // namespace swsketch
